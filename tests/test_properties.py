"""Property-based tests for stateful components (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.longitudinal import TrendSeries
from repro.core.stats import EmpiricalCdf
from repro.firmware.caps import CapMeter, UsageCapPolicy
from repro.simulation.channels import (
    CHANNELS_2_4,
    contention_index,
    interference_weight,
    least_contended_channel,
)
from repro.core.records import Spectrum
from repro.simulation.timebase import DAY, utc

T0 = utc(2013, 4, 1)

byte_batches = st.lists(
    st.tuples(st.floats(min_value=0, max_value=30 * DAY),
              st.floats(min_value=0, max_value=5e9)),
    min_size=1, max_size=40)


class TestCapMeterProperties:
    @given(byte_batches)
    @settings(max_examples=60, deadline=None)
    def test_alert_thresholds_fire_at_most_once_per_cycle(self, batches):
        policy = UsageCapPolicy(monthly_cap_bytes=10e9, cycle_days=30)
        meter = CapMeter("r", policy, cycle_start=T0)
        for offset, byte_count in sorted(batches):
            meter.record(T0 + offset, byte_count)
        # Single cycle (all offsets < 30 days): no duplicate thresholds.
        thresholds = [a.threshold for a in meter.alerts]
        assert len(thresholds) == len(set(thresholds))
        # Alerts are time-ordered and threshold-ordered.
        stamps = [a.timestamp for a in meter.alerts]
        assert stamps == sorted(stamps)
        assert thresholds == sorted(thresholds)

    @given(byte_batches)
    @settings(max_examples=60, deadline=None)
    def test_usage_equals_sum_of_records(self, batches):
        policy = UsageCapPolicy(monthly_cap_bytes=1e18, cycle_days=3650)
        meter = CapMeter("r", policy, cycle_start=T0)
        total = 0.0
        for offset, byte_count in sorted(batches):
            meter.record(T0 + offset, byte_count)
            total += byte_count
        assert meter.used_bytes == pytest.approx(total)

    @given(byte_batches)
    @settings(max_examples=40, deadline=None)
    def test_alert_iff_threshold_crossed(self, batches):
        cap = 10e9
        policy = UsageCapPolicy(monthly_cap_bytes=cap, cycle_days=3650)
        meter = CapMeter("r", policy, cycle_start=T0)
        for offset, byte_count in sorted(batches):
            meter.record(T0 + offset, byte_count)
        fired = {a.threshold for a in meter.alerts}
        for threshold in policy.alert_thresholds:
            assert (threshold in fired) == \
                (meter.used_bytes / cap >= threshold)


class TestTrendSeriesProperties:
    @given(st.lists(st.tuples(
        st.floats(min_value=0, max_value=100 * DAY),
        st.floats(min_value=-1e6, max_value=1e6)), min_size=2, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_slope_sign_matches_endpoint_regression(self, raw):
        # Deduplicate times: polyfit needs spread.
        points = sorted({(T0 + t, v) for t, v in raw})
        if len(points) < 2 or points[-1][0] == points[0][0]:
            return
        series = TrendSeries.from_points("x", points)
        assert np.isfinite(series.slope_per_day)
        # Constant series => zero slope.
        flat = TrendSeries.from_points(
            "flat", [(t, 5.0) for t, _ in points])
        assert flat.slope_per_day == pytest.approx(0.0, abs=1e-9)

    @given(st.floats(min_value=-100, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_linear_series_recovers_slope(self, slope):
        points = [(T0 + i * DAY, slope * i) for i in range(10)]
        series = TrendSeries.from_points("x", points)
        assert series.slope_per_day == pytest.approx(slope, abs=1e-6)


class TestChannelProperties:
    neighbor_lists = st.lists(st.sampled_from(CHANNELS_2_4), max_size=40)

    @given(neighbor_lists)
    @settings(max_examples=60, deadline=None)
    def test_best_channel_is_argmin(self, neighbors):
        best = least_contended_channel(Spectrum.GHZ_2_4, neighbors)
        best_score = contention_index(Spectrum.GHZ_2_4, best, neighbors)
        for channel in CHANNELS_2_4:
            assert best_score <= contention_index(
                Spectrum.GHZ_2_4, channel, neighbors) + 1e-9

    @given(neighbor_lists, st.sampled_from(CHANNELS_2_4))
    @settings(max_examples=60, deadline=None)
    def test_contention_monotone_in_neighborhood(self, neighbors, channel):
        base = contention_index(Spectrum.GHZ_2_4, channel, neighbors)
        more = contention_index(Spectrum.GHZ_2_4, channel,
                                neighbors + [channel])
        assert more == pytest.approx(base + 1.0)

    @given(st.sampled_from(CHANNELS_2_4), st.sampled_from(CHANNELS_2_4))
    def test_interference_bounded(self, a, b):
        weight = interference_weight(Spectrum.GHZ_2_4, a, b)
        assert 0.0 <= weight <= 1.0
        assert (weight == 1.0) == (a == b)


class TestCdfProperties:
    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1,
                    max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_fraction_functions_complementary(self, xs):
        cdf = EmpiricalCdf.from_samples(xs)
        for probe in (min(xs), max(xs), sorted(xs)[len(xs) // 2]):
            below_or_eq = cdf.fraction_at_most(probe)
            strictly_below = 1 - cdf.fraction_at_least(probe)
            # at_most counts ties; at_least counts them too.
            assert below_or_eq >= strictly_below - 1e-12
            assert 0 <= below_or_eq <= 1
