"""Unit tests for application-port naming."""

import pytest

from repro.netutils.ports import APPLICATION_PORTS, port_application, well_known_port


def test_http_https():
    assert port_application(80) == "http"
    assert port_application(443) == "https"


def test_unknown_port_is_other():
    assert port_application(54321) == "other"


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        port_application(70000)
    with pytest.raises(ValueError):
        port_application(-1)


def test_well_known_port():
    assert well_known_port(22)
    assert not well_known_port(54321)


def test_registry_sane():
    assert all(0 <= port <= 65535 for port in APPLICATION_PORTS)
    assert all(name == name.lower() for name in APPLICATION_PORTS.values())
    assert "other" not in APPLICATION_PORTS.values()
