"""Unit tests for the seed hierarchy and the simulated calendar."""

import numpy as np
import pytest

from repro.simulation.seeding import SeedHierarchy
from repro.simulation.timebase import (
    DAY,
    HOUR,
    MINUTE,
    StudyCalendar,
    StudyWindows,
    utc,
)


class TestSeedHierarchy:
    def test_same_path_same_stream(self):
        seeds = SeedHierarchy(42)
        a = seeds.generator("x", 1).random(8)
        b = seeds.generator("x", 1).random(8)
        assert np.array_equal(a, b)

    def test_different_paths_differ(self):
        seeds = SeedHierarchy(42)
        a = seeds.generator("x", 1).random(8)
        b = seeds.generator("x", 2).random(8)
        assert not np.array_equal(a, b)

    def test_different_study_seeds_differ(self):
        a = SeedHierarchy(1).generator("x").random(8)
        b = SeedHierarchy(2).generator("x").random(8)
        assert not np.array_equal(a, b)

    def test_child_scoping(self):
        seeds = SeedHierarchy(42)
        direct = seeds.generator("home", 3, "power").random(4)
        scoped = seeds.child("home", 3).generator("power").random(4)
        assert np.array_equal(direct, scoped)

    def test_child_does_not_mutate_parent(self):
        seeds = SeedHierarchy(42)
        seeds.child("home", 1)
        assert not hasattr(seeds, "_prefix") or seeds._prefix == ()

    def test_string_int_keys_distinct(self):
        seeds = SeedHierarchy(42)
        a = seeds.generator("1").random(4)
        b = seeds.generator(1).random(4)
        assert not np.array_equal(a, b)

    def test_integer_helper(self):
        seeds = SeedHierarchy(42)
        value = seeds.integer("phase", high=100)
        assert 0 <= value < 100
        assert value == seeds.integer("phase", high=100)

    def test_rejects_non_int_seed(self):
        with pytest.raises(TypeError):
            SeedHierarchy("nope")


class TestStudyWindows:
    def test_defaults_match_table2(self):
        w = StudyWindows()
        assert w.heartbeats == (utc(2012, 10, 1), utc(2013, 4, 15))
        assert w.traffic == (utc(2013, 4, 1), utc(2013, 4, 15))
        assert w.wifi == (utc(2012, 11, 1), utc(2012, 11, 15))

    def test_heartbeats_cover_traffic(self):
        w = StudyWindows()
        assert w.heartbeats[0] <= w.traffic[0]
        assert w.heartbeats[1] >= w.traffic[1]

    def test_scaled_preserves_start(self):
        w = StudyWindows().scaled(0.1)
        assert w.heartbeats[0] == utc(2012, 10, 1)
        assert w.heartbeats[1] < utc(2013, 4, 15)

    def test_scaled_floor_one_day(self):
        w = StudyWindows().scaled(0.001)
        for window in (w.heartbeats, w.traffic, w.wifi):
            assert window[1] - window[0] >= DAY

    def test_scaled_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            StudyWindows().scaled(0)
        with pytest.raises(ValueError):
            StudyWindows().scaled(1.5)

    def test_span(self):
        start, end = StudyWindows().span
        assert start == utc(2012, 10, 1)
        assert end == utc(2013, 4, 15)


class TestStudyCalendar:
    def test_hour_of_day_utc(self):
        cal = StudyCalendar(0)
        assert cal.hour_of_day(utc(2013, 4, 1, 13, 30)) == 13

    def test_hour_of_day_offset(self):
        cal = StudyCalendar(5.5)  # India
        assert cal.hour_of_day(utc(2013, 4, 1, 13, 30)) == 19

    def test_negative_offset(self):
        cal = StudyCalendar(-5)  # US East
        assert cal.hour_of_day(utc(2013, 4, 1, 3, 0)) == 22

    def test_day_of_week(self):
        cal = StudyCalendar(0)
        # 2013-04-01 was a Monday.
        assert cal.day_of_week(utc(2013, 4, 1, 12)) == 0
        assert cal.day_of_week(utc(2013, 4, 6, 12)) == 5

    def test_is_weekend(self):
        cal = StudyCalendar(0)
        assert not cal.is_weekend(utc(2013, 4, 1, 12))
        assert cal.is_weekend(utc(2013, 4, 6, 12))
        assert cal.is_weekend(utc(2013, 4, 7, 12))

    def test_weekend_shifts_with_timezone(self):
        # Friday 23:00 UTC is already Saturday in Japan (+9).
        instant = utc(2013, 4, 5, 23)
        assert not StudyCalendar(0).is_weekend(instant)
        assert StudyCalendar(9).is_weekend(instant)

    def test_local_midnight_before(self):
        cal = StudyCalendar(5.5)
        midnight = cal.local_midnight_before(utc(2013, 4, 1, 13, 30))
        assert cal.hour_of_day(midnight) == 0
        assert cal.local_seconds(midnight) % DAY == 0

    def test_fraction_of_day(self):
        cal = StudyCalendar(0)
        assert cal.fraction_of_day(utc(2013, 4, 1, 12)) == pytest.approx(0.5)

    def test_rejects_implausible_offset(self):
        with pytest.raises(ValueError):
            StudyCalendar(25)

    def test_constants(self):
        assert MINUTE == 60
        assert HOUR == 3600
        assert DAY == 86400
