"""Tests for the domain universe and the traffic generator."""

import numpy as np
import pytest

from repro.core.intervals import IntervalSet
from repro.simulation.behavior import ActivitySchedule
from repro.simulation.device_models import generate_devices
from repro.simulation.domains import (
    CATEGORY_PROFILES,
    DomainSampler,
    KIND_CATEGORY_APPETITE,
    WHITELIST_SIZE,
    build_domain_universe,
    zipf_weights,
)
from repro.simulation.timebase import DAY, StudyCalendar, utc
from repro.simulation.traffic_model import TrafficGenerator

CAL = StudyCalendar(-5)
WINDOW = (utc(2013, 4, 1), utc(2013, 4, 4))


class TestDomainUniverse:
    def test_whitelist_size(self):
        universe = build_domain_universe()
        whitelisted = [d for d in universe if d.whitelisted]
        assert len(whitelisted) == WHITELIST_SIZE

    def test_ranks_unique_and_contiguous(self):
        universe = build_domain_universe()
        ranks = sorted(d.rank for d in universe)
        assert ranks == list(range(1, len(universe) + 1))

    def test_head_matches_paper(self):
        universe = build_domain_universe()
        names = [d.name for d in universe[:6]]
        assert names == ["google.com", "youtube.com", "facebook.com",
                         "amazon.com", "apple.com", "twitter.com"]

    def test_streaming_services_whitelisted(self):
        by_name = {d.name: d for d in build_domain_universe()}
        for name in ("netflix.com", "hulu.com", "pandora.com", "dropbox.com"):
            assert by_name[name].whitelisted

    def test_tail_not_whitelisted(self):
        universe = build_domain_universe(tail_domains=50)
        tail = [d for d in universe if d.rank > WHITELIST_SIZE]
        assert len(tail) == 50
        assert not any(d.whitelisted for d in tail)

    def test_all_categories_have_profiles(self):
        for domain in build_domain_universe():
            assert domain.category in CATEGORY_PROFILES
            assert domain.profile.bytes_per_connection > 0

    def test_streaming_byte_heavy_connection_light(self):
        streaming = CATEGORY_PROFILES["streaming"]
        web = CATEGORY_PROFILES["web"]
        assert streaming.bytes_per_connection > 50 * web.bytes_per_connection
        assert streaming.connections_per_session < web.connections_per_session

    def test_cloud_is_upstream_heavy(self):
        assert CATEGORY_PROFILES["cloud"].upstream_fraction > \
            3 * CATEGORY_PROFILES["streaming"].upstream_fraction

    def test_rejects_negative_tail(self):
        with pytest.raises(ValueError):
            build_domain_universe(tail_domains=-1)


class TestZipfWeights:
    def test_normalized_and_decreasing(self):
        weights = zipf_weights(range(1, 101))
        assert float(weights.sum()) == pytest.approx(1.0)
        assert np.all(np.diff(weights) < 0)

    def test_rejects_rank_zero(self):
        with pytest.raises(ValueError):
            zipf_weights([0, 1])


class TestDomainSampler:
    def make(self, seed=0, **kwargs):
        return DomainSampler(np.random.default_rng(seed),
                             build_domain_universe(), **kwargs)

    def test_sample_count(self):
        sampler = self.make()
        rng = np.random.default_rng(1)
        assert len(sampler.sample(rng, "laptop", 25)) == 25
        assert sampler.sample(rng, "laptop", 0) == []

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            self.make().sample(np.random.default_rng(0), "laptop", -1)

    def test_media_box_samples_streaming(self):
        sampler = self.make()
        rng = np.random.default_rng(2)
        domains = sampler.sample(rng, "media_box", 300)
        streaming = sum(1 for d in domains if d.category == "streaming")
        assert streaming / len(domains) > 0.8

    def test_desktop_samples_more_cloud_than_media_box(self):
        sampler = self.make()
        rng = np.random.default_rng(3)
        desktop = sampler.sample(rng, "desktop", 400)
        box = sampler.sample(rng, "media_box", 400)
        cloud_desktop = sum(1 for d in desktop if d.category == "cloud")
        cloud_box = sum(1 for d in box if d.category == "cloud")
        assert cloud_desktop > cloud_box

    def test_favorite_is_whitelisted_streaming(self):
        sampler = self.make(seed=4)
        by_name = {d.name: d for d in sampler.universe}
        favorite = by_name[sampler.favorite_domain]
        assert favorite.category == "streaming" and favorite.whitelisted

    def test_unknown_profile_falls_back(self):
        sampler = self.make()
        rng = np.random.default_rng(5)
        assert len(sampler.sample(rng, "not-a-kind", 10)) == 10

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError):
            DomainSampler(np.random.default_rng(0), [])

    def test_appetites_cover_all_profile_keys(self):
        categories = set(CATEGORY_PROFILES)
        for key, appetite in KIND_CATEGORY_APPETITE.items():
            assert set(appetite) == categories, key


class TestTrafficGenerator:
    def make_generator(self, seed=0, saturator=None, intensity=1.0,
                       online=None):
        rng = np.random.default_rng(seed)
        devices = generate_devices(
            np.random.default_rng(seed), "rT", WINDOW, CAL,
            ActivitySchedule.generate(np.random.default_rng(seed)),
            True, 7.0, 0.4, 0.2)
        sampler = DomainSampler(np.random.default_rng(seed),
                                build_domain_universe())
        return TrafficGenerator(
            rng=rng, devices=devices,
            schedule=ActivitySchedule.generate(np.random.default_rng(seed)),
            calendar=CAL, sampler=sampler,
            online=online if online is not None
            else IntervalSet([WINDOW]),
            uplink_saturator=saturator,
            upstream_capacity_bps=2e6,
            intensity=intensity,
        )

    def test_flows_within_window(self):
        traffic = self.make_generator().generate(*WINDOW)
        for flow in traffic.flows:
            assert WINDOW[0] <= flow.timestamp < WINDOW[1]

    def test_flows_sorted(self):
        traffic = self.make_generator().generate(*WINDOW)
        stamps = [f.timestamp for f in traffic.flows]
        assert stamps == sorted(stamps)

    def test_byte_series_shape(self):
        traffic = self.make_generator().generate(*WINDOW)
        minutes = int((WINDOW[1] - WINDOW[0]) / 60)
        assert traffic.minutes == minutes
        assert np.all(traffic.minute_up_bytes >= 0)
        assert np.all(traffic.minute_down_bytes >= 0)

    def test_intensity_scales_volume(self):
        quiet = self.make_generator(seed=1, intensity=0.01).generate(*WINDOW)
        loud = self.make_generator(seed=1, intensity=1.0).generate(*WINDOW)
        assert loud.total_bytes() > 5 * quiet.total_bytes()

    def test_offline_minutes_carry_no_traffic(self):
        online = IntervalSet([(WINDOW[0], WINDOW[0] + DAY)])
        traffic = self.make_generator(seed=2, online=online).generate(*WINDOW)
        first_day_minutes = int(DAY / 60)
        assert traffic.minute_up_bytes[first_day_minutes + 1:].sum() == 0
        assert traffic.minute_down_bytes[first_day_minutes + 1:].sum() == 0
        for flow in traffic.flows:
            assert flow.timestamp < WINDOW[0] + DAY

    def test_continuous_saturator_loads_uplink(self):
        plain = self.make_generator(seed=3).generate(*WINDOW)
        loaded = self.make_generator(seed=3, saturator="continuous") \
            .generate(*WINDOW)
        capacity_bytes_per_minute = 2e6 / 8 * 60
        saturated_minutes = np.mean(
            loaded.minute_up_bytes > capacity_bytes_per_minute)
        assert saturated_minutes > 0.9
        assert loaded.minute_up_bytes.sum() > plain.minute_up_bytes.sum()

    def test_diurnal_saturator_peaks_in_evening(self):
        traffic = self.make_generator(seed=4, saturator="diurnal") \
            .generate(*WINDOW)
        epochs = traffic.window[0] + np.arange(traffic.minutes) * 60
        hours = np.array([CAL.hour_of_day(e) for e in epochs])
        evening = traffic.minute_up_bytes[(hours >= 18) & (hours <= 23)].mean()
        night = traffic.minute_up_bytes[(hours >= 1) & (hours <= 5)].mean()
        assert evening > 3 * night

    def test_rejects_unknown_saturator(self):
        with pytest.raises(ValueError):
            self.make_generator(saturator="sometimes")

    def test_rejects_empty_window(self):
        with pytest.raises(ValueError):
            self.make_generator().generate(WINDOW[0], WINDOW[0])

    def test_deterministic(self):
        a = self.make_generator(seed=5).generate(*WINDOW)
        b = self.make_generator(seed=5).generate(*WINDOW)
        assert a.total_bytes() == b.total_bytes()
        assert len(a.flows) == len(b.flows)
