"""Unit tests for the Section 6 usage analysis, on synthetic data."""

import numpy as np
import pytest

from repro.core import usage
from repro.core.datasets import StudyData, ThroughputSeries
from repro.core.records import (
    OBFUSCATED_DOMAIN,
    CapacityMeasurement,
    DeviceCountSample,
    FlowRecord,
    RouterInfo,
)
from repro.simulation.timebase import DAY, HOUR, StudyWindows, utc

T0 = utc(2013, 4, 1)  # a Monday


def info(rid, tz=0.0):
    return RouterInfo(rid, "US", True, tz, 49800)


def flow(rid, mac, domain, bytes_down, bytes_up=0.0, ts=T0):
    return FlowRecord(rid, ts, mac, domain, 0xF0000001, 443, "https",
                      bytes_up, bytes_down, 10.0)


def base_data(routers, **kwargs):
    return StudyData(routers={r.router_id: r for r in routers},
                     windows=StudyWindows(), **kwargs)


class TestDiurnalProfile:
    def test_hourly_means_in_local_time(self):
        samples = []
        # Weekday: 3 devices at 20:00 local, 1 at 04:00 local, tz=-5.
        for day in range(4):  # Mon-Thu
            base = T0 + day * DAY
            samples.append(DeviceCountSample("r", base + 25 * HOUR, 0, 3, 0))
            samples.append(DeviceCountSample("r", base + 9 * HOUR, 0, 1, 0))
        data = base_data([info("r", tz=-5.0)], device_counts=samples)
        profile = usage.diurnal_device_profile(data, weekend=False)
        assert profile.means[20] == pytest.approx(3.0)
        assert profile.means[4] == pytest.approx(1.0)

    def test_weekend_split(self):
        saturday = T0 + 5 * DAY
        samples = [DeviceCountSample("r", saturday + 12 * HOUR, 0, 2, 0),
                   DeviceCountSample("r", T0 + 12 * HOUR, 0, 5, 0)]
        data = base_data([info("r", tz=0.0)], device_counts=samples)
        weekend = usage.diurnal_device_profile(data, weekend=True)
        weekday = usage.diurnal_device_profile(data, weekend=False)
        assert weekend.means[12] == pytest.approx(2.0)
        assert weekday.means[12] == pytest.approx(5.0)

    def test_amplitude_ratio(self):
        samples = []
        for hour, count in ((4, 1), (20, 5)):  # weekday swings by 4
            samples.append(DeviceCountSample("r", T0 + hour * HOUR, 0,
                                             count, 0))
        saturday = T0 + 5 * DAY
        for hour, count in ((4, 2), (20, 3)):  # weekend swings by 1
            samples.append(DeviceCountSample("r", saturday + hour * HOUR, 0,
                                             count, 0))
        data = base_data([info("r", tz=0.0)], device_counts=samples)
        assert usage.diurnal_amplitude_ratio(data) == pytest.approx(4.0)


class TestUtilization:
    def make_data(self, up_bps, down_bps, cap_down=10.0, cap_up=1.0):
        series = ThroughputSeries("r", T0, np.asarray(up_bps, dtype=float),
                                  np.asarray(down_bps, dtype=float))
        capacity = [CapacityMeasurement("r", T0 + i * HOUR, cap_down, cap_up)
                    for i in range(3)]
        return base_data([info("r")], throughput={"r": series},
                         capacity=capacity,
                         flows=[flow("r", "m", "google.com", 2e8)])

    def test_median_capacity(self):
        data = self.make_data([0], [0])
        assert usage.median_capacity(data, "r") == (10.0, 1.0)
        assert usage.median_capacity(data, "ghost") is None

    def test_joined_timeseries(self):
        data = self.make_data([5e5, 0], [5e6, 0])
        joined = usage.utilization_timeseries(data, "r")
        assert joined.capacity_down_mbps == 10.0
        assert joined.downlink_utilization()[0] == pytest.approx(0.5)
        assert joined.uplink_utilization()[0] == pytest.approx(0.5)

    def test_saturation_active_minutes_only(self):
        # 1 active minute at 50% plus 99 idle minutes: idle must not dilute.
        up = [5e5] + [0.0] * 99
        down = [5e6] + [0.0] * 99
        data = self.make_data(up, down)
        points = usage.link_saturation(data, router_ids=["r"])
        assert len(points) == 1
        assert points[0].downlink_utilization == pytest.approx(0.5)
        assert points[0].uplink_utilization == pytest.approx(0.5)

    def test_saturating_homes_detected(self):
        data = self.make_data([2e6] * 10, [1e6] * 10)  # uplink 2x capacity
        points = usage.link_saturation(data, router_ids=["r"])
        assert usage.saturating_uplink_homes(points) == ["r"]

    def test_percentile_parameter(self):
        up = [1e5] * 90 + [9e5] * 10
        data = self.make_data(up, up)
        p50 = usage.link_saturation(data, percentile=50, router_ids=["r"])
        p95 = usage.link_saturation(data, percentile=95, router_ids=["r"])
        assert p95[0].uplink_utilization > p50[0].uplink_utilization


class TestDeviceShare:
    def test_per_home_shares(self):
        flows = [flow("r", "mac1", "google.com", 600.0),
                 flow("r", "mac2", "google.com", 300.0),
                 flow("r", "mac3", "google.com", 100.0)]
        data = base_data([info("r")], flows=flows)
        shares = usage.device_share_per_home(data, router_ids=["r"])
        assert list(shares["r"]) == [0.6, 0.3, 0.1]

    def test_mean_ranked(self):
        flows = [flow("a", "m1", "google.com", 900.0),
                 flow("a", "m2", "google.com", 100.0),
                 flow("b", "m3", "google.com", 500.0),
                 flow("b", "m4", "google.com", 500.0)]
        data = base_data([info("a"), info("b")], flows=flows)
        result = usage.mean_device_share(data, ranks=2,
                                         router_ids=["a", "b"])
        assert result[0] == pytest.approx(0.7)
        assert result[1] == pytest.approx(0.3)


class TestDomainStatistics:
    def make_data(self):
        flows = []
        # Home a: netflix dominates volume via one fat flow; google dominates
        # connections via many small flows; some obfuscated traffic exists.
        flows.append(flow("a", "m1", "netflix.com", 8e8))
        for i in range(8):
            flows.append(flow("a", "m2", "google.com", 1e6,
                              ts=T0 + i))
        flows.append(flow("a", "m2", OBFUSCATED_DOMAIN, 4e8))
        return base_data([info("a")], flows=flows)

    def test_rankings_exclude_obfuscated(self):
        data = self.make_data()
        rankings = usage.domain_rankings(data, router_ids=["a"])
        names = [name for name, _ in rankings["a"]]
        assert OBFUSCATED_DOMAIN not in names
        assert names[0] == "netflix.com"

    def test_rankings_by_connections(self):
        data = self.make_data()
        rankings = usage.domain_rankings(data, router_ids=["a"],
                                         by="connections")
        assert rankings["a"][0][0] == "google.com"

    def test_rankings_rejects_bad_key(self):
        with pytest.raises(ValueError):
            usage.domain_rankings(self.make_data(), by="packets")

    def test_top_counts(self):
        data = self.make_data()
        counts = usage.domain_top_counts(data, router_ids=["a"])
        assert counts["netflix.com"] == (1, 1)
        assert counts["google.com"] == (1, 1)

    def test_share_summary(self):
        data = self.make_data()
        summary = usage.domain_share(data, router_ids=["a"])
        total_wl = 8e8 + 8e6
        assert summary.volume_share_by_rank[0] == \
            pytest.approx(8e8 / total_wl, rel=0.01)
        assert summary.connection_share_by_rank[0] == \
            pytest.approx(8 / 9, rel=0.01)
        # The volume-top domain (netflix) holds just one of nine connections.
        assert summary.connections_of_volume_ranked[0] == \
            pytest.approx(1 / 9, rel=0.01)
        assert summary.whitelist_byte_coverage == \
            pytest.approx(total_wl / (total_wl + 4e8), rel=0.01)

    def test_share_summary_empty(self):
        data = base_data([info("a")])
        summary = usage.domain_share(data, router_ids=["a"])
        assert np.isnan(summary.whitelist_byte_coverage)
        assert summary.volume_share_by_rank.sum() == 0


class TestDeviceDomainProfiles:
    def test_profile(self):
        flows = [flow("r", "roku", "netflix.com", 700.0),
                 flow("r", "roku", "hulu.com", 300.0),
                 flow("r", "imac", "dropbox.com", 100.0)]
        data = base_data([info("r")], flows=flows)
        profile = usage.device_domain_profile(data, "r", "roku")
        assert profile[0] == ("netflix.com", pytest.approx(0.7))
        assert profile[1] == ("hulu.com", pytest.approx(0.3))

    def test_profile_empty_device(self):
        data = base_data([info("r")])
        assert usage.device_domain_profile(data, "r", "ghost") == []

    def test_devices_in_home_ordered_by_bytes(self):
        flows = [flow("r", "big", "netflix.com", 1e9),
                 flow("r", "small", "google.com", 2e5),
                 flow("r", "tiny", "google.com", 10.0)]
        data = base_data([info("r")], flows=flows)
        devices = usage.devices_in_traffic_home(data, "r")
        assert devices == ["big", "small"]  # tiny is under 100 KB


class TestQualifyingFilter:
    def test_traffic_router_selection_uses_100mb_bar(self):
        flows = [flow("busy", "m", "google.com", 2e8),
                 flow("quiet", "m", "google.com", 1e6)]
        data = base_data([info("busy"), info("quiet")], flows=flows)
        assert data.qualifying_traffic_routers() == ["busy"]
        shares = usage.device_share_per_home(data)  # default = qualifying
        assert set(shares) == {"busy"}
