"""Tests for international Traffic consents and per-country usage."""

import pytest

from repro import StudyConfig, run_study
from repro.core import usage
from repro.core.datasets import StudyData
from repro.core.records import FlowRecord, RouterInfo
from repro.simulation.deployment import DeploymentConfig, build_deployment
from repro.simulation.timebase import StudyWindows, utc

T0 = utc(2013, 4, 1)


class TestInternationalConsents:
    def make(self, consents):
        return build_deployment(DeploymentConfig(
            seed=4, windows=StudyWindows().scaled(0.02),
            router_scale=0.3, traffic_consents=4,
            international_consents=consents))

    def test_default_is_us_only(self):
        deployment = self.make(0)
        codes = {deployment.household(rid).country.code
                 for rid in deployment.traffic_routers}
        assert codes == {"US"}

    def test_consents_spread_across_countries(self):
        deployment = self.make(6)
        codes = {deployment.household(rid).country.code
                 for rid in deployment.traffic_routers}
        assert "US" in codes
        assert len(codes - {"US"}) >= 4  # round-robin hits many countries

    def test_consent_count_honored(self):
        deployment = self.make(5)
        non_us = [rid for rid in deployment.traffic_routers
                  if deployment.household(rid).country.code != "US"]
        assert len(non_us) == 5

    def test_oversubscription_caps_at_cohort(self):
        # Requesting more consents than non-US homes exist must not loop.
        deployment = self.make(10_000)
        non_us = [rid for rid in deployment.traffic_routers
                  if deployment.household(rid).country.code != "US"]
        total_non_us = sum(1 for h in deployment.households
                           if h.country.code != "US")
        assert len(non_us) == total_non_us

    def test_pipeline_passes_the_knob(self):
        result = run_study(StudyConfig(
            seed=4, router_scale=0.3, duration_scale=0.02,
            traffic_consents=3, low_activity_consents=0,
            international_consents=3))
        codes = {result.data.routers[f.router_id].country_code
                 for f in result.data.flows}
        assert codes - {"US"}


class TestUsageByCountry:
    def make_data(self):
        routers = {
            "US1": RouterInfo("US1", "US", True, -5, 49800),
            "US2": RouterInfo("US2", "US", True, -5, 49800),
            "IN1": RouterInfo("IN1", "IN", False, 5.5, 3700),
        }

        def flow(rid, mac, domain, down):
            return FlowRecord(rid, T0, mac, domain, 0xF0000001, 443,
                              "https", 0.0, down, 10.0)

        flows = [
            flow("US1", "a", "netflix.com", 8e9),
            flow("US1", "b", "google.com", 2e9),
            flow("US2", "c", "youtube.com", 5e9),
            flow("IN1", "d", "youtube.com", 4e8),
            flow("IN1", "d", "(obfuscated)", 6e8),
        ]
        return StudyData(routers=routers, windows=StudyWindows(),
                         flows=flows)

    def test_rows_and_ordering(self):
        rows = usage.usage_by_country(self.make_data())
        assert [r.country_code for r in rows] == ["US", "IN"]
        us = rows[0]
        assert us.homes == 2
        assert us.total_bytes == pytest.approx(15e9)

    def test_statistics(self):
        rows = {r.country_code: r for r in
                usage.usage_by_country(self.make_data())}
        # US1: device shares 0.8/0.2; US2: 1.0 -> mean top share 0.9.
        assert rows["US"].top_device_share == pytest.approx(0.9)
        # IN: whitelist covers 0.4 of the 1 GB.
        assert rows["IN"].whitelist_byte_coverage == pytest.approx(0.4)
        assert rows["US"].whitelist_byte_coverage == pytest.approx(1.0)

    def test_min_bytes_filter(self):
        rows = usage.usage_by_country(self.make_data(), min_bytes=2e9)
        assert [r.country_code for r in rows] == ["US"]

    def test_daily_normalization(self):
        data = self.make_data()
        rows = {r.country_code: r for r in usage.usage_by_country(data)}
        window_days = (data.windows.traffic[1]
                       - data.windows.traffic[0]) / 86400
        assert rows["IN"].mean_daily_bytes_per_home == \
            pytest.approx(1e9 / window_days)
