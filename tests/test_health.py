"""Tests for the deployment-health report (repro.telemetry.health)."""

import numpy as np
import pytest

from repro.core.datasets import HeartbeatLog, StudyData
from repro.core.records import RouterInfo
from repro.simulation.timebase import DAY, MINUTE, StudyWindows, utc
from repro.telemetry import build_health_report, format_health_report

T0 = utc(2013, 3, 1)
SPAN = 10 * DAY
WINDOW = (T0, T0 + SPAN)


def _info(rid, country="US"):
    return RouterInfo(rid, country, True, -5.0, 49800)


def _steady(start, end, period=5 * MINUTE):
    return np.arange(start, end, period)


@pytest.fixture()
def synthetic():
    """Four routers: healthy, flapping, silent-tail dead, never-reported."""
    healthy = _steady(T0, T0 + SPAN)
    # A ≥10-minute gap every hour: two beats, then 55 quiet minutes.
    hours = np.arange(T0, T0 + SPAN, 60 * MINUTE)
    flappy = np.sort(np.concatenate([hours, hours + 5 * MINUTE]))
    # Reported steadily, then went silent half-way through the window.
    died = _steady(T0, T0 + SPAN / 2)
    data = StudyData(
        routers={"US000": _info("US000"), "US001": _info("US001"),
                 "BR000": _info("BR000", "BR"), "BR001": _info("BR001", "BR")},
        windows=StudyWindows(heartbeats=WINDOW),
        heartbeats={
            "US000": HeartbeatLog("US000", healthy),
            "US001": HeartbeatLog("US001", flappy),
            "BR000": HeartbeatLog("BR000", died),
        },
        heartbeat_delivery={"US000": (len(healthy) + 100, len(healthy)),
                            "US001": (len(flappy), len(flappy)),
                            "BR000": (len(died), len(died)),
                            "BR001": (0, 0)},
    )
    return data


class TestSyntheticClassification:
    def test_statuses(self, synthetic):
        report = build_health_report(synthetic)
        by_id = {r.router_id: r for r in report.routers}
        assert by_id["US000"].status == "ok"
        assert by_id["US001"].status == "flapping"
        assert by_id["BR000"].status == "dead"     # silent through the tail
        assert by_id["BR001"].status == "dead"     # never delivered a beat
        assert report.dead_routers == ["BR000", "BR001"]
        assert report.flapping_routers == ["US001"]

    def test_flapping_rate_exceeds_threshold(self, synthetic):
        report = build_health_report(synthetic)
        flappy = next(r for r in report.routers if r.router_id == "US001")
        assert flappy.downtimes_per_day >= 3.0
        assert flappy.last_seen == pytest.approx(
            synthetic.heartbeats["US001"].timestamps[-1])

    def test_loss_accounting(self, synthetic):
        report = build_health_report(synthetic)
        by_id = {r.router_id: r for r in report.routers}
        healthy = by_id["US000"]
        assert healthy.heartbeats_sent == healthy.heartbeats_delivered + 100
        assert healthy.loss_rate == pytest.approx(
            100 / healthy.heartbeats_sent)
        assert by_id["US001"].loss_rate == 0.0
        assert by_id["BR001"].loss_rate == 0.0  # sent nothing, lost nothing
        sent = sum(s for s, _ in synthetic.heartbeat_delivery.values())
        delivered = sum(d for _, d in synthetic.heartbeat_delivery.values())
        assert report.heartbeat_loss_rate == pytest.approx(
            1 - delivered / sent)

    def test_loss_rate_none_without_tally(self, synthetic):
        synthetic.heartbeat_delivery = {}
        report = build_health_report(synthetic)
        assert report.heartbeat_loss_rate is None
        assert all(r.loss_rate is None or r.heartbeats_delivered == 0
                   for r in report.routers)

    def test_country_coverage(self, synthetic):
        report = build_health_report(synthetic)
        coverage = {c.country_code: c for c in report.countries}
        assert coverage["US"].deployed == 2
        assert coverage["US"].reporting == 2
        assert coverage["US"].coverage == 1.0
        assert coverage["BR"].deployed == 2
        assert coverage["BR"].reporting == 1  # BR000 reported, then died
        assert coverage["BR"].coverage == 0.5

    def test_tunable_thresholds(self, synthetic):
        lax = build_health_report(synthetic, dead_tail_fraction=0.6,
                                  flapping_rate_per_day=1000.0)
        by_id = {r.router_id: r for r in lax.routers}
        assert by_id["BR000"].status == "ok"   # tail now reaches its beats
        assert by_id["US001"].status == "ok"   # threshold out of reach
        with pytest.raises(ValueError):
            build_health_report(synthetic, dead_tail_fraction=1.5)

    def test_to_dict_and_json(self, synthetic):
        payload = build_health_report(synthetic).to_dict()
        assert payload["window"] == list(WINDOW)
        assert payload["dead_routers"] == ["BR000", "BR001"]
        assert len(payload["routers"]) == 4

    def test_format_sections(self, synthetic):
        text = format_health_report(build_health_report(synthetic))
        assert "Cohort coverage" in text
        assert "2 dead, 1 flapping" in text
        assert "Dataset accounting" in text
        assert "US001" in text and "BR001" in text


class TestSeededCampaign:
    def test_report_matches_campaign(self, small_data):
        report = build_health_report(small_data)
        assert sum(c.deployed for c in report.countries) == \
            len(small_data.routers)
        assert len(report.routers) == len(small_data.routers)
        assert {r.status for r in report.routers} <= {"ok", "dead",
                                                      "flapping"}
        # The simulated path drops a few percent of heartbeats, never most.
        assert 0.0 < report.heartbeat_loss_rate < 0.5
        assert report.dataset_records["flows"] == len(small_data.flows)
        assert report.dataset_records["heartbeats"] == \
            sum(len(log) for log in small_data.heartbeats.values())

    def test_per_router_tally_covers_every_reporter(self, small_data):
        report = build_health_report(small_data)
        for health in report.routers:
            if health.heartbeats_delivered:
                assert health.heartbeats_sent is not None
                assert health.heartbeats_sent >= health.heartbeats_delivered

    def test_format_renders(self, small_data):
        text = format_health_report(build_health_report(small_data))
        assert "Cohort coverage" in text
        assert "Dataset accounting" in text


class TestFaultToleranceSection:
    SNAPSHOT = {"counters": {
        ("shard_retries_total", ()): 3,
        ("shard_timeouts_total", ()): 1,
        ("checkpoints_written_total", ()): 5,
        ("records_ingested_total", (("dataset", "dns"),)): 99,
    }}

    def test_counters_extracted(self, synthetic):
        report = build_health_report(synthetic,
                                     metrics_snapshot=self.SNAPSHOT)
        assert report.fault_tolerance == {"shard_retries_total": 3.0,
                                          "shard_timeouts_total": 1.0,
                                          "checkpoints_written_total": 5.0}
        assert "fault_tolerance" in report.to_dict()

    def test_section_rendered_only_when_present(self, synthetic):
        plain = format_health_report(build_health_report(synthetic))
        assert "Fault tolerance" not in plain
        text = format_health_report(build_health_report(
            synthetic, metrics_snapshot=self.SNAPSHOT))
        assert "Fault tolerance" in text
        assert "shard_retries_total" in text

    def test_labelled_counters_are_summed(self, synthetic):
        snapshot = {"counters": {
            ("shard_retries_total", (("shard", "1"),)): 2,
            ("shard_retries_total", (("shard", "4"),)): 1,
        }}
        report = build_health_report(synthetic, metrics_snapshot=snapshot)
        assert report.fault_tolerance["shard_retries_total"] == 3.0
