"""End-to-end integration tests over one complete simulated campaign.

These tests validate that the *analysis* recovers what the *simulation*
planted — the closest thing a reproduction has to ground truth — plus
cross-data-set consistency invariants the real deployment also satisfied.
"""

import numpy as np
import pytest

from repro import StudyConfig, run_study
from repro.core import availability as av
from repro.core import infrastructure as infra
from repro.core import usage
from repro.core.fingerprint import (
    DeviceFingerprinter,
    category_vector,
    fingerprint_devices,
)
from repro.core.records import Medium, OBFUSCATED_DOMAIN, Spectrum
from repro.firmware.anonymize import AnonymizationPolicy


class TestCampaignConsistency:
    def test_every_record_from_registered_router(self, small_data):
        known = set(small_data.routers)
        assert set(small_data.heartbeats) <= known
        for record in (small_data.uptime_reports + small_data.capacity
                       + small_data.device_counts + small_data.wifi_scans
                       + small_data.flows + small_data.dns
                       + small_data.roster):
            assert record.router_id in known

    def test_records_inside_windows(self, small_data):
        w = small_data.windows
        for log in small_data.heartbeats.values():
            if len(log):
                assert log.timestamps[0] >= w.heartbeats[0] - 120
                assert log.timestamps[-1] <= w.heartbeats[1] + 120
        for r in small_data.uptime_reports:
            assert w.uptime[0] <= r.timestamp <= w.uptime[1]
        for m in small_data.capacity:
            assert w.capacity[0] <= m.timestamp <= w.capacity[1]
        for s in small_data.wifi_scans:
            assert w.wifi[0] <= s.timestamp <= w.wifi[1]
        for f in small_data.flows:
            assert w.traffic[0] <= f.timestamp <= w.traffic[1]

    def test_heartbeats_only_when_online(self, small_study):
        data = small_study.data
        for home in small_study.deployment.households[:10]:
            log = data.heartbeats[home.router_id]
            if not len(log):
                continue
            online = home.online_intervals(*data.windows.heartbeats)
            inside = online.contains_many(log.timestamps)
            # Jitter can push a heartbeat just outside an interval edge.
            assert inside.mean() > 0.99

    def test_uptime_reports_match_power_ground_truth(self, small_study):
        data = small_study.data
        deployment = small_study.deployment
        for report in data.uptime_reports[:200]:
            home = deployment.household(report.router_id)
            assert home.power.is_on(report.timestamp - 1)

    def test_capacity_tracks_link_ground_truth(self, small_study):
        data = small_study.data
        for home in small_study.deployment.households:
            estimates = [m.downstream_mbps for m in data.capacity
                         if m.router_id == home.router_id]
            if len(estimates) < 3:
                continue
            truth = home.link.config.downstream_mbps
            assert abs(np.median(estimates) - truth) / truth < 0.1

    def test_traffic_only_from_consenting_homes(self, small_study):
        data = small_study.data
        consented = small_study.deployment.traffic_routers
        assert {f.router_id for f in data.flows} <= consented
        assert set(data.throughput) <= consented

    def test_no_real_macs_leak(self, small_study):
        data = small_study.data
        real = {str(d.mac) for h in small_study.deployment.households
                for d in h.devices}
        collected = {f.device_mac for f in data.flows} \
            | {e.device_mac for e in data.roster}
        assert not (collected & real)

    def test_only_whitelisted_domains_leak(self, small_study):
        whitelist = {d.name for d in small_study.deployment.universe
                     if d.whitelisted}
        for flow in small_study.data.flows:
            assert flow.domain == OBFUSCATED_DOMAIN or flow.domain in whitelist

    def test_deterministic_replay(self, small_study):
        replay = run_study(small_study.config)
        a, b = small_study.data, replay.data
        assert set(a.heartbeats) == set(b.heartbeats)
        for rid in list(a.heartbeats)[:5]:
            assert np.array_equal(a.heartbeats[rid].timestamps,
                                  b.heartbeats[rid].timestamps)
        assert len(a.flows) == len(b.flows)
        assert a.device_counts == b.device_counts


class TestAnalysisRecoversGroundTruth:
    def test_developing_less_available(self, small_data):
        dev = av.downtime_rate_cdf(small_data, developed=True)
        dvg = av.downtime_rate_cdf(small_data, developed=False)
        assert dvg.median > dev.median

    def test_appliance_detection_matches_power_mode(self, small_study):
        detected = set(av.appliance_mode_routers(small_study.data))
        truth = {h.router_id for h in small_study.deployment.households
                 if h.power.mode == "appliance"}
        if truth:
            # Detection from heartbeats alone: most appliance homes found,
            # few always-on homes mislabeled.
            assert len(detected & truth) >= len(truth) * 0.5
        always_on = {h.router_id for h in small_study.deployment.households
                     if h.power.mode == "always-on"
                     and h.country.developed}
        assert len(detected & always_on) <= max(1, len(always_on) * 0.1)

    def test_roster_sizes_match_population(self, small_study):
        sizes = infra.devices_per_home(small_study.data)
        for rid, count in list(sizes.items())[:20]:
            home = small_study.deployment.household(rid)
            assert count <= len(home.devices)
            assert count >= 1

    def test_wireless_exceeds_wired(self, small_data):
        for developed in (True, False):
            result = infra.mean_connected_by_medium(small_data, developed)
            if result["wired"].n:
                assert result["wireless"].mean > result["wired"].mean

    def test_2_4ghz_busier_than_5ghz(self, small_data):
        result = infra.mean_connected_by_spectrum(small_data, developed=True)
        assert result["2.4GHz"].mean > result["5GHz"].mean

    def test_neighbor_aps_split(self, small_data):
        dev = infra.neighbor_ap_cdf(small_data, Spectrum.GHZ_2_4, True)
        dvg = infra.neighbor_ap_cdf(small_data, Spectrum.GHZ_2_4, False)
        assert dev.median > dvg.median

    def test_saturators_recovered(self, small_study):
        data = small_study.data
        points = usage.link_saturation(data)
        saturating = set(usage.saturating_uplink_homes(points))
        planted = {h.router_id for h in small_study.deployment.households
                   if h.config.uplink_saturator == "continuous"}
        assert planted <= saturating

    def test_low_activity_homes_filtered(self, small_study):
        data = small_study.data
        quiet = {h.router_id for h in small_study.deployment.households
                 if h.config.traffic_intensity < 1.0}
        qualifying = set(data.qualifying_traffic_routers())
        assert not (quiet & qualifying)

    def test_dominant_device_share(self, small_data):
        shares = usage.mean_device_share(small_data, ranks=2)
        assert shares[0] > 0.4
        assert shares[0] > shares[1]

    def test_domain_volume_concentration(self, small_data):
        summary = usage.domain_share(small_data)
        assert summary.volume_share_by_rank[0] > 0.2
        assert 0.3 < summary.whitelist_byte_coverage < 0.95
        # Volume-top domains hold far fewer connections than bytes.
        assert summary.connections_of_volume_ranked[0] < \
            summary.volume_share_by_rank[0]

    def test_streaming_head_dominates_fig18(self, small_data):
        counts = usage.domain_top_counts(small_data)
        top_names = list(counts)[:10]
        head = {"youtube.com", "netflix.com", "hulu.com", "pandora.com",
                "google.com", "facebook.com", "twitch.tv", "spotify.com",
                "vimeo.com", "amazon.com", "apple.com", "dropbox.com"}
        # The small fixture has only a handful of traffic homes, so this is
        # a loose shape check; the Fig. 18 bench validates at full scale.
        assert len(set(top_names) & head) >= 2

    def test_fingerprinting_from_ground_truth_labels(self, small_study):
        data = small_study.data
        deployment = small_study.deployment
        whitelist = frozenset(d.name for d in deployment.universe
                              if d.whitelisted)
        policy = AnonymizationPolicy(whitelist=whitelist)

        # Build labeled examples from simulator ground truth (the analog of
        # the paper's six-home user survey).
        flows_by_key = {}
        for flow in data.flows:
            flows_by_key.setdefault((flow.router_id, flow.device_mac),
                                    []).append(flow)
        labeled = []
        for home in deployment.households:
            if not home.config.traffic_consent:
                continue
            for device in home.devices:
                key = (home.router_id, policy.anonymize_mac(device.mac))
                flows = flows_by_key.get(key, [])
                if sum(f.bytes_total for f in flows) < 1e6:
                    continue
                labeled.append((category_vector(flows),
                                device.traits.traffic_profile))
        if len(labeled) < 8:
            pytest.skip("too little traffic in the small study")
        clf = DeviceFingerprinter(min_similarity=0.3)
        clf.fit(labeled)
        # Self-classification should beat chance decisively.
        correct = total = 0
        for vector, label in labeled:
            match = clf.classify(vector)
            if match is not None:
                total += 1
                correct += match.label == label
        assert total > 0
        assert correct / total > 0.5
