"""Tests for the campaign telemetry subsystem (repro.telemetry)."""

import json
import math

import pytest

from repro import StudyConfig, perf, run_study
from repro.telemetry import (
    ManifestError,
    build_manifest,
    events,
    load_manifest,
    metrics,
    parse_prometheus,
    render_json,
    render_prometheus,
    validate_manifest,
    write_manifest,
)
from repro.telemetry.events import EventLog, read_events
from repro.telemetry.manifest import MANIFEST_SCHEMA, RunManifest
from repro.telemetry.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_sinks():
    """Every test starts and ends with telemetry deactivated."""
    metrics.disable()
    events.disable()
    yield
    metrics.disable()
    events.disable()
    perf.disable()


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("records_ingested_total", 5, dataset="flows")
        reg.inc("records_ingested_total", 3, dataset="flows")
        reg.inc("records_ingested_total", 2, dataset="dns")
        snap = reg.snapshot()
        key = ("records_ingested_total", (("dataset", "flows"),))
        assert snap["counters"][key] == 8
        assert snap["counters"][
            ("records_ingested_total", (("dataset", "dns"),))] == 2

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        reg.inc("x", 1, b="2", a="1")
        reg.inc("x", 1, a="1", b="2")
        assert reg.counters[("x", (("a", "1"), ("b", "2")))] == 2

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("campaign_routers", 10)
        reg.set_gauge("campaign_routers", 126)
        assert reg.gauges[("campaign_routers", ())] == 126

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        bounds = (1.0, 2.0, 4.0)
        for value in (0.5, 1.5, 3.0, 100.0):
            reg.observe("shard_seconds", value, buckets=bounds)
        hist = reg.histograms[("shard_seconds", ())]
        assert hist["bounds"] == bounds
        assert hist["counts"] == [1, 1, 1, 1]  # last slot is +Inf
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(105.0)

    def test_histogram_boundary_lands_in_le_bucket(self):
        reg = MetricsRegistry()
        reg.observe("h", 2.0, buckets=(1.0, 2.0, 4.0))
        assert reg.histograms[("h", ())]["counts"] == [0, 1, 0, 0]

    def test_histogram_conflicting_bounds_rejected(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0, buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="conflicting"):
            reg.observe("h", 1.0, buckets=(1.0, 3.0))
        with pytest.raises(ValueError, match="increase"):
            reg.observe("h2", 1.0, buckets=(2.0, 1.0))

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.observe("h", 0.5, buckets=(1.0,))
        snap = reg.snapshot()
        reg.inc("x")
        reg.observe("h", 0.5, buckets=(1.0,))
        assert snap["counters"][("x", ())] == 1
        assert snap["histograms"][("h", ())]["count"] == 1

    def test_merge_simulated_worker_drains(self):
        """The parent folds per-shard drains exactly like the engine does."""
        parent = MetricsRegistry()
        parent.inc("shards_completed_total")
        for shard in range(3):
            worker = MetricsRegistry()  # fresh registry per worker drain
            worker.inc("records_ingested_total", 10 + shard, dataset="flows")
            worker.inc("shards_completed_total")
            worker.set_gauge("worker_gauge", shard)
            worker.observe("shard_seconds", 0.2 * (shard + 1),
                           buckets=(0.25, 0.5, 1.0))
            snap = worker.snapshot()
            worker.clear()
            assert worker.counters == {}  # drain leaves nothing behind
            parent.merge(snap)
        assert parent.counters[
            ("records_ingested_total", (("dataset", "flows"),))] == 33
        assert parent.counters[("shards_completed_total", ())] == 4
        assert parent.gauges[("worker_gauge", ())] == 2  # last drain wins
        hist = parent.histograms[("shard_seconds", ())]
        assert hist["count"] == 3
        assert hist["counts"] == [1, 1, 1, 0]

    def test_merge_bound_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("h", 1.0, buckets=(1.0, 2.0))
        b.observe("h", 1.0, buckets=(1.0, 3.0))
        with pytest.raises(ValueError, match="bucket bounds differ"):
            a.merge(b.snapshot())

    def test_module_helpers_noop_when_disabled(self):
        assert not metrics.is_enabled()
        metrics.inc("x")
        metrics.set_gauge("g", 1)
        metrics.observe("h", 1.0)
        assert metrics.snapshot() == {"counters": {}, "gauges": {},
                                      "histograms": {}}
        assert metrics.drain()["counters"] == {}

    def test_module_helpers_record_when_enabled(self):
        reg = metrics.enable()
        assert metrics.enable() is reg  # idempotent
        metrics.inc("x", 2)
        snap = metrics.drain()
        assert snap["counters"][("x", ())] == 2
        assert reg.counters == {}  # drain cleared the live registry
        assert metrics.disable() is reg
        assert metrics.active() is None

    def test_merge_perf_promotes_stage_timers(self):
        metrics.enable()
        metrics.merge_perf({"seconds": {"heartbeat": 1.5},
                            "calls": {"heartbeat": 3},
                            "counters": {"records_ingested": 42}})
        snap = metrics.snapshot()
        assert snap["counters"][
            ("stage_seconds_total", (("stage", "heartbeat"),))] == 1.5
        assert snap["counters"][
            ("stage_calls_total", (("stage", "heartbeat"),))] == 3
        assert snap["counters"][("records_ingested_total", ())] == 42


class TestExporters:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.inc("records_ingested_total", 7, dataset="flows")
        reg.inc("records_ingested_total", 3, dataset="dns")
        reg.set_gauge("campaign_routers", 126)
        reg.observe("shard_seconds", 0.3, buckets=(0.25, 0.5, 1.0))
        reg.observe("shard_seconds", 2.0, buckets=(0.25, 0.5, 1.0))
        return reg.snapshot()

    def test_prometheus_golden(self):
        assert render_prometheus(self._snapshot()) == (
            '# HELP records_ingested_total '
            'Records accepted by the collection server.\n'
            '# TYPE records_ingested_total counter\n'
            'records_ingested_total{dataset="dns"} 3\n'
            'records_ingested_total{dataset="flows"} 7\n'
            '# HELP campaign_routers Homes in the finished campaign.\n'
            '# TYPE campaign_routers gauge\n'
            'campaign_routers 126\n'
            '# HELP shard_seconds '
            "Wall-time of one shard's simulate+collect.\n"
            '# TYPE shard_seconds histogram\n'
            'shard_seconds_bucket{le="0.25"} 0\n'
            'shard_seconds_bucket{le="0.5"} 1\n'
            'shard_seconds_bucket{le="1"} 1\n'
            'shard_seconds_bucket{le="+Inf"} 2\n'
            'shard_seconds_sum 2.3\n'
            'shard_seconds_count 2\n'
        )

    def test_prometheus_round_trip(self):
        samples = parse_prometheus(render_prometheus(self._snapshot()))
        assert samples[("records_ingested_total",
                        (("dataset", "flows"),))] == 7
        assert samples[("campaign_routers", ())] == 126
        assert samples[("shard_seconds_bucket", (("le", "+Inf"),))] == 2
        assert samples[("shard_seconds_count", ())] == 2
        assert samples[("shard_seconds_sum", ())] == pytest.approx(2.3)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_prometheus("this is { not a metric\n")

    def test_parse_handles_inf_and_comments(self):
        samples = parse_prometheus("# just a comment\nh_bucket{le=\"+Inf\"} 4")
        assert samples[("h_bucket", (("le", "+Inf"),))] == 4
        assert math.isinf(parse_prometheus("x +Inf")[("x", ())])

    def test_json_golden(self):
        payload = json.loads(render_json(self._snapshot()))
        assert payload["counters"] == [
            {"name": "records_ingested_total", "labels": {"dataset": "dns"},
             "value": 3},
            {"name": "records_ingested_total", "labels": {"dataset": "flows"},
             "value": 7},
        ]
        assert payload["gauges"] == [
            {"name": "campaign_routers", "labels": {}, "value": 126}]
        (hist,) = payload["histograms"]
        assert hist["name"] == "shard_seconds"
        assert hist["buckets"] == [[0.25, 0], [0.5, 1], [1.0, 0], ["+Inf", 1]]
        assert hist["count"] == 2


class TestEventLog:
    def test_emit_and_read_back(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path)
        log.emit("shard_started", shard=0)
        log.emit("shard_finished", shard=0, routers=7)
        log.close()
        recorded = read_events(path)
        assert [e["event"] for e in recorded] == ["shard_started",
                                                  "shard_finished"]
        assert recorded[1]["routers"] == 7
        assert all("ts" in e for e in recorded)
        assert log.emitted == 2

    def test_emit_after_close_is_dropped(self, tmp_path):
        log = EventLog(tmp_path / "e.jsonl")
        log.close()
        log.emit("campaign_started")  # must not raise
        assert log.emitted == 0

    def test_module_emit_noop_when_disabled(self, tmp_path):
        assert not events.is_enabled()
        events.emit("campaign_started")  # silently dropped
        log = events.enable(tmp_path / "e.jsonl")
        events.emit("campaign_started", routers=5)
        assert events.disable() is log
        assert read_events(tmp_path / "e.jsonl")[0]["routers"] == 5

    def test_rotation_caps_segments(self, tmp_path):
        path = tmp_path / "events.jsonl"
        # Each event is ~100 bytes, so max_bytes=300 rotates every ~3.
        log = EventLog(path, max_bytes=300, max_segments=2)
        for i in range(20):
            log.emit("shard_finished", shard=i, pad="x" * 60)
        log.close()
        assert log.rotations > 0
        existing = [p.name for p in sorted(tmp_path.iterdir())]
        assert "events.jsonl" in existing
        assert "events.1.jsonl" in existing
        assert "events.3.jsonl" not in existing  # capped at max_segments
        # The live segment holds the newest events.
        live = read_events(path)
        assert all(e["event"] == "shard_finished" for e in live)

    def test_rotation_preserves_chronology(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path, max_bytes=200, max_segments=3)
        for i in range(12):
            log.emit("tick", n=i)
        log.close()
        merged = read_events(path, include_rotated=True)
        ns = [e["n"] for e in merged]
        assert ns == sorted(ns)
        assert ns[-1] == 11  # newest event is last

    def test_rotation_drops_oldest_beyond_cap(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path, max_bytes=120, max_segments=1)
        for i in range(30):
            log.emit("tick", n=i)
        log.close()
        assert sorted(p.name for p in tmp_path.iterdir()) == \
            ["events.1.jsonl", "events.jsonl"]
        merged = read_events(path, include_rotated=True)
        assert [e["n"] for e in merged][-1] == 29

    def test_context_manager_closes(self, tmp_path):
        with EventLog(tmp_path / "e.jsonl") as log:
            log.emit("campaign_started")
        log.emit("late")  # dropped: the context exit closed the file
        assert log.emitted == 1

    def test_bad_limits_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            EventLog(tmp_path / "e.jsonl", max_bytes=0)
        with pytest.raises(ValueError):
            EventLog(tmp_path / "e.jsonl", max_segments=0)


class TestManifest:
    def test_round_trip(self, tmp_path):
        manifest = build_manifest(
            config=StudyConfig(**{"seed": 7, "router_scale": 0.1,
                                  "duration_scale": 0.02}),
            seed=7, digest="ab" * 32, routers=12, wall_seconds=1.25,
            workers=2, artifacts=["metrics.prom"])
        path = write_manifest(tmp_path / "manifest.json", manifest)
        loaded = load_manifest(path)
        assert loaded == manifest
        assert loaded.schema == MANIFEST_SCHEMA
        assert loaded.config["seed"] == 7
        assert loaded.versions["python"]
        assert loaded.created_utc.endswith("Z")

    def test_validate_reports_every_problem(self):
        with pytest.raises(ManifestError) as exc:
            validate_manifest({"schema": 1, "digest": 12})
        problems = exc.value.problems
        assert any("missing key 'seed'" in p for p in problems)
        assert any("'digest' must be str" in p for p in problems)

    def test_validate_rejects_bad_values(self):
        payload = build_manifest(config={"seed": 1}, seed=1,
                                 digest="ab" * 32, routers=3,
                                 wall_seconds=0.1).to_dict()
        validate_manifest(payload)  # baseline: valid
        for corrupt, match in (
                (dict(payload, digest="short"), "64-hex"),
                (dict(payload, routers=-1), ">= 0"),
                (dict(payload, schema=MANIFEST_SCHEMA + 1), "newer")):
            with pytest.raises(ManifestError, match=match):
                validate_manifest(corrupt)

    def test_from_dict_ignores_unknown_keys(self):
        manifest = build_manifest(config={}, seed=1, digest="ab" * 32,
                                  routers=1, wall_seconds=0.0)
        payload = dict(manifest.to_dict(), future_field="ignored")
        assert RunManifest.from_dict(payload) == manifest


class TestTelemetrySession:
    CONFIG = StudyConfig(seed=11, router_scale=0.1, duration_scale=0.02,
                         traffic_consents=2, low_activity_consents=0)

    def test_run_study_writes_every_artifact(self, tmp_path):
        out = tmp_path / "telemetry"
        result = run_study(self.CONFIG, telemetry_dir=out)

        # Sinks are deactivated after the run (perf stays with --profile).
        assert not metrics.is_enabled()
        assert not events.is_enabled()

        for name in ("metrics.prom", "metrics.json", "events.jsonl",
                     "manifest.json", "health.json", "health.txt"):
            assert (out / name).exists(), name

        samples = parse_prometheus((out / "metrics.prom").read_text())
        n_routers = len(result.data.routers)
        assert samples[("campaign_routers", ())] == n_routers
        assert samples[("routers_simulated_total", ())] == n_routers
        assert samples[("routers_ingested_total", ())] == n_routers
        assert samples[("heartbeats_sent_total", ())] >= \
            samples[("heartbeats_delivered_total", ())] > 0
        assert samples[("shards_completed_total", ())] >= 1
        assert ("stage_seconds_total",
                (("stage", "collect.heartbeat"),)) in samples

        manifest = load_manifest(out / "manifest.json")
        from repro import study_digest
        assert manifest.digest == study_digest(result.data)
        assert manifest.routers == n_routers
        assert manifest.seed == 11
        assert "metrics.prom" in manifest.artifacts

        recorded = [e["event"] for e in read_events(out / "events.jsonl")]
        assert recorded[0] == "campaign_started"
        assert recorded[-1] == "campaign_finished"
        assert "shard_started" in recorded and "shard_finished" in recorded
        assert "router_ingested" in recorded

        health = json.loads((out / "health.json").read_text())
        assert sum(c["deployed"] for c in health["countries"]) == n_routers

    def test_parallel_run_aggregates_worker_metrics(self, tmp_path):
        out = tmp_path / "telemetry-mp"
        result = run_study(self.CONFIG, telemetry_dir=out, workers=2,
                           shard_size=4)
        samples = parse_prometheus((out / "metrics.prom").read_text())
        n_routers = len(result.data.routers)
        # Worker-side counters must survive the drain/merge round trip.
        assert samples[("routers_simulated_total", ())] == n_routers
        assert samples[("shards_completed_total", ())] == \
            samples[("shard_seconds_count", ())] >= 2
