"""Tests for the statistical-inference helpers."""

import numpy as np
import pytest

from repro.core.inference import (
    GroupComparison,
    bootstrap_median_ci,
    cliffs_delta,
    compare_samples,
    development_divide,
)


class TestCliffsDelta:
    def test_fully_separated(self):
        assert cliffs_delta([10, 11, 12], [1, 2, 3]) == 1.0
        assert cliffs_delta([1, 2, 3], [10, 11, 12]) == -1.0

    def test_identical_distributions(self):
        assert cliffs_delta([1, 2, 3], [1, 2, 3]) == pytest.approx(0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cliffs_delta([], [1.0])


class TestCompareSamples:
    def test_detects_clear_difference(self):
        rng = np.random.default_rng(0)
        a = rng.normal(10, 1, size=60)
        b = rng.normal(0, 1, size=60)
        result = compare_samples("demo", a, b)
        assert result.significant
        assert result.ks_pvalue < 1e-6
        assert result.mw_pvalue < 1e-6
        assert result.cliffs_delta > 0.95
        assert result.effect_label == "large"
        assert result.median_a > result.median_b

    def test_same_distribution_not_significant(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, size=60)
        b = rng.normal(0, 1, size=60)
        result = compare_samples("demo", a, b)
        assert not result.significant
        assert result.effect_label in ("negligible", "small")

    def test_small_samples_rejected(self):
        with pytest.raises(ValueError):
            compare_samples("x", [1.0], [1.0, 2.0])

    def test_effect_labels(self):
        base = dict(quantity="q", n_a=10, n_b=10, median_a=0, median_b=0,
                    ks_statistic=0, ks_pvalue=1, mw_pvalue=1)
        assert GroupComparison(**base, cliffs_delta=0.05).effect_label \
            == "negligible"
        assert GroupComparison(**base, cliffs_delta=0.2).effect_label \
            == "small"
        assert GroupComparison(**base, cliffs_delta=-0.4).effect_label \
            == "medium"
        assert GroupComparison(**base, cliffs_delta=0.8).effect_label \
            == "large"


class TestBootstrapCI:
    def test_interval_contains_true_median(self):
        rng = np.random.default_rng(2)
        samples = rng.normal(5.0, 1.0, size=200)
        low, high = bootstrap_median_ci(samples)
        assert low < 5.0 < high
        assert high - low < 1.0

    def test_deterministic_given_seed(self):
        samples = list(range(50))
        assert bootstrap_median_ci(samples, seed=7) == \
            bootstrap_median_ci(samples, seed=7)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_median_ci([])
        with pytest.raises(ValueError):
            bootstrap_median_ci([1.0], confidence=1.5)


class TestDevelopmentDivide:
    def test_on_campaign(self, small_data):
        comparisons = development_divide(small_data)
        assert comparisons, "campaign too small for any comparison"
        by_quantity = {c.quantity: c for c in comparisons}
        downtime = next((c for q, c in by_quantity.items()
                         if q.startswith("downtimes/day")), None)
        assert downtime is not None
        # The developing group (A) is stochastically larger.
        assert downtime.cliffs_delta > 0
        aps = next((c for q, c in by_quantity.items()
                    if "neighbor APs" in q), None)
        if aps is not None:
            assert aps.cliffs_delta > 0.3  # developed hears far more APs
