"""Tests for repro.bench — the shared bench-artifact regression gate."""

import json

import pytest

from repro import bench
from repro.cli import main


class TestFlatten:
    def test_nested_dicts_and_lists(self):
        flat = bench.flatten_metrics(
            {"points": [{"seconds": 1.5, "homes": 252}],
             "cpu_cores": 8,
             "note": "text is skipped",
             "ok": True})
        assert flat == {"points[0].seconds": 1.5,
                        "points[0].homes": 252.0,
                        "cpu_cores": 8.0}

    def test_direction_inference(self):
        assert bench._direction("points[0].seconds") == "lower"
        assert bench._direction("peak_mb") == "lower"
        assert bench._direction("homes_per_sec") == "higher"
        assert bench._direction("speedup_vs_baseline_252") == "higher"
        assert bench._direction("points[0].homes") is None


class TestDiff:
    OLD = {"points": [{"seconds": 1.0, "homes_per_sec": 100.0}],
           "homes": 252}
    NEW_OK = {"points": [{"seconds": 1.1, "homes_per_sec": 95.0}],
              "homes": 252}
    NEW_BAD = {"points": [{"seconds": 1.5, "homes_per_sec": 60.0}],
               "homes": 504}

    def test_within_threshold_passes(self):
        assert bench.regressions(self.OLD, self.NEW_OK) == []

    def test_slower_seconds_regress(self):
        names = {r.metric for r in bench.regressions(self.OLD, self.NEW_BAD)}
        assert "points[0].seconds" in names
        assert "points[0].homes_per_sec" in names
        assert "homes" not in names  # informational, never regresses

    def test_keys_restrict_comparison(self):
        rows = bench.diff_payloads(self.OLD, self.NEW_BAD,
                                   keys=("points[0].seconds",))
        assert [r.metric for r in rows] == ["points[0].seconds"]
        assert rows[0].delta == pytest.approx(0.5)
        assert rows[0].regressed

    def test_missing_metric_is_informational(self):
        (row,) = bench.diff_payloads({"a_seconds": 1.0}, {},
                                     keys=("a_seconds",))
        assert row.delta is None
        assert not row.regressed
        assert row.describe() == "n/a"

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            bench.diff_payloads({}, {}, threshold=0)

    def test_format_diff_marks_regressions(self):
        rows = bench.diff_payloads(self.OLD, self.NEW_BAD)
        text = bench.format_diff(rows)
        assert "REGRESSED" in text
        assert "points[0].seconds" in text


class TestArtifacts:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload))
        return path

    def test_pair_two_files(self, tmp_path):
        old = self._write(tmp_path / "BENCH_a.json", {"x_seconds": 1})
        new = self._write(tmp_path / "BENCH_b.json", {"x_seconds": 1})
        assert bench.pair_artifacts(old, new) == [("BENCH_b.json", old, new)]

    def test_pair_directories_by_name(self, tmp_path):
        old_dir, new_dir = tmp_path / "old", tmp_path / "new"
        old_dir.mkdir(), new_dir.mkdir()
        self._write(old_dir / "BENCH_a.json", {})
        self._write(old_dir / "BENCH_b.json", {})
        self._write(new_dir / "BENCH_b.json", {})
        self._write(new_dir / "BENCH_c.json", {})  # no baseline: skipped
        pairs = bench.pair_artifacts(old_dir, new_dir)
        assert [name for name, _, _ in pairs] == ["BENCH_b.json"]

    def test_pair_rejects_mixed_kinds(self, tmp_path):
        old = self._write(tmp_path / "BENCH_a.json", {})
        with pytest.raises(ValueError, match="not a mix"):
            bench.pair_artifacts(old, tmp_path)

    def test_pair_rejects_empty_overlap(self, tmp_path):
        old_dir, new_dir = tmp_path / "old", tmp_path / "new"
        old_dir.mkdir(), new_dir.mkdir()
        with pytest.raises(ValueError, match="no BENCH_"):
            bench.pair_artifacts(old_dir, new_dir)

    def test_load_bench_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no bench artifact"):
            bench.load_bench(tmp_path / "missing.json")
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="unreadable"):
            bench.load_bench(bad)


class TestBenchDiffCli:
    def _artifact(self, path, seconds):
        path.write_text(json.dumps(
            {"points": [{"seconds": seconds, "homes": 252}]}))
        return path

    def test_clean_diff_exits_zero(self, tmp_path, capsys):
        old = self._artifact(tmp_path / "BENCH_x.json", 1.0)
        new = self._artifact(tmp_path / "BENCH_y.json", 1.05)
        assert main(["bench", "diff", str(old), str(new)]) == 0
        out = capsys.readouterr().out
        assert "Bench diff" in out and "+5.0%" in out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        old = self._artifact(tmp_path / "BENCH_x.json", 1.0)
        new = self._artifact(tmp_path / "BENCH_y.json", 2.0)
        assert main(["bench", "diff", str(old), str(new)]) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_threshold_flag(self, tmp_path):
        old = self._artifact(tmp_path / "BENCH_x.json", 1.0)
        new = self._artifact(tmp_path / "BENCH_y.json", 2.0)
        assert main(["bench", "diff", "--threshold", "1.5",
                     str(old), str(new)]) == 0

    def test_directory_diff(self, tmp_path):
        old_dir, new_dir = tmp_path / "old", tmp_path / "new"
        old_dir.mkdir(), new_dir.mkdir()
        self._artifact(old_dir / "BENCH_x.json", 1.0)
        self._artifact(new_dir / "BENCH_x.json", 3.0)
        assert main(["bench", "diff", str(old_dir), str(new_dir)]) == 1

    def test_empty_overlap_is_an_error(self, tmp_path):
        (tmp_path / "old").mkdir(), (tmp_path / "new").mkdir()
        with pytest.raises(SystemExit):
            main(["bench", "diff", str(tmp_path / "old"),
                  str(tmp_path / "new")])
