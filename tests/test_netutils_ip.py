"""Unit tests for IPv4 helpers and deterministic obfuscation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netutils.ip import (
    Ipv4Error,
    format_ipv4,
    is_private_ipv4,
    obfuscate_ipv4,
    parse_ipv4,
)

ip_values = st.integers(min_value=0, max_value=(1 << 32) - 1)


class TestParseFormat:
    def test_parse_basic(self):
        assert parse_ipv4("8.8.8.8") == 0x08080808

    def test_parse_extremes(self):
        assert parse_ipv4("0.0.0.0") == 0
        assert parse_ipv4("255.255.255.255") == (1 << 32) - 1

    @pytest.mark.parametrize("bad", [
        "", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "01.2.3.4",
        "1..3.4",
    ])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(Ipv4Error):
            parse_ipv4(bad)

    @given(ip_values)
    def test_roundtrip(self, value):
        assert parse_ipv4(format_ipv4(value)) == value

    def test_format_rejects_out_of_range(self):
        with pytest.raises(Ipv4Error):
            format_ipv4(1 << 32)


class TestPrivateRanges:
    @pytest.mark.parametrize("addr", [
        "10.0.0.1", "10.255.255.255", "172.16.0.1", "172.31.255.254",
        "192.168.1.1", "127.0.0.1", "169.254.1.1",
    ])
    def test_private(self, addr):
        assert is_private_ipv4(parse_ipv4(addr))

    @pytest.mark.parametrize("addr", [
        "8.8.8.8", "172.32.0.1", "11.0.0.1", "192.169.0.1", "1.1.1.1",
    ])
    def test_public(self, addr):
        assert not is_private_ipv4(parse_ipv4(addr))


class TestObfuscation:
    def test_private_passes_through(self):
        addr = parse_ipv4("192.168.1.10")
        assert obfuscate_ipv4(addr) == addr

    def test_public_changes(self):
        addr = parse_ipv4("8.8.8.8")
        assert obfuscate_ipv4(addr) != addr

    @given(ip_values)
    def test_deterministic(self, value):
        assert obfuscate_ipv4(value) == obfuscate_ipv4(value)

    @given(ip_values)
    def test_public_maps_into_reserved_block(self, value):
        result = obfuscate_ipv4(value)
        if not is_private_ipv4(value):
            # 240.0.0.0/4: pseudonyms can never collide with real routes.
            assert (result >> 28) == 0xF

    def test_salt_isolates_studies(self):
        addr = parse_ipv4("8.8.8.8")
        assert obfuscate_ipv4(addr, salt=b"a") != obfuscate_ipv4(addr, salt=b"b")

    def test_stable_aggregation_key(self):
        # Two flows to the same remote share one pseudonym.
        addr = parse_ipv4("93.184.216.34")
        assert obfuscate_ipv4(addr) == obfuscate_ipv4(addr)

    def test_rejects_out_of_range(self):
        with pytest.raises(Ipv4Error):
            obfuscate_ipv4(-5)
