"""Tests for the longitudinal (trend) analysis."""

import numpy as np
import pytest

from repro.core.datasets import HeartbeatLog, StudyData, ThroughputSeries
from repro.core.longitudinal import (
    TrendSeries,
    availability_series,
    connected_devices_series,
    degrading_homes,
    downtime_rate_series,
    group_availability_trend,
    traffic_volume_series,
)
from repro.core.records import DeviceCountSample, RouterInfo
from repro.simulation.timebase import DAY, MINUTE, WEEK, StudyWindows, utc

T0 = utc(2012, 10, 1)


def minute_log(rid, *blocks):
    stamps = np.concatenate([np.arange(s, e, MINUTE) for s, e in blocks])
    return HeartbeatLog(rid, stamps)


def info(rid, developed=True):
    return RouterInfo(rid, "US" if developed else "IN", developed,
                      -5.0 if developed else 5.5,
                      49800 if developed else 3700)


class TestTrendSeries:
    def test_from_points_slope(self):
        points = [(T0 + i * DAY, float(i)) for i in range(10)]
        series = TrendSeries.from_points("x", points)
        assert series.slope_per_day == pytest.approx(1.0)
        assert series.mean == pytest.approx(4.5)
        assert len(series) == 10

    def test_empty(self):
        series = TrendSeries.from_points("x", [])
        assert len(series) == 0
        assert np.isnan(series.slope_per_day)
        assert np.isnan(series.mean)

    def test_single_point_has_nan_slope(self):
        series = TrendSeries.from_points("x", [(T0, 1.0)])
        assert np.isnan(series.slope_per_day)


class TestAvailabilitySeries:
    def test_flat_home(self):
        log = minute_log("r", (T0, T0 + 4 * WEEK))
        series = availability_series(log)
        assert len(series) >= 3
        assert all(v > 0.99 for v in series.values)
        assert abs(series.slope_per_day) < 1e-3

    def test_degrading_home(self):
        # Week k loses its first k*8 hours (loss at the start keeps the
        # final heartbeat at the window end, so every bucket is observed).
        blocks = []
        for week in range(5):
            start = T0 + week * WEEK
            blocks.append((start + week * 8 * 3600, start + WEEK))
        log = minute_log("r", *blocks)
        series = availability_series(log)
        assert series.slope_per_day < -0.002
        assert series.values[0] > series.values[-1]

    def test_empty_log(self):
        assert len(availability_series(HeartbeatLog("r", np.empty(0)))) == 0


class TestDowntimeRateSeries:
    def test_counts_per_bucket(self):
        # One gap per day in week 2 only.
        blocks = [(T0, T0 + WEEK)]
        for day in range(7):
            start = T0 + WEEK + day * DAY
            blocks.append((start, start + 20 * 3600))
            blocks.append((start + 21 * 3600, start + DAY))
        blocks.append((T0 + 2 * WEEK, T0 + 3 * WEEK))
        log = minute_log("r", *blocks)
        series = downtime_rate_series(log)
        assert series.values[0] == pytest.approx(0.0, abs=0.05)
        assert series.values[1] >= 0.9  # ~one gap per day that week

    def test_worsening_trend_detected(self):
        blocks = []
        for week in range(4):
            for day in range(7):
                start = T0 + week * WEEK + day * DAY
                # 'week' downtime events per day, 30 min each.
                cursor = start
                for _ in range(week):
                    blocks.append((cursor, cursor + 2 * 3600))
                    cursor += 2 * 3600 + 1800
                blocks.append((cursor, start + DAY))
        log = minute_log("r", *blocks)
        series = downtime_rate_series(log)
        assert series.slope_per_day > 0.05


class TestGroupTrend:
    def test_median_over_group(self):
        logs = {
            "a": minute_log("a", (T0, T0 + 3 * WEEK)),
            "b": minute_log("b", (T0, T0 + 1.5 * WEEK),
                            (T0 + 2 * WEEK, T0 + 3 * WEEK)),
        }
        data = StudyData(routers={rid: info(rid) for rid in logs},
                         windows=StudyWindows(), heartbeats=logs)
        series = group_availability_trend(data, developed=True)
        assert len(series) >= 2
        assert np.all(series.values <= 1.0)

    def test_group_filter(self):
        logs = {"a": minute_log("a", (T0, T0 + 3 * WEEK))}
        data = StudyData(routers={"a": info("a", developed=True)},
                         windows=StudyWindows(), heartbeats=logs)
        assert len(group_availability_trend(data, developed=False)) == 0


class TestDeviceAndTrafficSeries:
    def test_connected_devices_series(self):
        samples = []
        for week in range(3):
            for hour in range(0, 7 * 24, 6):
                samples.append(DeviceCountSample(
                    "r", T0 + week * WEEK + hour * 3600,
                    1, 2 + week, 0))
        data = StudyData(routers={"r": info("r")}, windows=StudyWindows(),
                         device_counts=samples)
        series = connected_devices_series(data)
        assert len(series) == 3
        assert series.slope_per_day > 0.1  # one device per week

    def test_connected_devices_empty(self):
        data = StudyData(routers={}, windows=StudyWindows())
        assert len(connected_devices_series(data)) == 0

    def test_traffic_volume_series(self):
        minutes = int(3 * DAY / MINUTE)
        tp = ThroughputSeries("r", T0, np.full(minutes, 2.2e6),
                              np.zeros(minutes))
        data = StudyData(routers={"r": info("r")}, windows=StudyWindows(),
                         throughput={"r": tp})
        series = traffic_volume_series(data, "r")
        assert len(series) == 3
        expected_daily = 2.2e6 / 2.2 / 8 * DAY
        assert series.values[0] == pytest.approx(expected_daily, rel=0.01)

    def test_traffic_missing_home(self):
        data = StudyData(routers={}, windows=StudyWindows())
        assert len(traffic_volume_series(data, "ghost")) == 0


class TestDegradingHomes:
    def test_detects_only_the_degrading_home(self):
        healthy = minute_log("ok", (T0, T0 + 4 * WEEK))
        blocks = []
        for week in range(4):
            for day in range(7):
                start = T0 + week * WEEK + day * DAY
                cursor = start
                for _ in range(week * 2):
                    blocks.append((cursor, cursor + 3600))
                    cursor += 3600 + 1200
                blocks.append((cursor, start + DAY))
        sick = minute_log("sick", *blocks)
        data = StudyData(
            routers={"ok": info("ok"), "sick": info("sick")},
            windows=StudyWindows(),
            heartbeats={"ok": healthy, "sick": sick})
        result = degrading_homes(data)
        assert [h.router_id for h in result] == ["sick"]
        assert result[0].downtime_slope_per_day > 0
        assert result[0].current_rate_per_day > 1.0
