"""Cross-cutting invariants: conservation laws and failure injection.

These tests pin down properties that no refactor may break: traffic byte
conservation between flow records and the gateway's minute counters,
archive robustness against corruption, and graceful behaviour of every
analysis function on empty data.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import availability, infrastructure, usage
from repro.core.datasets import StudyData, summarize_datasets
from repro.core.intervals import IntervalSet
from repro.core.records import RouterInfo, Spectrum
from repro.simulation.behavior import ActivitySchedule
from repro.simulation.device_models import generate_devices
from repro.simulation.domains import DomainSampler, build_domain_universe
from repro.simulation.timebase import DAY, StudyCalendar, StudyWindows, utc
from repro.simulation.traffic_model import TrafficGenerator
from repro.collection.export import export_study, load_study

T0 = utc(2013, 4, 1)
WINDOW = (T0, T0 + 2 * DAY)
CAL = StudyCalendar(-5)


def make_traffic(seed, online=None, saturator=None):
    devices = generate_devices(
        np.random.default_rng(seed), "rX", WINDOW, CAL,
        ActivitySchedule.generate(np.random.default_rng(seed)),
        True, 6.0, 0.3, 0.2)
    generator = TrafficGenerator(
        rng=np.random.default_rng(seed + 1),
        devices=devices,
        schedule=ActivitySchedule.generate(np.random.default_rng(seed)),
        calendar=CAL,
        sampler=DomainSampler(np.random.default_rng(seed),
                              build_domain_universe()),
        online=online if online is not None else IntervalSet([WINDOW]),
        uplink_saturator=saturator,
        upstream_capacity_bps=2e6,
    )
    return generator.generate(*WINDOW)


class TestByteConservation:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_flows_match_minute_series_when_always_online(self, seed):
        """With the home online throughout, every flow byte must appear in
        the per-minute counters (no leaks, no double counting)."""
        traffic = make_traffic(seed)
        flow_bytes = sum(f.bytes_up + f.bytes_down for f in traffic.flows)
        series_bytes = traffic.total_bytes()
        # Flows whose duration crosses the window end lose the spill-over
        # in the series; allow that sliver.
        assert series_bytes <= flow_bytes * 1.001
        assert series_bytes >= flow_bytes * 0.95

    def test_offline_bytes_are_dropped_consistently(self):
        """Offline masking must remove flows and bytes together."""
        online = IntervalSet([(WINDOW[0], WINDOW[0] + DAY)])
        traffic = make_traffic(7, online=online)
        flow_bytes = sum(f.bytes_up + f.bytes_down for f in traffic.flows)
        # Some flows start online but run past the boundary, so the series
        # can undercount relative to flows, never overcount much.
        assert traffic.total_bytes() <= flow_bytes * 1.001

    def test_saturator_adds_up_bytes_and_flows(self):
        plain = make_traffic(9)
        loaded = make_traffic(9, saturator="continuous")
        extra_series = (loaded.minute_up_bytes.sum()
                        - plain.minute_up_bytes.sum())
        extra_flows = (sum(f.bytes_up for f in loaded.flows)
                       - sum(f.bytes_up for f in plain.flows))
        assert extra_series > 0
        assert extra_flows > 0
        # The recorded upload flows account for most of the overlay
        # (the overlay is ~90% shipped as flow records by design).
        assert 0.5 <= extra_flows / extra_series <= 1.5


class TestArchiveFailureInjection:
    @pytest.fixture()
    def archive(self, tmp_path, small_data):
        return export_study(small_data, tmp_path / "archive")

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_study(tmp_path / "nope")

    def test_missing_manifest(self, archive):
        (archive / "manifest.json").unlink()
        with pytest.raises(FileNotFoundError):
            load_study(archive)

    def test_corrupt_manifest(self, archive):
        (archive / "manifest.json").write_text("{not json")
        with pytest.raises(ValueError):
            load_study(archive)

    def test_corrupt_numeric_field(self, archive):
        path = archive / "capacity.csv"
        lines = path.read_text().splitlines()
        if len(lines) > 1:
            parts = lines[1].split(",")
            parts[2] = "not-a-number"
            lines[1] = ",".join(parts)
            path.write_text("\n".join(lines) + "\n")
            with pytest.raises(ValueError):
                load_study(archive)

    def test_truncated_heartbeats_still_load(self, archive):
        """Losing rows is data loss, not corruption — loading must work."""
        path = archive / "heartbeats.csv"
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[: max(len(lines) // 2, 1)]) + "\n")
        data = load_study(archive)
        assert data.routers  # metadata intact

    def test_roundtrip_preserves_analysis(self, tmp_path, small_data):
        """The acid test: analysis on the reloaded archive is identical."""
        root = export_study(small_data, tmp_path / "full")
        reloaded = load_study(root)
        original = availability.downtime_rate_cdf(small_data, True)
        again = availability.downtime_rate_cdf(reloaded, True)
        assert original.n == again.n
        if original.n:
            assert original.median == pytest.approx(again.median)
        assert infrastructure.devices_per_home(small_data) == \
            infrastructure.devices_per_home(reloaded)
        a = usage.domain_share(small_data)
        b = usage.domain_share(reloaded)
        assert np.allclose(a.volume_share_by_rank, b.volume_share_by_rank)


class TestEmptyDataGracefully:
    @pytest.fixture()
    def empty(self):
        return StudyData(routers={"r": RouterInfo("r", "US", True, -5,
                                                  49800)},
                         windows=StudyWindows())

    def test_availability(self, empty):
        assert availability.downtime_rate_cdf(empty, True).n == 0
        assert availability.median_days_between_downtimes(empty, True) is None
        assert availability.downtimes_by_country(empty) == []
        assert availability.median_availability_by_country(empty) == {}
        assert availability.appliance_mode_routers(empty) == []

    def test_infrastructure(self, empty):
        assert infrastructure.devices_per_home(empty) == {}
        assert infrastructure.devices_per_home_cdf(empty).n == 0
        rows = infrastructure.always_connected_households(empty)
        assert all(r.total_households == 0 for r in rows)
        assert infrastructure.vendor_histogram(empty) == {}
        assert infrastructure.neighbor_ap_cdf(empty, Spectrum.GHZ_2_4).n == 0

    def test_usage(self, empty):
        assert usage.link_saturation(empty) == []
        assert usage.device_share_per_home(empty) == {}
        assert usage.domain_top_counts(empty) == {}
        assert usage.usage_by_country(empty) == []
        summary = usage.domain_share(empty)
        assert np.isnan(summary.whitelist_byte_coverage)

    def test_summary(self, empty):
        rows = summarize_datasets(empty)
        assert all(row.routers == 0 for row in rows)


class TestScheduleProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_generated_schedules_always_valid(self, seed):
        schedule = ActivitySchedule.generate(np.random.default_rng(seed))
        for curve in (schedule.presence_weekday, schedule.presence_weekend,
                      schedule.activity_weekday, schedule.activity_weekend):
            assert curve.shape == (24,)
            assert curve.min() >= 0 and curve.max() <= 1

    @given(st.integers(min_value=0, max_value=10_000),
           st.floats(min_value=T0, max_value=T0 + 30 * DAY))
    @settings(max_examples=30, deadline=None)
    def test_presence_activity_in_unit_interval(self, seed, epoch):
        schedule = ActivitySchedule.generate(np.random.default_rng(seed))
        assert 0 <= schedule.presence(CAL, epoch) <= 1
        assert 0 <= schedule.activity(CAL, epoch) <= 1
