"""Tests for the repro.perf instrumentation layer.

Two contracts matter: profiling must be essentially free when disabled
(the firmware hot path is littered with ``perf.stage`` calls), and an
enabled recorder must capture every engine stage without perturbing the
simulation (``study_digest`` equality is checked in test_digest_pin.py).
"""

import time

import pytest

from repro import StudyConfig, perf, run_study
from repro.perf import ENGINE_STAGES, PerfRecorder


@pytest.fixture(autouse=True)
def _clean_recorder():
    """Never leak an active recorder into (or out of) a test."""
    perf.disable()
    yield
    perf.disable()


class TestPerfRecorder:
    def test_record_accumulates(self):
        rec = PerfRecorder()
        rec.record("traffic", 0.5)
        rec.record("traffic", 0.25)
        rec.record("wifi", 1.0)
        assert rec.seconds["traffic"] == 0.75
        assert rec.calls["traffic"] == 2
        assert rec.calls["wifi"] == 1

    def test_counters(self):
        rec = PerfRecorder()
        rec.count("flows", 10)
        rec.count("flows", 5)
        rec.count("routers")
        assert rec.counters == {"flows": 15, "routers": 1}

    def test_snapshot_is_a_copy(self):
        rec = PerfRecorder()
        rec.record("ingest", 1.0)
        snap = rec.snapshot()
        rec.record("ingest", 1.0)
        assert snap["seconds"]["ingest"] == 1.0
        assert rec.seconds["ingest"] == 2.0

    def test_merge_folds_worker_snapshots(self):
        parent = PerfRecorder()
        parent.record("traffic", 1.0)
        worker = PerfRecorder()
        worker.record("traffic", 2.0)
        worker.count("flows", 7)
        parent.merge(worker.snapshot())
        assert parent.seconds["traffic"] == 3.0
        assert parent.calls["traffic"] == 2
        assert parent.counters["flows"] == 7

    def test_clear(self):
        rec = PerfRecorder()
        rec.record("wifi", 1.0)
        rec.count("x")
        rec.clear()
        assert rec.snapshot() == {"seconds": {}, "calls": {}, "counters": {}}


class TestModuleApi:
    def test_enable_disable_cycle(self):
        assert not perf.is_enabled()
        rec = perf.enable()
        assert perf.is_enabled()
        assert perf.enable() is rec  # idempotent
        assert perf.disable() is rec
        assert not perf.is_enabled()

    def test_stage_records_when_enabled(self):
        perf.enable()
        with perf.stage("traffic"):
            time.sleep(0.01)
        snap = perf.snapshot()
        assert snap["seconds"]["traffic"] >= 0.01
        assert snap["calls"]["traffic"] == 1

    def test_stage_records_on_exception(self):
        perf.enable()
        with pytest.raises(RuntimeError):
            with perf.stage("traffic"):
                raise RuntimeError("boom")
        assert perf.snapshot()["calls"]["traffic"] == 1

    def test_disabled_stage_is_shared_noop(self):
        # The no-allocation guarantee: every disabled call hands back the
        # same singleton, so the hot path never pays for instrumentation.
        assert perf.stage("a") is perf.stage("b")
        with perf.stage("a"):
            pass
        assert perf.snapshot() == {"seconds": {}, "calls": {},
                                   "counters": {}}

    def test_count_noop_when_disabled(self):
        perf.count("flows", 100)
        assert perf.snapshot()["counters"] == {}

    def test_drain_clears(self):
        perf.enable()
        perf.count("flows", 3)
        snap = perf.drain()
        assert snap["counters"]["flows"] == 3
        assert perf.snapshot()["counters"] == {}

    def test_merge_into_active(self):
        perf.enable()
        perf.merge({"seconds": {"wifi": 1.5}, "calls": {"wifi": 4},
                    "counters": {"routers": 2}})
        snap = perf.snapshot()
        assert snap["seconds"]["wifi"] == 1.5
        assert snap["counters"]["routers"] == 2

    def test_disabled_overhead_is_small(self):
        """The disabled path must cost well under 2% on an instrumented
        loop whose body does real (if modest) work."""
        def body():
            return sum(range(2000))

        def bare(n):
            for _ in range(n):
                body()

        def instrumented(n):
            for _ in range(n):
                with perf.stage("hot"):
                    body()

        n = 2000
        bare(n), instrumented(n)  # warm up
        t_bare = min(_timed(bare, n) for _ in range(5))
        t_inst = min(_timed(instrumented, n) for _ in range(5))
        # 2% is the design target; allow generous noise headroom in CI.
        assert t_inst <= t_bare * 1.25


def _timed(fn, n):
    t0 = time.perf_counter()
    fn(n)
    return time.perf_counter() - t0


class TestFormatTable:
    def test_table_orders_engine_stages_first(self):
        snap = {"seconds": {"zebra": 0.1, "traffic": 2.0, "heartbeat": 0.5},
                "calls": {"zebra": 1, "traffic": 10, "heartbeat": 5},
                "counters": {"flows": 123}}
        table = perf.format_table(snap)
        assert table.index("heartbeat") < table.index("traffic")
        assert table.index("traffic") < table.index("zebra")
        assert "flows" in table and "123" in table

    def test_empty_snapshot_renders(self):
        table = perf.format_table({"seconds": {}, "calls": {},
                                   "counters": {}})
        assert "stage" in table


class TestEngineIntegration:
    CONFIG = dict(seed=2013, router_scale=0.1, duration_scale=0.02,
                  traffic_consents=2, low_activity_consents=0)

    def test_profile_covers_every_engine_stage(self):
        run_study(StudyConfig(**self.CONFIG), profile=True)
        snap = perf.snapshot()
        for name in ENGINE_STAGES:
            assert name in snap["seconds"], name
            assert snap["calls"][name] > 0, name
        assert snap["counters"]["routers"] > 0
        assert snap["counters"]["flows"] > 0

    def test_parallel_profile_merges_worker_stages(self):
        run_study(StudyConfig(**self.CONFIG, workers=2), profile=True)
        snap = perf.snapshot()
        for name in ENGINE_STAGES:
            assert name in snap["seconds"], name
