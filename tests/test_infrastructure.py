"""Unit tests for the Section 5 infrastructure analysis, on synthetic data."""

import numpy as np
import pytest

from repro.core import infrastructure as infra
from repro.core.datasets import StudyData
from repro.core.records import (
    DeviceCountSample,
    DeviceRosterEntry,
    FlowRecord,
    Medium,
    RouterInfo,
    Spectrum,
    WifiScanSample,
)
from repro.simulation.timebase import DAY, StudyWindows, utc

T0 = utc(2013, 3, 6)


def info(rid, developed=True):
    code = "US" if developed else "IN"
    gdp = 49800 if developed else 3700
    return RouterInfo(rid, code, developed, -5.0 if developed else 5.5, gdp)


def roster_entry(rid, mac, medium=Medium.WIRELESS,
                 spectrum=Spectrum.GHZ_2_4, always=False):
    if medium is Medium.WIRED:
        spectrum = None
    return DeviceRosterEntry(rid, mac, medium, spectrum, T0, T0 + DAY, always)


def base_data(routers, **kwargs):
    return StudyData(routers={r.router_id: r for r in routers},
                     windows=StudyWindows(), **kwargs)


class TestDevicesPerHome:
    def test_counts(self):
        data = base_data([info("a"), info("b")], roster=[
            roster_entry("a", "3c:07:54:00:00:01"),
            roster_entry("a", "3c:07:54:00:00:02"),
            roster_entry("b", "3c:07:54:00:00:03"),
        ])
        assert infra.devices_per_home(data) == {"a": 2, "b": 1}

    def test_cdf(self):
        data = base_data([info("a"), info("b")], roster=[
            roster_entry("a", f"3c:07:54:00:00:0{i}") for i in range(1, 6)
        ] + [roster_entry("b", "3c:07:54:00:00:09")])
        cdf = infra.devices_per_home_cdf(data)
        assert cdf.n == 2
        assert cdf.median == 3.0


class TestCensusMeans:
    def make_data(self):
        samples = []
        for hour in range(10):
            samples.append(DeviceCountSample("dev", T0 + hour * 3600, 2, 3, 1))
            samples.append(DeviceCountSample("dvg", T0 + hour * 3600, 0, 2, 0))
        return base_data([info("dev", True), info("dvg", False)],
                         device_counts=samples)

    def test_by_medium(self):
        data = self.make_data()
        dev = infra.mean_connected_by_medium(data, developed=True)
        assert dev["wired"].mean == pytest.approx(2.0)
        assert dev["wireless"].mean == pytest.approx(4.0)
        dvg = infra.mean_connected_by_medium(data, developed=False)
        assert dvg["wired"].mean == pytest.approx(0.0)
        assert dvg["wireless"].mean == pytest.approx(2.0)

    def test_by_spectrum(self):
        data = self.make_data()
        dev = infra.mean_connected_by_spectrum(data, developed=True)
        assert dev["2.4GHz"].mean == pytest.approx(3.0)
        assert dev["5GHz"].mean == pytest.approx(1.0)

    def test_empty_group_is_nan(self):
        data = self.make_data()
        data.device_counts = [s for s in data.device_counts
                              if s.router_id == "dev"]
        result = infra.mean_connected_by_medium(data, developed=False)
        assert np.isnan(result["wired"].mean)


class TestAlwaysConnected:
    def test_table5_rows(self):
        data = base_data(
            [info("a", True), info("b", True), info("c", False)],
            roster=[
                roster_entry("a", "b0:a7:37:00:00:01", Medium.WIRED,
                             always=True),
                roster_entry("a", "3c:07:54:00:00:02", always=True),
                roster_entry("b", "3c:07:54:00:00:03"),
                roster_entry("c", "3c:07:54:00:00:04", always=True),
            ])
        rows = {r.group: r for r in infra.always_connected_households(data)}
        assert rows["developed"].total_households == 2
        assert rows["developed"].with_always_wired == 1
        assert rows["developed"].with_always_wireless == 1
        assert rows["developed"].wired_fraction == 0.5
        assert rows["developing"].with_always_wired == 0
        assert rows["developing"].wireless_fraction == 1.0

    def test_empty_group_nan_fractions(self):
        data = base_data([info("a", True)],
                         roster=[roster_entry("a", "3c:07:54:00:00:01")])
        rows = {r.group: r for r in infra.always_connected_households(data)}
        assert np.isnan(rows["developing"].wired_fraction)


class TestSpectrumCdfs:
    def test_unique_devices_per_spectrum(self):
        data = base_data([info("a"), info("b")], roster=[
            roster_entry("a", "3c:07:54:00:00:01", spectrum=Spectrum.GHZ_2_4),
            roster_entry("a", "3c:07:54:00:00:02", spectrum=Spectrum.GHZ_2_4),
            roster_entry("a", "3c:07:54:00:00:03", spectrum=Spectrum.GHZ_5),
            roster_entry("b", "3c:07:54:00:00:04", spectrum=Spectrum.GHZ_2_4),
            roster_entry("b", "b0:a7:37:00:00:05", Medium.WIRED),
        ])
        cdf24 = infra.unique_devices_per_spectrum_cdf(data, Spectrum.GHZ_2_4)
        cdf5 = infra.unique_devices_per_spectrum_cdf(data, Spectrum.GHZ_5)
        assert sorted(cdf24.values) == [1, 2]
        # Home b has zero 5 GHz devices and still contributes a zero.
        assert sorted(cdf5.values) == [0, 1]


class TestPortUsage:
    def test_statistics(self):
        samples = [
            DeviceCountSample("a", T0, 4, 0, 0),
            DeviceCountSample("a", T0 + 3600, 2, 0, 0),
            DeviceCountSample("b", T0, 1, 0, 0),
            DeviceCountSample("b", T0 + 3600, 1, 0, 0),
        ]
        data = base_data([info("a"), info("b")], device_counts=samples)
        usage = infra.ethernet_port_usage(data)
        assert usage.fraction_all_four_used == 0.5
        assert usage.fraction_at_most_two_needed == 0.5
        assert usage.mean_wired_in_use == pytest.approx((3 + 1) / 2)

    def test_empty(self):
        data = base_data([info("a")])
        assert np.isnan(infra.ethernet_port_usage(data).mean_wired_in_use)


class TestNeighborAps:
    def make_data(self):
        scans = []
        for i in range(20):
            scans.append(WifiScanSample("dense", T0 + i * 600,
                                        Spectrum.GHZ_2_4, 20 + (i % 3), 1))
            scans.append(WifiScanSample("sparse", T0 + i * 600,
                                        Spectrum.GHZ_2_4, i % 2, 1))
            scans.append(WifiScanSample("dense", T0 + i * 600,
                                        Spectrum.GHZ_5, 1, 0))
        return base_data([info("dense", True), info("sparse", False)],
                         wifi_scans=scans)

    def test_per_home_quantile(self):
        data = self.make_data()
        per_home = infra.neighbor_aps_per_home(data, Spectrum.GHZ_2_4)
        assert per_home["dense"] >= 20
        assert per_home["sparse"] <= 1

    def test_group_split(self):
        data = self.make_data()
        dev = infra.neighbor_ap_cdf(data, Spectrum.GHZ_2_4, developed=True)
        dvg = infra.neighbor_ap_cdf(data, Spectrum.GHZ_2_4, developed=False)
        assert dev.median > dvg.median

    def test_bimodality_metric(self):
        from repro.core.stats import EmpiricalCdf
        bimodal = EmpiricalCdf.from_samples([0, 1, 1, 20, 25, 30])
        flat = EmpiricalCdf.from_samples([4, 5, 6, 7, 8, 9])
        assert infra.neighbor_ap_bimodality(bimodal) > \
            infra.neighbor_ap_bimodality(flat)


class TestVendorHistogram:
    def make_data(self):
        flows = [
            FlowRecord("a", T0, "3c:07:54:00:00:01", "google.com", 0xF0000001,
                       443, "https", 1e5, 1e6, 10.0),
            FlowRecord("a", T0, "b0:a7:37:00:00:02", "netflix.com",
                       0xF0000002, 443, "https", 1e5, 5e8, 100.0),
            FlowRecord("a", T0, "00:1b:21:00:00:03", "google.com", 0xF0000001,
                       443, "https", 10.0, 50.0, 1.0),  # under 100 KB
        ]
        roster = [
            roster_entry("a", "3c:07:54:00:00:01"),                  # Apple
            roster_entry("a", "b0:a7:37:00:00:02", Medium.WIRED),    # Roku
            roster_entry("a", "00:1b:21:00:00:03"),                  # Intel
            roster_entry("a", "20:4e:7f:00:00:04", Medium.WIRED),    # BISmark
        ]
        return base_data([info("a")], flows=flows, roster=roster)

    def test_histogram(self):
        data = self.make_data()
        histogram = infra.vendor_histogram(data)
        assert histogram == {"Apple": 1, "InternetTV": 1}

    def test_min_bytes_zero_includes_quiet_devices(self):
        data = self.make_data()
        histogram = infra.vendor_histogram(data, min_bytes=0)
        assert histogram.get("Intel") == 1
        # The gateway is excluded no matter what.
        assert "Gateway" not in histogram

    def test_explicit_router_filter(self):
        data = self.make_data()
        assert infra.vendor_histogram(data, router_ids=["ghost"]) == {}


class TestHighlights:
    def test_section5_highlights_smoke(self):
        scans = [WifiScanSample("a", T0, Spectrum.GHZ_2_4, 15, 1)]
        data = base_data(
            [info("a", True), info("b", False)],
            roster=[
                roster_entry("a", "b0:a7:37:00:00:01", Medium.WIRED,
                             always=True),
                roster_entry("a", "3c:07:54:00:00:02"),
                roster_entry("b", "3c:07:54:00:00:03"),
            ],
            wifi_scans=scans)
        highlights = infra.section5_highlights(data)
        assert highlights.always_wired_fraction_developed == 1.0
        assert highlights.always_wired_fraction_developing == 0.0
        assert highlights.median_devices_2_4ghz == 1.0
        assert highlights.median_neighbor_aps_developed == 15
        assert np.isnan(highlights.median_neighbor_aps_developing)
