"""The network ingest service: framing, daemon semantics, load harness.

The load-bearing contracts under test:

* the framed wire protocol round-trips and rejects garbage;
* frame decoding never executes attacker code (restricted unpickler);
* ``CollectionServer.ingest`` is all-or-nothing and idempotent, even
  across a daemon restart over an existing store;
* the heartbeat ledger closes: sent == delivered + dropped + rejected;
* ``records_ingested_total`` matches the store's contents exactly, even
  after re-upload conflicts;
* a campaign ingested over the socket daemon produces a ``study_digest``
  bitwise-identical to the in-process path;
* loss injection (mid-frame disconnects, dropped ACKs, shedding) never
  leaves the store inconsistent.
"""

import asyncio
import pickle

import numpy as np
import pytest

from repro import study_digest
from repro.core.datasets import ThroughputSeries
from repro.core.records import RouterInfo, UptimeReport
from repro.simulation.timebase import StudyWindows, utc
from repro.simulation.seeding import SeedHierarchy
from repro.telemetry import metrics
from repro.collection.batches import (
    FRAME_HEADER,
    FrameError,
    RecordBatch,
    RouterUpload,
    decode_frame,
    decode_payload,
    encode_frame,
    validate_message,
)
from repro.collection.loadgen import (
    LoadConfig,
    run_load,
    run_load_over_loopback,
    synthetic_upload,
)
from repro.collection.netserve import (
    IngestClient,
    IngestDaemon,
    ServeConfig,
    run_campaign_over_socket,
)
from repro.collection.path import CollectionPath, PathConfig
from repro.collection.server import CollectionServer, UploadRejected
from repro.collection.storage import RecordStore

SPAN = (utc(2013, 3, 1), utc(2013, 3, 15))

#: One small fleet config reused across daemon tests.
SMALL_LOAD = LoadConfig(clients=40, connections=4, heartbeats_per_upload=6,
                        uptime_reports_per_upload=1, seed=3)


def make_server(loss=0.0, seed=7):
    store = RecordStore(StudyWindows())
    path = CollectionPath(np.random.default_rng(seed), SPAN,
                          PathConfig(packet_loss=loss,
                                     outage_rate_per_day=0.0))
    return CollectionServer(store, path)


def make_upload(index=0, config=SMALL_LOAD):
    return synthetic_upload(index, SPAN, config)


def make_daemon(config=None, loss=0.0):
    store = RecordStore(StudyWindows())
    path = CollectionPath(np.random.default_rng(11), SPAN,
                          PathConfig(packet_loss=loss,
                                     outage_rate_per_day=0.0))
    return IngestDaemon(store, path, config or ServeConfig(port=0))


@pytest.fixture()
def registry():
    reg = metrics.enable()
    reg.clear()
    yield reg
    metrics.disable()


def counter(registry, name, **labels):
    key = (name, tuple(sorted(labels.items())))
    return registry.counters.get(key, 0)


class TestFraming:
    def test_round_trip(self):
        upload = make_upload()
        data = encode_frame(("upload", 3, upload))
        message, consumed = decode_frame(data)
        assert consumed == len(data)
        assert message[0] == "upload" and message[1] == 3
        assert message[2].router_id == upload.router_id

    def test_short_buffer_incomplete(self):
        data = encode_frame(("ping",))
        with pytest.raises(FrameError):
            decode_frame(data[:3])
        with pytest.raises(FrameError):
            decode_frame(data[:-1])

    def test_oversized_frame_rejected(self):
        with pytest.raises(FrameError):
            encode_frame(("error", 0, "x" * 100), max_frame_bytes=32)
        data = encode_frame(("error", 0, "x" * 100))
        with pytest.raises(FrameError):
            decode_frame(data, max_frame_bytes=32)

    def test_garbage_payload_rejected(self):
        garbage = b"\x00\x00\x00\x04spam"
        with pytest.raises(FrameError):
            decode_frame(garbage)

    def test_malformed_messages_rejected(self):
        for message in (
                (),
                ("nope",),
                ("upload", -1, make_upload()),
                ("upload", 0, "not an upload"),
                ("ack", 0, "lost"),
                ("retry", 0, 0),
                ("retry", 0, "soon"),
                ("ping", 1),
        ):
            with pytest.raises(FrameError):
                validate_message(message)

    def test_valid_messages_pass(self):
        for message in (
                ("upload", 0, make_upload()),
                ("ack", 9, "stored"),
                ("ack", 9, "duplicate"),
                ("retry", 2, 0.5),
                ("error", 4, "boom"),
                ("ping",),
                ("pong",),
                ("bye",),
        ):
            validate_message(message)

    def test_serve_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(queue_size=0)
        with pytest.raises(ValueError):
            ServeConfig(reorder_window=0)
        with pytest.raises(ValueError):
            ServeConfig(retry_after_seconds=0)


#: Side-effect flag for the hostile-reducer test below; decoding must
#: reject the payload before this ever runs.
PWNED = []


def _pwn(marker):  # pragma: no cover - must never execute
    PWNED.append(marker)
    return marker


class _EvilReducer:
    """Pickles to a call of ``_pwn`` — the classic pickle RCE shape."""

    def __reduce__(self):
        return (_pwn, ("boom",))


class TestSafeDeserialization:
    def test_hostile_reducer_rejected_before_execution(self):
        payload = pickle.dumps(("error", 0, _EvilReducer()),
                               protocol=pickle.HIGHEST_PROTOCOL)
        with pytest.raises(FrameError):
            decode_payload(payload)
        assert PWNED == []

    def test_disallowed_global_rejected(self):
        for smuggled in (print, pickle.loads, np.frombuffer):
            payload = pickle.dumps(("ping", smuggled),
                                   protocol=pickle.HIGHEST_PROTOCOL)
            with pytest.raises(FrameError):
                decode_payload(payload)

    def test_protocol_types_still_decode(self):
        upload = make_upload(0)
        payload = pickle.dumps(("upload", 0, upload),
                               protocol=pickle.HIGHEST_PROTOCOL)
        message = decode_payload(payload)
        assert message[2].router_id == upload.router_id


class TestIngestAllOrNothing:
    def test_invalid_upload_registers_nothing(self, registry):
        server = make_server()
        bad = RouterUpload(
            make_upload(0).info,
            (RecordBatch("heartbeats", "LG000099", np.array([1.0])),))
        with pytest.raises(UploadRejected):
            server.ingest(bad)
        assert bad.router_id not in server.store.routers
        assert counter(registry, "routers_ingested_total") == 0
        assert counter(registry, "records_ingested_total",
                       dataset="heartbeats") == 0

    def test_two_heartbeat_batches_rejected(self):
        server = make_server()
        upload = make_upload(0)
        sends = upload.batches[0].records
        doubled = RouterUpload(upload.info, upload.batches + (
            RecordBatch("heartbeats", upload.router_id, sends),))
        with pytest.raises(UploadRejected):
            server.ingest(doubled)
        assert upload.router_id not in server.store.routers

    def test_midingest_failure_rolls_back_registration(self, monkeypatch):
        server = make_server()
        upload = make_upload(0)

        def explode(log):
            raise RuntimeError("backend offline")

        monkeypatch.setattr(server.store, "add_heartbeats", explode)
        with pytest.raises(RuntimeError):
            server.ingest(upload)
        # A failure validation could not foresee must not leave a
        # registered-but-empty router inflating cohort coverage.
        assert upload.router_id not in server.store.routers

    def test_duplicate_ingest_is_idempotent(self, registry):
        server = make_server()
        upload = make_upload(0)
        assert server.ingest(upload) is True
        assert server.ingest(upload) is False
        data = server.store.to_study_data()
        assert len(data.uptime_reports) == \
            SMALL_LOAD.uptime_reports_per_upload
        assert counter(registry, "routers_ingested_total") == 1
        assert counter(registry, "uploads_duplicate_total") == 1
        assert counter(registry, "records_ingested_total",
                       dataset="uptime") == len(data.uptime_reports)

    def test_duplicate_with_conflicting_info_rejected(self):
        server = make_server()
        upload = make_upload(0)
        server.ingest(upload)
        imposter = RouterUpload(
            RouterInfo(upload.router_id, "GB", True, 0.0, 36000.0),
            upload.batches)
        with pytest.raises(ValueError):
            server.ingest(imposter)

    def test_unregister_refuses_with_stored_uploads(self):
        server = make_server()
        upload = make_upload(0)
        server.ingest(upload)
        with pytest.raises(ValueError):
            server.store.unregister_router(upload.router_id)

    def test_failed_upload_stages_nothing(self, registry):
        """A consistency failure on a *later* batch must leave the
        store byte-for-byte as it was: the earlier append-only batches
        are staged, not applied, so a client retry cannot double-append
        them."""
        server = make_server()
        rid = "LG000000"
        info = RouterInfo(rid, "US", True, -5.0, 50_000.0)
        server.store.register_router(info)
        original = ThroughputSeries(rid, SPAN[0], np.ones(4), np.ones(4))
        server.receive_batch(RecordBatch("throughput", rid, original))

        sends = np.linspace(SPAN[0], SPAN[0] + 3600.0, 5)
        reports = [UptimeReport(rid, SPAN[0] + 60.0, 1000.0)]
        conflicting = ThroughputSeries(rid, SPAN[0], np.zeros(4),
                                       np.ones(4))
        with pytest.raises(ValueError):
            server.ingest(RouterUpload(info, (
                RecordBatch("heartbeats", rid, sends),
                RecordBatch("uptime", rid, reports),
                RecordBatch("throughput", rid, conflicting),
            )))
        # Nothing before the conflicting batch leaked into the store or
        # the metrics registry.
        assert not server.store.has_upload(rid)
        assert counter(registry, "heartbeats_sent_total") == 0
        assert counter(registry, "records_ingested_total",
                       dataset="uptime") == 0
        assert counter(registry, "routers_ingested_total") == 0
        # The retry with the original (non-conflicting) series ingests
        # everything exactly once.
        assert server.ingest(RouterUpload(info, (
            RecordBatch("heartbeats", rid, sends),
            RecordBatch("uptime", rid, reports),
            RecordBatch("throughput", rid, original),
        ))) is True
        data = server.store.to_study_data()
        assert len(data.uptime_reports) == 1
        assert len(data.heartbeats[rid]) == len(sends)

    def test_restart_over_existing_store_is_duplicate(self, registry):
        """A retry landing at a daemon *restarted over an existing
        store* must be a duplicate no-op, not a double-append of the
        list datasets (the in-memory idempotency set is empty there;
        the store's one-shot upload markers have to carry it)."""
        store = RecordStore(StudyWindows())

        def fresh_server():
            return CollectionServer(store, CollectionPath(
                np.random.default_rng(7), SPAN,
                PathConfig(packet_loss=0.0, outage_rate_per_day=0.0)))

        upload = make_upload(0)
        assert fresh_server().ingest(upload) is True
        assert fresh_server().ingest(upload) is False
        data = store.to_study_data()
        assert len(data.uptime_reports) == \
            SMALL_LOAD.uptime_reports_per_upload
        assert counter(registry, "uploads_duplicate_total") == 1
        assert counter(registry, "routers_ingested_total") == 1


class TestLedgerReconciliation:
    def test_rejected_duplicate_counted(self, registry):
        server = make_server(loss=0.0)
        sends = np.linspace(SPAN[0], SPAN[1] - 1, 100)
        server.store.register_router(RouterInfo("US001", "US", True,
                                                -5.0, 49800.0))
        server.receive_batch(RecordBatch("heartbeats", "US001", sends))
        server.receive_batch(RecordBatch("heartbeats", "US001", sends))
        sent = counter(registry, "heartbeats_sent_total")
        delivered = counter(registry, "heartbeats_delivered_total")
        dropped = counter(registry, "heartbeats_dropped_total")
        rejected = counter(registry, "heartbeats_rejected_total")
        assert sent == 200
        assert rejected == 100
        assert sent == delivered + dropped + rejected
        # The store's per-router tally only counts the stored upload.
        assert server.store.heartbeat_delivery["US001"] == (100, 100)

    def test_ledger_closes_under_loss(self, registry):
        server = make_server(loss=0.3)
        sends = np.linspace(SPAN[0], SPAN[1] - 1, 2000)
        server.store.register_router(RouterInfo("US001", "US", True,
                                                -5.0, 49800.0))
        server.receive_batch(RecordBatch("heartbeats", "US001", sends))
        sent = counter(registry, "heartbeats_sent_total")
        delivered = counter(registry, "heartbeats_delivered_total")
        dropped = counter(registry, "heartbeats_dropped_total")
        rejected = counter(registry, "heartbeats_rejected_total")
        assert sent == 2000 and dropped > 0
        assert sent == delivered + dropped + rejected

    def test_records_total_matches_store_after_conflicts(self, registry):
        """Per-dataset ``records_ingested_total`` == store contents,
        through duplicate uploads and rejected re-uploads."""
        server = make_server(loss=0.0)
        for index in range(4):
            server.ingest(make_upload(index))
        server.ingest(make_upload(1))          # idempotent duplicate
        # A direct duplicate batch (bypassing upload idempotency), as a
        # crashed-and-replayed shard would produce.
        replay = make_upload(2)
        for batch in replay.batches:
            server.receive_batch(batch)
        data = server.store.to_study_data()
        stored_heartbeats = sum(len(log) for log in data.heartbeats.values())
        assert counter(registry, "records_ingested_total",
                       dataset="heartbeats") == stored_heartbeats
        assert counter(registry, "records_ingested_total",
                       dataset="uptime") == len(data.uptime_reports)
        assert len(data.routers) == 4


def run_daemon(coro_factory, config=None, loss=0.0):
    """Start a daemon, run the test coroutine against it, drain, stop."""
    daemon = make_daemon(config=config, loss=loss)

    async def _run():
        host, port = await daemon.start()
        try:
            return await coro_factory(daemon, host, port)
        finally:
            await daemon.stop()

    return daemon, asyncio.run(_run())


class TestDaemon:
    def test_upload_and_ack(self):
        async def scenario(daemon, host, port):
            async with IngestClient(host, port) as client:
                await client.ping()
                assert await client.upload(0, make_upload(0)) == "stored"
                assert await client.upload(1, make_upload(1)) == "stored"
            return None

        daemon, _ = run_daemon(scenario)
        assert daemon.routers_ingested == 2
        assert len(daemon.store.routers) == 2

    def test_out_of_order_uploads_ingest_in_order(self):
        async def scenario(daemon, host, port):
            async def send(seq):
                async with IngestClient(host, port) as client:
                    return await client.upload(seq, make_upload(seq))

            # seq 1 arrives first; its ACK must wait for seq 0.
            results = await asyncio.gather(send(1), send(0))
            assert results == ["stored", "stored"]

        daemon, _ = run_daemon(scenario)
        assert daemon.routers_ingested == 2

    def test_midframe_disconnect_leaves_store_consistent(self, registry):
        async def scenario(daemon, host, port):
            # A client dies halfway through a frame...
            reader, writer = await asyncio.open_connection(host, port)
            payload = pickle.dumps(("upload", 0, make_upload(0)))
            writer.write(FRAME_HEADER.pack(len(payload)))
            writer.write(payload[:len(payload) // 2])
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            await asyncio.sleep(0.05)
            # ... and a healthy client then uploads the same router.
            async with IngestClient(host, port) as client:
                assert await client.upload(0, make_upload(0)) == "stored"

        daemon, _ = run_daemon(scenario)
        assert daemon.routers_ingested == 1
        assert len(daemon.store.routers) == 1
        assert counter(registry, "net_midframe_disconnects_total") == 1

    def test_duplicate_retry_after_dropped_ack(self, registry):
        async def scenario(daemon, host, port):
            # First upload ACKs but the "client" never sees it (drops the
            # connection without reading), then retries on a fresh one —
            # exactly what IngestClient does after a lost ACK.
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_frame(("upload", 0, make_upload(0))))
            await writer.drain()
            await reader.readexactly(FRAME_HEADER.size)  # ACK is in flight
            writer.close()
            await writer.wait_closed()
            async with IngestClient(host, port) as client:
                status = await client.upload(0, make_upload(0))
            assert status == "duplicate"

        daemon, _ = run_daemon(scenario)
        assert daemon.routers_ingested == 1
        data = daemon.store.to_study_data()
        assert len(data.routers) == 1
        assert counter(registry, "uploads_duplicate_total") == 1

    def test_shed_then_retry_completes(self, registry):
        config = ServeConfig(port=0, queue_size=2, reorder_window=4,
                             retry_after_seconds=0.005)

        async def scenario(daemon, host, port):
            async def send(seq):
                async with IngestClient(host, port) as client:
                    return await client.upload(seq, make_upload(seq))

            # seq 10 is far beyond the reorder window — shed until the
            # fleet catches up; client retry absorbs it transparently.
            results = await asyncio.gather(*(send(seq)
                                             for seq in range(12)))
            assert all(status == "stored" for status in results)

        daemon, _ = run_daemon(scenario, config=config)
        assert daemon.routers_ingested == 12
        assert len(daemon.store.routers) == 12
        assert counter(registry, "uploads_shed_total", reason="window") > 0

    def test_invalid_upload_gets_error_response(self):
        async def scenario(daemon, host, port):
            bad = RouterUpload(
                make_upload(0).info,
                (RecordBatch("heartbeats", "LG000099",
                             np.array([1.0])),))
            async with IngestClient(host, port) as client:
                with pytest.raises(ValueError):
                    await client.upload(0, bad)
                # The seq slot stays owed; a valid retry fills it.
                assert await client.upload(0, make_upload(0)) == "stored"

        daemon, _ = run_daemon(scenario)
        assert daemon.routers_ingested == 1
        assert len(daemon.store.routers) == 1

    def test_wait_complete_before_start_raises(self):
        daemon = make_daemon()
        with pytest.raises(RuntimeError, match="not started"):
            asyncio.run(daemon.wait_complete(1))

    def test_parked_uploads_counted_on_stop(self):
        async def scenario(daemon, host, port):
            # seq 1 arrives but seq 0 never does: the upload parks
            # behind a gap that will not fill before shutdown.
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_frame(("upload", 1, make_upload(1))))
            await writer.drain()
            await asyncio.sleep(0.05)  # let the worker park it
            writer.close()

        daemon, _ = run_daemon(scenario)
        assert daemon.routers_ingested == 0
        assert daemon.parked_discarded == 1


class TestDigestParity:
    def test_socket_path_matches_in_process(self):
        from repro.collection.engine import run_campaign
        from repro.simulation.deployment import (
            DeploymentConfig,
            build_deployment_plan,
        )

        plan = build_deployment_plan(DeploymentConfig(
            seed=11, windows=StudyWindows().scaled(0.02), router_scale=0.05,
            traffic_consents=2, low_activity_consents=0,
            countries=("US", "IN", "BR")))
        inproc = run_campaign(plan, workers=1, shard_size=2)
        socketed = run_campaign_over_socket(plan, shard_size=2)
        assert study_digest(socketed) == study_digest(inproc)


class TestLoadgen:
    def test_synthetic_upload_deterministic(self):
        a = synthetic_upload(5, SPAN, SMALL_LOAD)
        b = synthetic_upload(5, SPAN, SMALL_LOAD)
        assert a.router_id == b.router_id == "LG000005"
        assert np.array_equal(a.batches[0].records, b.batches[0].records)
        assert a.batches[1].records == b.batches[1].records
        other = synthetic_upload(6, SPAN, SMALL_LOAD)
        assert not np.array_equal(a.batches[0].records,
                                  other.batches[0].records)

    def test_load_config_validation(self):
        with pytest.raises(ValueError):
            LoadConfig(clients=0)
        with pytest.raises(ValueError):
            LoadConfig(clients=4, connections=8)
        with pytest.raises(ValueError):
            LoadConfig(heartbeats_per_upload=0)

    def test_loopback_run_stores_full_fleet(self):
        report, daemon = run_load_over_loopback(SMALL_LOAD)
        assert report.routers_stored == SMALL_LOAD.clients
        assert daemon.routers_ingested == SMALL_LOAD.clients
        assert len(daemon.store.routers) == SMALL_LOAD.clients
        expected = SMALL_LOAD.clients * SMALL_LOAD.records_per_upload
        assert report.records_sent == expected
        assert report.records_per_sec > 0
        data = daemon.store.to_study_data()
        assert len(data.uptime_reports) == SMALL_LOAD.clients

    def test_loopback_run_under_pressure(self):
        config = LoadConfig(clients=60, connections=6,
                            heartbeats_per_upload=4,
                            uptime_reports_per_upload=0, seed=5)
        serve = ServeConfig(queue_size=2, reorder_window=8,
                            retry_after_seconds=0.002)
        report, daemon = run_load_over_loopback(config, serve)
        assert report.routers_stored == config.clients
        assert report.sheds > 0
        assert daemon.routers_ingested == config.clients
