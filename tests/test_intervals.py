"""Unit and property tests for the interval algebra.

IntervalSet underpins both the simulator (power/link/association spans) and
the availability analysis (up-interval reconstruction), so its invariants
get the heaviest property-based coverage in the suite.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import IntervalSet

# Strategy: small sets of raw (possibly overlapping, unordered) intervals.
raw_interval = st.tuples(
    st.floats(min_value=0, max_value=1000, allow_nan=False),
    st.floats(min_value=0, max_value=1000, allow_nan=False),
)
interval_sets = st.lists(raw_interval, max_size=12).map(IntervalSet)


class TestNormalization:
    def test_empty(self):
        assert len(IntervalSet()) == 0
        assert not IntervalSet()

    def test_drops_empty_and_inverted(self):
        s = IntervalSet([(5, 5), (7, 3)])
        assert len(s) == 0

    def test_merges_overlapping(self):
        s = IntervalSet([(0, 5), (3, 8)])
        assert s.intervals == ((0, 8),)

    def test_merges_touching(self):
        s = IntervalSet([(0, 5), (5, 8)])
        assert s.intervals == ((0, 8),)

    def test_sorts(self):
        s = IntervalSet([(10, 12), (0, 2)])
        assert s.intervals == ((0, 2), (10, 12))

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            IntervalSet([(0, float("inf"))])

    @given(interval_sets)
    def test_normalized_is_disjoint_and_sorted(self, s):
        prev_end = -float("inf")
        for start, end in s:
            assert start < end
            assert start > prev_end  # strictly: touching merged away
            prev_end = end

    @given(interval_sets)
    def test_idempotent(self, s):
        assert IntervalSet(s.intervals) == s


class TestQueries:
    def test_contains_half_open(self):
        s = IntervalSet([(0, 10)])
        assert s.contains(0)
        assert s.contains(9.999)
        assert not s.contains(10)
        assert not s.contains(-0.001)

    def test_contains_many_matches_scalar(self):
        s = IntervalSet([(0, 10), (20, 30)])
        points = [-1, 0, 5, 10, 15, 20, 29.9, 30, 100]
        vec = s.contains_many(points)
        assert list(vec) == [s.contains(p) for p in points]

    def test_contains_many_empty_set(self):
        assert not IntervalSet().contains_many([1.0, 2.0]).any()

    def test_total_duration(self):
        assert IntervalSet([(0, 10), (20, 25)]).total_duration() == 15

    def test_durations(self):
        assert list(IntervalSet([(0, 10), (20, 25)]).durations()) == [10, 5]

    def test_span(self):
        assert IntervalSet([(5, 6), (1, 2)]).span == (1, 6)

    def test_span_of_empty_raises(self):
        with pytest.raises(ValueError):
            IntervalSet().span


class TestAlgebra:
    @given(interval_sets, interval_sets)
    @settings(max_examples=60)
    def test_union_covers_both(self, a, b):
        u = a.union(b)
        for s in (a, b):
            for start, end in s:
                mid = (start + end) / 2
                assert u.contains(mid)

    @given(interval_sets, interval_sets)
    @settings(max_examples=60)
    def test_intersection_subset_durations(self, a, b):
        i = a.intersection(b)
        assert i.total_duration() <= min(a.total_duration(),
                                         b.total_duration()) + 1e-9

    @given(interval_sets, interval_sets)
    @settings(max_examples=60)
    def test_inclusion_exclusion(self, a, b):
        union = a.union(b).total_duration()
        inter = a.intersection(b).total_duration()
        assert union + inter == pytest.approx(
            a.total_duration() + b.total_duration(), abs=1e-6)

    @given(interval_sets)
    @settings(max_examples=60)
    def test_complement_partitions_window(self, s):
        window = (0.0, 1000.0)
        gaps = s.complement(window)
        clipped = s.clip(*window)
        assert clipped.total_duration() + gaps.total_duration() == \
            pytest.approx(window[1] - window[0], abs=1e-6)
        assert clipped.intersection(gaps).total_duration() == \
            pytest.approx(0.0, abs=1e-9)

    def test_complement_empty_window(self):
        assert len(IntervalSet([(0, 1)]).complement((5, 5))) == 0

    def test_clip(self):
        s = IntervalSet([(0, 10), (20, 30)]).clip(5, 25)
        assert s.intervals == ((5, 10), (20, 25))

    def test_clip_empty_window(self):
        assert len(IntervalSet([(0, 10)]).clip(5, 5)) == 0

    def test_filter_min_duration(self):
        s = IntervalSet([(0, 5), (10, 100)]).filter_min_duration(10)
        assert s.intervals == ((10, 100),)

    def test_filter_min_duration_rejects_negative(self):
        with pytest.raises(ValueError):
            IntervalSet().filter_min_duration(-1)

    def test_intersection_two_pointer_edge(self):
        a = IntervalSet([(0, 2), (4, 6), (8, 10)])
        b = IntervalSet([(1, 9)])
        assert a.intersection(b).intervals == ((1, 2), (4, 6), (8, 9))


class TestFromTimestamps:
    def test_single_gap_split(self):
        ts = [0, 60, 120, 1200, 1260]
        s = IntervalSet.from_timestamps(ts, max_gap=600)
        assert len(s) == 2
        assert s.intervals[0] == (0, 120)
        assert s.intervals[1] == (1200, 1260)

    def test_empty(self):
        assert len(IntervalSet.from_timestamps([], max_gap=600)) == 0

    def test_single_timestamp_has_duration(self):
        s = IntervalSet.from_timestamps([100.0], max_gap=600)
        assert s.total_duration() > 0

    def test_unsorted_input_tolerated(self):
        s = IntervalSet.from_timestamps([120, 0, 60], max_gap=600)
        assert s.intervals[0] == (0, 120)

    def test_rejects_bad_gap(self):
        with pytest.raises(ValueError):
            IntervalSet.from_timestamps([0], max_gap=0)

    @given(st.lists(st.floats(min_value=0, max_value=10000,
                              allow_nan=False), max_size=50))
    def test_all_timestamps_covered(self, ts):
        s = IntervalSet.from_timestamps(ts, max_gap=600)
        for t in ts:
            assert s.contains(t) or any(abs(t - e) < 1.5 for _, e in s)

    @given(st.lists(st.floats(min_value=0, max_value=100000,
                              allow_nan=False), min_size=2, max_size=50))
    def test_internal_gaps_exceed_threshold(self, ts):
        s = IntervalSet.from_timestamps(ts, max_gap=600)
        ordered = sorted(s.intervals)
        for (_, end_a), (start_b, _) in zip(ordered, ordered[1:]):
            assert start_b - end_a > 0
