"""Tests for the repro.trace span-tracing subsystem.

Four contracts: the disabled path must be essentially free (the engine
calls ``trace.span`` unconditionally), the Chrome trace export must be
schema-valid (monotonic timestamps, matched B/E pairs, one track per
worker), the TraceSummary math must be exact on hand-built spans, and a
traced campaign must collect bitwise-identical data (``study_digest``
pinned, per-shard span coverage matching the plan).
"""

import json
import time

import pytest

from repro import StudyConfig, run_study, study_digest, trace
from repro.collection.engine import shard_count
from repro.trace import (
    TraceRecorder,
    chrome_trace_events,
    load_chrome_trace,
    render_trace_summary,
    summarize_spans,
    write_chrome_trace,
    write_trace_summary,
)


@pytest.fixture(autouse=True)
def _clean_recorder():
    """Never leak an active recorder into (or out of) a test."""
    trace.disable()
    yield
    trace.disable()


def _span(name, ts, dur, pid, cat="engine", **args):
    """Hand-build one span dict in the recorder's internal shape."""
    return {"name": name, "cat": cat, "ts": ts, "dur": dur,
            "pid": pid, "args": args}


class TestTraceRecorder:
    def test_add_and_drain(self):
        rec = TraceRecorder("t-1")
        rec.add("collect", 10.0, 12.5, cat="shard", shard=3)
        assert len(rec) == 1
        snap = rec.drain()
        assert snap["trace_id"] == "t-1"
        (span,) = snap["spans"]
        assert span["name"] == "collect"
        assert span["dur"] == 2.5
        assert span["args"]["shard"] == 3
        assert len(rec) == 0  # drained

    def test_negative_duration_clamped(self):
        rec = TraceRecorder()
        rec.add("x", 10.0, 9.0)
        assert rec.spans[0]["dur"] == 0.0

    def test_merge_folds_worker_snapshot(self):
        rec = TraceRecorder()
        rec.add("ingest", 0.0, 1.0)
        rec.merge({"trace_id": "", "spans": [_span("collect", 0.0, 1.0, 99)]})
        assert len(rec) == 2
        assert rec.spans[1]["pid"] == 99

    def test_instant_has_no_duration(self):
        trace.enable()
        trace.instant("fault_injected", cat="fault", shard=1)
        (span,) = trace.drain()["spans"]
        assert span["dur"] is None


class TestModuleApi:
    def test_span_noop_when_disabled(self):
        with trace.span("collect", cat="shard"):
            pass
        assert trace.drain()["spans"] == []

    def test_span_records_when_enabled(self):
        trace.enable("abc")
        with trace.span("collect", cat="shard", shard=0):
            pass
        snap = trace.drain()
        assert snap["trace_id"] == "abc"
        assert snap["spans"][0]["name"] == "collect"

    def test_span_records_on_exception(self):
        trace.enable()
        with pytest.raises(RuntimeError):
            with trace.span("collect", cat="shard", shard=0):
                raise RuntimeError("boom")
        (span,) = trace.drain()["spans"]
        assert span["args"]["failed"] is True

    def test_enable_is_idempotent(self):
        rec = trace.enable("first")
        assert trace.enable() is rec
        assert trace.enable("second") is rec
        assert rec.trace_id == "second"

    def test_add_span_explicit_endpoints(self):
        trace.enable()
        t0 = trace.now()
        trace.add_span("head_wait", t0, t0 + 0.5, cat="engine", shard=2,
                       failed=True, reason="timeout")
        (span,) = trace.drain()["spans"]
        assert span["dur"] == 0.5
        assert span["args"]["reason"] == "timeout"

    def test_disabled_overhead_is_small(self):
        """The disabled path must cost well under 2% on an instrumented
        loop whose body does real (if modest) work."""
        def body():
            return sum(range(2000))

        def bare(n):
            for _ in range(n):
                body()

        def instrumented(n):
            for _ in range(n):
                with trace.span("hot"):
                    body()

        n = 2000
        bare(n), instrumented(n)  # warm up
        t_bare = min(_timed(bare, n) for _ in range(5))
        t_inst = min(_timed(instrumented, n) for _ in range(5))
        # 2% is the design target; allow generous noise headroom in CI.
        assert t_inst <= t_bare * 1.25


def _timed(fn, n):
    t0 = time.perf_counter()
    fn(n)
    return time.perf_counter() - t0


class TestChromeExport:
    def _sample_spans(self):
        return [
            _span("submit", 100.0, 0.01, pid=50, shard=0),
            _span("materialize", 100.02, 0.5, pid=51, cat="shard", shard=0),
            _span("collect", 100.52, 1.0, pid=51, cat="shard", shard=0),
            _span("head_wait", 100.02, 1.6, pid=50, shard=0),
            _span("fault_injected", 100.6, None, pid=51, cat="fault",
                  shard=0),
            _span("ingest", 101.62, 0.2, pid=50, shard=0),
        ]

    def test_timestamps_monotonic_and_normalized(self):
        events = chrome_trace_events(self._sample_spans())
        timed = [e for e in events if e["ph"] in ("B", "E", "i")]
        ts = [e["ts"] for e in timed]
        assert ts == sorted(ts)
        assert ts[0] == 0.0  # normalized to the earliest span

    def test_be_pairs_matched_per_track(self):
        events = chrome_trace_events(self._sample_spans())
        depth = {}
        for event in events:
            if event["ph"] == "B":
                depth[event["tid"]] = depth.get(event["tid"], 0) + 1
            elif event["ph"] == "E":
                depth[event["tid"]] = depth[event["tid"]] - 1
                assert depth[event["tid"]] >= 0, "E without matching B"
        assert all(d == 0 for d in depth.values())

    def test_metadata_names_every_track(self):
        events = chrome_trace_events(self._sample_spans())
        meta = [e for e in events if e["ph"] == "M"]
        thread_names = {e["tid"]: e["args"]["name"] for e in meta
                        if e["name"] == "thread_name"}
        # pid 50 recorded the engine spans → parent track 0.
        assert thread_names[0] == "parent"
        assert thread_names[1] == "worker-1"
        assert any(e["name"] == "process_name" for e in meta)
        assert all(e["pid"] == 1 for e in events)

    def test_instants_exported(self):
        events = chrome_trace_events(self._sample_spans())
        instants = [e for e in events if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["fault_injected"]

    def test_empty_buffer_exports_nothing(self):
        assert chrome_trace_events([]) == []

    def test_round_trip_through_file(self, tmp_path):
        spans = self._sample_spans()
        path = write_chrome_trace(tmp_path / "trace.json", spans, "rt-1")
        payload = json.loads(path.read_text())
        assert payload["otherData"]["trace_id"] == "rt-1"
        assert payload["otherData"]["spans"] == len(spans)
        loaded, trace_id = load_chrome_trace(path)
        assert trace_id == "rt-1"
        # Every timed span and instant survives with its duration.
        assert len(loaded) == len(spans)
        by_name = {s["name"]: s for s in loaded}
        assert by_name["collect"]["dur"] == pytest.approx(1.0, abs=1e-6)
        assert by_name["fault_injected"]["dur"] is None
        assert by_name["collect"]["args"]["shard"] == 0

    def test_load_rejects_unmatched_events(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"traceEvents": [
            {"ph": "E", "name": "x", "ts": 1.0, "pid": 1, "tid": 0}]}))
        with pytest.raises(ValueError, match="unmatched"):
            load_chrome_trace(path)
        path.write_text(json.dumps({"traceEvents": [
            {"ph": "B", "name": "x", "ts": 1.0, "pid": 1, "tid": 0}]}))
        with pytest.raises(ValueError, match="unclosed"):
            load_chrome_trace(path)


class TestTraceSummary:
    def _parallel_spans(self):
        """Parent pid 1: submit 1s, head_wait 2s, ingest 1s (back to
        back over [0, 4]); worker pid 2 busy 2.4s."""
        return [
            _span("submit", 0.0, 1.0, pid=1, shard=0),
            _span("head_wait", 1.0, 2.0, pid=1, shard=0),
            _span("ingest", 3.0, 1.0, pid=1, shard=0),
            _span("materialize", 0.5, 1.0, pid=2, cat="shard", shard=0,
                  attempt=0),
            _span("collect", 1.5, 1.4, pid=2, cat="shard", shard=0,
                  attempt=0),
            # Dotted sub-span: nested inside collect, not extra busy time.
            _span("collect.wifi", 1.6, 0.5, pid=2, cat="shard"),
        ]

    def test_critical_path_decomposes_parent_wall(self):
        summary = summarize_spans(self._parallel_spans(), "s-1")
        assert summary.trace_id == "s-1"
        assert summary.wall_seconds == pytest.approx(4.0)
        assert summary.critical_path_seconds == pytest.approx(4.0)
        assert summary.critical_path_seconds <= summary.wall_seconds
        path = dict(summary.critical_path)
        assert path["submit"] == pytest.approx(1.0)
        assert path["head_wait"] == pytest.approx(2.0)
        assert path["ingest"] == pytest.approx(1.0)
        assert "other" not in path  # fully covered, no gap

    def test_worker_busy_excludes_waits(self):
        summary = summarize_spans(self._parallel_spans())
        # Parent busy = submit + ingest (head_wait is blocked time).
        assert summary.track_busy["parent"] == pytest.approx(2.0)
        # Worker busy = materialize + collect; the dotted sub-span nests.
        assert summary.track_busy["worker-1"] == pytest.approx(2.4)
        assert summary.worker_utilization == pytest.approx(2.4 / 4.0)
        assert summary.ingest_stall_seconds == pytest.approx(2.0)

    def test_shard_timeline_accounting(self):
        summary = summarize_spans(self._parallel_spans())
        timeline = summary.shards[0]
        assert timeline.run_seconds == pytest.approx(2.4)
        assert timeline.head_wait_seconds == pytest.approx(2.0)
        assert timeline.ingest_seconds == pytest.approx(1.0)
        assert timeline.retry_seconds == 0.0
        assert summary.retry_charged_seconds == 0.0

    def test_retry_charges_superseded_attempts(self):
        spans = [
            # Serial retry: attempt 0 ran (and is superseded), backoff
            # slept, attempt 1 succeeded.
            _span("collect", 0.0, 1.0, pid=1, cat="shard", shard=0,
                  attempt=0),
            _span("retry.backoff", 1.0, 0.5, pid=1, shard=0, attempt=0),
            _span("collect", 1.5, 1.0, pid=1, cat="shard", shard=0,
                  attempt=1),
            # Parallel timeout: the failed wait itself is the charge.
            _span("head_wait", 0.0, 2.0, pid=1, shard=1, failed=True,
                  reason="timeout"),
        ]
        summary = summarize_spans(spans)
        assert summary.retry_charged_seconds == pytest.approx(3.5)
        assert summary.shards[0].retry_seconds == pytest.approx(1.5)
        assert summary.shards[0].attempts == 2
        assert summary.shards[1].retry_seconds == pytest.approx(2.0)

    def test_serial_utilization_uses_parent(self):
        spans = [
            _span("materialize", 0.0, 1.0, pid=1, cat="shard", shard=0),
            _span("collect", 1.0, 2.0, pid=1, cat="shard", shard=0),
            _span("ingest", 3.0, 1.0, pid=1, shard=0),
        ]
        summary = summarize_spans(spans)
        assert summary.tracks == 1
        assert summary.worker_utilization == pytest.approx(1.0)

    def test_critical_path_gap_becomes_other(self):
        spans = [
            _span("submit", 0.0, 1.0, pid=1),
            _span("ingest", 3.0, 1.0, pid=1),
        ]
        summary = summarize_spans(spans)
        path = dict(summary.critical_path)
        assert path["other"] == pytest.approx(2.0)

    def test_empty_spans_summary(self):
        summary = summarize_spans([])
        assert summary.wall_seconds == 0.0
        assert summary.critical_path == []

    def test_summary_json_and_render(self, tmp_path):
        summary = summarize_spans(self._parallel_spans(), "s-2")
        path = write_trace_summary(tmp_path / "trace_summary.json", summary)
        payload = json.loads(path.read_text())
        assert payload["trace_id"] == "s-2"
        assert payload["shards"]["0"]["ingest_seconds"] == 1.0
        text = render_trace_summary(summary)
        assert "Timeline" in text and "Critical path" in text


class TestTracedCampaign:
    CONFIG = StudyConfig(seed=11, router_scale=0.15, duration_scale=0.02,
                         traffic_consents=2, low_activity_consents=1)

    def test_digest_pinned_and_spans_cover_shards(self, tmp_path):
        baseline = study_digest(run_study(self.CONFIG).data)
        result = run_study(self.CONFIG, trace_dir=tmp_path,
                           telemetry_dir=tmp_path / "tel",
                           workers=2, shard_size=4)
        assert study_digest(result.data) == baseline

        spans, _ = load_chrome_trace(tmp_path / "trace.json")
        n_shards = shard_count(
            len(result.deployment.plan), shard_size=4)
        for name in ("materialize", "collect", "ingest", "head_wait",
                     "submit"):
            shards = {s["args"].get("shard") for s in spans
                      if s["name"] == name}
            assert shards == set(range(n_shards)), (
                f"{name} spans cover shards {sorted(shards)}, "
                f"want 0..{n_shards - 1}")

        summary = json.loads((tmp_path / "trace_summary.json").read_text())
        assert summary["critical_path_seconds"] <= \
            summary["wall_seconds"] + 1e-9
        assert summary["tracks"] == 3  # parent + 2 workers

        # The health report surfaces the same timeline.
        health = json.loads((tmp_path / "tel" / "health.json").read_text())
        assert health["timeline"]["span_count"] == summary["span_count"]
        assert "Timeline" in (tmp_path / "tel" / "health.txt").read_text()

        # progress.json reached its terminal state.
        progress = json.loads(
            (tmp_path / "tel" / "progress.json").read_text())
        assert progress["status"] == "finished"
        assert progress["shards"]["ingested"] == n_shards

    def test_serial_trace_without_telemetry(self, tmp_path):
        result = run_study(self.CONFIG, trace_dir=tmp_path)
        assert (tmp_path / "trace.json").exists()
        assert (tmp_path / "progress.json").exists()
        spans, _ = load_chrome_trace(tmp_path / "trace.json")
        assert {s["name"] for s in spans} >= {"materialize", "collect",
                                              "ingest"}
        assert not trace.is_enabled()  # run_study cleaned up
        assert len(result.data.heartbeats) > 0
