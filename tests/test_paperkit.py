"""Tests for the one-call paper report generator."""

import pytest

from repro.core.paperkit import (
    ExperimentRow,
    PaperReport,
    render_report,
    reproduce_all,
)


@pytest.fixture(scope="module")
def report(small_data):
    return reproduce_all(small_data)


class TestReproduceAll:
    def test_datasets_present(self, report):
        assert {row.name for row in report.datasets} == {
            "Heartbeats", "Capacity", "Uptime", "Devices", "WiFi",
            "Traffic"}

    def test_every_section_populated(self, report):
        assert report.section4
        assert report.section5
        assert report.section6

    def test_key_experiments_covered(self, report):
        experiments = set(report.by_experiment())
        assert {"Fig. 3", "Fig. 7", "Fig. 8", "Table 5",
                "Fig. 11"} <= experiments

    def test_rows_well_formed(self, report):
        for row in report.rows():
            assert isinstance(row, ExperimentRow)
            assert row.experiment and row.quantity and row.paper
            assert row.measured is not None

    def test_rows_order(self, report):
        rows = report.rows()
        assert rows[:len(report.section4)] == report.section4
        assert rows[-len(report.section6):] == report.section6


class TestRenderReport:
    def test_render_contains_sections(self, report):
        text = render_report(report)
        assert "Table 2" in text
        assert "Section 4" in text
        assert "Section 5" in text
        assert "Section 6" in text
        assert "paper" in text and "measured" in text

    def test_render_empty_sections_skipped(self, report):
        empty = PaperReport(datasets=report.datasets)
        text = render_report(empty)
        assert "Section 4" not in text
        assert "Table 2" in text
