"""Tests for the streaming accumulators in repro.core.sketches.

The contract under test: below the exact threshold a QuantileSketch is
bitwise-identical to EmpiricalCdf; past it, every quantile stays within
the declared rank-error bound; the other accumulators match their exact
counterparts bitwise (hour profiles, ranked shares) or to float noise
(Welford mean/std).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sketches import (
    QUANTILE_RANK_TOLERANCE,
    QuantileSketch,
    RankedShareAccumulator,
    StreamingHourProfile,
    StreamingMeanSpread,
)
from repro.core.stats import (
    EmpiricalCdf,
    HourOfDayProfile,
    MeanWithSpread,
    mean_ranked_shares,
)

samples = st.lists(st.floats(min_value=-1e6, max_value=1e6,
                             allow_nan=False), min_size=1, max_size=200)


def rank_bounds(values, q, tol=QUANTILE_RANK_TOLERANCE):
    """Exact quantiles at q -/+ tol — the declared sketch error band."""
    arr = np.sort(np.asarray(values, dtype=float))
    lo = float(np.quantile(arr, max(0.0, q - tol)))
    hi = float(np.quantile(arr, min(1.0, q + tol)))
    return lo, hi


class TestQuantileSketchExactMode:
    """Below the threshold the sketch IS an EmpiricalCdf."""

    @given(samples)
    @settings(max_examples=50)
    def test_bitwise_equal_to_empirical_cdf(self, xs):
        sketch = QuantileSketch()
        sketch.add_many(xs)
        cdf = EmpiricalCdf.from_samples(xs)
        assert not sketch.compressed
        assert sketch.n == cdf.n
        for q in (0.0, 0.1, 0.25, 0.5, 0.9, 1.0):
            assert sketch.quantile(q) == cdf.quantile(q)
        for threshold in (min(xs), max(xs), np.median(xs), 0.0):
            assert sketch.fraction_at_most(threshold) == \
                cdf.fraction_at_most(threshold)
            assert sketch.fraction_at_least(threshold) == \
                cdf.fraction_at_least(threshold)
        assert sketch.series() == cdf.series()

    def test_mean_matches(self):
        sketch = QuantileSketch()
        sketch.add_many([1.0, 2.0, 4.0])
        assert sketch.mean == pytest.approx(7.0 / 3.0)

    def test_empty(self):
        sketch = QuantileSketch()
        assert sketch.n == 0
        assert np.isnan(sketch.mean)
        assert sketch.series() == []
        with pytest.raises(ValueError):
            sketch.quantile(0.5)
        with pytest.raises(ValueError):
            sketch.fraction_at_most(1.0)

    def test_single_sample(self):
        sketch = QuantileSketch()
        sketch.add(3.5)
        assert sketch.median == 3.5
        assert sketch.fraction_at_most(3.5) == 1.0
        assert sketch.fraction_at_least(3.5) == 1.0

    def test_quantile_bounds_validated(self):
        sketch = QuantileSketch()
        sketch.add(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(-0.1)
        with pytest.raises(ValueError):
            sketch.quantile(1.1)

    def test_compression_validated(self):
        with pytest.raises(ValueError):
            QuantileSketch(compression=5)


class TestQuantileSketchCompressed:
    """Past the threshold: bounded memory, bounded rank error."""

    def _filled(self, values, threshold=256):
        sketch = QuantileSketch(compression=100, exact_threshold=threshold)
        sketch.add_many(values)
        return sketch

    def test_compresses_past_threshold(self):
        rng = np.random.default_rng(7)
        values = rng.normal(size=5000)
        sketch = self._filled(values)
        assert sketch.compressed
        assert sketch.n == 5000
        # Memory bound: centroids, not samples.
        sketch._compress()
        assert sketch._means.size < 400

    @pytest.mark.parametrize("dist", ["normal", "lognormal", "uniform",
                                      "bimodal"])
    def test_quantiles_within_rank_tolerance(self, dist):
        rng = np.random.default_rng(13)
        values = {
            "normal": rng.normal(size=20000),
            "lognormal": rng.lognormal(size=20000),
            "uniform": rng.uniform(size=20000),
            "bimodal": np.concatenate([rng.normal(-10, 1, 10000),
                                       rng.normal(10, 1, 10000)]),
        }[dist]
        sketch = self._filled(values)
        for q in (0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99):
            lo, hi = rank_bounds(values, q)
            assert lo <= sketch.quantile(q) <= hi, f"q={q}"

    def test_extremes_exact(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=10000)
        sketch = self._filled(values)
        assert sketch.quantile(0.0) == float(values.min())
        assert sketch.quantile(1.0) == float(values.max())

    def test_fraction_at_most_within_tolerance(self):
        rng = np.random.default_rng(5)
        values = rng.normal(size=20000)
        sketch = self._filled(values)
        for threshold in (-2.0, -0.5, 0.0, 0.5, 2.0):
            exact = float((values <= threshold).mean())
            approx = sketch.fraction_at_most(threshold)
            assert abs(approx - exact) <= QUANTILE_RANK_TOLERANCE
            assert sketch.fraction_at_least(threshold) == \
                pytest.approx(1.0 - approx)

    def test_mean_stays_exact(self):
        rng = np.random.default_rng(11)
        values = rng.normal(size=20000)
        sketch = self._filled(values)
        assert sketch.mean == pytest.approx(float(values.mean()), rel=1e-12)

    def test_series_is_valid_cdf(self):
        rng = np.random.default_rng(17)
        sketch = self._filled(rng.normal(size=20000))
        series = sketch.series(points=40)
        xs = [x for x, _ in series]
        fs = [f for _, f in series]
        assert xs == sorted(xs)
        assert fs == sorted(fs)
        assert fs[0] == 0.0 and fs[-1] == 1.0


class TestQuantileSketchMerge:
    def test_merge_exact_stays_exact(self):
        a, b = QuantileSketch(), QuantileSketch()
        a.add_many([1.0, 2.0])
        b.add_many([3.0, 4.0])
        a.merge(b)
        assert not a.compressed
        cdf = EmpiricalCdf.from_samples([1.0, 2.0, 3.0, 4.0])
        assert a.median == cdf.median
        assert a.n == 4

    def test_merge_empty_is_noop(self):
        a, b = QuantileSketch(), QuantileSketch()
        a.add(1.0)
        a.merge(b)
        assert a.n == 1 and a.median == 1.0
        b.merge(a)
        assert b.n == 1 and b.median == 1.0

    def test_merge_overflowing_compresses_without_double_count(self):
        a = QuantileSketch(compression=100, exact_threshold=100)
        b = QuantileSketch(compression=100, exact_threshold=100)
        rng = np.random.default_rng(23)
        xs, ys = rng.normal(size=80), rng.normal(size=80)
        a.add_many(xs)
        b.add_many(ys)
        a.merge(b)
        assert a.compressed
        assert a.n == 160
        combined = np.concatenate([xs, ys])
        assert a.mean == pytest.approx(float(combined.mean()), rel=1e-12)
        for q in (0.1, 0.5, 0.9):
            lo, hi = rank_bounds(combined, q)
            assert lo <= a.quantile(q) <= hi

    def test_merge_compressed_sketches(self):
        rng = np.random.default_rng(29)
        xs, ys = rng.normal(size=5000), rng.normal(3.0, 1.0, size=5000)
        a = QuantileSketch(compression=100, exact_threshold=256)
        b = QuantileSketch(compression=100, exact_threshold=256)
        a.add_many(xs)
        b.add_many(ys)
        a.merge(b)
        combined = np.concatenate([xs, ys])
        assert a.n == 10000
        for q in (0.05, 0.5, 0.95):
            lo, hi = rank_bounds(combined, q)
            assert lo <= a.quantile(q) <= hi


class TestStreamingMeanSpread:
    @given(samples)
    @settings(max_examples=50)
    def test_matches_numpy(self, xs):
        acc = StreamingMeanSpread()
        for x in xs:
            acc.add(x)
        exact = MeanWithSpread.from_samples(xs)
        got = acc.result()
        assert got.n == exact.n
        assert got.mean == pytest.approx(exact.mean, rel=1e-9, abs=1e-9)
        assert got.std == pytest.approx(exact.std, rel=1e-9, abs=1e-9)

    def test_empty_is_nan(self):
        got = StreamingMeanSpread().result()
        assert got.n == 0
        assert np.isnan(got.mean) and np.isnan(got.std)

    @given(samples, samples)
    @settings(max_examples=50)
    def test_merge_equals_concat(self, xs, ys):
        a, b, both = (StreamingMeanSpread(), StreamingMeanSpread(),
                      StreamingMeanSpread())
        for x in xs:
            a.add(x)
            both.add(x)
        for y in ys:
            b.add(y)
            both.add(y)
        a.merge(b)
        assert a.result().mean == pytest.approx(both.result().mean,
                                                rel=1e-9, abs=1e-9)
        assert a.result().std == pytest.approx(both.result().std,
                                               rel=1e-9, abs=1e-6)

    def test_merge_into_empty(self):
        a, b = StreamingMeanSpread(), StreamingMeanSpread()
        b.add(2.0)
        b.add(4.0)
        a.merge(b)
        assert a.result().mean == 3.0


class TestStreamingHourProfile:
    def test_bitwise_equal_to_from_samples(self):
        rng = np.random.default_rng(31)
        hours = rng.integers(0, 24, size=500)
        values = rng.uniform(0, 10, size=500)
        acc = StreamingHourProfile()
        for h, v in zip(hours, values):
            acc.add(int(h), float(v))
        exact = HourOfDayProfile.from_samples(hours.tolist(),
                                              values.tolist())
        got = acc.result()
        assert np.array_equal(got.means, exact.means, equal_nan=True)
        assert np.array_equal(got.counts, exact.counts)

    def test_validates_hour(self):
        acc = StreamingHourProfile()
        with pytest.raises(ValueError):
            acc.add(24, 1.0)
        with pytest.raises(ValueError):
            acc.add(-1, 1.0)

    def test_merge(self):
        a, b = StreamingHourProfile(), StreamingHourProfile()
        a.add(3, 1.0)
        b.add(3, 3.0)
        b.add(5, 7.0)
        a.merge(b)
        profile = a.result()
        assert profile.means[3] == 2.0
        assert profile.means[5] == 7.0


class TestRankedShareAccumulator:
    def test_matches_mean_ranked_shares(self):
        vectors = [np.array([0.7, 0.2, 0.1]), np.array([1.0]),
                   np.array([0.5, 0.5])]
        acc = RankedShareAccumulator(4)
        for vec in vectors:
            acc.add(vec)
        assert np.array_equal(acc.result(), mean_ranked_shares(vectors, 4))

    def test_truncates_long_vectors(self):
        acc = RankedShareAccumulator(2)
        acc.add(np.array([0.4, 0.3, 0.2, 0.1]))
        assert np.array_equal(acc.result(), np.array([0.4, 0.3]))

    def test_zero_homes_is_zeros(self):
        assert np.array_equal(RankedShareAccumulator(3).result(),
                              np.zeros(3))

    def test_validates_ranks(self):
        with pytest.raises(ValueError):
            RankedShareAccumulator(0)

    def test_merge_requires_same_ranks(self):
        a, b = RankedShareAccumulator(2), RankedShareAccumulator(3)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge(self):
        a, b = RankedShareAccumulator(2), RankedShareAccumulator(2)
        a.add(np.array([1.0]))
        b.add(np.array([0.5, 0.5]))
        a.merge(b)
        assert a.homes == 2
        assert np.array_equal(a.result(), np.array([0.75, 0.25]))
