"""Tests for the security-alert detector and the compromise injector."""

import numpy as np
import pytest

from repro.core.alerts import (
    SecurityAlert,
    SecurityMonitor,
    split_training_window,
)
from repro.core.records import OBFUSCATED_DOMAIN, FlowRecord
from repro.simulation.malware import PROFILES, inject_compromise
from repro.simulation.timebase import DAY, utc

T0 = utc(2013, 4, 1)
WINDOW = (T0, T0 + 3 * DAY)


def benign_flows(mac, days=3, per_day=30, rid="r", start=T0):
    """A steady web-browsing device."""
    rng = np.random.default_rng(hash(mac) % 2**31)
    flows = []
    for day in range(days):
        for i in range(per_day):
            ts = start + day * DAY + 600 * i
            flows.append(FlowRecord(
                rid, ts, mac, "google.com", 0xF0000001, 443, "https",
                bytes_up=float(rng.uniform(5e3, 5e4)),
                bytes_down=float(rng.uniform(1e5, 1e6)),
                duration_seconds=20.0))
    return flows


class TestSecurityAlertRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            SecurityAlert("r", "m", "weird", 0.5, "x")
        with pytest.raises(ValueError):
            SecurityAlert("r", "m", "port-anomaly", 1.5, "x")


class TestSecurityMonitor:
    def make_fitted(self, macs=("a", "b")):
        monitor = SecurityMonitor()
        flows = [f for mac in macs for f in benign_flows(mac)]
        assert monitor.fit(flows) == len(macs)
        return monitor

    def test_clean_traffic_raises_nothing(self):
        monitor = self.make_fitted()
        later = benign_flows("a", start=T0 + 3 * DAY)
        assert monitor.scan(later) == []

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SecurityMonitor().scan([])

    def test_too_few_flows_skipped_in_fit(self):
        monitor = SecurityMonitor(min_baseline_flows=100)
        assert monitor.fit(benign_flows("a", days=1, per_day=5)) == 0

    def test_unknown_device_ignored_in_scan(self):
        monitor = self.make_fitted(macs=("a",))
        alerts = monitor.scan(benign_flows("never-seen",
                                           start=T0 + 3 * DAY))
        assert alerts == []

    def test_spambot_detected(self):
        monitor = self.make_fitted()
        rng = np.random.default_rng(1)
        later = benign_flows("a", start=T0 + 3 * DAY)
        later += inject_compromise(rng, "r", "a",
                                   (T0 + 3 * DAY, T0 + 6 * DAY),
                                   profile="spambot")
        alerts = monitor.scan(later)
        reasons = {a.reason for a in alerts}
        assert "port-anomaly" in reasons  # SMTP never seen before
        assert all(a.device_mac == "a" for a in alerts)

    def test_exfiltration_detected(self):
        monitor = self.make_fitted()
        rng = np.random.default_rng(2)
        later = benign_flows("a", start=T0 + 3 * DAY)
        later += inject_compromise(rng, "r", "a",
                                   (T0 + 3 * DAY, T0 + 6 * DAY),
                                   profile="exfiltration")
        alerts = monitor.scan(later)
        reasons = {a.reason for a in alerts}
        assert "upstream-anomaly" in reasons
        worst = alerts[0]
        assert worst.severity >= 0.5

    def test_alerts_attributed_to_infected_device_only(self):
        monitor = self.make_fitted(macs=("a", "b"))
        rng = np.random.default_rng(3)
        later = (benign_flows("a", start=T0 + 3 * DAY)
                 + benign_flows("b", start=T0 + 3 * DAY)
                 + inject_compromise(rng, "r", "b",
                                     (T0 + 3 * DAY, T0 + 6 * DAY),
                                     profile="spambot"))
        alerts = monitor.scan(later)
        assert alerts
        assert {a.device_mac for a in alerts} == {"b"}

    def test_alerts_sorted_by_severity(self):
        monitor = self.make_fitted()
        rng = np.random.default_rng(4)
        later = benign_flows("a", start=T0 + 3 * DAY) + inject_compromise(
            rng, "r", "a", (T0 + 3 * DAY, T0 + 6 * DAY), "exfiltration")
        alerts = monitor.scan(later)
        severities = [a.severity for a in alerts]
        assert severities == sorted(severities, reverse=True)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SecurityMonitor(similarity_floor=2)
        with pytest.raises(ValueError):
            SecurityMonitor(upstream_factor=1.0)


class TestMalwareInjection:
    def test_profiles_exhaustive(self):
        assert set(PROFILES) == {"spambot", "exfiltration"}

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            inject_compromise(np.random.default_rng(0), "r", "m", WINDOW,
                              profile="cryptominer")

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            inject_compromise(np.random.default_rng(0), "r", "m",
                              (T0, T0), "spambot")

    def test_spambot_shape(self):
        flows = inject_compromise(np.random.default_rng(0), "r", "m",
                                  WINDOW, "spambot")
        assert len(flows) > 100  # fan-out
        for f in flows:
            assert f.application == "smtp"
            assert f.domain == OBFUSCATED_DOMAIN
            assert f.bytes_up > f.bytes_down
            assert WINDOW[0] <= f.timestamp < WINDOW[1]

    def test_exfiltration_shape(self):
        flows = inject_compromise(np.random.default_rng(0), "r", "m",
                                  WINDOW, "exfiltration")
        assert 1 <= len(flows) < 100  # few fat flows
        drop_ips = {f.remote_ip for f in flows}
        assert len(drop_ips) == 1  # one stable drop point
        assert all(f.bytes_up > 50e6 for f in flows)

    def test_intensity_scales(self):
        loud = inject_compromise(np.random.default_rng(5), "r", "m",
                                 WINDOW, "spambot", intensity=1.0)
        quiet = inject_compromise(np.random.default_rng(5), "r", "m",
                                  WINDOW, "spambot", intensity=0.05)
        assert len(quiet) < len(loud)

    def test_intensity_validation(self):
        with pytest.raises(ValueError):
            inject_compromise(np.random.default_rng(0), "r", "m", WINDOW,
                              "spambot", intensity=0)


class TestSplitTrainingWindow:
    def test_split(self):
        flows = benign_flows("a", days=4)
        train, scan = split_training_window(flows, fraction=0.5)
        assert len(train) + len(scan) == len(flows)
        assert max(f.timestamp for f in train) <= \
            min(f.timestamp for f in scan)

    def test_empty(self):
        assert split_training_window([]) == ([], [])

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            split_training_window(benign_flows("a"), fraction=1.0)
