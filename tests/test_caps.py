"""Tests for the usage-cap tool (meter + dashboard analysis)."""

import numpy as np
import pytest

from repro.core.caps import (
    cap_forecast,
    device_usage_table,
    homes_projected_over_cap,
)
from repro.core.datasets import StudyData, ThroughputSeries
from repro.core.records import FlowRecord, RouterInfo
from repro.firmware.caps import CapAlert, CapMeter, UsageCapPolicy, meter_throughput
from repro.simulation.timebase import DAY, MINUTE, StudyWindows, utc

T0 = utc(2013, 4, 1)
GB = 1e9


def info(rid="r"):
    return RouterInfo(rid, "US", True, -5.0, 49800)


def flow(rid, mac, domain, down, up=0.0, ts=T0):
    return FlowRecord(rid, ts, mac, domain, 0xF0000001, 443, "https",
                      up, down, 10.0)


class TestUsageCapPolicy:
    def test_thresholds_sorted(self):
        policy = UsageCapPolicy(10 * GB, alert_thresholds=(1.0, 0.5))
        assert policy.alert_thresholds == (0.5, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            UsageCapPolicy(0)
        with pytest.raises(ValueError):
            UsageCapPolicy(1, cycle_days=0)
        with pytest.raises(ValueError):
            UsageCapPolicy(1, alert_thresholds=(0.0,))

    def test_cycle_seconds(self):
        assert UsageCapPolicy(1, cycle_days=30).cycle_seconds == 30 * DAY


class TestCapMeter:
    def make(self, cap=10 * GB):
        return CapMeter("r", UsageCapPolicy(cap), cycle_start=T0)

    def test_alerts_fire_in_order(self):
        meter = self.make(cap=1 * GB)
        assert meter.record(T0 + 1, 0.4 * GB) == []
        fired = meter.record(T0 + 2, 0.2 * GB)
        assert [a.threshold for a in fired] == [0.5]
        fired = meter.record(T0 + 3, 0.5 * GB)
        assert [a.threshold for a in fired] == [0.9, 1.0]
        assert fired[-1].over_cap

    def test_each_threshold_fires_once_per_cycle(self):
        meter = self.make(cap=1 * GB)
        meter.record(T0 + 1, 0.6 * GB)
        assert meter.record(T0 + 2, 0.01 * GB) == []

    def test_cycle_rollover_resets(self):
        meter = self.make(cap=1 * GB)
        meter.record(T0 + 1, 0.9 * GB)
        assert meter.used_fraction == pytest.approx(0.9)
        fired = meter.record(T0 + 31 * DAY, 0.55 * GB)
        assert meter.used_fraction == pytest.approx(0.55)
        assert [a.threshold for a in fired] == [0.5]

    def test_multi_cycle_skip(self):
        meter = self.make()
        meter.record(T0 + 95 * DAY, 1.0)
        assert meter.cycle_start == T0 + 90 * DAY

    def test_rejects_bad_input(self):
        meter = self.make()
        with pytest.raises(ValueError):
            meter.record(T0 + 1, -5)
        with pytest.raises(ValueError):
            meter.record(T0 - 10, 5)


class TestMeterThroughput:
    def test_bytes_accounted(self):
        # One day at a constant 2.2 Mbps peak => 1 Mbps mean floor.
        n = int(DAY / MINUTE)
        series = ThroughputSeries("r", T0, np.full(n, 1.1e6),
                                  np.full(n, 1.1e6))
        policy = UsageCapPolicy(monthly_cap_bytes=100 * GB)
        meter = meter_throughput(series, policy)
        expected = 2.2e6 / 2.2 / 8 * DAY  # mean bps / 8 * seconds
        assert meter.used_bytes == pytest.approx(expected, rel=0.01)

    def test_alerts_from_series(self):
        n = int(DAY / MINUTE)
        series = ThroughputSeries("r", T0, np.full(n, 11e6), np.zeros(n))
        # ~0.54 GB/day mean floor; cap at 0.5 GB should fire everything.
        policy = UsageCapPolicy(monthly_cap_bytes=0.5 * GB)
        meter = meter_throughput(series, policy)
        assert [a.threshold for a in meter.alerts] == [0.5, 0.9, 1.0]


class TestDashboard:
    def make_data(self):
        flows = [
            flow("r", "roku", "netflix.com", 6 * GB),
            flow("r", "imac", "dropbox.com", 1 * GB, up=2 * GB),
            flow("r", "phone", "facebook.com", 1 * GB),
        ]
        minutes = int(2 * DAY / MINUTE)
        series = ThroughputSeries("r", T0, np.full(minutes, 2.2e6),
                                  np.full(minutes, 8.8e6))
        return StudyData(routers={"r": info()}, windows=StudyWindows(),
                         flows=flows, throughput={"r": series})

    def test_device_table_ordering_and_shares(self):
        table = device_usage_table(self.make_data(), "r")
        assert [row.device_mac for row in table] == ["roku", "imac", "phone"]
        assert table[0].share_of_home == pytest.approx(0.6)
        assert table[1].bytes_up == pytest.approx(2 * GB)
        assert table[0].top_domains == ("netflix.com",)

    def test_forecast(self):
        data = self.make_data()
        policy = UsageCapPolicy(monthly_cap_bytes=200 * GB, cycle_days=30)
        forecast = cap_forecast(data, "r", policy)
        assert forecast is not None
        # (2.2 + 8.8) Mbps peaks -> 5 Mbps mean floor -> ~54 GB/day.
        daily = (2.2e6 + 8.8e6) / 2.2 / 8 * DAY
        assert forecast.used_bytes == pytest.approx(2 * daily, rel=0.02)
        assert forecast.projected_bytes == pytest.approx(30 * daily, rel=0.05)
        assert forecast.will_exceed
        assert forecast.days_until_cap == pytest.approx(
            (200 * GB - forecast.used_bytes) / daily, rel=0.05)

    def test_forecast_already_over_cap(self):
        data = self.make_data()
        policy = UsageCapPolicy(monthly_cap_bytes=10 * GB, cycle_days=30)
        forecast = cap_forecast(data, "r", policy)
        assert forecast.days_until_cap == 0.0
        assert forecast.used_fraction > 1.0

    def test_forecast_quiet_home(self):
        data = self.make_data()
        minutes = 100
        data.throughput["r"] = ThroughputSeries(
            "r", T0, np.zeros(minutes), np.zeros(minutes))
        policy = UsageCapPolicy(monthly_cap_bytes=1 * GB)
        forecast = cap_forecast(data, "r", policy)
        assert forecast.used_bytes == 0
        assert forecast.days_until_cap is None
        assert not forecast.will_exceed

    def test_forecast_missing_home(self):
        data = self.make_data()
        assert cap_forecast(data, "ghost", UsageCapPolicy(GB)) is None

    def test_homes_projected_over_cap(self):
        data = self.make_data()
        tight = UsageCapPolicy(monthly_cap_bytes=1 * GB)
        loose = UsageCapPolicy(monthly_cap_bytes=1e6 * GB)
        assert homes_projected_over_cap(data, tight) == ["r"]
        assert homes_projected_over_cap(data, loose) == []
