"""Tests for household schedules and router power models."""

import numpy as np
import pytest

from repro.simulation.behavior import ActivitySchedule
from repro.simulation.power import (
    MODE_ALWAYS_ON,
    MODE_APPLIANCE,
    AlwaysOnPower,
    AppliancePower,
    draw_power_model,
)
from repro.simulation.timebase import DAY, HOUR, StudyCalendar, utc

SPAN = (utc(2013, 3, 1), utc(2013, 4, 12))  # six weeks
CAL = StudyCalendar(0)


def schedule(seed=0):
    return ActivitySchedule.generate(np.random.default_rng(seed))


class TestActivitySchedule:
    def test_curves_within_unit_interval(self):
        s = schedule()
        for curve in (s.presence_weekday, s.presence_weekend,
                      s.activity_weekday, s.activity_weekend):
            assert curve.min() >= 0 and curve.max() <= 1

    def test_baseline_shapes(self):
        s = ActivitySchedule.baseline()
        # Weekday presence: evening peak above workday trough; small night dip.
        assert s.presence_weekday[20] > s.presence_weekday[12]
        assert s.presence_weekday[2] > s.presence_weekday[12]
        # Activity collapses at night, unlike presence.
        assert s.activity_weekday[3] < 0.3 * s.presence_weekday[3]

    def test_weekend_flatter_than_weekday(self):
        s = ActivitySchedule.baseline()
        weekday_amp = s.presence_weekday.max() - s.presence_weekday.min()
        weekend_amp = s.presence_weekend.max() - s.presence_weekend.min()
        assert weekend_amp < weekday_amp

    def test_generate_deterministic(self):
        a = ActivitySchedule.generate(np.random.default_rng(5))
        b = ActivitySchedule.generate(np.random.default_rng(5))
        assert np.array_equal(a.presence_weekday, b.presence_weekday)

    def test_presence_uses_local_time(self):
        s = ActivitySchedule.baseline()
        # 13:00 UTC is evening in India (+5.5): presence should be higher.
        noon_utc = utc(2013, 4, 1, 13)
        assert s.presence(StudyCalendar(5.5), noon_utc) > \
            s.presence(StudyCalendar(0), noon_utc)

    def test_rejects_bad_curves(self):
        with pytest.raises(ValueError):
            ActivitySchedule(np.zeros(23), np.zeros(24), np.zeros(24),
                             np.zeros(24))
        with pytest.raises(ValueError):
            ActivitySchedule(np.full(24, 1.5), np.zeros(24), np.zeros(24),
                             np.zeros(24))

    def test_evening_block_within_day(self):
        s = ActivitySchedule.baseline()
        rng = np.random.default_rng(0)
        day_start = CAL.local_midnight_before(utc(2013, 4, 2, 12))
        start, end = s.evening_block(CAL, day_start, rng)
        assert day_start <= start < end <= day_start + DAY + 6 * HOUR

    def test_weekend_blocks_longer_on_average(self):
        s = ActivitySchedule.baseline()
        rng = np.random.default_rng(0)
        weekday = CAL.local_midnight_before(utc(2013, 4, 2, 12))
        weekend = CAL.local_midnight_before(utc(2013, 4, 6, 12))
        wd = np.mean([np.subtract(*reversed(s.evening_block(CAL, weekday, rng)))
                      for _ in range(50)])
        we = np.mean([np.subtract(*reversed(s.evening_block(CAL, weekend, rng)))
                      for _ in range(50)])
        assert we > wd


class TestAlwaysOnPower:
    def test_high_on_fraction(self):
        power = AlwaysOnPower(np.random.default_rng(1), SPAN, CAL)
        assert power.on_fraction(*SPAN) > 0.93

    def test_intervals_within_span(self):
        power = AlwaysOnPower(np.random.default_rng(1), SPAN, CAL)
        for start, end in power.on_intervals:
            assert SPAN[0] <= start < end <= SPAN[1]

    def test_nightly_off_reduces_uptime(self):
        base = AlwaysOnPower(np.random.default_rng(2), SPAN, CAL,
                             nightly_off_probability=0.0)
        thrifty = AlwaysOnPower(np.random.default_rng(2), SPAN, CAL,
                                nightly_off_probability=0.9)
        assert thrifty.on_fraction(*SPAN) < base.on_fraction(*SPAN) - 0.1

    def test_mode_label(self):
        power = AlwaysOnPower(np.random.default_rng(1), SPAN, CAL)
        assert power.mode == MODE_ALWAYS_ON

    def test_is_on_matches_intervals(self):
        power = AlwaysOnPower(np.random.default_rng(3), SPAN, CAL)
        mid = (SPAN[0] + SPAN[1]) / 2
        assert power.is_on(mid) == power.on_intervals.contains(mid)

    def test_rejects_empty_span(self):
        with pytest.raises(ValueError):
            AlwaysOnPower(np.random.default_rng(0), (10.0, 10.0), CAL)


class TestAppliancePower:
    def test_low_on_fraction(self):
        power = AppliancePower(np.random.default_rng(1), SPAN, CAL, schedule())
        assert power.on_fraction(*SPAN) < 0.45

    def test_daily_cycling(self):
        power = AppliancePower(np.random.default_rng(1), SPAN, CAL, schedule())
        days = (SPAN[1] - SPAN[0]) / DAY
        # Roughly one on-block per day (minus skip days, plus weekend extras).
        assert 0.5 * days <= len(power.on_intervals) <= 2.2 * days

    def test_evening_bias_on_weekdays(self):
        power = AppliancePower(np.random.default_rng(1), SPAN, CAL, schedule())
        evening_on = sum(
            1 for day in range(10)
            if power.is_on(utc(2013, 3, 4 + day, 20, 30))
            and not CAL.is_weekend(utc(2013, 3, 4 + day, 20, 30)))
        morning_on = sum(
            1 for day in range(10)
            if power.is_on(utc(2013, 3, 4 + day, 4, 0)))
        assert evening_on > morning_on

    def test_mode_label(self):
        power = AppliancePower(np.random.default_rng(1), SPAN, CAL, schedule())
        assert power.mode == MODE_APPLIANCE


class TestDrawPowerModel:
    def test_appliance_probability_zero(self):
        for seed in range(5):
            model = draw_power_model(np.random.default_rng(seed), SPAN, CAL,
                                     schedule(), appliance_probability=0.0,
                                     developed=True)
            assert model.mode == MODE_ALWAYS_ON

    def test_appliance_probability_one(self):
        model = draw_power_model(np.random.default_rng(0), SPAN, CAL,
                                 schedule(), appliance_probability=1.0,
                                 developed=False)
        assert model.mode == MODE_APPLIANCE

    def test_developing_nightly_off_lowers_uptime(self):
        fractions_dev = []
        fractions_dvg = []
        for seed in range(8):
            dev = draw_power_model(np.random.default_rng(seed), SPAN, CAL,
                                   schedule(seed), 0.0, developed=True,
                                   nightly_off_probability=0.01)
            dvg = draw_power_model(np.random.default_rng(seed), SPAN, CAL,
                                   schedule(seed), 0.0, developed=False,
                                   nightly_off_probability=0.5)
            fractions_dev.append(dev.on_fraction(*SPAN))
            fractions_dvg.append(dvg.on_fraction(*SPAN))
        assert np.mean(fractions_dvg) < np.mean(fractions_dev) - 0.05
