"""Archive round-trip exactness: export → load must be digest-identical.

The paper's public release was the archive; if round-tripping it loses
routers (zero-heartbeat homes) or precision (fixed-point truncation),
every analysis over the archive silently diverges from the campaign.
"""

import dataclasses

import numpy as np
import pytest

from repro import study_digest
from repro.collection.engine import run_campaign
from repro.collection.export import export_study, load_study
from repro.core.datasets import HeartbeatLog, ThroughputSeries
from repro.simulation.deployment import DeploymentConfig, build_deployment_plan
from repro.simulation.timebase import StudyWindows

SMALL = DeploymentConfig(
    seed=11, windows=StudyWindows().scaled(0.02), router_scale=0.05,
    traffic_consents=2, low_activity_consents=0,
    countries=("US", "IN", "BR"))


@pytest.fixture(scope="module")
def campaign():
    """A seeded campaign with one router's heartbeats all forced lost."""
    plan = build_deployment_plan(SMALL)
    data = run_campaign(plan)
    # Force a zero-delivered-heartbeat router — the regression this file
    # pins is load_study dropping such routers from the archive.
    victim = plan.router_ids[0]
    sent = data.heartbeat_delivery.get(victim, (len(data.heartbeats[victim]),
                                                0))[0]
    data.heartbeats[victim] = HeartbeatLog(victim,
                                           np.array([], dtype=float))
    data.heartbeat_delivery[victim] = (sent, 0)
    return data, victim


class TestDigestRoundTrip:
    def test_full_archive_digest_identical(self, campaign, tmp_path):
        data, victim = campaign
        load = load_study(export_study(data, tmp_path / "full"))
        assert victim in load.heartbeats
        assert len(load.heartbeats[victim]) == 0
        assert study_digest(load) == study_digest(data)

    def test_public_archive_digest_identical(self, campaign, tmp_path):
        data, _ = campaign
        load = load_study(export_study(data, tmp_path / "public",
                                       include_pii_datasets=False))
        withheld = dataclasses.replace(data, flows=[], throughput={},
                                       dns=[])
        assert study_digest(load) == study_digest(withheld)

    def test_double_round_trip_stable(self, campaign, tmp_path):
        data, _ = campaign
        once = load_study(export_study(data, tmp_path / "one"))
        twice = load_study(export_study(once, tmp_path / "two"))
        assert study_digest(twice) == study_digest(once)


class TestNumericExactness:
    def test_awkward_floats_survive(self, campaign, tmp_path):
        data, _ = campaign
        rid = next(rid for rid, log in data.heartbeats.items() if len(log))
        # Values whose shortest repr needs all 17 significant digits —
        # the cases a fixed .3f/.1f truncation destroyed.
        awkward = np.array([0.1 + 0.2, 1.0 / 3.0, 1e9 + 1e-6])
        data = dataclasses.replace(
            data, heartbeats={**data.heartbeats,
                              rid: HeartbeatLog(rid, awkward)})
        load = load_study(export_study(data, tmp_path / "awkward"))
        assert np.array_equal(load.heartbeats[rid].timestamps, awkward)
        assert study_digest(load) == study_digest(data)

    @pytest.mark.parametrize("interval", [60, 60.5])
    def test_interval_kind_preserved(self, campaign, tmp_path, interval):
        data, _ = campaign
        assert data.throughput  # fixture includes traffic homes
        rid, series = next(iter(data.throughput.items()))
        data = dataclasses.replace(
            data, throughput={
                **data.throughput,
                rid: dataclasses.replace(series,
                                         interval_seconds=interval)})
        load = load_study(export_study(data, tmp_path / f"i{interval}"))
        back = load.throughput[rid]
        assert back.interval_seconds == interval
        assert type(back.interval_seconds) is type(interval)
        assert type(back.start) is type(series.start)

    def test_throughput_values_exact(self, campaign, tmp_path):
        data, _ = campaign
        load = load_study(export_study(data, tmp_path / "tp"))
        for rid, series in data.throughput.items():
            back = load.throughput[rid]
            assert np.array_equal(back.up_bps, series.up_bps)
            assert np.array_equal(back.down_bps, series.down_bps)
            assert back.start == series.start


class TestSyntheticSeries:
    def test_manual_series_round_trip(self, tmp_path, campaign):
        # A hand-built series with an integer start and interval: the
        # kinds must survive export → load untouched.
        data, _ = campaign
        rid = next(iter(data.throughput))
        series = ThroughputSeries(
            router_id=rid, start=86400,
            up_bps=np.array([0.1, 2.0 / 7.0]),
            down_bps=np.array([1e7, 3.3]),
            interval_seconds=60)
        data = dataclasses.replace(data,
                                   throughput={**data.throughput,
                                               rid: series})
        back = load_study(export_study(data, tmp_path / "manual"))
        loaded = back.throughput[rid]
        assert loaded.start == 86400 and type(loaded.start) is int
        assert loaded.interval_seconds == 60
        assert type(loaded.interval_seconds) is int
        assert np.array_equal(loaded.up_bps, series.up_bps)
        assert np.array_equal(loaded.down_bps, series.down_bps)
