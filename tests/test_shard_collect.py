"""Columnar collection equivalence: collect_shard == BismarkRouter per home.

The shard-wide columnar collectors (``repro.firmware.shard_collect``) must
be a pure re-expression of the per-home reference path: same streams, same
draw order, identical records, identical batch chunking.  These tests
compare every upload of every shard split of a small plan against uploads
built the pre-refactor way (``BismarkRouter`` + ``router_output_to_batches``),
plus the columnar batch container, the tick-walk schedule helper, and the
wifi backoff determinism contract.
"""

import pickle

import numpy as np
import pytest

from repro.collection.batches import (
    ColumnarRecords,
    columnar_batches,
    list_batches,
    router_output_to_batches,
)
from repro.collection.engine import _shard_statics
from repro.collection.storage import RecordStore
from repro.core.records import RouterInfo, Spectrum
from repro.core.pipeline import StudyConfig, run_study
from repro.firmware.router import BismarkRouter
from repro.firmware.shard_collect import _tick_walk, collect_shard
from repro.firmware.wifi import SCAN_INTERVAL
from repro.simulation.deployment import (
    DeploymentConfig,
    build_deployment_plan,
    materialize_shard,
)
from repro.simulation.seeding import SeedHierarchy
from repro.simulation.timebase import StudyWindows


@pytest.fixture(scope="module")
def plan():
    return build_deployment_plan(DeploymentConfig(
        seed=2013, router_scale=0.05,
        windows=StudyWindows().scaled(0.05),
        traffic_consents=2, low_activity_consents=1))


@pytest.fixture(scope="module")
def reference_uploads(plan):
    """(info, batches) per router from the per-home reference path."""
    _, policy = _shard_statics()
    seeds = SeedHierarchy(plan.seed)
    cohort = materialize_shard(plan, 0, 1)
    uploads = {}
    for home in cohort:
        rid = home.router_id
        router = BismarkRouter(
            home, seeds, policy,
            collect_uptime=rid in plan.uptime_routers,
            collect_devices=rid in plan.devices_routers,
            collect_wifi=rid in plan.wifi_routers,
            collect_traffic=rid in plan.traffic_routers)
        uploads[rid] = (home.info,
                        router_output_to_batches(router.run(plan.windows)))
    return uploads


def assert_same_batches(got, ref):
    assert [b.dataset for b in got] == [b.dataset for b in ref]
    for got_batch, ref_batch in zip(got, ref):
        dataset = got_batch.dataset
        assert got_batch.router_id == ref_batch.router_id
        if dataset == "heartbeats":
            got_arr = np.asarray(got_batch.records)
            ref_arr = np.asarray(ref_batch.records)
            assert got_arr.dtype == ref_arr.dtype
            assert got_arr.tobytes() == ref_arr.tobytes()
        elif dataset == "throughput":
            got_series, ref_series = got_batch.records, ref_batch.records
            assert got_series.router_id == ref_series.router_id
            assert got_series.start == ref_series.start
            assert got_series.interval_seconds == ref_series.interval_seconds
            assert got_series.up_bps.tobytes() == ref_series.up_bps.tobytes()
            assert got_series.down_bps.tobytes() == \
                ref_series.down_bps.tobytes()
        else:
            assert len(got_batch.records) == len(ref_batch.records), dataset
            assert list(got_batch.records) == list(ref_batch.records), dataset


def test_reference_covers_every_collector(reference_uploads):
    """Guard against a vacuous equivalence test: every dataset occurs."""
    seen = {batch.dataset
            for _, batches in reference_uploads.values()
            for batch in batches}
    assert seen == {"heartbeats", "uptime", "capacity", "device_counts",
                    "roster", "wifi_scans", "flows", "dns", "throughput"}


@pytest.mark.parametrize("n_shards", [1, 2, 3, 5, 7])
def test_every_shard_split_matches_reference(plan, reference_uploads,
                                             n_shards):
    """Columnar uploads are record-identical for every shard split."""
    universe, policy = _shard_statics()
    seeds = SeedHierarchy(plan.seed)
    covered = 0
    for shard_index in range(n_shards):
        cohort = materialize_shard(plan, shard_index, n_shards,
                                   domain_universe=universe)
        uploads = collect_shard(cohort, plan, seeds, policy)
        lo, hi = plan.shard_bounds(shard_index, n_shards)
        assert [u.router_id for u in uploads] == plan.router_ids[lo:hi]
        for upload in uploads:
            ref_info, ref_batches = reference_uploads[upload.router_id]
            assert upload.info == ref_info
            assert_same_batches(list(upload.batches), ref_batches)
        covered += len(uploads)
    assert covered == len(plan)


def test_uploads_pickle_roundtrip(plan, reference_uploads):
    """Uploads cross the process boundary columnar and come back equal."""
    universe, policy = _shard_statics()
    cohort = materialize_shard(plan, 0, 3, domain_universe=universe)
    uploads = collect_shard(cohort, plan, SeedHierarchy(plan.seed), policy)
    restored = pickle.loads(pickle.dumps(uploads))
    for upload in restored:
        _, ref_batches = reference_uploads[upload.router_id]
        assert_same_batches(list(upload.batches), ref_batches)


class TestTickWalk:
    """The checked-arange schedule equals the scalar accumulation walk."""

    @staticmethod
    def scalar_walk(first, end, interval):
        ticks = []
        tick = first
        while tick < end:
            ticks.append(tick)
            tick += interval
        return ticks

    def test_matches_accumulation_across_random_phases(self):
        rng = np.random.default_rng(7)
        start = 1349049600.0  # the study epoch range
        for _ in range(300):
            interval = float(rng.choice([60.0, 600.0, 3600.0, 43200.0]))
            first = start + float(rng.uniform(0, interval))
            end = first + float(rng.uniform(0, 400)) * interval \
                + float(rng.uniform(-interval, interval))
            assert _tick_walk(first, end, interval).tolist() == \
                self.scalar_walk(first, end, interval)

    def test_irrational_interval_still_exact(self):
        # Intervals with repeating binary fractions accumulate rounding,
        # forcing the scalar fallback — the result must still be exact.
        for interval in (0.1, 1.0 / 3.0, 7.3):
            first, end = 5.05, 5.05 + 1000 * interval
            assert _tick_walk(first, end, interval).tolist() == \
                self.scalar_walk(first, end, interval)

    def test_empty_and_single_tick_windows(self):
        assert _tick_walk(10.0, 10.0, 5.0).size == 0
        assert _tick_walk(12.0, 10.0, 5.0).size == 0
        assert _tick_walk(9.9, 10.0, 5.0).tolist() == [9.9]


class TestColumnarRecords:
    COLS = {"timestamp": [1.0, 2.0, 3.0], "uptime_seconds": [5.0, 0.0, 9.5]}

    def make(self):
        return ColumnarRecords("uptime", "us-001",
                               {k: list(v) for k, v in self.COLS.items()})

    def test_len_is_free_and_iteration_fabricates(self):
        records = self.make()
        assert len(records) == 3
        assert records._cache is None  # len() must not materialize
        materialized = list(records)
        assert [r.timestamp for r in materialized] == [1.0, 2.0, 3.0]
        assert [r.uptime_seconds for r in materialized] == [5.0, 0.0, 9.5]
        assert all(r.router_id == "us-001" for r in materialized)
        # Fabrication is cached: same objects on the second pass.
        assert records[0] is materialized[0]

    def test_fabricated_records_equal_real_ones(self):
        from repro.core.records import UptimeReport
        fabricated = list(self.make())
        real = [UptimeReport("us-001", ts, up)
                for ts, up in zip(self.COLS["timestamp"],
                                  self.COLS["uptime_seconds"])]
        assert fabricated == real

    def test_pickle_ships_columns_not_cache(self):
        records = self.make()
        list(records)  # populate the cache
        restored = pickle.loads(pickle.dumps(records))
        assert restored._cache is None
        assert list(restored) == list(records)

    def test_bulk_validation_mirrors_post_init(self):
        with pytest.raises(ValueError):
            ColumnarRecords("uptime", "r",
                            {"timestamp": [1.0], "uptime_seconds": [-1.0]})
        with pytest.raises(ValueError):
            ColumnarRecords("capacity", "r",
                            {"timestamp": [1.0], "downstream_mbps": [-0.1],
                             "upstream_mbps": [1.0]})
        with pytest.raises(ValueError):
            ColumnarRecords("device_counts", "r",
                            {"timestamp": [1.0], "wired": [-1],
                             "wireless_2_4": [0], "wireless_5": [0]})
        with pytest.raises(ValueError):
            ColumnarRecords("wifi_scans", "r",
                            {"timestamp": [1.0], "spectrum_code": [3],
                             "neighbor_aps": [0], "associated_clients": [0],
                             "channel": [11]})

    def test_structural_validation(self):
        with pytest.raises(ValueError):
            ColumnarRecords("roster", "r", {})  # no columnar layout
        with pytest.raises(ValueError):
            ColumnarRecords("uptime", "r", {"timestamp": [1.0]})
        with pytest.raises(ValueError):
            ColumnarRecords("uptime", "r",
                            {"timestamp": [1.0, 2.0],
                             "uptime_seconds": [1.0]})

    def test_wifi_spectrum_decoding(self):
        records = ColumnarRecords("wifi_scans", "r", {
            "timestamp": [1.0, 2.0], "spectrum_code": [1, 2],
            "neighbor_aps": [3, 0], "associated_clients": [0, 2],
            "channel": [11, 36]})
        scans = list(records)
        assert scans[0].spectrum is Spectrum.GHZ_2_4
        assert scans[1].spectrum is Spectrum.GHZ_5
        assert [s.channel for s in scans] == [11, 36]


class TestColumnarBatching:
    def test_chunking_matches_list_batches(self):
        n = 5000
        cols = {"timestamp": [float(i) for i in range(n)],
                "uptime_seconds": [1.0] * n}
        from repro.core.records import UptimeReport
        records = [UptimeReport("r", float(i), 1.0) for i in range(n)]
        columnar = columnar_batches("uptime", "r",
                                    {k: list(v) for k, v in cols.items()})
        plain = list_batches("uptime", "r", records)
        assert [len(b.records) for b in columnar] == \
            [len(b.records) for b in plain] == [2048, 2048, 904]
        for col_batch, plain_batch in zip(columnar, plain):
            assert list(col_batch.records) == plain_batch.records

    def test_empty_columns_emit_no_batch(self):
        assert columnar_batches("uptime", "r", None) == []
        assert columnar_batches(
            "uptime", "r", {"timestamp": [], "uptime_seconds": []}) == []
        assert list_batches("roster", "r", []) == []


class TestStoreRegistration:
    def test_columnar_batch_checks_registration_once(self):
        store = RecordStore(StudyWindows())
        records = ColumnarRecords("uptime", "ghost", {
            "timestamp": [1.0], "uptime_seconds": [2.0]})
        with pytest.raises(KeyError):
            store.add_uptime(records)
        store.register_router(RouterInfo(
            router_id="ghost", country_code="US", developed=True,
            tz_offset_hours=-5.0, gdp_ppp_per_capita=51000.0))
        store.add_uptime(records)


class TestWifiBackoffDeterminism:
    """Same seed ⇒ the same skipped-scan schedule, however the work splits."""

    def collect_schedules(self, plan, n_shards):
        universe, policy = _shard_statics()
        seeds = SeedHierarchy(plan.seed)
        per_router = {}
        for shard_index in range(n_shards):
            cohort = materialize_shard(plan, shard_index, n_shards,
                                       domain_universe=universe)
            for upload in collect_shard(cohort, plan, seeds, policy):
                scans = [record
                         for batch in upload.batches
                         if batch.dataset == "wifi_scans"
                         for record in batch.records]
                per_router[upload.router_id] = [
                    (s.timestamp, s.spectrum) for s in scans]
        return per_router

    def test_identical_across_shard_splits(self, plan):
        first = self.collect_schedules(plan, 1)
        assert first == self.collect_schedules(plan, 3)
        assert first == self.collect_schedules(plan, 7)

    def test_backoff_gaps_are_scan_interval_multiples(self, plan):
        """Executed scans sit on the 10-minute grid; skips leave holes."""
        schedules = self.collect_schedules(plan, 1)
        saw_backoff = False
        for scans in schedules.values():
            times = sorted(t for t, spectrum in scans
                           if spectrum is Spectrum.GHZ_2_4)
            gaps = np.diff(times)
            steps = gaps / SCAN_INTERVAL
            assert np.allclose(steps, np.round(steps), atol=1e-6)
            if (np.round(steps) > 1).any():
                saw_backoff = True
        assert saw_backoff  # client backoff actually skipped scans

    def test_identical_across_worker_counts(self):
        config = StudyConfig(seed=17, router_scale=0.1, duration_scale=0.02,
                             traffic_consents=2, low_activity_consents=0)
        serial = run_study(config).data
        parallel = run_study(StudyConfig(
            seed=17, router_scale=0.1, duration_scale=0.02,
            traffic_consents=2, low_activity_consents=0,
            workers=2, shard_size=4)).data

        def schedule(data):
            per_router = {}
            for scan in data.wifi_scans:
                per_router.setdefault(scan.router_id, []).append(
                    (scan.timestamp, scan.spectrum))
            return per_router

        assert schedule(serial) == schedule(parallel)
