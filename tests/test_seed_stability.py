"""Cross-seed stability: the paper's qualitative findings are not
artifacts of one lucky seed.

Each claim here is one of the paper's ordinal findings (who is bigger than
whom), checked on small campaigns under several seeds.  Magnitudes drift
with seeds; orderings must not.
"""

import numpy as np
import pytest

from repro import StudyConfig, run_study
from repro.core import availability, infrastructure, usage
from repro.core.records import Spectrum

SEEDS = (101, 202, 303)


@pytest.fixture(scope="module", params=SEEDS)
def campaign(request):
    return run_study(StudyConfig(
        seed=request.param,
        router_scale=0.3,
        duration_scale=0.04,
        traffic_consents=5,
        low_activity_consents=1,
    )).data


class TestOrdinalFindings:
    def test_developing_more_downtime(self, campaign):
        dev = availability.downtime_rate_cdf(campaign, developed=True)
        dvg = availability.downtime_rate_cdf(campaign, developed=False)
        assert dvg.median > dev.median

    def test_us_more_available_than_india(self, campaign):
        by_country = availability.median_availability_by_country(campaign)
        assert by_country["US"] > by_country["IN"]

    def test_wireless_beats_wired(self, campaign):
        result = infrastructure.mean_connected_by_medium(campaign,
                                                         developed=True)
        assert result["wireless"].mean > result["wired"].mean

    def test_2_4_busier_than_5(self, campaign):
        result = infrastructure.mean_connected_by_spectrum(campaign,
                                                           developed=True)
        assert result["2.4GHz"].mean > result["5GHz"].mean

    def test_developed_denser_wifi(self, campaign):
        dev = infrastructure.neighbor_ap_cdf(campaign, Spectrum.GHZ_2_4,
                                             developed=True)
        dvg = infrastructure.neighbor_ap_cdf(campaign, Spectrum.GHZ_2_4,
                                             developed=False)
        assert dev.median > dvg.median

    def test_dominant_device_dominates(self, campaign):
        shares = usage.mean_device_share(campaign, ranks=2)
        if shares[0] > 0:
            assert shares[0] > shares[1]

    def test_volume_concentrates_more_than_connections(self, campaign):
        summary = usage.domain_share(campaign)
        if summary.volume_share_by_rank.size and \
                summary.volume_share_by_rank[0] > 0:
            assert summary.connections_of_volume_ranked[0] < \
                summary.volume_share_by_rank[0]
