"""Tests for household assembly and the deployment builder."""

from collections import Counter

import numpy as np
import pytest

from repro.simulation.countries import country_by_code
from repro.simulation.deployment import (
    DeploymentConfig,
    _scaled_count,
    build_deployment,
    build_deployment_plan,
)
from repro.simulation.household import Household, HouseholdConfig
from repro.simulation.seeding import SeedHierarchy
from repro.simulation.timebase import DAY, StudyWindows, utc

SPAN = (utc(2013, 3, 1), utc(2013, 4, 12))


def make_household(seed=7, code="US", **kwargs):
    return Household(SeedHierarchy(seed), HouseholdConfig(
        router_id=f"{code}900", country=country_by_code(code), span=SPAN,
        **kwargs))


class TestHousehold:
    def test_online_is_conjunction(self):
        home = make_household()
        online = home.online_intervals(*SPAN)
        power = home.power.up_intervals(*SPAN)
        link = home.link.up_intervals(*SPAN)
        assert online == power.intersection(link)

    def test_is_online_pointwise(self):
        home = make_household()
        for t in np.linspace(SPAN[0], SPAN[1] - 1, 25):
            assert home.is_online(t) == (home.power.is_on(t)
                                         and home.link.is_up(t))

    def test_uptime_at_semantics(self):
        home = make_household()
        on_start, on_end = home.power.on_intervals.intervals[0]
        probe = min(on_start + 3600, (on_start + on_end) / 2)
        uptime = home.uptime_at(probe)
        assert uptime == pytest.approx(probe - on_start)

    def test_uptime_none_when_off(self):
        home = make_household(code="CN", seed=11)
        gaps = home.power.on_intervals.complement(SPAN)
        if gaps:
            gap_start, gap_end = gaps.intervals[0]
            assert home.uptime_at((gap_start + gap_end) / 2) is None

    def test_info_record(self):
        home = make_household()
        info = home.info
        assert info.router_id == "US900"
        assert info.country_code == "US"
        assert info.developed
        assert info.gdp_ppp_per_capita == 49800

    def test_deterministic_given_seed(self):
        a = make_household(seed=3)
        b = make_household(seed=3)
        assert a.power.on_intervals == b.power.on_intervals
        assert a.link.up == b.link.up
        assert [d.mac for d in a.devices] == [d.mac for d in b.devices]

    def test_different_homes_differ(self):
        seeds = SeedHierarchy(7)
        a = Household(seeds, HouseholdConfig("US001", country_by_code("US"),
                                             SPAN))
        b = Household(seeds, HouseholdConfig("US002", country_by_code("US"),
                                             SPAN))
        assert a.link.config.downstream_mbps != b.link.config.downstream_mbps

    def test_traffic_cached(self):
        home = make_household()
        window = (SPAN[0], SPAN[0] + DAY)
        assert home.traffic(*window) is home.traffic(*window)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HouseholdConfig("x", country_by_code("US"), (5.0, 5.0))
        with pytest.raises(ValueError):
            HouseholdConfig("x", country_by_code("US"), SPAN,
                            traffic_intensity=0)


class TestDeployment:
    @pytest.fixture(scope="class")
    def deployment(self):
        windows = StudyWindows().scaled(0.02)
        return build_deployment(DeploymentConfig(
            seed=5, windows=windows, router_scale=0.25,
            traffic_consents=6, low_activity_consents=1))

    def test_every_country_populated(self, deployment):
        assert len(deployment.countries) == 19

    def test_router_ids_unique(self, deployment):
        ids = [h.router_id for h in deployment.households]
        assert len(ids) == len(set(ids))

    def test_full_scale_counts(self):
        windows = StudyWindows().scaled(0.01)
        deployment = build_deployment(DeploymentConfig(
            seed=1, windows=windows, router_scale=1.0))
        assert len(deployment) == 126
        assert len(deployment.routers_in("US")) == 63
        assert len(deployment.uptime_routers) == 113
        assert len(deployment.wifi_routers) == 93
        wifi_countries = {deployment.household(rid).country.code
                          for rid in deployment.wifi_routers}
        assert len(wifi_countries) <= 15

    def test_membership_subsets(self, deployment):
        all_ids = {h.router_id for h in deployment.households}
        assert deployment.uptime_routers <= all_ids
        assert deployment.devices_routers == deployment.uptime_routers
        assert deployment.wifi_routers <= all_ids
        assert deployment.traffic_routers <= all_ids

    def test_traffic_consents_are_us(self, deployment):
        for rid in deployment.traffic_routers:
            assert deployment.household(rid).country.code == "US"

    def test_saturators_among_consents(self, deployment):
        modes = {h.config.uplink_saturator
                 for h in deployment.households
                 if h.config.uplink_saturator is not None}
        assert modes == {"continuous", "diurnal"}
        for home in deployment.households:
            if home.config.uplink_saturator is not None:
                assert home.config.traffic_consent

    def test_low_activity_homes_exist(self, deployment):
        quiet = [h for h in deployment.households
                 if h.config.traffic_intensity < 1.0]
        assert len(quiet) == 1
        assert all(h.config.traffic_consent for h in quiet)

    def test_deterministic(self):
        windows = StudyWindows().scaled(0.02)
        config = DeploymentConfig(seed=9, windows=windows, router_scale=0.1)
        a = build_deployment(config)
        b = build_deployment(config)
        assert [h.router_id for h in a.households] == \
            [h.router_id for h in b.households]
        assert a.wifi_routers == b.wifi_routers

    def test_country_filter(self):
        windows = StudyWindows().scaled(0.02)
        deployment = build_deployment(DeploymentConfig(
            seed=1, windows=windows, countries=("US", "IN")))
        codes = {h.country.code for h in deployment.households}
        assert codes == {"US", "IN"}

    def test_rejects_unknown_country_filter(self):
        with pytest.raises(ValueError):
            build_deployment(DeploymentConfig(countries=("XX",)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DeploymentConfig(router_scale=0)
        with pytest.raises(ValueError):
            DeploymentConfig(traffic_consents=2, low_activity_consents=3)

    def test_household_lookup(self, deployment):
        rid = deployment.households[0].router_id
        assert deployment.household(rid).router_id == rid
        with pytest.raises(KeyError):
            deployment.household("nope")


class TestDeploymentPlan:
    def test_deployment_is_lazy(self):
        deployment = build_deployment(DeploymentConfig(
            seed=4, windows=StudyWindows().scaled(0.02), router_scale=0.1))
        # Structural queries must not materialize any Household.
        assert len(deployment) > 0
        assert len(deployment.countries) == 19
        assert deployment.uptime_routers
        assert deployment._households is None
        homes = deployment.households  # first access materializes
        assert deployment._households is not None
        assert [h.router_id for h in homes] == deployment.plan.router_ids

    def test_plan_matches_deployment_view(self):
        config = DeploymentConfig(
            seed=4, windows=StudyWindows().scaled(0.02), router_scale=0.1)
        plan = build_deployment_plan(config)
        deployment = build_deployment(config)
        assert deployment.plan.router_ids == plan.router_ids
        assert set(deployment.wifi_routers) == set(plan.wifi_routers)
        assert set(deployment.traffic_routers) == set(plan.traffic_routers)
        assert deployment.devices_routers == deployment.uptime_routers

    def test_plan_deterministic(self):
        config = DeploymentConfig(
            seed=8, windows=StudyWindows().scaled(0.02), router_scale=0.1)
        a, b = build_deployment_plan(config), build_deployment_plan(config)
        assert a == b


class TestScaledCountRounding:
    def test_explicit_half_up(self):
        # round() would give 2 for both (half-to-even); cohorts must grow
        # monotonically with the unrounded product instead.
        assert _scaled_count(10, 0.25) == 3
        assert _scaled_count(5, 0.5) == 3
        assert _scaled_count(63, 1.5) == 95
        assert _scaled_count(3, 1.5) == 5
        assert _scaled_count(2, 0.25) == 1
        assert _scaled_count(1, 0.02) == 1  # countries stay populated
        assert _scaled_count(63, 1.0) == 63

    @pytest.mark.parametrize("scale,expected", [
        (0.25, {"US": 16, "GB": 3, "NL": 1, "CA": 1, "DE": 1, "FR": 1,
                "IE": 1, "IT": 1, "JP": 1, "SG": 1, "IN": 3, "PK": 1,
                "ZA": 3, "MX": 1, "CN": 1, "BR": 1, "MY": 1, "ID": 1,
                "TH": 1}),
        (0.5, {"US": 32, "GB": 6, "NL": 2, "CA": 1, "DE": 1, "FR": 1,
               "IE": 1, "IT": 1, "JP": 1, "SG": 1, "IN": 6, "PK": 3,
               "ZA": 5, "MX": 1, "CN": 1, "BR": 1, "MY": 1, "ID": 1,
               "TH": 1}),
        (1.0, {"US": 63, "GB": 12, "NL": 3, "CA": 2, "DE": 2, "FR": 1,
               "IE": 2, "IT": 1, "JP": 2, "SG": 2, "IN": 12, "PK": 5,
               "ZA": 10, "MX": 2, "CN": 2, "BR": 2, "MY": 1, "ID": 1,
               "TH": 1}),
    ])
    def test_per_country_cohorts_pinned(self, scale, expected):
        plan = build_deployment_plan(DeploymentConfig(
            seed=1, windows=StudyWindows().scaled(0.01), router_scale=scale))
        counts = Counter(c.country.code for c in plan.household_configs)
        assert dict(counts) == expected
