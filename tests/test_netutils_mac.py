"""Unit tests for MAC parsing, formatting, and lower-24 anonymization."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netutils.mac import (
    MacAddress,
    format_mac,
    hash_lower24,
    oui_of,
    parse_mac,
    random_mac,
)
from repro.netutils.mac import MacAddressError

mac_values = st.integers(min_value=0, max_value=(1 << 48) - 1)


class TestParseFormat:
    def test_parse_colon_form(self):
        mac = parse_mac("3c:07:54:ab:cd:ef")
        assert mac.value == 0x3C0754ABCDEF

    def test_parse_dash_form(self):
        assert parse_mac("3c-07-54-ab-cd-ef").value == 0x3C0754ABCDEF

    def test_parse_bare_hex(self):
        assert parse_mac("3c0754abcdef").value == 0x3C0754ABCDEF

    def test_parse_uppercase(self):
        assert parse_mac("3C:07:54:AB:CD:EF").value == 0x3C0754ABCDEF

    def test_parse_strips_whitespace(self):
        assert parse_mac("  3c:07:54:ab:cd:ef  ").value == 0x3C0754ABCDEF

    @pytest.mark.parametrize("bad", [
        "", "3c:07:54:ab:cd", "3c:07:54:ab:cd:ef:00", "zz:07:54:ab:cd:ef",
        "3c07:54:ab:cd:ef", "3c:07-54:ab:cd:ef",
    ])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(MacAddressError):
            parse_mac(bad)

    def test_format_zero_padded(self):
        assert format_mac(0x000001000001) == "00:00:01:00:00:01"

    def test_format_rejects_out_of_range(self):
        with pytest.raises(MacAddressError):
            format_mac(1 << 48)
        with pytest.raises(MacAddressError):
            format_mac(-1)

    @given(mac_values)
    def test_roundtrip(self, value):
        assert parse_mac(format_mac(value)).value == value


class TestMacAddress:
    def test_oui_and_lower(self):
        mac = MacAddress(0x3C0754ABCDEF)
        assert mac.oui == 0x3C0754
        assert mac.lower24 == 0xABCDEF

    def test_oui_of_renders_hex(self):
        assert oui_of(MacAddress(0x3C0754ABCDEF)) == "3c0754"

    def test_with_lower24(self):
        mac = MacAddress(0x3C0754ABCDEF).with_lower24(0x000001)
        assert mac.value == 0x3C0754000001

    def test_with_lower24_rejects_out_of_range(self):
        with pytest.raises(MacAddressError):
            MacAddress(0).with_lower24(1 << 24)

    def test_value_range_enforced(self):
        with pytest.raises(MacAddressError):
            MacAddress(1 << 48)

    def test_multicast_and_local_bits(self):
        assert MacAddress(0x010000000000).is_multicast
        assert not MacAddress(0x000000000000).is_multicast
        assert MacAddress(0x020000000000).is_locally_administered

    def test_str_and_int(self):
        mac = MacAddress(0x3C0754ABCDEF)
        assert str(mac) == "3c:07:54:ab:cd:ef"
        assert int(mac) == 0x3C0754ABCDEF


class TestHashLower24:
    @given(mac_values)
    def test_preserves_oui(self, value):
        mac = MacAddress(value)
        assert hash_lower24(mac).oui == mac.oui

    @given(mac_values)
    def test_deterministic(self, value):
        mac = MacAddress(value)
        assert hash_lower24(mac) == hash_lower24(mac)

    @given(mac_values)
    def test_salt_changes_output(self, value):
        mac = MacAddress(value)
        a = hash_lower24(mac, salt=b"one")
        b = hash_lower24(mac, salt=b"two")
        # The OUIs always match; the hashed lowers should (almost) never.
        assert a.oui == b.oui

    def test_distinct_devices_get_distinct_pseudonyms(self):
        seen = {hash_lower24(MacAddress(0x3C0754000000 + i)).lower24
                for i in range(200)}
        # 200 devices into 2^24 buckets: collisions essentially impossible.
        assert len(seen) == 200


class TestRandomMac:
    def test_oui_respected(self):
        rng = np.random.default_rng(0)
        mac = random_mac(rng, 0x3C0754)
        assert mac.oui == 0x3C0754

    def test_deterministic_given_rng(self):
        a = random_mac(np.random.default_rng(7), 0x3C0754)
        b = random_mac(np.random.default_rng(7), 0x3C0754)
        assert a == b
