"""Tests for the Table 1 country metadata."""

import pytest

from repro.simulation.countries import (
    COUNTRIES,
    DEPLOYMENT_COUNTS,
    classify_development,
    country_by_code,
    total_routers,
)


class TestTable1:
    def test_nineteen_countries(self):
        assert len(COUNTRIES) == 19

    def test_total_126_routers(self):
        assert sum(c.routers for c in COUNTRIES) == 126

    def test_class_totals(self):
        assert total_routers(developed=True) == 90
        assert total_routers(developed=False) == 36

    def test_paper_counts(self):
        expected = {"US": 63, "GB": 12, "IN": 12, "ZA": 10, "PK": 5,
                    "NL": 3, "CA": 2, "DE": 2, "IE": 2, "JP": 2, "SG": 2,
                    "MX": 2, "CN": 2, "BR": 2, "FR": 1, "IT": 1, "MY": 1,
                    "ID": 1, "TH": 1}
        assert DEPLOYMENT_COUNTS == expected

    def test_unique_codes(self):
        codes = [c.code for c in COUNTRIES]
        assert len(codes) == len(set(codes))

    def test_classification_consistent_with_gdp(self):
        for country in COUNTRIES:
            assert classify_development(country.gdp_ppp_per_capita) == \
                country.developed, country.code

    def test_india_pakistan_poorest(self):
        ordered = sorted(COUNTRIES, key=lambda c: c.gdp_ppp_per_capita)
        assert {ordered[0].code, ordered[1].code} == {"IN", "PK"}


class TestLookups:
    def test_country_by_code(self):
        assert country_by_code("us").name == "United States"

    def test_country_by_code_missing(self):
        with pytest.raises(KeyError):
            country_by_code("XX")

    def test_classify_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            classify_development(0)


class TestBehaviorProfiles:
    def test_developing_more_appliance_mode(self):
        dev = [c.behavior.appliance_probability for c in COUNTRIES
               if c.developed]
        dvg = [c.behavior.appliance_probability for c in COUNTRIES
               if not c.developed]
        assert max(dev) < min(dvg)

    def test_developing_more_outages(self):
        dev = max(c.behavior.isp_outage_rate_per_day for c in COUNTRIES
                  if c.developed)
        dvg = min(c.behavior.isp_outage_rate_per_day for c in COUNTRIES
                  if not c.developed)
        assert dvg > dev

    def test_pakistan_worst_outage_rate(self):
        pk = country_by_code("PK")
        assert pk.behavior.isp_outage_rate_per_day == max(
            c.behavior.isp_outage_rate_per_day for c in COUNTRIES)

    def test_developed_denser_wifi(self):
        dev = min(c.behavior.neighbor_ap_level for c in COUNTRIES
                  if c.developed)
        dvg = max(c.behavior.neighbor_ap_level for c in COUNTRIES
                  if not c.developed)
        assert dev > dvg

    def test_developed_faster_links(self):
        dev = min(c.behavior.downstream_mbps for c in COUNTRIES if c.developed)
        dvg = max(c.behavior.downstream_mbps for c in COUNTRIES
                  if not c.developed)
        assert dev >= dvg

    def test_more_devices_in_developed(self):
        dev = sum(c.behavior.mean_devices for c in COUNTRIES
                  if c.developed) / 10
        dvg = sum(c.behavior.mean_devices for c in COUNTRIES
                  if not c.developed) / 9
        assert dev > dvg

    def test_table5_probability_split(self):
        for country in COUNTRIES:
            wired = country.behavior.always_wired_probability
            if country.developed:
                assert wired > 0.4
            else:
                assert wired < 0.4
