"""Shared fixtures: one small-but-complete simulated study per session.

The integration tests all read from a single cached campaign so the whole
suite stays fast; the study is scaled down (fewer routers, shorter windows)
but exercises every collector and consent tier.
"""

import pytest

from repro import StudyConfig, run_study


@pytest.fixture(scope="session")
def small_study():
    """A complete campaign: ~35 homes, ~6-day heartbeat window."""
    return run_study(StudyConfig(
        seed=20130401,
        router_scale=0.28,
        duration_scale=0.04,
        traffic_consents=6,
        low_activity_consents=1,
    ))


@pytest.fixture(scope="session")
def small_data(small_study):
    """The collected data bundle of the session study."""
    return small_study.data
