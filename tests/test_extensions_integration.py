"""Integration tests for the extension subsystems on a real campaign.

The unit tests exercise caps/alerts/longitudinal/channels on synthetic
inputs; these tests run them over the shared simulated campaign to verify
the pieces compose with collected data exactly as a downstream user would
wire them.
"""

import numpy as np
import pytest

from repro.core import longitudinal, usage
from repro.core.alerts import SecurityMonitor, split_training_window
from repro.core.caps import cap_forecast, device_usage_table
from repro.core.paperkit import reproduce_all
from repro.core.records import Spectrum
from repro.firmware.caps import UsageCapPolicy, meter_throughput
from repro.firmware.wifi import full_spectrum_scans
from repro.simulation.malware import inject_compromise

GB = 1e9


class TestCapsOnCampaign:
    def test_meter_runs_on_every_qualifying_home(self, small_data):
        policy = UsageCapPolicy(monthly_cap_bytes=1 * GB)
        qualifying = small_data.qualifying_traffic_routers()
        if not qualifying:
            pytest.skip("no qualifying homes in the small fixture")
        for rid in qualifying:
            meter = meter_throughput(small_data.throughput[rid], policy)
            assert meter.used_bytes > 0
            # Alerts, if any, fired in ascending threshold order.
            thresholds = [a.threshold for a in meter.alerts]
            assert thresholds == sorted(thresholds)

    def test_dashboard_consistent_with_flows(self, small_data):
        qualifying = small_data.qualifying_traffic_routers()
        if not qualifying:
            pytest.skip("no qualifying homes")
        rid = qualifying[0]
        table = device_usage_table(small_data, rid)
        assert table
        shares = sum(row.share_of_home for row in table)
        assert shares == pytest.approx(1.0)
        totals = small_data.traffic_bytes_by_router()
        assert sum(r.bytes_total for r in table) == \
            pytest.approx(totals[rid])

    def test_forecast_scales_with_cap(self, small_data):
        qualifying = small_data.qualifying_traffic_routers()
        if not qualifying:
            pytest.skip("no qualifying homes")
        rid = qualifying[0]
        tight = cap_forecast(small_data, rid, UsageCapPolicy(0.5 * GB))
        loose = cap_forecast(small_data, rid, UsageCapPolicy(500 * GB))
        assert tight.used_bytes == loose.used_bytes
        assert tight.used_fraction > loose.used_fraction


class TestAlertsOnCampaign:
    def test_infection_detected_clean_homes_mostly_quiet(self, small_data):
        train, scan = split_training_window(small_data.flows, fraction=0.5)
        monitor = SecurityMonitor()
        baselined = monitor.fit(train)
        if baselined < 3:
            pytest.skip("too little traffic in the small fixture")
        victim = monitor.baselined_devices[0]
        scan_start = min(f.timestamp for f in scan)
        scan_end = max(f.timestamp for f in scan)
        infected = scan + inject_compromise(
            np.random.default_rng(0), victim[0], victim[1],
            (scan_start, scan_end), profile="spambot")
        alerts = monitor.scan(infected)
        flagged = {(a.router_id, a.device_mac) for a in alerts}
        assert victim in flagged
        # The detector is selective: well under half of devices flagged.
        assert len(flagged) <= baselined * 0.5


class TestLongitudinalOnCampaign:
    def test_group_trends_computable(self, small_data):
        from repro.simulation.timebase import DAY
        dev = longitudinal.group_availability_trend(
            small_data, developed=True, bucket_seconds=2 * DAY)
        assert len(dev) >= 1
        assert np.all(dev.values <= 1.0) and np.all(dev.values >= 0.0)

    def test_traffic_series_matches_meter(self, small_data):
        qualifying = small_data.qualifying_traffic_routers()
        if not qualifying:
            pytest.skip("no qualifying homes")
        rid = qualifying[0]
        series = longitudinal.traffic_volume_series(small_data, rid)
        meter = meter_throughput(small_data.throughput[rid],
                                 UsageCapPolicy(1e15))
        assert float(series.values.sum()) == \
            pytest.approx(meter.used_bytes, rel=0.01)


class TestChannelsOnCampaign:
    def test_sweep_dominates_single_channel(self, small_study):
        rng = np.random.default_rng(0)
        epoch = small_study.deployment.windows.wifi[0] + 3600
        checked = 0
        for home in small_study.deployment.households:
            env = home.wireless
            if env.sparse or env.total_neighbors(Spectrum.GHZ_2_4) < 5:
                continue
            sweep = full_spectrum_scans(home, epoch, rng)
            swept_total = sum(s.neighbor_aps for s in sweep
                              if s.spectrum is Spectrum.GHZ_2_4)
            visible = env.base_neighbor_count(Spectrum.GHZ_2_4)
            assert swept_total >= visible * 0.8  # sweep sees at least as much
            checked += 1
            if checked == 5:
                break
        assert checked > 0

    def test_best_channel_never_worse(self, small_study):
        for home in small_study.deployment.households[:20]:
            env = home.wireless
            best = env.best_channel(Spectrum.GHZ_2_4)
            assert env.contention(Spectrum.GHZ_2_4, best) <= \
                env.contention(Spectrum.GHZ_2_4) + 1e-9


class TestPaperkitOnCampaign:
    def test_usage_by_country_on_campaign(self, small_data):
        rows = usage.usage_by_country(small_data)
        if rows:
            assert rows[0].country_code == "US"  # only US consents here
            assert all(r.homes >= 1 for r in rows)

    def test_full_report_nonempty(self, small_data):
        report = reproduce_all(small_data)
        assert len(report.rows()) >= 10
