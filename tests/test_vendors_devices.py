"""Tests for the OUI registry and device-population generation."""

import numpy as np
import pytest

from repro.core.records import Medium, Spectrum
from repro.netutils.mac import parse_mac
from repro.simulation.behavior import ActivitySchedule
from repro.simulation.device_models import (
    DeviceKind,
    generate_devices,
    kind_traits,
)
from repro.simulation.timebase import StudyCalendar, utc
from repro.simulation.vendors import (
    BISMARK_OUI,
    CATEGORY_ORDER,
    VENDORS,
    allocate_mac,
    vendor_category,
    vendor_of_oui,
)

SPAN = (utc(2013, 3, 6), utc(2013, 4, 15))
CAL = StudyCalendar(-5)


def make_devices(seed=0, developed=True, mean_devices=7.5,
                 always_wired=0.43, always_wireless=0.20):
    return generate_devices(
        np.random.default_rng(seed), f"r{seed}", SPAN, CAL,
        ActivitySchedule.generate(np.random.default_rng(seed + 1000)),
        developed, mean_devices, always_wired, always_wireless)


class TestVendorRegistry:
    def test_no_duplicate_ouis(self):
        ouis = [oui for vendor in VENDORS for oui in vendor.ouis]
        assert len(ouis) == len(set(ouis))

    def test_all_categories_known(self):
        assert {v.category for v in VENDORS} <= set(CATEGORY_ORDER)

    def test_every_fig12_bucket_has_a_vendor(self):
        covered = {v.category for v in VENDORS}
        assert covered == set(CATEGORY_ORDER)

    def test_vendor_of_oui(self):
        apple = vendor_of_oui(0x3C0754)
        assert apple is not None and apple.name == "Apple"
        assert vendor_of_oui(0x123456) is None

    def test_vendor_category_unknown(self):
        assert vendor_category(0x123456) == "Unknown"

    def test_bismark_oui_is_netgear_gateway(self):
        assert vendor_category(BISMARK_OUI) == "Gateway"

    def test_allocate_mac_lands_in_category(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            mac = allocate_mac(rng, "Apple")
            assert vendor_category(mac.oui) == "Apple"

    def test_allocate_mac_unknown_category(self):
        with pytest.raises(KeyError):
            allocate_mac(np.random.default_rng(0), "NotACategory")


class TestKindTraits:
    def test_wired_kinds_have_no_band(self):
        for kind in (DeviceKind.DESKTOP, DeviceKind.MEDIA_BOX,
                     DeviceKind.CONSOLE, DeviceKind.PRINTER):
            traits = kind_traits(kind)
            assert traits.medium is Medium.WIRED
            assert traits.dual_band_probability == 0.0

    def test_vendor_mixes_normalizable(self):
        for kind in DeviceKind:
            mix = kind_traits(kind).vendor_mix
            assert sum(w for _, w in mix) > 0
            assert all(w >= 0 for _, w in mix)


class TestGenerateDevices:
    def test_at_least_one_device(self):
        devices = make_devices(seed=0, mean_devices=0.1)
        assert len(devices) >= 1

    def test_mean_count_tracks_parameter(self):
        counts = [len(make_devices(seed=s, mean_devices=7.5))
                  for s in range(60)]
        assert 5.0 < np.mean(counts) < 10.0

    def test_wireless_devices_have_band(self):
        for device in make_devices(seed=3):
            if device.medium is Medium.WIRELESS:
                assert device.spectrum in (Spectrum.GHZ_2_4, Spectrum.GHZ_5)
            else:
                assert device.spectrum is None

    def test_more_2_4_than_5(self):
        bands = [d.spectrum for s in range(40) for d in make_devices(seed=s)
                 if d.spectrum is not None]
        n24 = sum(1 for b in bands if b is Spectrum.GHZ_2_4)
        n5 = sum(1 for b in bands if b is Spectrum.GHZ_5)
        assert n24 > n5

    def test_always_wired_assignment(self):
        hits = sum(
            any(d.always_connected and d.medium is Medium.WIRED
                for d in make_devices(seed=s, always_wired=1.0,
                                      always_wireless=0.0))
            for s in range(20))
        assert hits == 20

    def test_no_always_devices_when_probability_zero(self):
        for s in range(10):
            devices = make_devices(seed=s, always_wired=0.0,
                                   always_wireless=0.0)
            assert not any(d.always_connected for d in devices)

    def test_association_within_span(self):
        for device in make_devices(seed=5):
            for start, end in device.connected:
                assert SPAN[0] <= start < end <= SPAN[1] + 3600

    def test_connected_intervals_always_device(self):
        devices = make_devices(seed=6, always_wired=1.0)
        always = next(d for d in devices if d.always_connected)
        window = (SPAN[0] + 86400, SPAN[0] + 2 * 86400)
        intervals = always.connected_intervals(*window)
        assert intervals.total_duration() == pytest.approx(86400)

    def test_portables_present_more_in_evening(self):
        # Aggregate across many homes: phones associate more at 21:00 local
        # than at 13:00 local on weekdays.
        evening = afternoon = 0
        for s in range(40):
            for d in make_devices(seed=s):
                if d.kind is not DeviceKind.PHONE or d.always_connected:
                    continue
                evening += d.is_connected(utc(2013, 3, 13, 2))   # 21:00 EST-ish
                afternoon += d.is_connected(utc(2013, 3, 13, 18))  # 13:00
        assert evening > afternoon

    def test_traffic_weights_positive(self):
        for device in make_devices(seed=7):
            assert device.traffic_weight >= 0

    def test_deterministic(self):
        a = make_devices(seed=8)
        b = make_devices(seed=8)
        assert [d.mac for d in a] == [d.mac for d in b]
        assert [d.connected for d in a] == [d.connected for d in b]

    def test_device_macs_resolve_to_registry(self):
        for device in make_devices(seed=9):
            assert vendor_category(device.mac.oui) != "Unknown"

    def test_developed_homes_have_more_wired(self):
        wired_dev = sum(1 for s in range(40) for d in make_devices(
            seed=s, developed=True) if d.medium is Medium.WIRED)
        wired_dvg = sum(1 for s in range(40) for d in make_devices(
            seed=s, developed=False, mean_devices=5.0)
            if d.medium is Medium.WIRED)
        assert wired_dev > wired_dvg
