"""Crash-safe campaign checkpoints and resume.

A checkpointed campaign killed mid-flight and resumed later must yield a
``study_digest`` bitwise-identical to the uninterrupted run — that is
the whole point of recording the path-RNG state and the spill manifest.
"""

import json

import pytest

from repro import StudyConfig, run_study, study_digest
from repro.cli import main
from repro.collection.checkpoint import (
    CHECKPOINT_NAME,
    CampaignCheckpoint,
    CheckpointError,
    CheckpointManager,
    campaign_fingerprint,
)
from repro.collection.engine import ShardFailed, resume_campaign, run_campaign
from repro.collection.faults import FaultPlan, FaultSpec
from repro.collection.path import PathConfig
from repro.collection.storage import RecordStore
from repro.simulation.deployment import DeploymentConfig, build_deployment_plan
from repro.simulation.timebase import StudyWindows

SMALL = DeploymentConfig(
    seed=11, windows=StudyWindows().scaled(0.02), router_scale=0.05,
    traffic_consents=2, low_activity_consents=0,
    countries=("US", "IN", "BR"))

SHARD_SIZE = 1

#: A crash on shard 2's only allowed attempt kills the campaign partway
#: through — the "pull the plug" fixture for resume tests.
KILL_AT_2 = dict(max_shard_retries=0, retry_backoff=0.0,
                 fault_plan=FaultPlan((FaultSpec(shard=2, kind="crash"),)))


@pytest.fixture(scope="module")
def plan():
    return build_deployment_plan(SMALL)


@pytest.fixture(scope="module")
def reference_data(plan):
    return run_campaign(plan, shard_size=SHARD_SIZE)


@pytest.fixture(scope="module")
def reference(reference_data):
    return study_digest(reference_data)


class TestFingerprint:
    def test_stable_and_sensitive(self, plan):
        base = campaign_fingerprint(plan, 11, 5, PathConfig())
        assert base == campaign_fingerprint(plan, 11, 5, PathConfig())
        assert base != campaign_fingerprint(plan, 12, 5, PathConfig())
        assert base != campaign_fingerprint(plan, 11, 4, PathConfig())
        assert base != campaign_fingerprint(
            plan, 11, 5, PathConfig(packet_loss=0.0))

    def test_malformed_payload_rejected(self):
        with pytest.raises(CheckpointError):
            CampaignCheckpoint.from_dict({"fingerprint": "x"})


class TestCheckpointManager:
    def test_load_missing_manifest(self, tmp_path):
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path / "ckpt").load()

    def test_version_mismatch_rejected(self, tmp_path, plan):
        run_campaign(plan, shard_size=SHARD_SIZE,
                     checkpoint_dir=tmp_path / "ckpt")
        manifest = tmp_path / "ckpt" / CHECKPOINT_NAME
        payload = json.loads(manifest.read_text())
        payload["version"] = 999
        manifest.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError):
            CheckpointManager(tmp_path / "ckpt").load()

    def test_manifest_written_and_complete(self, tmp_path, plan):
        manager = CheckpointManager(tmp_path / "ckpt")
        run_campaign(plan, shard_size=SHARD_SIZE,
                     checkpoint_dir=manager.directory)
        checkpoint = manager.load()
        assert checkpoint.complete
        assert checkpoint.shards_ingested == checkpoint.n_shards == len(plan)
        assert (manager.store_dir / "runs").exists()

    def test_engine_owns_store_when_checkpointing(self, tmp_path, plan):
        with pytest.raises(ValueError):
            run_campaign(plan, checkpoint_dir=tmp_path / "ckpt",
                         store=RecordStore(plan.windows))
        with pytest.raises(ValueError):
            run_campaign(plan, resume=True)


class TestKillAndResume:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_resume_is_bitwise_identical(self, tmp_path, plan, reference,
                                         workers):
        ckpt = tmp_path / "ckpt"
        with pytest.raises(ShardFailed):
            run_campaign(plan, shard_size=SHARD_SIZE, workers=workers,
                         checkpoint_dir=ckpt, **KILL_AT_2)
        checkpoint = CheckpointManager(ckpt).load()
        assert not checkpoint.complete
        assert checkpoint.shards_ingested < checkpoint.n_shards
        data = resume_campaign(plan, ckpt, shard_size=SHARD_SIZE,
                               workers=workers)
        assert study_digest(data) == reference

    def test_resume_under_different_worker_count(self, tmp_path, plan,
                                                 reference):
        ckpt = tmp_path / "ckpt"
        with pytest.raises(ShardFailed):
            run_campaign(plan, shard_size=SHARD_SIZE, checkpoint_dir=ckpt,
                         **KILL_AT_2)
        data = resume_campaign(plan, ckpt, shard_size=SHARD_SIZE, workers=3)
        assert study_digest(data) == reference

    def test_resume_preserves_archive_row_order(self, tmp_path, plan,
                                                reference_data):
        # study_digest canonicalizes ordering, so it alone would miss a
        # checkpoint round-trip that alphabetizes the store's dicts —
        # the archive CSVs iterate them in insertion (ingest) order.
        ckpt = tmp_path / "ckpt"
        with pytest.raises(ShardFailed):
            run_campaign(plan, shard_size=SHARD_SIZE, checkpoint_dir=ckpt,
                         **KILL_AT_2)
        data = resume_campaign(plan, ckpt, shard_size=SHARD_SIZE)
        assert list(data.routers) == list(reference_data.routers)
        assert list(data.heartbeats) == list(reference_data.heartbeats)
        assert list(data.heartbeat_delivery) == \
            list(reference_data.heartbeat_delivery)

    def test_resume_of_complete_campaign(self, tmp_path, plan, reference):
        ckpt = tmp_path / "ckpt"
        run_campaign(plan, shard_size=SHARD_SIZE, checkpoint_dir=ckpt)
        data = resume_campaign(plan, ckpt, shard_size=SHARD_SIZE)
        assert study_digest(data) == reference

    def test_resume_rejects_different_campaign(self, tmp_path, plan):
        ckpt = tmp_path / "ckpt"
        with pytest.raises(ShardFailed):
            run_campaign(plan, shard_size=SHARD_SIZE, checkpoint_dir=ckpt,
                         **KILL_AT_2)
        with pytest.raises(CheckpointError):
            resume_campaign(plan, ckpt, seed=999, shard_size=SHARD_SIZE)
        with pytest.raises(CheckpointError):
            # A different shard layout replays different ingest units.
            resume_campaign(plan, ckpt, shard_size=2)

    def test_resume_without_checkpoint(self, tmp_path, plan):
        with pytest.raises(CheckpointError):
            resume_campaign(plan, tmp_path / "nothing",
                            shard_size=SHARD_SIZE)


class TestStudyConfigAndCli:
    CONFIG = dict(seed=5, router_scale=0.05, duration_scale=0.02,
                  traffic_consents=2, low_activity_consents=0)

    def test_run_study_checkpoint_and_resume(self, tmp_path):
        reference = study_digest(run_study(StudyConfig(**self.CONFIG)).data)
        config = StudyConfig(checkpoint_dir=str(tmp_path / "ckpt"),
                             shard_size=1, max_shard_retries=0,
                             **self.CONFIG)
        with pytest.raises(ShardFailed):
            run_study(config,
                      fault_plan=FaultPlan((FaultSpec(shard=1,
                                                      kind="crash"),)))
        data = run_study(config, resume=True).data
        assert study_digest(data) == reference

    def test_study_config_validation(self):
        with pytest.raises(ValueError):
            StudyConfig(max_shard_retries=-1)
        with pytest.raises(ValueError):
            StudyConfig(shard_timeout=-5.0)

    def test_cli_checkpoint_flag_writes_manifest(self, tmp_path, capsys):
        args = ["--seed", "5", "--scale", "0.05", "--duration", "0.02",
                "--consents", "2"]
        ckpt = tmp_path / "ckpt"
        assert main(["run", "--out", str(tmp_path / "archive"),
                     "--checkpoint-dir", str(ckpt)] + args) == 0
        assert (ckpt / CHECKPOINT_NAME).exists()
        capsys.readouterr()

    def test_cli_resume_requires_checkpoint_dir(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["run", "--out", str(tmp_path / "a"), "--resume",
                  "--seed", "5", "--scale", "0.05", "--duration", "0.02"])
