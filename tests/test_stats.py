"""Unit and property tests for the shared statistics kit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (
    EmpiricalCdf,
    HourOfDayProfile,
    MeanWithSpread,
    mean_ranked_shares,
    percentile_by_key,
    shares,
)

samples = st.lists(st.floats(min_value=-1e6, max_value=1e6,
                             allow_nan=False), min_size=1, max_size=100)


class TestEmpiricalCdf:
    def test_basic(self):
        cdf = EmpiricalCdf.from_samples([3, 1, 2])
        assert list(cdf.values) == [1, 2, 3]
        assert cdf.fractions[-1] == 1.0
        assert cdf.n == 3

    def test_empty(self):
        cdf = EmpiricalCdf.from_samples([])
        assert cdf.n == 0
        with pytest.raises(ValueError):
            cdf.median

    def test_median(self):
        assert EmpiricalCdf.from_samples([1, 2, 3]).median == 2

    def test_quantile_bounds(self):
        cdf = EmpiricalCdf.from_samples([1, 2, 3])
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_fraction_at_most(self):
        cdf = EmpiricalCdf.from_samples([1, 2, 3, 4])
        assert cdf.fraction_at_most(2) == 0.5
        assert cdf.fraction_at_most(0) == 0.0
        assert cdf.fraction_at_most(10) == 1.0

    def test_fraction_at_least(self):
        cdf = EmpiricalCdf.from_samples([1, 2, 3, 4])
        assert cdf.fraction_at_least(3) == 0.5
        assert cdf.fraction_at_least(0) == 1.0

    def test_series_downsamples(self):
        cdf = EmpiricalCdf.from_samples(range(1000))
        series = cdf.series(points=10)
        assert len(series) <= 10
        xs = [x for x, _ in series]
        assert xs == sorted(xs)

    def test_series_empty(self):
        assert EmpiricalCdf.from_samples([]).series() == []

    @given(samples)
    @settings(max_examples=50)
    def test_fractions_monotone(self, xs):
        cdf = EmpiricalCdf.from_samples(xs)
        assert np.all(np.diff(cdf.fractions) >= 0)
        assert np.all(np.diff(cdf.values) >= 0)

    @given(samples, st.floats(min_value=0, max_value=1))
    @settings(max_examples=50)
    def test_quantile_within_range(self, xs, q):
        cdf = EmpiricalCdf.from_samples(xs)
        assert min(xs) <= cdf.quantile(q) <= max(xs)


class TestEmpiricalCdfEdgeCases:
    """Degenerate inputs: empty, single-sample, duplicate-heavy."""

    def test_empty_mean_is_nan(self):
        assert np.isnan(EmpiricalCdf.from_samples([]).mean)

    def test_empty_fraction_raises(self):
        cdf = EmpiricalCdf.from_samples([])
        with pytest.raises(ValueError):
            cdf.fraction_at_most(1.0)
        with pytest.raises(ValueError):
            cdf.fraction_at_least(1.0)

    def test_single_sample(self):
        cdf = EmpiricalCdf.from_samples([7.5])
        assert cdf.n == 1
        assert cdf.mean == 7.5
        assert cdf.median == 7.5
        assert cdf.quantile(0.0) == 7.5
        assert cdf.quantile(1.0) == 7.5
        assert cdf.fraction_at_most(7.5) == 1.0
        assert cdf.fraction_at_most(7.4) == 0.0
        assert cdf.fraction_at_least(7.5) == 1.0
        assert cdf.series() == [(7.5, 1.0)]

    def test_duplicate_heavy(self):
        cdf = EmpiricalCdf.from_samples([5.0] * 99 + [1.0])
        assert cdf.median == 5.0
        assert cdf.mean == pytest.approx(4.96)
        assert cdf.fraction_at_most(5.0) == 1.0
        assert cdf.fraction_at_most(1.0) == 0.01
        assert cdf.fraction_at_least(5.0) == 0.99
        # The step at the repeated value stays a valid CDF.
        fractions = [f for _, f in cdf.series(points=10)]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_all_identical(self):
        cdf = EmpiricalCdf.from_samples([2.0] * 10)
        assert cdf.quantile(0.25) == 2.0
        assert cdf.quantile(0.75) == 2.0
        assert cdf.fraction_at_least(2.0) == 1.0
        assert cdf.fraction_at_most(2.0 - 1e-9) == 0.0


class TestMeanWithSpread:
    def test_basic(self):
        m = MeanWithSpread.from_samples([1, 2, 3])
        assert m.mean == 2
        assert m.n == 3
        assert m.std == pytest.approx(np.std([1, 2, 3]))

    def test_empty_is_nan(self):
        m = MeanWithSpread.from_samples([])
        assert np.isnan(m.mean)
        assert m.n == 0


class TestHourOfDayProfile:
    def test_basic(self):
        profile = HourOfDayProfile.from_samples([0, 0, 12], [1.0, 3.0, 5.0])
        assert profile.means[0] == 2.0
        assert profile.means[12] == 5.0
        assert np.isnan(profile.means[5])

    def test_peak_trough_amplitude(self):
        hours = list(range(24)) * 2
        values = [h % 24 for h in hours]
        profile = HourOfDayProfile.from_samples(hours, values)
        assert profile.peak_hour == 23
        assert profile.trough_hour == 0
        assert profile.amplitude() == 23

    def test_rejects_bad_hours(self):
        with pytest.raises(ValueError):
            HourOfDayProfile.from_samples([24], [1.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            HourOfDayProfile.from_samples([1, 2], [1.0])


class TestShares:
    def test_sorted_and_normalized(self):
        result = shares([1, 3, 2])
        assert list(result) == [0.5, 1 / 3, 1 / 6]

    def test_zero_total(self):
        assert list(shares([0, 0])) == [0, 0]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            shares([-1, 2])

    def test_empty(self):
        assert shares([]).size == 0

    @given(st.lists(st.floats(min_value=0, max_value=1e9), min_size=1,
                    max_size=30))
    @settings(max_examples=50)
    def test_sums_to_one_when_nonzero(self, xs):
        result = shares(xs)
        if sum(xs) > 0:
            assert float(result.sum()) == pytest.approx(1.0)
        assert np.all(np.diff(result) <= 0)


class TestMeanRankedShares:
    def test_padding(self):
        result = mean_ranked_shares([np.array([0.9, 0.1]), np.array([1.0])],
                                    ranks=3)
        assert result[0] == pytest.approx(0.95)
        assert result[1] == pytest.approx(0.05)
        assert result[2] == 0.0

    def test_empty_input(self):
        assert list(mean_ranked_shares([], ranks=2)) == [0, 0]

    def test_rejects_bad_ranks(self):
        with pytest.raises(ValueError):
            mean_ranked_shares([], ranks=0)


class TestPercentileByKey:
    def test_groups(self):
        result = percentile_by_key(
            [("a", 1.0), ("a", 3.0), ("b", 10.0)], q=50)
        assert result["a"] == 2.0
        assert result["b"] == 10.0

    def test_empty(self):
        assert percentile_by_key([], q=50) == {}
