"""Tests for the progress heartbeat and the `repro watch` subcommand."""

import json

import pytest

from repro.cli import main
from repro.telemetry.progress import (
    PROGRESS_NAME,
    ProgressWriter,
    read_progress,
    render_progress,
    tail_events,
)


class TestProgressWriter:
    def test_writes_immediately_and_atomically(self, tmp_path):
        path = tmp_path / PROGRESS_NAME
        writer = ProgressWriter(path, shards=16, homes=252, workers=4,
                                trace_id="t-1")
        payload = json.loads(path.read_text())
        assert payload["status"] == "running"
        assert payload["shards"] == {"total": 16, "ingested": 0,
                                     "in_flight": 0, "retries": 0}
        assert payload["trace_id"] == "t-1"
        assert payload["workers"] == 4
        assert not list(tmp_path.glob("*.tmp"))  # replaced, never left
        assert writer.writes == 1

    def test_update_folds_counters(self, tmp_path):
        path = tmp_path / PROGRESS_NAME
        writer = ProgressWriter(path, shards=4, homes=100)
        writer.update(shards_ingested=2, in_flight=1, records_delta=500)
        writer.update(records_delta=250, retries_delta=1)
        payload = json.loads(path.read_text())
        assert payload["shards"]["ingested"] == 2
        assert payload["shards"]["retries"] == 1
        assert payload["records_ingested"] == 750
        assert payload["eta_seconds"] is not None  # progress made

    def test_finish_writes_terminal_status(self, tmp_path):
        path = tmp_path / PROGRESS_NAME
        writer = ProgressWriter(path, shards=4, homes=100)
        writer.update(shards_ingested=4, in_flight=2)
        writer.finish()
        payload = json.loads(path.read_text())
        assert payload["status"] == "finished"
        assert payload["shards"]["in_flight"] == 0
        assert payload["eta_seconds"] is None

    def test_failed_status(self, tmp_path):
        writer = ProgressWriter(tmp_path / PROGRESS_NAME, shards=4,
                                homes=100)
        writer.finish("failed")
        assert json.loads(writer.path.read_text())["status"] == "failed"

    def test_throttle_skips_rapid_writes(self, tmp_path):
        writer = ProgressWriter(tmp_path / PROGRESS_NAME, shards=4,
                                homes=100, min_interval=3600.0)
        before = writer.writes
        writer.update(shards_ingested=1)  # throttled
        writer.update(shards_ingested=2, force=True)  # forced through
        assert writer.writes == before + 1
        payload = json.loads(writer.path.read_text())
        assert payload["shards"]["ingested"] == 2

    def test_resumed_campaign_rates_exclude_prior_shards(self, tmp_path):
        writer = ProgressWriter(tmp_path / PROGRESS_NAME, shards=8,
                                homes=100, start_shard=4)
        payload = writer.payload()
        assert payload["shards"]["ingested"] == 4
        assert payload["eta_seconds"] is None  # no progress *this* run yet


class TestReadAndRender:
    def test_read_progress_accepts_directory(self, tmp_path):
        assert read_progress(tmp_path) is None
        ProgressWriter(tmp_path / PROGRESS_NAME, shards=2, homes=10)
        assert read_progress(tmp_path)["shards"]["total"] == 2

    def test_render_progress_frame(self, tmp_path):
        writer = ProgressWriter(tmp_path / PROGRESS_NAME, shards=4,
                                homes=100, trace_id="t-9")
        writer.update(shards_ingested=2, records_delta=1000)
        frame = render_progress(read_progress(tmp_path))
        assert "t-9" in frame
        assert "2/4" in frame and "50%" in frame
        assert "1,000 ingested" in frame

    def test_render_includes_event_tail(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        with events_path.open("w") as handle:
            for i in range(10):
                handle.write(json.dumps(
                    {"ts": 1000.0 + i, "event": "shard_finished",
                     "shard": i}) + "\n")
        tail = tail_events(events_path, n=3)
        assert [e["shard"] for e in tail] == [7, 8, 9]
        writer = ProgressWriter(tmp_path / PROGRESS_NAME, shards=4,
                                homes=10)
        frame = render_progress(writer.payload(), tail)
        assert "shard_finished" in frame and "shard=9" in frame

    def test_tail_events_missing_file(self, tmp_path):
        assert tail_events(tmp_path / "missing.jsonl") == []

    def test_tail_events_bounded_read(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with path.open("w") as handle:
            for i in range(5000):
                handle.write(json.dumps({"ts": i, "event": "tick",
                                         "n": i}) + "\n")
        tail = tail_events(path, n=2, max_bytes=4096)
        assert [e["n"] for e in tail] == [4998, 4999]


class TestWatchCli:
    def test_once_renders_frame(self, tmp_path, capsys):
        writer = ProgressWriter(tmp_path / PROGRESS_NAME, shards=4,
                                homes=100)
        writer.update(shards_ingested=1)
        assert main(["watch", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "1/4" in out

    def test_once_without_progress_exits_nonzero(self, tmp_path, capsys):
        assert main(["watch", str(tmp_path), "--once"]) == 1
        assert "waiting for" in capsys.readouterr().out

    def test_stale_heartbeat_warns(self, tmp_path, capsys):
        path = tmp_path / PROGRESS_NAME
        writer = ProgressWriter(path, shards=4, homes=100)
        payload = writer.payload()
        payload["ts"] = payload["ts"] - 9999  # fake an old heartbeat
        path.write_text(json.dumps(payload))
        assert main(["watch", str(tmp_path), "--once"]) == 0
        assert "WARNING" in capsys.readouterr().out

    def test_follows_to_terminal_status(self, tmp_path, capsys):
        writer = ProgressWriter(tmp_path / PROGRESS_NAME, shards=2,
                                homes=10)
        writer.update(shards_ingested=2)
        writer.finish()
        # Not --once: the loop sees the terminal status and returns.
        assert main(["watch", str(tmp_path), "--interval", "0.01"]) == 0
        assert "finished" in capsys.readouterr().out

    def test_failed_campaign_exits_nonzero(self, tmp_path):
        writer = ProgressWriter(tmp_path / PROGRESS_NAME, shards=2,
                                homes=10)
        writer.finish("failed")
        assert main(["watch", str(tmp_path), "--interval", "0.01"]) == 1


class TestTraceReportCli:
    def test_report_from_trace_dir(self, tmp_path, capsys):
        from repro.trace import write_chrome_trace
        spans = [{"name": "ingest", "cat": "engine", "ts": 0.0, "dur": 1.0,
                  "pid": 1, "args": {"shard": 0}}]
        write_chrome_trace(tmp_path / "trace.json", spans, "cli-1")
        assert main(["trace", "report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cli-1" in out and "ingest" in out

    def test_report_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["trace", "report", str(tmp_path / "nope.json")])
