"""Unit tests for the Section 4 availability analysis, on synthetic logs.

These tests hand-build heartbeat logs with known gap structure so every
statistic has an exactly computable expected value — no simulator involved.
"""

import numpy as np
import pytest

from repro.core import availability as av
from repro.core.datasets import HeartbeatLog, StudyData
from repro.core.records import RouterInfo, UptimeReport
from repro.simulation.timebase import DAY, HOUR, MINUTE, StudyWindows, utc

T0 = utc(2012, 10, 1)


def minute_log(rid, *up_blocks):
    """Heartbeat log with one timestamp per minute inside each block."""
    stamps = np.concatenate([
        np.arange(start, end, MINUTE) for start, end in up_blocks
    ]) if up_blocks else np.empty(0)
    return HeartbeatLog(rid, stamps)


def make_data(logs, infos=None, uptime=()):
    routers = {}
    for log in logs:
        if infos and log.router_id in infos:
            routers[log.router_id] = infos[log.router_id]
        else:
            routers[log.router_id] = RouterInfo(log.router_id, "US", True,
                                                -5.0, 49800)
    return StudyData(routers=routers, windows=StudyWindows(),
                     heartbeats={log.router_id: log for log in logs},
                     uptime_reports=list(uptime))


class TestDowntimeExtraction:
    def test_short_gap_not_downtime(self):
        # 9-minute gap: below the 10-minute rule.
        log = HeartbeatLog("r", np.array([T0, T0 + 60, T0 + 60 + 9 * MINUTE]))
        assert len(av.downtime_events(log)) == 0

    def test_ten_minute_gap_is_downtime(self):
        log = HeartbeatLog("r", np.array([T0, T0 + 10 * MINUTE]))
        events = av.downtime_events(log)
        assert len(events) == 1
        assert events.intervals[0] == (T0, T0 + 10 * MINUTE)

    def test_multiple_gaps(self):
        log = minute_log("r", (T0, T0 + HOUR),
                         (T0 + 2 * HOUR, T0 + 3 * HOUR),
                         (T0 + 5 * HOUR, T0 + 6 * HOUR))
        events = av.downtime_events(log)
        assert len(events) == 2
        durations = sorted(events.durations())
        assert durations[0] == pytest.approx(HOUR + MINUTE, abs=120)
        assert durations[1] == pytest.approx(2 * HOUR + MINUTE, abs=120)

    def test_edges_not_counted(self):
        # Nothing before the first or after the last heartbeat counts.
        log = minute_log("r", (T0 + 10 * DAY, T0 + 10 * DAY + HOUR))
        assert len(av.downtime_events(log)) == 0

    def test_empty_and_single(self):
        assert len(av.downtime_events(HeartbeatLog("r", np.empty(0)))) == 0
        assert len(av.downtime_events(HeartbeatLog("r", np.array([T0])))) == 0


class TestRatesAndAvailability:
    def test_downtime_rate(self):
        # Two gaps over ten observed days.
        log = minute_log("r", (T0, T0 + 3 * DAY),
                         (T0 + 4 * DAY, T0 + 6 * DAY),
                         (T0 + 7 * DAY, T0 + 10 * DAY))
        rate = av.downtime_rate_per_day(log)
        assert rate == pytest.approx(2 / 10, rel=0.01)

    def test_rate_none_when_unobserved(self):
        assert av.downtime_rate_per_day(HeartbeatLog("r", np.empty(0))) is None

    def test_availability_fraction(self):
        log = minute_log("r", (T0, T0 + 8 * DAY), (T0 + 9 * DAY, T0 + 10 * DAY))
        fraction = av.availability_fraction(log)
        assert fraction == pytest.approx(0.9, abs=0.01)

    def test_observed_days(self):
        log = minute_log("r", (T0, T0 + 5 * DAY))
        assert av.observed_days(log) == pytest.approx(5.0, abs=0.01)

    def test_timeline_clips(self):
        log = minute_log("r", (T0, T0 + 5 * DAY))
        timeline = av.availability_timeline(log, (T0 + DAY, T0 + 2 * DAY))
        assert timeline.span == (T0 + DAY, T0 + 2 * DAY)


class TestGroupStatistics:
    def make_two_group_data(self):
        dev_info = RouterInfo("dev1", "US", True, -5.0, 49800)
        dvg_info = RouterInfo("dvg1", "IN", False, 5.5, 3700)
        dev_log = minute_log("dev1", (T0, T0 + 30 * DAY))  # no downtime
        dvg_blocks = [(T0 + d * DAY, T0 + d * DAY + 20 * HOUR)
                      for d in range(30)]
        dvg_log = minute_log("dvg1", *dvg_blocks)  # one 4h gap per day
        return make_data([dev_log, dvg_log],
                         infos={"dev1": dev_info, "dvg1": dvg_info})

    def test_rate_cdfs_split_by_group(self):
        data = self.make_two_group_data()
        dev = av.downtime_rate_cdf(data, developed=True)
        dvg = av.downtime_rate_cdf(data, developed=False)
        assert dev.median == 0
        assert dvg.median == pytest.approx(1.0, rel=0.05)

    def test_duration_cdf(self):
        data = self.make_two_group_data()
        dvg = av.downtime_duration_cdf(data, developed=False)
        assert dvg.median == pytest.approx(4 * HOUR + MINUTE, rel=0.02)

    def test_median_days_between_downtimes(self):
        data = self.make_two_group_data()
        assert av.median_days_between_downtimes(data, True) == float("inf")
        assert av.median_days_between_downtimes(data, False) == \
            pytest.approx(1.0, rel=0.05)

    def test_min_observation_filter(self):
        log = minute_log("dev2", (T0, T0 + HOUR))  # under a day observed
        data = make_data([log])
        assert av.downtime_rate_cdf(data, developed=True).n == 0


class TestCountryJoin:
    def test_fig5_points(self):
        infos = {
            f"IN{i}": RouterInfo(f"IN{i}", "IN", False, 5.5, 3700)
            for i in range(3)
        }
        infos.update({
            f"US{i}": RouterInfo(f"US{i}", "US", True, -5.0, 49800)
            for i in range(3)
        })
        logs = []
        for i in range(3):  # IN homes: one downtime/day
            blocks = [(T0 + d * DAY, T0 + d * DAY + 20 * HOUR)
                      for d in range(10)]
            logs.append(minute_log(f"IN{i}", *blocks))
            logs.append(minute_log(f"US{i}", (T0, T0 + 10 * DAY)))
        data = make_data(logs, infos=infos)
        points = av.downtimes_by_country(data, min_routers=3,
                                         normalize_days=100)
        assert len(points) == 2
        by_code = {p.country_code: p for p in points}
        assert by_code["IN"].median_downtimes == pytest.approx(100, rel=0.15)
        assert by_code["US"].median_downtimes == 0
        assert points[0].gdp_ppp_per_capita < points[1].gdp_ppp_per_capita

    def test_min_routers_filter(self):
        data = self.make_single_home()
        assert av.downtimes_by_country(data, min_routers=2) == []

    @staticmethod
    def make_single_home():
        return make_data([minute_log("US1", (T0, T0 + 5 * DAY))])

    def test_availability_by_country(self):
        data = self.make_single_home()
        result = av.median_availability_by_country(data)
        assert result["US"] == pytest.approx(1.0, abs=0.01)


class TestAttribution:
    def make_data_with_uptime(self, boot_inside_gap):
        gap = (T0 + DAY, T0 + DAY + 2 * HOUR)
        log = minute_log("r", (T0, gap[0]), (gap[1], T0 + 2 * DAY))
        if boot_inside_gap:
            # Router rebooted during the gap: powered off.
            report = UptimeReport("r", gap[1] + HOUR,
                                  uptime_seconds=HOUR + 30 * MINUTE)
        else:
            # Uptime spans the gap: the router never lost power.
            report = UptimeReport("r", gap[1] + HOUR,
                                  uptime_seconds=3 * DAY)
        return make_data([log], uptime=[report]), gap

    def test_power_attribution(self):
        data, gap = self.make_data_with_uptime(boot_inside_gap=True)
        assert av.classify_downtime(data, "r", gap) == "power"

    def test_network_attribution(self):
        data, gap = self.make_data_with_uptime(boot_inside_gap=False)
        assert av.classify_downtime(data, "r", gap) == "network"

    def test_unknown_without_reports(self):
        data, gap = self.make_data_with_uptime(boot_inside_gap=True)
        data.uptime_reports = []
        assert av.classify_downtime(data, "r", gap) == "unknown"

    def test_attribution_counts(self):
        data, gap = self.make_data_with_uptime(boot_inside_gap=True)
        counts = av.downtime_attribution(data, "r")
        assert counts["power"] == 1
        assert counts["network"] == 0

    def test_attribution_missing_router(self):
        data, _ = self.make_data_with_uptime(True)
        counts = av.downtime_attribution(data, "ghost")
        assert counts == {"power": 0, "network": 0, "unknown": 0}


class TestApplianceDetection:
    def test_detects_daily_cycler(self):
        blocks = [(T0 + d * DAY + 18 * HOUR, T0 + d * DAY + 22 * HOUR)
                  for d in range(20)]
        data = make_data([minute_log("cn", *blocks)])
        assert av.appliance_mode_routers(data) == ["cn"]

    def test_ignores_always_on(self):
        data = make_data([minute_log("us", (T0, T0 + 20 * DAY))])
        assert av.appliance_mode_routers(data) == []

    def test_ignores_rare_long_outage(self):
        # 60% availability but only one event: not an appliance.
        log = minute_log("r", (T0, T0 + 6 * DAY), (T0 + 10 * DAY, T0 + 10 * DAY + DAY))
        data = make_data([log])
        assert av.appliance_mode_routers(data) == []


class TestHighlights:
    def test_section4_highlights(self):
        infos = {}
        logs = []
        for code, gdp, developed, n in (("US", 49800, True, 3),
                                        ("IN", 3700, False, 3),
                                        ("PK", 2700, False, 3)):
            for i in range(n):
                rid = f"{code}{i}"
                infos[rid] = RouterInfo(rid, code, developed,
                                        0.0, gdp)
                if developed:
                    logs.append(minute_log(rid, (T0, T0 + 20 * DAY)))
                else:
                    cycles = 2 if code == "PK" else 1
                    blocks = []
                    for d in range(20):
                        day = T0 + d * DAY
                        if cycles == 1:
                            blocks.append((day, day + 20 * HOUR))
                        else:
                            blocks.append((day, day + 10 * HOUR))
                            blocks.append((day + 11 * HOUR, day + 20 * HOUR))
                    logs.append(minute_log(rid, *blocks))
        data = make_data(logs, infos=infos)
        highlights = av.section4_highlights(data)
        assert highlights.median_days_between_downtimes_developed == \
            float("inf")
        assert highlights.median_days_between_downtimes_developing < 1.1
        assert highlights.worst_two_countries_by_downtimes[0] == "PK"
