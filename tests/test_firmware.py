"""Tests for the BISmark firmware collectors."""

import numpy as np
import pytest

from repro.core.records import (
    OBFUSCATED_DOMAIN,
    Medium,
    Spectrum,
)
from repro.netutils.mac import parse_mac
from repro.simulation.countries import country_by_code
from repro.simulation.household import Household, HouseholdConfig
from repro.simulation.seeding import SeedHierarchy
from repro.simulation.timebase import DAY, HOUR, StudyWindows, utc
from repro.simulation.vendors import vendor_category
from repro.firmware.anonymize import AnonymizationPolicy
from repro.firmware.capacity import capacity_measurements
from repro.firmware.devices import census_at, device_counts, device_roster
from repro.firmware.heartbeat import heartbeat_send_times
from repro.firmware.router import BismarkRouter
from repro.firmware.traffic import monitor_traffic
from repro.firmware.uptime import uptime_reports
from repro.firmware.wifi import wifi_scans

SPAN = (utc(2013, 3, 1), utc(2013, 3, 22))  # three weeks


@pytest.fixture(scope="module")
def us_home():
    return Household(SeedHierarchy(11), HouseholdConfig(
        "US500", country_by_code("US"), SPAN, traffic_consent=True))


@pytest.fixture(scope="module")
def cn_home():
    return Household(SeedHierarchy(11), HouseholdConfig(
        "CN500", country_by_code("CN"), SPAN))


@pytest.fixture(scope="module")
def policy(us_home):
    whitelist = frozenset(d.name for d in us_home._universe if d.whitelisted)
    return AnonymizationPolicy(whitelist=whitelist)


class TestAnonymizationPolicy:
    def test_mac_keeps_oui(self, policy):
        mac = parse_mac("3c:07:54:01:02:03")
        anon = parse_mac(policy.anonymize_mac(mac))
        assert anon.oui == mac.oui
        assert anon.lower24 != mac.lower24

    def test_mac_stable(self, policy):
        mac = parse_mac("3c:07:54:01:02:03")
        assert policy.anonymize_mac(mac) == policy.anonymize_mac(mac)

    def test_domain_whitelisting(self, policy):
        assert policy.filter_domain("google.com") == "google.com"
        assert policy.filter_domain("shady.example") == OBFUSCATED_DOMAIN

    def test_ip_pseudonym(self, policy):
        assert policy.anonymize_ip(0x08080808) != 0x08080808

    def test_whitelist_coerced_to_frozenset(self):
        policy = AnonymizationPolicy(whitelist={"a.com"})
        assert isinstance(policy.whitelist, frozenset)

    def test_for_whitelist(self):
        policy = AnonymizationPolicy.for_whitelist(["a.com", "b.com"])
        assert policy.filter_domain("b.com") == "b.com"


class TestPolicyMemoization:
    """The per-instance caches must never leak between policies — two
    studies with different salts (or whitelists) produce unlinkable
    pseudonyms, cached or not."""

    def test_caches_are_per_instance(self):
        a = AnonymizationPolicy(whitelist=frozenset({"a.com"}))
        b = AnonymizationPolicy(whitelist=frozenset({"a.com"}))
        assert a._domain_cache is not b._domain_cache
        assert a._ip_cache is not b._ip_cache
        assert a._mac_cache is not b._mac_cache

    def test_different_salts_never_share_ip_pseudonyms(self):
        wl = frozenset({"a.com"})
        first = AnonymizationPolicy(whitelist=wl, salt=b"study-one")
        second = AnonymizationPolicy(whitelist=wl, salt=b"study-two")
        address = 0x08080808
        # Warm both caches, in both orders, then cross-check.
        one = first.anonymize_ip(address)
        two = second.anonymize_ip(address)
        assert one != two
        assert first.anonymize_ip(address) == one
        assert second.anonymize_ip(address) == two

    def test_different_salts_never_share_mac_pseudonyms(self):
        mac = parse_mac("3c:07:54:01:02:03")
        wl = frozenset({"a.com"})
        first = AnonymizationPolicy(whitelist=wl, salt=b"study-one")
        second = AnonymizationPolicy(whitelist=wl, salt=b"study-two")
        assert first.anonymize_mac(mac) != second.anonymize_mac(mac)
        assert first.anonymize_mac(mac) == first.anonymize_mac(mac)

    def test_different_whitelists_never_share_domain_filtering(self):
        allow = AnonymizationPolicy(whitelist=frozenset({"a.com"}))
        deny = AnonymizationPolicy(whitelist=frozenset({"b.com"}))
        assert allow.filter_domain("a.com") == "a.com"
        assert deny.filter_domain("a.com") == OBFUSCATED_DOMAIN
        # Re-query after both caches are warm: still isolated.
        assert allow.filter_domain("a.com") == "a.com"

    def test_cached_values_match_uncached(self):
        policy = AnonymizationPolicy(whitelist=frozenset({"a.com"}))
        fresh = AnonymizationPolicy(whitelist=frozenset({"a.com"}))
        address = 0x01020304
        mac = parse_mac("f8:1a:67:aa:bb:cc")
        for _ in range(3):  # repeated hits serve from cache
            assert policy.anonymize_ip(address) == fresh.anonymize_ip(address)
            assert policy.anonymize_mac(mac) == fresh.anonymize_mac(mac)
            assert policy.filter_domain("other.net") == OBFUSCATED_DOMAIN

    def test_policy_equality_ignores_caches(self):
        a = AnonymizationPolicy(whitelist=frozenset({"a.com"}))
        b = AnonymizationPolicy(whitelist=frozenset({"a.com"}))
        a.anonymize_ip(0x08080808)  # warm one cache only
        assert a == b
        assert hash(a) == hash(b)


class TestHeartbeat:
    def test_roughly_one_per_minute_while_online(self, us_home):
        rng = np.random.default_rng(0)
        sends = heartbeat_send_times(us_home, *SPAN, rng=rng)
        online_minutes = us_home.online_intervals(*SPAN).total_duration() / 60
        assert abs(len(sends) - online_minutes) / online_minutes < 0.02

    def test_all_sends_while_online(self, us_home):
        rng = np.random.default_rng(0)
        sends = heartbeat_send_times(us_home, *SPAN, rng=rng,
                                     jitter_seconds=0.0)
        online = us_home.online_intervals(*SPAN)
        assert online.contains_many(sends).all()

    def test_sorted(self, us_home):
        sends = heartbeat_send_times(us_home, *SPAN,
                                     rng=np.random.default_rng(1))
        assert np.all(np.diff(sends) >= 0)

    def test_empty_window(self, us_home):
        assert heartbeat_send_times(us_home, SPAN[0], SPAN[0],
                                    rng=np.random.default_rng(0)).size == 0

    def test_appliance_home_sends_fewer(self, us_home, cn_home):
        us = heartbeat_send_times(us_home, *SPAN,
                                  rng=np.random.default_rng(2))
        cn = heartbeat_send_times(cn_home, *SPAN,
                                  rng=np.random.default_rng(2))
        assert len(cn) < len(us)

    def test_rejects_bad_interval(self, us_home):
        with pytest.raises(ValueError):
            heartbeat_send_times(us_home, *SPAN,
                                 rng=np.random.default_rng(0), interval=0)


class TestUptimeReports:
    def test_cadence(self, us_home):
        reports = uptime_reports(us_home, *SPAN,
                                 rng=np.random.default_rng(0))
        expected = (SPAN[1] - SPAN[0]) / (12 * HOUR)
        assert abs(len(reports) - expected) <= expected * 0.3 + 1

    def test_boot_time_consistent_with_power(self, us_home):
        for report in uptime_reports(us_home, *SPAN,
                                     rng=np.random.default_rng(0)):
            assert us_home.power.is_on(report.timestamp - 1)
            boot = report.boot_time
            # Boot must land at the start of a power-on interval.
            starts = [s for s, _ in us_home.power.on_intervals]
            assert min(abs(boot - s) for s in starts) < 1.0

    def test_uptime_resets_on_cycles(self):
        # Force an appliance home: it can never accumulate days of uptime.
        home = None
        for seed in range(40):
            candidate = Household(SeedHierarchy(seed), HouseholdConfig(
                "CN900", country_by_code("CN"), SPAN))
            if candidate.power.mode == "appliance":
                home = candidate
                break
        assert home is not None, "no appliance CN home in 40 seeds"
        reports = uptime_reports(home, *SPAN, rng=np.random.default_rng(0))
        if reports:
            assert max(r.uptime_seconds for r in reports) < DAY


class TestCapacity:
    def test_estimates_track_link(self, us_home):
        measurements = capacity_measurements(us_home, *SPAN,
                                             rng=np.random.default_rng(0))
        assert measurements
        truth = us_home.link.config.downstream_mbps
        values = [m.downstream_mbps for m in measurements]
        assert abs(np.mean(values) - truth) / truth < 0.05

    def test_upstream_below_downstream(self, us_home):
        for m in capacity_measurements(us_home, *SPAN,
                                       rng=np.random.default_rng(1)):
            assert m.upstream_mbps < m.downstream_mbps


class TestDeviceCensus:
    def test_census_counts_connected(self, us_home):
        sample = census_at(us_home, SPAN[0] + 3 * DAY)
        manual_wired = sum(
            1 for d in us_home.devices
            if d.medium is Medium.WIRED and d.is_connected(SPAN[0] + 3 * DAY))
        assert sample.wired == min(manual_wired, 4)

    def test_port_cap(self, us_home):
        for sample in device_counts(us_home, *SPAN,
                                    rng=np.random.default_rng(0)):
            assert sample.wired <= 4

    def test_samples_only_when_powered(self, cn_home):
        for sample in device_counts(cn_home, *SPAN,
                                    rng=np.random.default_rng(0)):
            assert cn_home.power.is_on(sample.timestamp)

    def test_roster_macs_anonymized_with_oui(self, us_home, policy):
        roster = device_roster(us_home, *SPAN, policy)
        assert roster
        real_macs = {str(d.mac) for d in us_home.devices}
        for entry in roster:
            assert entry.device_mac not in real_macs
            assert vendor_category(parse_mac(entry.device_mac).oui) != "Unknown"

    def test_roster_always_flags_ground_truth(self, us_home, policy):
        roster = device_roster(us_home, *SPAN, policy)
        truth = {policy.anonymize_mac(d.mac): d.always_connected
                 for d in us_home.devices}
        for entry in roster:
            if truth[entry.device_mac]:
                assert entry.always_connected

    def test_appliance_home_cannot_certify_always(self, cn_home, policy):
        if cn_home.power.mode == "appliance":
            roster = device_roster(cn_home, *SPAN, policy)
            assert not any(e.always_connected for e in roster)


class TestWifiScans:
    def test_scan_cadence_and_backoff(self, us_home):
        scans = wifi_scans(us_home, *SPAN, rng=np.random.default_rng(0))
        assert scans
        # With backoff, strictly fewer scans than the raw schedule allows.
        max_possible = 2 * (SPAN[1] - SPAN[0]) / (10 * 60)
        assert len(scans) < max_possible

    def test_both_spectra_observed(self, us_home):
        scans = wifi_scans(us_home, *SPAN, rng=np.random.default_rng(0))
        spectra = {s.spectrum for s in scans}
        assert spectra == {Spectrum.GHZ_2_4, Spectrum.GHZ_5}

    def test_counts_nonnegative(self, us_home):
        for s in wifi_scans(us_home, *SPAN, rng=np.random.default_rng(1)):
            assert s.neighbor_aps >= 0
            assert s.associated_clients >= 0

    def test_rejects_bad_backoff(self, us_home):
        with pytest.raises(ValueError):
            wifi_scans(us_home, *SPAN, rng=np.random.default_rng(0),
                       backoff_factor=0)


class TestTrafficMonitor:
    @pytest.fixture(scope="class")
    def monitored(self, us_home, policy):
        window = (SPAN[0], SPAN[0] + 3 * DAY)
        return monitor_traffic(us_home, *window,
                               rng=np.random.default_rng(0), policy=policy)

    def test_series_length(self, monitored):
        series, _, _ = monitored
        assert len(series) == 3 * DAY // 60

    def test_downlink_capped_at_line_rate(self, monitored, us_home):
        series, _, _ = monitored
        assert series.down_bps.max() <= us_home.link.downstream_bps + 1e-6

    def test_flows_anonymized(self, monitored, us_home, policy):
        _, flows, _ = monitored
        assert flows
        real_macs = {str(d.mac) for d in us_home.devices}
        whitelist = policy.whitelist
        for flow in flows:
            assert flow.device_mac not in real_macs
            assert flow.domain in whitelist or flow.domain == OBFUSCATED_DOMAIN
            assert (flow.remote_ip >> 28) == 0xF  # pseudonym block

    def test_dns_sampled_from_flows(self, monitored):
        _, flows, dns = monitored
        assert 0 < len(dns) < len(flows)
        flow_domains = {f.domain for f in flows}
        for record in dns:
            assert record.domain in flow_domains
            if record.record_type == "A":
                assert record.address is not None
            else:
                assert record.address is None

    def test_sampling_fraction(self, us_home, policy):
        window = (SPAN[0], SPAN[0] + 2 * DAY)
        _, all_flows, _ = monitor_traffic(
            us_home, *window, rng=np.random.default_rng(1), policy=policy,
            flow_sample_fraction=1.0)
        _, half_flows, _ = monitor_traffic(
            us_home, *window, rng=np.random.default_rng(1), policy=policy,
            flow_sample_fraction=0.5)
        assert len(half_flows) < len(all_flows)

    def test_rejects_bad_fractions(self, us_home, policy):
        with pytest.raises(ValueError):
            monitor_traffic(us_home, *SPAN, rng=np.random.default_rng(0),
                            policy=policy, flow_sample_fraction=1.5)


class TestBismarkRouter:
    def test_consent_tiers(self, us_home, policy):
        windows = StudyWindows(
            heartbeats=SPAN, uptime=SPAN, capacity=SPAN, devices=SPAN,
            wifi=(SPAN[0], SPAN[0] + 2 * DAY),
            traffic=(SPAN[0], SPAN[0] + 2 * DAY))
        seeds = SeedHierarchy(1)
        without = BismarkRouter(us_home, seeds, policy,
                                collect_traffic=False).run(windows)
        assert without.flows == [] and without.throughput is None
        with_traffic = BismarkRouter(us_home, seeds, policy,
                                     collect_traffic=True).run(windows)
        assert with_traffic.flows and with_traffic.throughput is not None
        # Non-traffic collectors are unaffected by the consent tier.
        assert len(without.heartbeat_sends) == len(with_traffic.heartbeat_sends)

    def test_disabled_collectors_stay_empty(self, us_home, policy):
        windows = StudyWindows(
            heartbeats=SPAN, uptime=SPAN, capacity=SPAN, devices=SPAN,
            wifi=(SPAN[0], SPAN[0] + 2 * DAY),
            traffic=(SPAN[0], SPAN[0] + 2 * DAY))
        output = BismarkRouter(us_home, SeedHierarchy(1), policy,
                               collect_uptime=False, collect_devices=False,
                               collect_wifi=False).run(windows)
        assert output.uptime == []
        assert output.device_counts == [] and output.roster == []
        assert output.wifi_scans == []
        assert len(output.heartbeat_sends) > 0  # heartbeats are unconditional
