"""Pinned study digests: the cross-PR bitwise-determinism contract.

Every optimization PR must leave ``study_digest`` bitwise-identical for a
fixed :class:`StudyConfig`.  These pins were captured before the PR-2
hot-path vectorization and must never change without an explicit,
documented decision to break the determinism contract (bump the pins in
the same commit that changes the simulation, and say why in CHANGES.md).

``BENCH_PIN`` is the digest of the full bench configuration recorded in
``BENCH_engine.json``; the engine-scaling bench and the CI perf smoke job
assert it.  The tier-1 pins below use smaller configs so the suite stays
fast.
"""

from repro import StudyConfig, perf, run_study, study_digest

#: seed 2013, router_scale=2.0, duration_scale=0.02, traffic_consents=10,
#: low_activity_consents=2 — asserted by benchmarks/test_engine_scaling.py.
BENCH_PIN = "cd4a9b8740c634a18b2915acc793f42993b42e6b285bc99fe131370a2f54c0c8"

TINY = dict(seed=2013, router_scale=0.1, duration_scale=0.02,
            traffic_consents=2, low_activity_consents=0)
TINY_PIN = "9a925616da8ec32902b4593e5ba687e003e9020d64d21cc233bfe8b7375f0515"

SMALL = dict(seed=2013, router_scale=0.25, duration_scale=0.02,
             traffic_consents=4, low_activity_consents=1)
SMALL_PIN = "d4b25e1c0f63b30017d4f96573e2f8d6fcb4d1a9bbb7c05cf741e4c50bcbe08d"


BENCH = dict(seed=2013, router_scale=2.0, duration_scale=0.02,
             traffic_consents=10, low_activity_consents=2)


def test_tiny_config_digest_pin():
    data = run_study(StudyConfig(**TINY)).data
    assert study_digest(data) == TINY_PIN


def test_small_config_digest_pin():
    data = run_study(StudyConfig(**SMALL)).data
    assert study_digest(data) == SMALL_PIN


def test_bench_config_digest_pin():
    """The router_scale=2.0 bench configuration, pinned in tier-1 too.

    The columnar materializer (PR 6) made this 252-home run cheap enough
    to assert here rather than only in the engine bench, closing the gap
    between the fast tier-1 pins (scales 0.1 and 0.25) and the bench pin.
    """
    data = run_study(StudyConfig(**BENCH)).data
    assert study_digest(data) == BENCH_PIN


def test_profiling_does_not_perturb_digest():
    """--profile must be an observer: same records, same digest."""
    try:
        data = run_study(StudyConfig(**TINY), profile=True).data
    finally:
        perf.disable()
    assert study_digest(data) == TINY_PIN


def test_parallel_execution_matches_pin():
    data = run_study(StudyConfig(**TINY, workers=2)).data
    assert study_digest(data) == TINY_PIN


def test_telemetry_does_not_perturb_digest(tmp_path):
    """Full telemetry (metrics + events + manifest) is an observer too."""
    try:
        data = run_study(StudyConfig(**TINY),
                         telemetry_dir=tmp_path / "telemetry").data
    finally:
        perf.disable()
    assert study_digest(data) == TINY_PIN
