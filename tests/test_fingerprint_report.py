"""Tests for device fingerprinting and the text report renderer."""

import numpy as np
import pytest

from repro.core import report
from repro.core.fingerprint import (
    CATEGORIES,
    DeviceFingerprinter,
    category_vector,
    cosine_similarity,
    feature_vector,
    fingerprint_devices,
)
from repro.core.datasets import StudyData
from repro.core.records import OBFUSCATED_DOMAIN, FlowRecord, RouterInfo
from repro.core.stats import EmpiricalCdf, HourOfDayProfile
from repro.simulation.timebase import StudyWindows, utc

T0 = utc(2013, 4, 1)


def flow(mac, domain, bytes_down, rid="r"):
    return FlowRecord(rid, T0, mac, domain, 0xF0000001, 443, "https",
                      0.0, bytes_down, 10.0)


class TestCategoryVector:
    def test_streaming_device(self):
        flows = [flow("m", "netflix.com", 700.0), flow("m", "hulu.com", 300.0)]
        vector = category_vector(flows)
        assert vector[CATEGORIES.index("streaming")] == pytest.approx(1.0)
        assert vector.sum() == pytest.approx(1.0)

    def test_obfuscated_counts_as_other(self):
        flows = [flow("m", OBFUSCATED_DOMAIN, 500.0),
                 flow("m", "google.com", 500.0)]
        vector = category_vector(flows)
        assert vector[CATEGORIES.index("other")] == pytest.approx(0.5)
        assert vector[CATEGORIES.index("web")] == pytest.approx(0.5)

    def test_empty_is_zero(self):
        assert category_vector([]).sum() == 0

    def test_unknown_domain_is_other(self):
        vector = category_vector([flow("m", "not-in-universe.example", 1.0)])
        assert vector[CATEGORIES.index("other")] == 1.0


class TestFeatureVector:
    def test_extends_category_vector(self):
        flows = [flow("m", "netflix.com", 1e8)]
        vector = feature_vector(flows)
        assert vector.shape == (len(CATEGORIES) + 3,)
        assert vector[CATEGORIES.index("streaming")] == pytest.approx(1.0)

    def test_upstream_fraction_axis(self):
        heavy_up = FlowRecord("r", T0, "m", "dropbox.com", 1, 443, "https",
                              9e6, 1e6, 60.0)
        vector = feature_vector([heavy_up])
        assert vector[len(CATEGORIES)] == pytest.approx(0.9)

    def test_size_axis_monotone(self):
        small = feature_vector([flow("m", "google.com", 1e3)])
        big = feature_vector([flow("m", "netflix.com", 1e8)])
        assert big[len(CATEGORIES) + 1] > small[len(CATEGORIES) + 1]

    def test_empty_flows(self):
        vector = feature_vector([])
        assert vector.shape == (len(CATEGORIES) + 3,)
        assert vector.sum() == 0


class TestCosineSimilarity:
    def test_identical(self):
        v = np.array([0.5, 0.5, 0, 0, 0, 0, 0])
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_orthogonal(self):
        a = np.array([1.0, 0, 0, 0, 0, 0, 0])
        b = np.array([0, 1.0, 0, 0, 0, 0, 0])
        assert cosine_similarity(a, b) == 0.0

    def test_zero_vector(self):
        z = np.zeros(7)
        assert cosine_similarity(z, z) == 0.0


class TestDeviceFingerprinter:
    def train(self):
        streaming = np.zeros(len(CATEGORIES))
        streaming[CATEGORIES.index("streaming")] = 1.0
        cloudy = np.zeros(len(CATEGORIES))
        cloudy[CATEGORIES.index("cloud")] = 0.7
        cloudy[CATEGORIES.index("web")] = 0.3
        clf = DeviceFingerprinter()
        clf.fit([(streaming, "media_box"), (cloudy, "desktop")])
        return clf

    def test_classifies_streaming(self):
        clf = self.train()
        query = np.zeros(len(CATEGORIES))
        query[CATEGORIES.index("streaming")] = 0.9
        query[CATEGORIES.index("web")] = 0.1
        match = clf.classify(query)
        assert match.label == "media_box"
        assert match.similarity > 0.9

    def test_below_floor_returns_none(self):
        clf = self.train()
        query = np.zeros(len(CATEGORIES))
        query[CATEGORIES.index("gaming")] = 1.0
        assert clf.classify(query) is None

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DeviceFingerprinter().classify(np.zeros(len(CATEGORIES)))

    def test_fit_validates(self):
        clf = DeviceFingerprinter()
        with pytest.raises(ValueError):
            clf.fit([])
        with pytest.raises(ValueError):
            clf.fit([(np.zeros(3), "x"), (np.zeros(4), "y")])
        with pytest.raises(ValueError):
            clf.fit([(np.zeros((2, 2)), "x")])

    def test_labels(self):
        assert self.train().labels == ["desktop", "media_box"]

    def test_min_similarity_validation(self):
        with pytest.raises(ValueError):
            DeviceFingerprinter(min_similarity=2.0)

    def test_fingerprint_devices_end_to_end(self):
        flows = [flow("roku", "netflix.com", 5e8),
                 flow("roku", "hulu.com", 3e8),
                 flow("imac", "dropbox.com", 4e8),
                 flow("imac", "google.com", 1e8),
                 flow("quiet", "google.com", 10.0)]
        data = StudyData(routers={"r": RouterInfo("r", "US", True, -5, 49800)},
                         windows=StudyWindows(), flows=flows)
        clf = self.train()
        results = fingerprint_devices(data, "r", clf)
        assert results["roku"].label == "media_box"
        assert results["imac"].label == "desktop"
        assert "quiet" not in results  # under the byte floor


class TestReportRendering:
    def test_table_alignment(self):
        text = report.render_table(["name", "value"],
                                   [("alpha", 1.0), ("b", 123456.0)],
                                   title="Demo")
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            report.render_table(["a"], [("x", "y")])

    def test_float_formatting(self):
        text = report.render_table(["v"], [(float("nan"),), (0.5,),
                                           (123456.0,), (float("inf"),)])
        assert "nan" in text and "inf" in text and "0.5" in text

    def test_series_sparkline(self):
        pairs = [(0.0, 0.0), (1.0, 0.5), (2.0, 1.0)]
        text = report.render_series(pairs, "x", "y")
        assert "█" in text

    def test_series_downsampling(self):
        pairs = [(float(i), float(i)) for i in range(100)]
        text = report.render_series(pairs, max_points=10)
        assert len(text.splitlines()) <= 13

    def test_empty_series(self):
        assert "(empty series)" in report.render_series([], title="t")

    def test_render_cdf(self):
        cdf = EmpiricalCdf.from_samples([1, 2, 3, 4])
        text = report.render_cdf(cdf, x_label="downtimes")
        assert "downtimes" in text and "CDF" in text

    def test_render_profile_skips_nan(self):
        profile = HourOfDayProfile.from_samples([0, 12], [1.0, 2.0])
        text = report.render_profile(profile)
        assert "12" in text

    def test_render_comparison(self):
        text = report.render_comparison("Fig. 3",
                                        [("median", ">30 days", 34.2)])
        assert "paper" in text and "measured" in text and "Fig. 3" in text
