"""Columnar materialization equivalence: cohort views == reference homes.

The shard-wide columnar materializer (``repro.simulation.cohort``) must be
a pure re-expression of the per-home reference path: same streams, same
draw order, bitwise-identical models.  These tests compare every model
payload of every home for every shard split of a small plan against
households built the pre-refactor way — ``Household(seeds, config)`` —
and cover the O(shard) deployment lookups that ride on the cohort.
"""

import numpy as np
import pytest

from repro.core.intervals import IntervalSet
from repro.simulation.deployment import (
    Deployment,
    DeploymentConfig,
    build_deployment_plan,
    materialize_shard,
)
from repro.simulation.household import Household
from repro.simulation.seeding import SeedHierarchy
from repro.simulation.timebase import StudyWindows


@pytest.fixture(scope="module")
def plan():
    return build_deployment_plan(DeploymentConfig(
        seed=2013, router_scale=0.05,
        windows=StudyWindows().scaled(0.05),
        traffic_consents=2, low_activity_consents=1))


@pytest.fixture(scope="module")
def reference_homes(plan):
    seeds = SeedHierarchy(plan.seed)
    return [Household(seeds, config) for config in plan.household_configs]


def assert_same_home(ref, view):
    assert view.router_id == ref.router_id
    assert view.config == ref.config
    # Activity schedule: exact curve arrays.
    for name in ("presence_weekday", "presence_weekend",
                 "activity_weekday", "activity_weekend"):
        assert np.array_equal(getattr(ref.schedule, name),
                              getattr(view.schedule, name)), name
    # Power: concrete class, mode, and exact on-intervals.
    assert type(view.power) is type(ref.power)
    assert view.power.mode == ref.power.mode
    assert view.power.on_intervals == ref.power.on_intervals
    # Link: jittered config and every interval layer, including the
    # internal outage set the uptime analyses consult.
    assert view.link.config == ref.link.config
    assert view.link.up == ref.link.up
    assert view.link._outages == ref.link._outages
    assert view.link.bad_periods == ref.link.bad_periods
    # Wireless: density class and the full neighborhood channel lists.
    assert view.wireless.sparse == ref.wireless.sparse
    assert view.wireless._neighbors == ref.wireless._neighbors
    # Devices: every drawn field plus the association timeline.
    assert len(view.devices) == len(ref.devices)
    for ref_dev, view_dev in zip(ref.devices, view.devices):
        assert view_dev.device_id == ref_dev.device_id
        assert view_dev.kind is ref_dev.kind
        assert view_dev.mac == ref_dev.mac
        assert view_dev.medium is ref_dev.medium
        assert view_dev.spectrum == ref_dev.spectrum
        assert view_dev.always_connected == ref_dev.always_connected
        assert view_dev.traffic_weight == ref_dev.traffic_weight
        assert view_dev.connected == ref_dev.connected


@pytest.mark.parametrize("n_shards", [1, 2, 3, 5, 7, 100])
def test_every_shard_split_matches_reference(plan, reference_homes, n_shards):
    """Columnar output is bitwise-identical for every shard split."""
    covered = 0
    for shard_index in range(n_shards):
        cohort = materialize_shard(plan, shard_index, n_shards)
        lo, hi = plan.shard_bounds(shard_index, n_shards)
        assert len(cohort) == hi - lo
        for offset, view in enumerate(cohort):
            assert_same_home(reference_homes[lo + offset], view)
        covered += len(cohort)
    assert covered == len(plan)


def test_cohort_sequence_protocol(plan):
    cohort = materialize_shard(plan, 0, 1)
    assert len(cohort) == len(plan)
    # Indexing caches the view; slices and negative indices work.
    assert cohort[0] is cohort[0]
    assert cohort[-1].router_id == plan.household_configs[-1].router_id
    sliced = cohort[:3]
    assert [h.router_id for h in sliced] == plan.router_ids[:3]
    with pytest.raises(IndexError):
        cohort[len(plan)]


def test_empty_shard(plan):
    # With more shards than homes the early shards come out empty
    # (shard 0 of 5n owns [0, n//5n) = nothing).
    cohort = materialize_shard(plan, 0, 5 * len(plan))
    assert len(cohort) == 0
    assert list(cohort) == []


def test_uptime_at_matches_linear_scan(plan, reference_homes):
    """The bisect-based uptime_at agrees with the former linear scan."""
    home = reference_homes[0]
    span = home.span
    probes = np.linspace(span[0], span[1], 400)
    for epoch in probes.tolist():
        expected = None
        for on_start, on_end in home.power.on_intervals:
            if on_start <= epoch < on_end:
                expected = epoch - on_start
                break
        assert home.uptime_at(epoch) == expected


def test_deployment_point_lookup_stays_shardwise(plan):
    deployment = Deployment(plan)
    rid = plan.router_ids[len(plan) // 2]
    home = deployment.household(rid)
    assert home.router_id == rid
    # The point lookup must not have materialized the whole plan.
    assert deployment._households is None
    # Repeat lookups in the same shard reuse the cached cohort view.
    assert deployment.household(rid) is home
    with pytest.raises(KeyError):
        deployment.household("nope")


def test_deployment_routers_in_matches_full(plan):
    shardwise = Deployment(plan)
    full = Deployment(plan)
    _ = full.households  # force the full materialization path
    for country in shardwise.countries:
        lazy_ids = [h.router_id for h in shardwise.routers_in(country.code)]
        full_ids = [h.router_id for h in full.routers_in(country.code)]
        assert lazy_ids == full_ids
    assert shardwise._households is None


def test_interval_array_paths_match_tuple_paths():
    """Array-backed IntervalSet ops equal the tuple-backed reference."""
    rng = np.random.default_rng(7)
    for _ in range(25):
        starts = rng.uniform(0.0, 100.0, size=12)
        ends = starts + rng.uniform(0.0, 8.0, size=12)
        other_starts = rng.uniform(0.0, 100.0, size=9)
        other_ends = other_starts + rng.uniform(0.0, 8.0, size=9)

        array_a = IntervalSet.from_event_arrays(starts, ends)
        tuple_a = IntervalSet(zip(starts.tolist(), ends.tolist()))
        array_b = IntervalSet.from_event_arrays(other_starts, other_ends)
        tuple_b = IntervalSet(zip(other_starts.tolist(), other_ends.tolist()))

        assert array_a == tuple_a
        assert array_a.total_duration() == tuple_a.total_duration()
        assert array_a.union(array_b) == tuple_a.union(tuple_b)
        assert array_a.intersection(array_b) == tuple_a.intersection(tuple_b)
        assert array_a.complement((10.0, 90.0)) == \
            tuple_a.complement((10.0, 90.0))
        assert array_a.clip(25.0, 75.0) == tuple_a.clip(25.0, 75.0)
        assert array_a.filter_min_duration(2.0) == \
            tuple_a.filter_min_duration(2.0)
