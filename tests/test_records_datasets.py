"""Tests for record validation and the dataset containers."""

import numpy as np
import pytest

from repro.core.datasets import (
    HeartbeatLog,
    StudyData,
    ThroughputSeries,
    summarize_datasets,
)
from repro.core.records import (
    CapacityMeasurement,
    DeviceCountSample,
    DeviceRosterEntry,
    DnsRecord,
    FlowRecord,
    Medium,
    RouterInfo,
    Spectrum,
    ThroughputSample,
    UptimeReport,
)
from repro.simulation.timebase import StudyWindows, utc

T0 = utc(2013, 4, 1)


class TestRecordValidation:
    def test_router_info(self):
        with pytest.raises(ValueError):
            RouterInfo("", "US", True, 0.0, 49800)
        with pytest.raises(ValueError):
            RouterInfo("r", "US", True, 0.0, -1)

    def test_uptime_report(self):
        with pytest.raises(ValueError):
            UptimeReport("r", T0, -1.0)
        assert UptimeReport("r", T0, 100.0).boot_time == T0 - 100.0

    def test_capacity(self):
        with pytest.raises(ValueError):
            CapacityMeasurement("r", T0, -1.0, 1.0)

    def test_device_counts(self):
        with pytest.raises(ValueError):
            DeviceCountSample("r", T0, -1, 0, 0)
        sample = DeviceCountSample("r", T0, 1, 2, 3)
        assert sample.wireless == 5
        assert sample.total == 6

    def test_roster_entry(self):
        with pytest.raises(ValueError):
            DeviceRosterEntry("r", "m", Medium.WIRELESS, Spectrum.GHZ_2_4,
                              T0, T0 - 1, False)
        with pytest.raises(ValueError):
            DeviceRosterEntry("r", "m", Medium.WIRED, Spectrum.GHZ_2_4,
                              T0, T0, False)

    def test_flow_record(self):
        with pytest.raises(ValueError):
            FlowRecord("r", T0, "m", "d", 1, 80, "http", -1.0, 0.0, 1.0)
        flow = FlowRecord("r", T0, "m", "d", 1, 80, "http", 2.0, 3.0, 1.0)
        assert flow.bytes_total == 5.0

    def test_throughput_sample(self):
        with pytest.raises(ValueError):
            ThroughputSample("r", T0, -1.0, 0.0)

    def test_dns_record(self):
        with pytest.raises(ValueError):
            DnsRecord("r", T0, "m", "d", "TXT")


class TestHeartbeatLog:
    def test_sorts_unsorted_input(self):
        log = HeartbeatLog("r", np.array([3.0, 1.0, 2.0]))
        assert list(log.timestamps) == [1.0, 2.0, 3.0]

    def test_clipped(self):
        log = HeartbeatLog("r", np.arange(10.0))
        clipped = log.clipped(2.0, 5.0)
        assert list(clipped.timestamps) == [2.0, 3.0, 4.0]

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            HeartbeatLog("r", np.zeros((2, 2)))

    def test_len(self):
        assert len(HeartbeatLog("r", np.arange(5.0))) == 5


class TestThroughputSeries:
    def make(self):
        return ThroughputSeries("r", T0, np.array([1.0, 0.0, 3.0]),
                                np.array([2.0, 0.0, 4.0]))

    def test_timestamps(self):
        series = self.make()
        assert list(series.timestamps) == [T0, T0 + 60, T0 + 120]

    def test_samples_materialize(self):
        samples = list(self.make().samples())
        assert len(samples) == 3
        assert samples[2].up_bps == 3.0

    def test_active_mask(self):
        assert list(self.make().active_mask()) == [True, False, True]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ThroughputSeries("r", T0, np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            ThroughputSeries("r", T0, np.array([1.0]), np.array([1.0]),
                             interval_seconds=0)


class TestStudyDataHelpers:
    def make_data(self):
        routers = {
            "US1": RouterInfo("US1", "US", True, -5, 49800),
            "IN1": RouterInfo("IN1", "IN", False, 5.5, 3700),
        }
        flows = [FlowRecord("US1", T0, "m", "google.com", 1, 443, "https",
                            0.0, 2e8, 1.0),
                 FlowRecord("IN1", T0, "m", "google.com", 1, 443, "https",
                            0.0, 1e6, 1.0)]
        return StudyData(routers=routers, windows=StudyWindows(), flows=flows)

    def test_group_ids(self):
        data = self.make_data()
        assert data.developed_ids() == ["US1"]
        assert data.developing_ids() == ["IN1"]
        assert data.router_ids() == ["IN1", "US1"]

    def test_countries_of(self):
        data = self.make_data()
        assert data.countries_of(["US1", "IN1", "ghost"]) == ["IN", "US"]

    def test_traffic_bytes(self):
        data = self.make_data()
        totals = data.traffic_bytes_by_router()
        assert totals["US1"] == pytest.approx(2e8)

    def test_qualifying_filter(self):
        data = self.make_data()
        assert data.qualifying_traffic_routers() == ["US1"]
        assert data.qualifying_traffic_routers(min_bytes=1.0) == \
            ["IN1", "US1"]


class TestTable2Summary:
    def test_summary_on_small_study(self, small_data):
        rows = {row.name: row for row in summarize_datasets(small_data)}
        assert set(rows) == {"Heartbeats", "Capacity", "Uptime", "Devices",
                             "WiFi", "Traffic"}
        total = len(small_data.routers)
        assert rows["Heartbeats"].routers == total
        assert rows["Uptime"].routers <= total
        assert rows["WiFi"].routers < total
        assert rows["Traffic"].countries <= 1  # US only
        assert rows["Heartbeats"].kind == "active"
        assert rows["Traffic"].kind == "passive"
        # Windows pass through from the configuration.
        assert rows["Heartbeats"].window == small_data.windows.heartbeats
