"""The campaign engine's invariants: sharding, parallelism, spill backend.

The load-bearing contract: for a fixed seed, *how* a campaign is executed
(worker count, shard size, store backend) must never change *what* it
collects — ``study_digest`` equality is the oracle.
"""

import pickle

import pytest

from repro import StudyConfig, run_study, study_digest
from repro.collection.backends import MemoryBackend, SpillBackend
from repro.collection.engine import run_campaign, run_shard, shard_count
from repro.collection.path import PathConfig
from repro.collection.storage import RecordStore
from repro.simulation.deployment import (
    DeploymentConfig,
    build_deployment_plan,
    materialize_shard,
)
from repro.simulation.timebase import StudyWindows

#: A deliberately tiny deployment (5 homes across 3 countries) so each
#: test can afford several full collection passes.
SMALL = DeploymentConfig(
    seed=11, windows=StudyWindows().scaled(0.02), router_scale=0.05,
    traffic_consents=2, low_activity_consents=0,
    countries=("US", "IN", "BR"))

#: No path loss, so record-level comparisons are exact without relying on
#: the shared-path rng (which engine ordering already pins elsewhere).
LOSSLESS = PathConfig(packet_loss=0.0, outage_rate_per_day=0.0)


@pytest.fixture(scope="module")
def plan():
    return build_deployment_plan(SMALL)


@pytest.fixture(scope="module")
def serial_data(plan):
    return run_campaign(plan, workers=1)


class TestShardPartition:
    def test_shards_partition_homes(self, plan):
        for n_shards in (1, 2, 3, len(plan), len(plan) + 4):
            ids = [config.router_id
                   for index in range(n_shards)
                   for config in plan.shard_configs(index, n_shards)]
            assert ids == plan.router_ids

    def test_more_shards_than_homes(self, plan):
        n_shards = len(plan) + 3
        sizes = [len(plan.shard_configs(index, n_shards))
                 for index in range(n_shards)]
        assert sum(sizes) == len(plan)
        assert max(sizes) == 1  # no shard ever gets more than its share

    def test_single_home_plan(self):
        plan = build_deployment_plan(DeploymentConfig(
            seed=3, windows=StudyWindows().scaled(0.02), router_scale=0.05,
            traffic_consents=0, low_activity_consents=0, countries=("TH",)))
        assert len(plan) == 1
        assert plan.shard_bounds(0, 4) == (0, 0)
        assert plan.shard_bounds(3, 4) == (0, 1)
        homes = materialize_shard(plan, 3, 4)
        assert [h.router_id for h in homes] == plan.router_ids
        data = run_campaign(plan, workers=2, shard_size=1)
        assert set(data.routers) == set(plan.router_ids)

    def test_shard_bounds_validation(self, plan):
        with pytest.raises(ValueError):
            plan.shard_bounds(0, 0)
        with pytest.raises(ValueError):
            plan.shard_bounds(2, 2)

    def test_shard_count(self):
        assert shard_count(0) == 1
        assert shard_count(5, shard_size=2) == 3
        assert shard_count(5, shard_size=100) == 1
        with pytest.raises(ValueError):
            shard_count(5, shard_size=0)

    def test_materialized_shard_matches_full(self, plan):
        full = materialize_shard(plan, 0, 1)
        part = materialize_shard(plan, 1, 3)
        lo, hi = plan.shard_bounds(1, 3)
        for a, b in zip(full[lo:hi], part):
            assert a.router_id == b.router_id
            assert a.link.config.downstream_mbps == \
                b.link.config.downstream_mbps
            assert [d.mac for d in a.devices] == [d.mac for d in b.devices]

    def test_run_shard_empty_slice(self, plan):
        n_shards = len(plan) + 2
        assert plan.shard_bounds(0, n_shards) == (0, 0)
        assert run_shard(plan, 0, n_shards) == []

    def test_plan_is_picklable(self, plan):
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.router_ids == plan.router_ids
        assert clone.wifi_routers == plan.wifi_routers


class TestEngineDeterminism:
    def test_shard_size_is_invisible(self, plan, serial_data):
        reference = study_digest(serial_data)
        for shard_size in (1, 2, 100):
            data = run_campaign(plan, shard_size=shard_size)
            assert study_digest(data) == reference

    def test_parallel_equals_serial(self, plan, serial_data):
        parallel = run_campaign(plan, workers=2, shard_size=2)
        assert study_digest(parallel) == study_digest(serial_data)

    def test_run_study_workers_equal(self):
        config = StudyConfig(seed=404, router_scale=0.1, duration_scale=0.02,
                             traffic_consents=3, low_activity_consents=1)
        serial = run_study(config)
        parallel = run_study(config, workers=4)
        assert study_digest(parallel.data) == study_digest(serial.data)

    def test_run_study_config_workers_field(self):
        config = StudyConfig(seed=404, router_scale=0.05, duration_scale=0.02,
                             traffic_consents=2, low_activity_consents=0,
                             workers=2, shard_size=3)
        result = run_study(config)
        assert len(result.data.routers) == len(result.deployment)

    def test_workers_validation(self, plan):
        with pytest.raises(ValueError):
            run_campaign(plan, workers=0)
        with pytest.raises(ValueError):
            StudyConfig(workers=0)
        with pytest.raises(ValueError):
            StudyConfig(store_backend="redis")


class TestSpillBackend:
    def test_spill_matches_memory_bitwise(self, plan, serial_data):
        backend = SpillBackend(max_buffered_records=64)
        data = run_campaign(plan, store=RecordStore(plan.windows, backend))
        assert study_digest(data) == study_digest(serial_data)

    def test_spill_record_equality(self, plan):
        memory = run_campaign(plan, path_config=LOSSLESS)
        backend = SpillBackend(max_buffered_records=64)
        spilled = run_campaign(plan, path_config=LOSSLESS,
                               store=RecordStore(plan.windows, backend))
        assert spilled.uptime_reports == memory.uptime_reports
        assert spilled.capacity == memory.capacity
        assert spilled.device_counts == memory.device_counts
        assert spilled.roster == memory.roster
        assert spilled.wifi_scans == memory.wifi_scans
        assert spilled.flows == memory.flows
        assert spilled.dns == memory.dns
        # Exports iterate these dicts, so insertion *order* must match the
        # memory backend too, not just the key sets.
        assert list(spilled.heartbeats) == list(memory.heartbeats)
        assert list(spilled.throughput) == list(memory.throughput)
        for rid, series in memory.throughput.items():
            other = spilled.throughput[rid]
            assert other.start == series.start
            # npz round-trip must not promote an int interval to float.
            assert other.interval_seconds == series.interval_seconds
            assert type(other.interval_seconds) is type(series.interval_seconds)

    def test_peak_residency_bounded(self, plan):
        limit = 128
        backend = SpillBackend(max_buffered_records=limit)
        data = run_campaign(plan, store=RecordStore(plan.windows, backend),
                            shard_size=2)
        total = (len(data.uptime_reports) + len(data.capacity)
                 + len(data.device_counts) + len(data.roster)
                 + len(data.wifi_scans) + len(data.flows) + len(data.dns))
        assert total > limit  # the bound was actually exercised
        # One over-sized batch may exceed the buffer; nothing else may.
        from repro.collection.batches import DEFAULT_BATCH_RECORDS
        assert backend.peak_buffered_records <= max(limit,
                                                    DEFAULT_BATCH_RECORDS)

    def test_spill_uses_given_directory(self, plan, tmp_path):
        backend = SpillBackend(directory=tmp_path / "spill",
                               max_buffered_records=32)
        run_campaign(plan, store=RecordStore(plan.windows, backend))
        runs = list((tmp_path / "spill" / "runs").glob("*.jsonl"))
        assert runs  # records actually hit disk
        assert list((tmp_path / "spill" / "heartbeats").glob("*.npy"))

    def test_study_config_spill_selection(self, tmp_path):
        config = StudyConfig(seed=7, router_scale=0.05, duration_scale=0.02,
                             traffic_consents=2, low_activity_consents=0,
                             store_backend="spill",
                             spill_dir=str(tmp_path / "campaign"),
                             spill_buffer_records=64)
        store = config.make_store(config.windows())
        assert isinstance(store.backend, SpillBackend)
        assert isinstance(StudyConfig().make_store(
            StudyConfig().windows()).backend, MemoryBackend)


class TestSpillDurability:
    def test_empty_spill_does_not_advance_runs(self, tmp_path):
        backend = SpillBackend(directory=tmp_path, max_buffered_records=4)
        backend.flush()
        backend.flush()
        assert backend._n_runs == 0
        from repro.core.records import UptimeReport
        backend.append("uptime", [UptimeReport("r0", 1.0, 2.0)])
        backend.flush()
        assert backend._n_runs == 1
        backend.flush()  # nothing buffered: run numbering must hold still
        assert backend._n_runs == 1
        assert [p.name for p in backend._runs["uptime"]] == \
            ["uptime-00000.jsonl"]

    def test_second_finalize_is_an_error(self, tmp_path):
        backend = SpillBackend(directory=tmp_path)
        backend.finalize()
        with pytest.raises(RuntimeError):
            backend.finalize()

    def test_state_dict_round_trip(self, plan, tmp_path):
        backend = SpillBackend(directory=tmp_path / "spill",
                               max_buffered_records=64)
        data = run_campaign(plan, store=RecordStore(plan.windows, backend))
        # finalize() already ran inside to_study_data; snapshot a second
        # backend over the same directory from the recorded state.
        state = backend.state_dict()
        clone = SpillBackend(directory=tmp_path / "spill",
                             max_buffered_records=64)
        clone.restore_state(state)
        contents = clone.finalize()
        assert list(contents.heartbeats) == list(data.heartbeats)
        assert contents.lists["uptime"] == data.uptime_reports
        assert contents.lists["dns"] == data.dns

    def test_restore_requires_fresh_backend(self, plan, tmp_path):
        backend = SpillBackend(directory=tmp_path / "spill",
                               max_buffered_records=64)
        run_campaign(plan, store=RecordStore(plan.windows, backend))
        state = backend.state_dict()
        with pytest.raises(RuntimeError):
            backend.restore_state(state)  # not fresh: already has runs

    def test_restore_rejects_missing_files(self, tmp_path):
        backend = SpillBackend(directory=tmp_path / "a")
        state = backend.state_dict()
        state["runs"]["uptime"] = ["uptime-00099.jsonl"]
        clone = SpillBackend(directory=tmp_path / "b")
        with pytest.raises(RuntimeError):
            clone.restore_state(state)


class TestStudyConfigIsolation:
    def test_path_default_not_shared(self):
        a, b = StudyConfig(), StudyConfig()
        assert a.path is not b.path  # field(default_factory=...) guard
