"""Fault injection and engine recovery: retries, timeouts, pool rebuilds.

The oracle for every recovery path is the determinism contract: a
campaign that crashed, hung, corrupted results, or lost its worker pool
mid-flight must still produce a ``study_digest`` bitwise-identical to
the fault-free serial run (pinned here for workers 1 and 4).
"""

import pytest

from repro import study_digest
from repro.collection.engine import ShardFailed, run_campaign, shard_count
from repro.collection.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    trigger,
)
from repro.telemetry import metrics
from repro.simulation.deployment import DeploymentConfig, build_deployment_plan
from repro.simulation.timebase import StudyWindows

SMALL = DeploymentConfig(
    seed=11, windows=StudyWindows().scaled(0.02), router_scale=0.05,
    traffic_consents=2, low_activity_consents=0,
    countries=("US", "IN", "BR"))

#: One home per shard, so every injected coordinate actually fires.
SHARD_SIZE = 1


@pytest.fixture(scope="module")
def plan():
    return build_deployment_plan(SMALL)


@pytest.fixture(scope="module")
def reference(plan):
    """Digest of the fault-free serial run — the bitwise oracle."""
    return study_digest(run_campaign(plan, shard_size=SHARD_SIZE))


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(shard=0, kind="meteor")
        with pytest.raises(ValueError):
            FaultSpec(shard=-1)
        with pytest.raises(ValueError):
            FaultSpec(shard=0, attempt=-1)
        with pytest.raises(ValueError):
            FaultSpec(shard=0, kind="hang", hang_seconds=-1.0)

    def test_duplicate_coordinates_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan((FaultSpec(shard=1), FaultSpec(shard=1, kind="hang")))

    def test_lookup(self):
        plan = FaultPlan((FaultSpec(shard=2, attempt=1, kind="corrupt"),))
        assert plan.lookup(2, 1).kind == "corrupt"
        assert plan.lookup(2, 0) is None
        assert plan.lookup(1, 1) is None
        assert len(plan) == 1

    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(7, n_shards=40, fault_rate=0.5,
                             kinds=FAULT_KINDS)
        b = FaultPlan.seeded(7, n_shards=40, fault_rate=0.5,
                             kinds=FAULT_KINDS)
        assert a == b
        assert all(spec.shard < 40 and spec.attempt == 0
                   for spec in a.faults)
        assert len(FaultPlan.seeded(7, n_shards=40, fault_rate=0.0)) == 0

    def test_seeded_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.seeded(1, n_shards=4, fault_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan.seeded(1, n_shards=4, kinds=("meteor",))

    def test_exit_degrades_in_process(self):
        # In the parent process an "exit" fault must not kill the test
        # runner; it degrades to an ordinary crash.
        with pytest.raises(InjectedFault):
            trigger(FaultSpec(shard=0, kind="exit"))


class TestSerialRecovery:
    def test_crash_is_retried_bitwise_identical(self, plan, reference):
        faults = FaultPlan((FaultSpec(shard=1, kind="crash"),
                            FaultSpec(shard=3, kind="crash"),))
        data = run_campaign(plan, shard_size=SHARD_SIZE, fault_plan=faults,
                            retry_backoff=0.0)
        assert study_digest(data) == reference

    def test_corrupt_result_is_detected_and_retried(self, plan, reference):
        faults = FaultPlan((FaultSpec(shard=0, kind="corrupt"),))
        data = run_campaign(plan, shard_size=SHARD_SIZE, fault_plan=faults,
                            retry_backoff=0.0)
        assert study_digest(data) == reference

    def test_serial_exit_degrades_to_crash(self, plan, reference):
        faults = FaultPlan((FaultSpec(shard=2, kind="exit"),))
        data = run_campaign(plan, shard_size=SHARD_SIZE, fault_plan=faults,
                            retry_backoff=0.0)
        assert study_digest(data) == reference

    def test_retry_budget_exhausted(self, plan):
        # Faults on attempts 0 and 1 of the same shard outlast a
        # one-retry budget.
        faults = FaultPlan((FaultSpec(shard=0, attempt=0),
                            FaultSpec(shard=0, attempt=1)))
        with pytest.raises(ShardFailed):
            run_campaign(plan, shard_size=SHARD_SIZE, fault_plan=faults,
                         max_shard_retries=1, retry_backoff=0.0)

    def test_zero_retries_fails_fast(self, plan):
        with pytest.raises(ShardFailed):
            run_campaign(plan, shard_size=SHARD_SIZE,
                         fault_plan=FaultPlan((FaultSpec(shard=0),)),
                         max_shard_retries=0, retry_backoff=0.0)

    def test_parameter_validation(self, plan):
        with pytest.raises(ValueError):
            run_campaign(plan, max_shard_retries=-1)
        with pytest.raises(ValueError):
            run_campaign(plan, shard_timeout=0.0)


class TestParallelRecovery:
    def test_crash_with_four_workers(self, plan, reference):
        faults = FaultPlan((FaultSpec(shard=0, kind="crash"),
                            FaultSpec(shard=4, kind="corrupt"),))
        data = run_campaign(plan, shard_size=SHARD_SIZE, workers=4,
                            fault_plan=faults, retry_backoff=0.0)
        assert study_digest(data) == reference

    def test_worker_exit_rebuilds_pool(self, plan, reference):
        faults = FaultPlan((FaultSpec(shard=1, kind="exit"),))
        data = run_campaign(plan, shard_size=SHARD_SIZE, workers=4,
                            fault_plan=faults, retry_backoff=0.0)
        assert study_digest(data) == reference

    def test_concurrent_crash_and_exit(self, plan, reference):
        # The head shard's crash retry can race a pool collapse caused
        # by a *different* shard's exit fault: the resubmission itself
        # then raises BrokenProcessPool from inside the retry handler,
        # which must route into the pool rebuild, not escape.
        faults = FaultPlan((FaultSpec(shard=0, kind="crash"),
                            FaultSpec(shard=1, kind="exit"),
                            FaultSpec(shard=2, kind="corrupt"),))
        data = run_campaign(plan, shard_size=SHARD_SIZE, workers=4,
                            fault_plan=faults, retry_backoff=0.0)
        assert study_digest(data) == reference

    def test_straggler_resubmitted_after_timeout(self, plan, reference):
        faults = FaultPlan((FaultSpec(shard=0, kind="hang",
                                      hang_seconds=30.0),))
        data = run_campaign(plan, shard_size=SHARD_SIZE, workers=2,
                            shard_timeout=0.5, fault_plan=faults,
                            retry_backoff=0.0)
        assert study_digest(data) == reference

    def test_parallel_budget_exhausted(self, plan):
        faults = FaultPlan((FaultSpec(shard=2, attempt=0),
                            FaultSpec(shard=2, attempt=1)))
        with pytest.raises(ShardFailed):
            run_campaign(plan, shard_size=SHARD_SIZE, workers=2,
                         fault_plan=faults, max_shard_retries=1,
                         retry_backoff=0.0)


class TestRecoveryTelemetry:
    def test_retry_counters_recorded(self, plan):
        registry = metrics.enable()
        registry.clear()
        try:
            faults = FaultPlan((FaultSpec(shard=1, kind="crash"),))
            run_campaign(plan, shard_size=SHARD_SIZE, fault_plan=faults,
                         retry_backoff=0.0)
            counters = metrics.snapshot()["counters"]
            assert counters[("shard_retries_total", ())] == 1
        finally:
            metrics.disable()

    def test_seeded_plan_survives_campaign(self, plan, reference):
        n_shards = shard_count(len(plan), SHARD_SIZE)
        faults = FaultPlan.seeded(99, n_shards, fault_rate=0.6,
                                  kinds=("crash", "corrupt"))
        assert len(faults) > 0  # the draw actually injected something
        data = run_campaign(plan, shard_size=SHARD_SIZE, fault_plan=faults,
                            retry_backoff=0.0)
        assert study_digest(data) == reference
