"""Tests for the command-line interface."""

import pytest

from repro.cli import main


ARGS = ["--seed", "5", "--scale", "0.15", "--duration", "0.02",
        "--consents", "3"]


class TestRunAndSummary:
    def test_run_exports_archive(self, tmp_path, capsys):
        out = tmp_path / "archive"
        assert main(["run", "--out", str(out)] + ARGS) == 0
        assert (out / "manifest.json").exists()
        assert (out / "flows.csv").exists()
        assert "full archive" in capsys.readouterr().out

    def test_run_public_withholds_traffic(self, tmp_path, capsys):
        out = tmp_path / "public"
        assert main(["run", "--out", str(out), "--public"] + ARGS) == 0
        assert not (out / "flows.csv").exists()
        assert "public" in capsys.readouterr().out

    def test_summary_from_archive(self, tmp_path, capsys):
        out = tmp_path / "archive"
        main(["run", "--out", str(out)] + ARGS)
        capsys.readouterr()
        assert main(["summary", "--archive", str(out)]) == 0
        output = capsys.readouterr().out
        assert "Heartbeats" in output and "Traffic" in output

    def test_summary_from_simulation(self, capsys):
        assert main(["summary"] + ARGS) == 0
        assert "Table 2" in capsys.readouterr().out


class TestReportAndCaps:
    @pytest.fixture(scope="class")
    def archive(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("cli") / "archive"
        main(["run", "--out", str(out)] + ARGS)
        return out

    def test_report(self, archive, capsys):
        assert main(["report", "--archive", str(archive)]) == 0
        output = capsys.readouterr().out
        assert "downtimes/day" in output
        assert "devices per home" in output

    def test_caps(self, archive, capsys):
        code = main(["caps", "--archive", str(archive), "--cap-gb", "1"])
        output = capsys.readouterr().out
        if code == 0:
            assert "Cap dashboard" in output
        else:
            assert "no qualifying" in output

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_run_requires_out(self):
        with pytest.raises(SystemExit):
            main(["run"])


class TestHealthAndTelemetry:
    def test_health_from_simulation(self, capsys):
        assert main(["health"] + ARGS) == 0
        output = capsys.readouterr().out
        assert "Cohort coverage" in output
        assert "Dataset accounting" in output
        assert "deployed" in output

    def test_health_from_archive(self, tmp_path, capsys):
        out = tmp_path / "archive"
        main(["run", "--out", str(out)] + ARGS)
        capsys.readouterr()
        assert main(["health", "--archive", str(out)]) == 0
        assert "Cohort coverage" in capsys.readouterr().out

    def test_telemetry_dir_writes_artifacts(self, tmp_path, capsys):
        from repro.telemetry import load_manifest, parse_prometheus

        out = tmp_path / "archive"
        telemetry = tmp_path / "telemetry"
        assert main(["run", "--out", str(out),
                     "--telemetry-dir", str(telemetry)] + ARGS) == 0
        assert "wrote telemetry artifacts" in capsys.readouterr().err
        samples = parse_prometheus((telemetry / "metrics.prom").read_text())
        assert samples[("shards_completed_total", ())] >= 1
        manifest = load_manifest(telemetry / "manifest.json")
        assert manifest.seed == 5
        assert (telemetry / "events.jsonl").stat().st_size > 0

    @pytest.fixture()
    def drained_perf(self):
        """Profiling flags leave the recorder enabled; clean up after."""
        from repro import perf

        yield
        perf.disable()

    def test_profile_json_writes_stage_timers(self, tmp_path, capsys,
                                              drained_perf):
        import json

        out = tmp_path / "archive"
        profile = tmp_path / "profile.json"
        assert main(["run", "--out", str(out),
                     "--profile-json", str(profile)] + ARGS) == 0
        err = capsys.readouterr().err
        assert "wrote profile JSON" in err
        assert "Per-stage profile" not in err  # table only with --profile
        payload = json.loads(profile.read_text())
        assert set(payload) == {"seconds", "calls", "counters"}
        for stage in ("materialize", "collect", "collect.heartbeat",
                      "collect.wifi", "ingest"):
            assert payload["seconds"][stage] >= 0.0
            assert payload["calls"][stage] >= 1
        assert payload["counters"]["routers"] > 0

    def test_profile_json_composes_with_table(self, tmp_path, capsys,
                                              drained_perf):
        import json

        out = tmp_path / "archive"
        profile = tmp_path / "profile.json"
        assert main(["run", "--out", str(out), "--profile",
                     "--profile-json", str(profile)] + ARGS) == 0
        err = capsys.readouterr().err
        assert "Per-stage profile" in err
        assert json.loads(profile.read_text())["counters"]["routers"] > 0

    @pytest.fixture()
    def repro_logger(self):
        """Snapshot/restore the package logger the CLI configures."""
        import logging

        package = logging.getLogger("repro")
        level, handlers = package.level, list(package.handlers)
        yield package
        package.level = level
        package.handlers = handlers

    def test_verbose_flag_logs_progress(self, repro_logger, caplog):
        import logging

        assert main(["-v", "summary"] + ARGS) == 0
        assert repro_logger.level == logging.INFO
        assert any(r.name.startswith("repro") and r.levelno == logging.INFO
                   for r in caplog.records)

    def test_quiet_flag_raises_threshold(self, repro_logger):
        import logging

        assert main(["-q", "summary"] + ARGS) == 0
        assert repro_logger.level == logging.ERROR
