"""Streamed-vs-exact figure parity, and the no-materialization guarantee.

The exact in-RAM pipeline (``compute_figures``) is the oracle; the
streaming path (``stream_figures``) must reproduce every Section 4-6
figure within the tolerance policy declared in
:mod:`repro.core.streaming` — bitwise for counts/sets/shares/profiles
and uncompressed quantiles, ~1e-9 relative for Welford means and
per-country medians.  The spill tests additionally prove the stream path
never builds ``StoreContents`` lists and keeps at most one run file open
per dataset.
"""

import dataclasses

import numpy as np
import pytest

from repro import StudyConfig, run_study_streaming
from repro.collection.backends import SpillBackend
from repro.collection.engine import run_campaign
from repro.collection.storage import RecordStore
from repro.core.paperkit import reproduce_all, render_report
from repro.core.streaming import (
    StoreSource,
    StudyDataSource,
    StudyFigures,
    compute_figures,
    stream_figures,
)
from repro.simulation.deployment import build_deployment_plan

REL = 1e-9

FIGURE_FIELDS = [f.name for f in dataclasses.fields(StudyFigures)
                 if f.name != "records_streamed"]


def assert_close(a, b, path=""):
    """Recursive nan-aware comparison at the declared tolerance."""
    if isinstance(a, float) or isinstance(b, float):
        a, b = float(a), float(b)
        if np.isnan(a) or np.isnan(b):
            assert np.isnan(a) and np.isnan(b), f"{path}: {a} != {b}"
        else:
            assert a == pytest.approx(b, rel=REL, abs=1e-12), \
                f"{path}: {a} != {b}"
    elif isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a, b = np.asarray(a, dtype=float), np.asarray(b, dtype=float)
        assert a.shape == b.shape, path
        both_nan = np.isnan(a) & np.isnan(b)
        assert np.allclose(a[~both_nan], b[~both_nan], rtol=REL,
                           atol=1e-12, equal_nan=False), path
    elif hasattr(a, "quantile") and hasattr(a, "n"):
        # CDF-shaped: EmpiricalCdf (exact) vs QuantileSketch (stream).
        assert a.n == b.n, f"{path}.n"
        if a.n:
            for q in (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0):
                assert_close(a.quantile(q), b.quantile(q),
                             f"{path}.quantile({q})")
            assert_close(a.mean, b.mean, f"{path}.mean")
            assert_close(a.series(), b.series(), f"{path}.series")
    elif dataclasses.is_dataclass(a) and not isinstance(a, type):
        assert type(a) is type(b), path
        for f in dataclasses.fields(a):
            assert_close(getattr(a, f.name), getattr(b, f.name),
                         f"{path}.{f.name}")
    elif isinstance(a, dict):
        assert list(a) == list(b), f"{path}: keys {list(a)} != {list(b)}"
        for key in a:
            assert_close(a[key], b[key], f"{path}[{key!r}]")
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: len {len(a)} != {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            assert_close(x, y, f"{path}[{i}]")
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


@pytest.fixture(scope="module")
def exact_figures(small_data):
    return compute_figures(small_data)


@pytest.fixture(scope="module")
def streamed_figures(small_data):
    return stream_figures(StudyDataSource(small_data))


class TestStreamParity:
    """Every figure off the stream path matches the exact oracle."""

    @pytest.mark.parametrize("name", FIGURE_FIELDS)
    def test_field_matches(self, name, exact_figures, streamed_figures):
        assert_close(getattr(exact_figures, name),
                     getattr(streamed_figures, name), name)

    def test_records_streamed(self, exact_figures, streamed_figures):
        assert exact_figures.records_streamed == 0
        assert streamed_figures.records_streamed > 0

    def test_small_study_quantiles_are_exact(self, streamed_figures):
        # At this scale no per-group sketch crosses the exact threshold,
        # so CDFs must be bitwise, not merely within rank tolerance.
        for cdf in streamed_figures.fig3.values():
            assert not cdf.compressed
        assert not streamed_figures.fig7.compressed

    def test_same_report_both_paths(self, small_data, streamed_figures):
        exact_report = render_report(reproduce_all(small_data))
        stream_report = render_report(reproduce_all(streamed_figures))
        assert stream_report == exact_report


class TestSpillStreaming:
    """The stream path over a spilled store: no lists, bounded fds."""

    CONFIG = StudyConfig(seed=2013, router_scale=0.1, duration_scale=0.02,
                         traffic_consents=4, low_activity_consents=1)

    @pytest.fixture(scope="class")
    def spilled(self, tmp_path_factory):
        plan = build_deployment_plan(self.CONFIG.deployment_config())
        backend = SpillBackend(
            directory=tmp_path_factory.mktemp("spill"),
            max_buffered_records=256)
        store = run_campaign(plan, seed=self.CONFIG.seed,
                             store=RecordStore(plan.windows, backend),
                             materialize=False)
        # Prove the stream path never materializes: finalize() is the
        # only way to build StoreContents lists, so make it fatal.
        def forbidden():
            raise AssertionError("stream path called backend.finalize()")
        store.backend.finalize = forbidden
        figures = stream_figures(StoreSource(store))
        return store, figures

    @pytest.fixture(scope="class")
    def oracle(self):
        plan = build_deployment_plan(self.CONFIG.deployment_config())
        data = run_campaign(plan, seed=self.CONFIG.seed)
        return compute_figures(data)

    @pytest.mark.parametrize("name", FIGURE_FIELDS)
    def test_matches_memory_oracle(self, name, spilled, oracle):
        _, figures = spilled
        assert_close(getattr(oracle, name), getattr(figures, name), name)

    def test_fd_budget(self, spilled):
        store, _ = spilled
        # The heap merge streams runs chunk-at-a-time: at most one run
        # file open at any moment, however many runs spilled.
        assert store.backend._n_runs > 1
        assert store.backend.peak_open_run_files <= 1

    def test_records_streamed(self, spilled):
        _, figures = spilled
        assert figures.records_streamed > 0

    def test_store_survives_for_second_pass(self, spilled, oracle):
        store, figures = spilled
        again = stream_figures(StoreSource(store))
        assert again.records_streamed == figures.records_streamed
        assert_close(oracle.fig12, again.fig12, "fig12")


class TestRunStudyStreaming:
    def test_end_to_end(self):
        streamed = run_study_streaming(
            StudyConfig(seed=99, router_scale=0.06, duration_scale=0.02,
                        traffic_consents=2, low_activity_consents=0,
                        store_backend="spill", spill_buffer_records=512))
        assert streamed.figures.records_streamed > 0
        expected = {info.country_code
                    for info in streamed.store.routers.values()
                    if info.developed}
        assert {p.country_code for p in streamed.figures.fig5
                if p.developed} <= expected


class TestReproduceAllDispatch:
    def test_accepts_study_data(self, small_data):
        assert reproduce_all(small_data).rows()

    def test_accepts_figures(self, streamed_figures):
        assert reproduce_all(streamed_figures).rows()

    def test_accepts_source(self, small_data):
        report = reproduce_all(StudyDataSource(small_data))
        assert render_report(report) == \
            render_report(reproduce_all(small_data))

    def test_rejects_other(self):
        with pytest.raises(TypeError):
            reproduce_all(42)
