"""Tests for the collection path, record store, and CSV/JSON export."""

import numpy as np
import pytest

from repro.core.datasets import HeartbeatLog, ThroughputSeries
from repro.core.records import (
    CapacityMeasurement,
    DeviceCountSample,
    DeviceRosterEntry,
    DnsRecord,
    FlowRecord,
    Medium,
    RouterInfo,
    Spectrum,
    UptimeReport,
    WifiScanSample,
)
from repro.simulation.timebase import DAY, StudyWindows, utc
from repro.collection.export import export_study, load_study
from repro.collection.path import CollectionPath, PathConfig
from repro.collection.storage import RecordStore

SPAN = (utc(2013, 3, 1), utc(2013, 3, 15))


def make_info(rid="US001"):
    return RouterInfo(rid, "US", True, -5.0, 49800)


class TestCollectionPath:
    def test_zero_loss_passes_everything(self):
        path = CollectionPath(np.random.default_rng(0), SPAN,
                              PathConfig(packet_loss=0.0,
                                         outage_rate_per_day=0.0))
        sends = np.linspace(SPAN[0], SPAN[1] - 1, 1000)
        assert len(path.deliver(sends)) == 1000

    def test_packet_loss_rate(self):
        path = CollectionPath(np.random.default_rng(0), SPAN,
                              PathConfig(packet_loss=0.1,
                                         outage_rate_per_day=0.0))
        sends = np.linspace(SPAN[0], SPAN[1] - 1, 20000)
        delivered = path.deliver(sends)
        assert abs(1 - len(delivered) / 20000 - 0.1) < 0.01

    def test_outages_drop_in_blocks(self):
        path = CollectionPath(np.random.default_rng(3), SPAN,
                              PathConfig(packet_loss=0.0,
                                         outage_rate_per_day=2.0,
                                         outage_median_seconds=7200))
        assert len(path.outages) > 0
        sends = np.linspace(SPAN[0], SPAN[1] - 1, 20000)
        delivered = path.deliver(sends)
        inside = path.outages.contains_many(delivered)
        assert not inside.any()

    def test_outages_shared_across_routers(self):
        path = CollectionPath(np.random.default_rng(3), SPAN,
                              PathConfig(packet_loss=0.0,
                                         outage_rate_per_day=2.0))
        a = path.deliver(np.linspace(SPAN[0], SPAN[1] - 1, 5000))
        b = path.deliver(np.linspace(SPAN[0], SPAN[1] - 1, 5000))
        # Identical send schedules see identical outage holes.
        assert np.array_equal(a, b)

    def test_empty_input(self):
        path = CollectionPath(np.random.default_rng(0), SPAN)
        assert path.deliver(np.empty(0)).size == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PathConfig(packet_loss=1.0)
        with pytest.raises(ValueError):
            PathConfig(outage_rate_per_day=-1)


class TestRecordStore:
    def make_store(self):
        store = RecordStore(StudyWindows())
        store.register_router(make_info())
        return store

    def test_requires_registration(self):
        store = RecordStore(StudyWindows())
        with pytest.raises(KeyError):
            store.add_heartbeats(HeartbeatLog("ghost", np.array([1.0])))
        with pytest.raises(KeyError):
            store.add_uptime([UptimeReport("ghost", 10.0, 5.0)])

    def test_conflicting_registration_rejected(self):
        store = self.make_store()
        with pytest.raises(ValueError):
            store.register_router(RouterInfo("US001", "GB", True, 0.0, 36000))

    def test_reregistration_identical_ok(self):
        store = self.make_store()
        store.register_router(make_info())  # no raise

    def test_records_sorted_in_output(self):
        store = self.make_store()
        store.register_router(make_info("US000"))
        store.add_uptime([UptimeReport("US001", 20.0, 5.0),
                          UptimeReport("US000", 10.0, 5.0)])
        data = store.to_study_data()
        assert [r.router_id for r in data.uptime_reports] == ["US000", "US001"]

    def test_heartbeats_conflicting_reupload_rejected(self):
        store = self.make_store()
        store.add_heartbeats(HeartbeatLog("US001", np.array([1.0])))
        with pytest.raises(ValueError):
            store.add_heartbeats(HeartbeatLog("US001", np.array([1.0, 2.0])))
        assert len(store.to_study_data().heartbeats["US001"]) == 1

    def test_heartbeats_identical_reupload_is_noop(self):
        store = self.make_store()
        store.add_heartbeats(HeartbeatLog("US001", np.array([1.0, 2.0])))
        store.add_heartbeats(HeartbeatLog("US001", np.array([1.0, 2.0])))
        assert len(store.to_study_data().heartbeats["US001"]) == 2

    def test_throughput_conflicting_reupload_rejected(self):
        store = self.make_store()
        store.add_throughput(ThroughputSeries(
            "US001", 0.0, np.array([1.0]), np.array([2.0])))
        with pytest.raises(ValueError):
            store.add_throughput(ThroughputSeries(
                "US001", 0.0, np.array([9.0]), np.array([2.0])))
        store.add_throughput(ThroughputSeries(  # identical retry: no-op
            "US001", 0.0, np.array([1.0]), np.array([2.0])))

    def test_heartbeat_delivery_tally_accumulates(self):
        store = self.make_store()
        store.record_heartbeat_delivery("US001", 10, 9)
        store.record_heartbeat_delivery("US001", 5, 5)
        assert store.heartbeat_delivery["US001"] == (15, 14)
        assert store.to_study_data().heartbeat_delivery == {"US001": (15, 14)}
        with pytest.raises(ValueError):
            store.record_heartbeat_delivery("US001", 1, 2)

    def test_rejection_is_counted(self):
        from repro.telemetry import metrics

        store = self.make_store()
        store.add_heartbeats(HeartbeatLog("US001", np.array([1.0])))
        registry = metrics.enable()
        registry.clear()
        try:
            with pytest.raises(ValueError):
                store.add_heartbeats(HeartbeatLog("US001",
                                                  np.array([1.0, 2.0])))
            key = ("ingest_rejections_total", (("dataset", "heartbeats"),))
            assert registry.counters[key] == 1
        finally:
            metrics.disable()


class TestServerLossAccounting:
    def _server(self, loss):
        from repro.collection.path import CollectionPath
        from repro.collection.server import CollectionServer

        store = RecordStore(StudyWindows())
        store.register_router(make_info())
        path = CollectionPath(np.random.default_rng(7), SPAN,
                              PathConfig(packet_loss=loss,
                                         outage_rate_per_day=0.0))
        return CollectionServer(store, path)

    def test_sent_vs_delivered_tally(self):
        from repro.collection.batches import RecordBatch

        server = self._server(loss=0.2)
        sends = np.linspace(SPAN[0], SPAN[1] - 1, 5000)
        server.receive_batch(RecordBatch("heartbeats", "US001", sends))
        sent, delivered = server.store.heartbeat_delivery["US001"]
        assert sent == 5000
        assert delivered == len(server.store.to_study_data()
                                .heartbeats["US001"])
        assert 0 < delivered < sent

    def test_duplicate_upload_does_not_double_count(self):
        from repro.collection.batches import RecordBatch

        server = self._server(loss=0.0)
        sends = np.linspace(SPAN[0], SPAN[1] - 1, 100)
        server.receive_batch(RecordBatch("heartbeats", "US001", sends))
        server.receive_batch(RecordBatch("heartbeats", "US001", sends))
        assert server.store.heartbeat_delivery["US001"] == (100, 100)


class TestExportRoundTrip:
    @pytest.fixture()
    def study(self):
        store = RecordStore(StudyWindows())
        store.register_router(make_info())
        t0 = SPAN[0]
        store.add_heartbeats(HeartbeatLog("US001",
                                          np.array([t0, t0 + 60, t0 + 120])))
        store.add_uptime([UptimeReport("US001", t0 + 100, 99.5)])
        store.add_capacity([CapacityMeasurement("US001", t0, 20.5, 2.25)])
        store.add_device_counts([DeviceCountSample("US001", t0, 2, 3, 1)])
        store.add_roster([
            DeviceRosterEntry("US001", "3c:07:54:aa:bb:cc", Medium.WIRELESS,
                              Spectrum.GHZ_2_4, t0, t0 + DAY, False),
            DeviceRosterEntry("US001", "b0:a7:37:aa:bb:cc", Medium.WIRED,
                              None, t0, t0 + DAY, True),
        ])
        store.add_wifi_scans([WifiScanSample("US001", t0, Spectrum.GHZ_5,
                                             1, 2)])
        store.add_flows([FlowRecord("US001", t0 + 5, "3c:07:54:aa:bb:cc",
                                    "google.com", 0xF0000001, 443, "https",
                                    100.0, 5000.0, 12.5)])
        store.add_throughput(ThroughputSeries(
            "US001", t0, np.array([100.0, 200.0]), np.array([1e6, 2e6])))
        store.add_dns([DnsRecord("US001", t0 + 4, "3c:07:54:aa:bb:cc",
                                 "google.com", "A", 0xF0000001),
                       DnsRecord("US001", t0 + 6, "3c:07:54:aa:bb:cc",
                                 "google.com", "CNAME", None)])
        store.record_heartbeat_delivery("US001", 4, 3)
        return store.to_study_data()

    def test_full_round_trip(self, study, tmp_path):
        export_study(study, tmp_path / "archive")
        loaded = load_study(tmp_path / "archive")
        assert loaded.routers == study.routers
        assert np.allclose(loaded.heartbeats["US001"].timestamps,
                           study.heartbeats["US001"].timestamps, atol=1e-3)
        assert loaded.uptime_reports[0].uptime_seconds == pytest.approx(99.5)
        assert loaded.capacity[0].downstream_mbps == pytest.approx(20.5)
        assert loaded.device_counts == study.device_counts
        assert loaded.roster == study.roster
        assert loaded.wifi_scans == study.wifi_scans
        assert loaded.flows[0].domain == "google.com"
        assert loaded.flows[0].bytes_down == pytest.approx(5000.0)
        assert np.allclose(loaded.throughput["US001"].down_bps,
                           study.throughput["US001"].down_bps)
        assert loaded.dns[0].address == 0xF0000001
        assert loaded.dns[1].address is None
        assert loaded.windows.heartbeats == study.windows.heartbeats
        assert loaded.heartbeat_delivery == {"US001": (4, 3)}

    def test_public_release_withholds_traffic(self, study, tmp_path):
        root = export_study(study, tmp_path / "public",
                            include_pii_datasets=False)
        assert not (root / "flows.csv").exists()
        assert not (root / "dns.csv").exists()
        loaded = load_study(root)
        assert loaded.flows == []
        assert loaded.throughput == {}
        # Non-PII data sets survive.
        assert loaded.roster == study.roster
        assert len(loaded.heartbeats["US001"]) == 3
