"""Tests for the channel model and the full-spectrum scan extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import Spectrum
from repro.simulation.channels import (
    CHANNELS_2_4,
    CHANNELS_5,
    assign_channels,
    audible,
    audible_counts,
    channel_weights,
    contention_index,
    interference_weight,
    least_contended_channel,
)
from repro.simulation.countries import country_by_code
from repro.simulation.household import Household, HouseholdConfig
from repro.simulation.seeding import SeedHierarchy
from repro.simulation.timebase import utc
from repro.simulation.wireless import (
    WirelessEnvironment,
    WirelessEnvironmentConfig,
)
from repro.firmware.wifi import full_spectrum_scans

SPAN = (utc(2012, 11, 1), utc(2012, 11, 15))


class TestChannelPrimitives:
    def test_channel_sets(self):
        assert CHANNELS_2_4 == tuple(range(1, 12))
        assert set(CHANNELS_5) == {36, 40, 44, 48}

    def test_weights_normalized(self):
        for spectrum in Spectrum:
            _channels, weights = channel_weights(spectrum)
            assert float(weights.sum()) == pytest.approx(1.0)

    def test_one_six_eleven_dominate(self):
        channels, weights = channel_weights(Spectrum.GHZ_2_4)
        by_channel = dict(zip(channels, weights))
        conventional = by_channel[1] + by_channel[6] + by_channel[11]
        assert conventional > 0.7

    def test_assign_channels(self):
        drawn = assign_channels(np.random.default_rng(0), Spectrum.GHZ_2_4,
                                500)
        assert len(drawn) == 500
        assert set(drawn) <= set(CHANNELS_2_4)
        # The convention shows up in the empirical distribution.
        assert sum(1 for c in drawn if c in (1, 6, 11)) > 300

    def test_assign_rejects_negative(self):
        with pytest.raises(ValueError):
            assign_channels(np.random.default_rng(0), Spectrum.GHZ_2_4, -1)

    def test_audible_2_4(self):
        assert audible(Spectrum.GHZ_2_4, 11, 11)
        assert audible(Spectrum.GHZ_2_4, 11, 9)
        assert not audible(Spectrum.GHZ_2_4, 11, 6)

    def test_audible_5ghz_cochannel_only(self):
        assert audible(Spectrum.GHZ_5, 36, 36)
        assert not audible(Spectrum.GHZ_5, 36, 40)

    def test_interference_weight_shape(self):
        assert interference_weight(Spectrum.GHZ_2_4, 6, 6) == 1.0
        assert interference_weight(Spectrum.GHZ_2_4, 6, 11) == 0.0
        assert 0 < interference_weight(Spectrum.GHZ_2_4, 6, 8) < 1
        assert interference_weight(Spectrum.GHZ_5, 36, 40) == 0.0

    @given(st.integers(min_value=1, max_value=11),
           st.integers(min_value=1, max_value=11))
    def test_interference_symmetric(self, a, b):
        assert interference_weight(Spectrum.GHZ_2_4, a, b) == \
            interference_weight(Spectrum.GHZ_2_4, b, a)

    def test_contention_index(self):
        neighbors = [11, 11, 9, 6]
        index = contention_index(Spectrum.GHZ_2_4, 11, neighbors)
        assert index == pytest.approx(1 + 1 + 0.6 + 0.0)

    def test_least_contended_channel(self):
        # Everyone on 11: the best pick avoids its overlap region.
        best = least_contended_channel(Spectrum.GHZ_2_4, [11] * 10)
        assert best in (1, 6)
        # Empty neighborhood: ties break to channel 1 (first conventional).
        assert least_contended_channel(Spectrum.GHZ_2_4, []) == 1


class TestEnvironmentChannels:
    def make(self, seed=0, level=20.0, sparse=0.0):
        return WirelessEnvironment(
            np.random.default_rng(seed),
            WirelessEnvironmentConfig(neighbor_ap_level=level,
                                      sparse_probability=sparse))

    def test_total_exceeds_visible(self):
        env = self.make()
        total = env.total_neighbors(Spectrum.GHZ_2_4)
        visible = env.base_neighbor_count(Spectrum.GHZ_2_4)
        assert total >= visible
        # Channel 11's audible slice is ~35% of the neighborhood.
        assert total > 1.5 * visible

    def test_visible_calibration_holds(self):
        visible = [self.make(seed).base_neighbor_count(Spectrum.GHZ_2_4)
                   for seed in range(40)]
        assert 14 < np.mean(visible) < 27

    def test_scan_respects_channel_argument(self):
        env = self.make(seed=3)
        rng = np.random.default_rng(0)
        on_11 = np.mean([env.scan_neighbor_count(Spectrum.GHZ_2_4, rng,
                                                 channel=11)
                         for _ in range(50)])
        truth_11 = env.base_neighbor_count(Spectrum.GHZ_2_4, channel=11)
        truth_4 = env.base_neighbor_count(Spectrum.GHZ_2_4, channel=4)
        on_4 = np.mean([env.scan_neighbor_count(Spectrum.GHZ_2_4, rng,
                                                channel=4)
                        for _ in range(50)])
        assert abs(on_11 - 0.85 * truth_11) < 2.5
        assert abs(on_4 - 0.85 * truth_4) < 2.5

    def test_contention_matches_neighborhood(self):
        env = self.make(seed=5)
        neighbors = env.neighborhood_channels(Spectrum.GHZ_2_4)
        assert env.contention(Spectrum.GHZ_2_4) == pytest.approx(
            contention_index(Spectrum.GHZ_2_4, 11, neighbors))

    def test_best_channel_beats_default(self):
        env = self.make(seed=6)
        best = env.best_channel(Spectrum.GHZ_2_4)
        assert env.contention(Spectrum.GHZ_2_4, best) <= \
            env.contention(Spectrum.GHZ_2_4, 11)


class TestAudibleCounts:
    @given(st.lists(st.integers(min_value=1, max_value=11), max_size=40),
           st.sampled_from(CHANNELS_2_4))
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_audible_2_4(self, neighbors, scan):
        counts = audible_counts(Spectrum.GHZ_2_4, [scan], neighbors)
        assert int(counts[0]) == sum(
            audible(Spectrum.GHZ_2_4, scan, c) for c in neighbors)

    @given(st.lists(st.sampled_from(CHANNELS_5), max_size=40),
           st.sampled_from(CHANNELS_5))
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_audible_5(self, neighbors, scan):
        counts = audible_counts(Spectrum.GHZ_5, [scan], neighbors)
        assert int(counts[0]) == sum(
            audible(Spectrum.GHZ_5, scan, c) for c in neighbors)

    def test_broadcasts_over_all_scan_channels(self):
        neighbors = [1, 6, 6, 11, 3]
        counts = audible_counts(Spectrum.GHZ_2_4, CHANNELS_2_4, neighbors)
        assert counts.shape == (len(CHANNELS_2_4),)
        for scan, count in zip(CHANNELS_2_4, counts.tolist()):
            assert count == sum(
                audible(Spectrum.GHZ_2_4, scan, c) for c in neighbors)

    def test_empty_neighborhood(self):
        assert audible_counts(Spectrum.GHZ_5, CHANNELS_5, []).tolist() == \
            [0, 0, 0, 0]


def _scalar_reference_sweep(home, epoch, rng):
    """The pre-vectorization full_spectrum_scans loop, kept as the oracle."""
    from repro.core.records import WifiScanSample
    from repro.firmware.wifi import _associated_clients
    samples = []
    for spectrum, channels in ((Spectrum.GHZ_2_4, CHANNELS_2_4),
                               (Spectrum.GHZ_5, CHANNELS_5)):
        clients = _associated_clients(home, epoch, spectrum)
        for channel in channels:
            samples.append(WifiScanSample(
                router_id=home.router_id,
                timestamp=epoch,
                spectrum=spectrum,
                neighbor_aps=home.wireless.scan_neighbor_count(
                    spectrum, rng, channel=channel),
                associated_clients=clients,
                channel=channel,
            ))
    return samples


class TestFullSpectrumScans:
    def test_vectorized_sweep_matches_scalar_reference(self):
        for seed in range(6):
            home = Household(SeedHierarchy(seed), HouseholdConfig(
                f"US79{seed}", country_by_code("US"), SPAN))
            for hour in (1, 12, 200):
                epoch = SPAN[0] + hour * 3600
                vectorized = full_spectrum_scans(
                    home, epoch, np.random.default_rng(seed))
                reference = _scalar_reference_sweep(
                    home, epoch, np.random.default_rng(seed))
                assert vectorized == reference


    def test_sweep_covers_all_channels(self):
        home = Household(SeedHierarchy(3), HouseholdConfig(
            "US700", country_by_code("US"), SPAN))
        scans = full_spectrum_scans(home, SPAN[0] + 3600,
                                    np.random.default_rng(0))
        channels_24 = {s.channel for s in scans
                       if s.spectrum is Spectrum.GHZ_2_4}
        channels_5 = {s.channel for s in scans
                      if s.spectrum is Spectrum.GHZ_5}
        assert channels_24 == set(CHANNELS_2_4)
        assert channels_5 == set(CHANNELS_5)

    def test_sweep_sees_more_than_one_channel(self):
        home = Household(SeedHierarchy(3), HouseholdConfig(
            "US701", country_by_code("US"), SPAN))
        rng = np.random.default_rng(1)
        sweep = full_spectrum_scans(home, SPAN[0] + 3600, rng)
        # Union over the sweep ~ the full neighborhood; one channel sees
        # strictly less whenever the home has any off-channel neighbors.
        total = home.wireless.total_neighbors(Spectrum.GHZ_2_4)
        visible_11 = home.wireless.base_neighbor_count(Spectrum.GHZ_2_4)
        if total > visible_11:
            peak_across = max(s.neighbor_aps for s in sweep
                              if s.spectrum is Spectrum.GHZ_2_4)
            assert peak_across >= 0  # sweep ran; coverage checked in bench
            counts = {s.channel: s.neighbor_aps for s in sweep
                      if s.spectrum is Spectrum.GHZ_2_4}
            assert sum(counts.values()) > visible_11
