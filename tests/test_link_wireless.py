"""Tests for the access-link and wireless-neighborhood models."""

import numpy as np
import pytest

from repro.core.records import Spectrum
from repro.simulation.link import MBPS, AccessLink, AccessLinkConfig
from repro.simulation.timebase import utc
from repro.simulation.wireless import (
    DEFAULT_CHANNELS,
    WirelessEnvironment,
    WirelessEnvironmentConfig,
)

SPAN = (utc(2013, 3, 1), utc(2013, 4, 12))


def make_link(seed=0, **overrides):
    config = dict(downstream_mbps=20.0, upstream_mbps=2.0,
                  outage_rate_per_day=0.5, outage_median_seconds=1200.0,
                  outage_duration_sigma=1.2)
    config.update(overrides)
    return AccessLink(np.random.default_rng(seed), SPAN,
                      AccessLinkConfig(**config))


class TestAccessLinkConfig:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            AccessLinkConfig(0, 1, 0.1, 100, 1.0)

    def test_rejects_negative_outage_rate(self):
        with pytest.raises(ValueError):
            AccessLinkConfig(1, 1, -0.1, 100, 1.0)

    def test_rejects_negative_overshoot(self):
        with pytest.raises(ValueError):
            AccessLinkConfig(1, 1, 0.1, 100, 1.0, bufferbloat_overshoot=-1)


class TestOutages:
    def test_up_plus_outages_partition_span(self):
        link = make_link()
        total = link.up.total_duration() + link._outages.total_duration()
        assert total == pytest.approx(SPAN[1] - SPAN[0], rel=1e-9)

    def test_zero_rate_never_down(self):
        link = make_link(outage_rate_per_day=0.0,
                         bad_period_rate_per_day=0.0)
        assert link.up.total_duration() == SPAN[1] - SPAN[0]

    def test_higher_rate_less_uptime(self):
        calm = make_link(seed=1, outage_rate_per_day=0.05)
        stormy = make_link(seed=1, outage_rate_per_day=5.0)
        assert stormy.up.total_duration() < calm.up.total_duration()

    def test_is_up_matches_intervals(self):
        link = make_link(seed=2)
        for t in np.linspace(SPAN[0], SPAN[1] - 1, 50):
            assert link.is_up(t) == link.up.contains(t)

    def test_deterministic(self):
        assert make_link(seed=3).up == make_link(seed=3).up


class TestCapacityProbe:
    def test_estimates_near_truth(self):
        link = make_link(outage_rate_per_day=0.0, bad_period_rate_per_day=0.0)
        rng = np.random.default_rng(0)
        downs, ups = [], []
        for _ in range(200):
            down, up = link.measure_capacity(SPAN[0] + 100, rng)
            downs.append(down)
            ups.append(up)
        assert np.mean(downs) == pytest.approx(20.0, rel=0.02)
        assert np.mean(ups) == pytest.approx(2.0, rel=0.02)
        assert np.std(downs) / 20.0 < 0.06

    def test_probe_fails_during_outage(self):
        link = make_link(outage_rate_per_day=0.0, bad_period_rate_per_day=0.0)
        # Monkey-style: pick an instant outside the span (down by clip).
        assert link.measure_capacity(SPAN[1] + 100, np.random.default_rng(0)) \
            is None


class TestBufferbloat:
    def test_below_capacity_passthrough(self):
        link = make_link()
        rng = np.random.default_rng(0)
        assert link.shape_uplink_peak(1.0 * MBPS, rng) == 1.0 * MBPS

    def test_transient_spike_clamps_to_capacity(self):
        link = make_link()
        rng = np.random.default_rng(0)
        assert link.shape_uplink_peak(2.1 * MBPS, rng) == link.upstream_bps

    def test_sustained_saturation_overshoots(self):
        link = make_link()
        rng = np.random.default_rng(0)
        peaks = [link.shape_uplink_peak(10 * MBPS, rng) for _ in range(100)]
        assert max(peaks) > link.upstream_bps
        assert max(peaks) <= 10 * MBPS

    def test_overshoot_bounded(self):
        link = make_link()
        rng = np.random.default_rng(0)
        cap = link.upstream_bps
        limit = cap * (1 + link.config.bufferbloat_overshoot)
        for _ in range(200):
            assert link.shape_uplink_peak(100 * MBPS, rng) <= limit + 1e-6

    def test_zero_overshoot_disables(self):
        link = make_link(bufferbloat_overshoot=0.0)
        rng = np.random.default_rng(0)
        assert link.shape_uplink_peak(100 * MBPS, rng) == link.upstream_bps

    def test_downlink_caps_at_line_rate(self):
        link = make_link()
        assert link.shape_downlink_peak(100 * MBPS) == link.downstream_bps
        assert link.shape_downlink_peak(1 * MBPS) == 1 * MBPS

    def test_rejects_negative_load(self):
        link = make_link()
        with pytest.raises(ValueError):
            link.shape_uplink_peak(-1, np.random.default_rng(0))
        with pytest.raises(ValueError):
            link.shape_downlink_peak(-1)


class TestVectorizedShapers:
    """shape_*_peak_many must equal the scalar shapers element-wise,
    including their RNG consumption — the traffic monitor's digest
    stability rides on this."""

    def _offered(self, seed, size=512):
        # Loads spanning every branch: idle minutes, sub-capacity,
        # the transient-spike band [cap, 1.15 cap), and deep bufferbloat.
        rng = np.random.default_rng(seed)
        cap = 2.0 * MBPS
        return rng.uniform(0.0, 3.0 * cap, size=size)

    @pytest.mark.parametrize("seed", [1, 7, 2013])
    def test_uplink_matches_scalar_loop_bitwise(self, seed):
        link = make_link()
        offered = self._offered(seed)
        scalar_rng = np.random.default_rng(99)
        many_rng = np.random.default_rng(99)
        expected = np.array([link.shape_uplink_peak(float(x), scalar_rng)
                             for x in offered])
        got = link.shape_uplink_peak_many(offered, many_rng)
        assert np.array_equal(got, expected)  # bitwise, not approx
        # Both consumed the same number of draws, in the same order.
        assert scalar_rng.random() == many_rng.random()

    def test_uplink_overshoot_branch_exercised(self):
        link = make_link()
        offered = self._offered(5)
        assert np.count_nonzero(offered >= 1.15 * link.upstream_bps) > 0
        got = link.shape_uplink_peak_many(offered, np.random.default_rng(3))
        assert got.max() > link.upstream_bps  # bufferbloat overshoot fired

    def test_uplink_no_draws_without_backlog(self):
        link = make_link()
        offered = np.linspace(0, 0.9, 64) * link.upstream_bps
        rng = np.random.default_rng(42)
        link.shape_uplink_peak_many(offered, rng)
        assert rng.random() == np.random.default_rng(42).random()

    @pytest.mark.parametrize("seed", [1, 7, 2013])
    def test_downlink_matches_scalar_loop_bitwise(self, seed):
        link = make_link()
        offered = self._offered(seed)
        expected = np.array([link.shape_downlink_peak(float(x))
                             for x in offered])
        got = link.shape_downlink_peak_many(offered)
        assert np.array_equal(got, expected)

    def test_many_rejects_negative_load(self):
        link = make_link()
        bad = np.array([1.0, -0.5, 2.0])
        with pytest.raises(ValueError):
            link.shape_uplink_peak_many(bad, np.random.default_rng(0))
        with pytest.raises(ValueError):
            link.shape_downlink_peak_many(bad)


class TestWirelessEnvironment:
    def test_default_channels(self):
        assert DEFAULT_CHANNELS[Spectrum.GHZ_2_4] == 11
        assert DEFAULT_CHANNELS[Spectrum.GHZ_5] == 36

    def test_dense_homes_hear_many_aps(self):
        config = WirelessEnvironmentConfig(neighbor_ap_level=20.0,
                                           sparse_probability=0.0)
        counts = [WirelessEnvironment(np.random.default_rng(s), config)
                  .base_neighbor_count(Spectrum.GHZ_2_4) for s in range(30)]
        assert np.mean(counts) > 12

    def test_sparse_homes_hear_few(self):
        config = WirelessEnvironmentConfig(neighbor_ap_level=20.0,
                                           sparse_probability=1.0)
        counts = [WirelessEnvironment(np.random.default_rng(s), config)
                  .base_neighbor_count(Spectrum.GHZ_2_4) for s in range(30)]
        assert np.mean(counts) < 5

    def test_5ghz_emptier_than_2_4(self):
        config = WirelessEnvironmentConfig(neighbor_ap_level=20.0,
                                           sparse_probability=0.0)
        env = WirelessEnvironment(np.random.default_rng(0), config)
        assert env.base_neighbor_count(Spectrum.GHZ_5) < \
            env.base_neighbor_count(Spectrum.GHZ_2_4)

    def test_scans_jitter_around_base(self):
        config = WirelessEnvironmentConfig(neighbor_ap_level=20.0,
                                           sparse_probability=0.0)
        env = WirelessEnvironment(np.random.default_rng(1), config)
        rng = np.random.default_rng(2)
        base = env.base_neighbor_count(Spectrum.GHZ_2_4)
        scans = [env.scan_neighbor_count(Spectrum.GHZ_2_4, rng)
                 for _ in range(300)]
        assert min(scans) >= 0
        assert abs(np.mean(scans) - base * 0.85) < 2.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WirelessEnvironmentConfig(neighbor_ap_level=-1)
        with pytest.raises(ValueError):
            WirelessEnvironmentConfig(neighbor_ap_level=1,
                                      sparse_probability=2)
