"""Span-based tracing: see *inside* a running campaign, not just after it.

:mod:`repro.perf` answers "how many seconds went to each stage" and the
telemetry registry answers "how many of each thing happened" — but
neither can say *when* anything happened, which worker ran which shard,
how long the parent sat head-waiting on an out-of-order straggler, or
where the retry budget's seconds actually went.  ``repro.trace`` records
that timeline as spans:

* **workers** record materialize / collect / per-collector sub-spans
  tagged with their shard and attempt, buffered process-locally and
  shipped to the parent through the same per-shard drain/merge path the
  perf and metrics snapshots ride (so tracing can never reorder ingest
  or touch an RNG — ``study_digest`` is pinned identical with tracing
  on);
* **the parent** records submit → head-wait → ingest → checkpoint spans,
  retry backoffs, pool rebuilds, and streaming-analytics passes.

The buffer exports as Chrome trace-event JSON — ``chrome://tracing`` or
https://ui.perfetto.dev load it directly, one track per worker process —
and reduces to a :class:`TraceSummary` (critical path, worker
utilization, per-shard ingest-stall and retry-charged time) that the
health report surfaces as its "Timeline" section and ``repro trace
report`` renders from a saved trace.

Activation mirrors :mod:`repro.perf`: process-global recorder, one
global read + one comparison when disabled (the tier-1 suite asserts
<2% on an instrumented loop), plain picklable buffers, no RNG access.

Usage::

    from repro import trace

    trace.enable()
    with trace.span("collect", cat="shard", shard=3):
        ...
    spans = trace.drain()["spans"]
    trace.write_chrome_trace("trace.json", spans)
    print(render_trace_summary(summarize_spans(spans)))
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

#: Span categories the engine wires up.  ``"shard"`` spans are worker-side
#: work (materialize / collect and their dotted sub-spans), ``"engine"``
#: spans are the parent's orchestration (head_wait / ingest / checkpoint /
#: retry.backoff / pool.rebuild / submit), ``"analyze"`` the streaming
#: figure passes, and ``"fault"`` instants mark injected failures.
CATEGORIES = ("shard", "engine", "analyze", "fault", "campaign")

#: Schema version stamped into exported trace files.
TRACE_SCHEMA = 1


def now() -> float:
    """The trace clock (epoch seconds; wall clock, shared across
    processes on one machine so worker and parent spans align)."""
    return time.time()


class TraceRecorder:
    """Buffers finished spans for one process.

    A span is a plain dict — picklable, mergeable — with ``name``,
    ``cat``, ``ts`` (epoch seconds), ``dur`` (seconds; ``None`` for
    instant events), ``pid`` (the recording process, which becomes the
    export track), and ``args`` (shard, attempt, failure reason, ...).
    """

    __slots__ = ("trace_id", "spans")

    def __init__(self, trace_id: str = "") -> None:
        self.trace_id = trace_id
        self.spans: List[dict] = []

    def add(self, name: str, start: float, end: Optional[float] = None,
            cat: str = "campaign", **args: object) -> None:
        """Record one finished span ([start, end] on the trace clock);
        ``end=None`` records an instant event."""
        self.spans.append({
            "name": name,
            "cat": cat,
            "ts": start,
            "dur": None if end is None else max(0.0, end - start),
            "pid": os.getpid(),
            "args": args,
        })

    def drain(self) -> dict:
        """Picklable snapshot of the buffer; the buffer is cleared."""
        spans, self.spans = self.spans, []
        return {"trace_id": self.trace_id, "spans": spans}

    def merge(self, snapshot: dict) -> None:
        """Fold a drained worker snapshot into this buffer."""
        self.spans.extend(snapshot.get("spans", ()))

    def clear(self) -> None:
        """Forget everything buffered (the recorder stays usable)."""
        self.spans.clear()

    def __len__(self) -> int:
        return len(self.spans)


class _NullSpan:
    """The shared do-nothing context manager handed out while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


class _Span:
    """One live span; records into the recorder active at entry.

    The span is recorded even when the body raises — a failed attempt's
    time is exactly what retry attribution needs to see.
    """

    __slots__ = ("_recorder", "_name", "_cat", "_args", "_t0")

    def __init__(self, recorder: TraceRecorder, name: str, cat: str,
                 args: dict) -> None:
        self._recorder = recorder
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_Span":
        self._t0 = now()
        return self

    def __exit__(self, exc_type: object, *exc: object) -> bool:
        args = self._args
        if exc_type is not None:
            args = dict(args, failed=True)
        self._recorder.add(self._name, self._t0, now(), cat=self._cat,
                           **args)
        return False


_NULL_SPAN = _NullSpan()
_ACTIVE: Optional[TraceRecorder] = None


def enable(trace_id: str = "") -> TraceRecorder:
    """Activate tracing (idempotent); returns the active recorder."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = TraceRecorder(trace_id)
    elif trace_id:
        _ACTIVE.trace_id = trace_id
    return _ACTIVE


def disable() -> Optional[TraceRecorder]:
    """Deactivate tracing; returns the recorder that was active."""
    global _ACTIVE
    recorder, _ACTIVE = _ACTIVE, None
    return recorder


def is_enabled() -> bool:
    """True while a recorder is active in this process."""
    return _ACTIVE is not None


def active() -> Optional[TraceRecorder]:
    """The active recorder, or None when tracing is disabled."""
    return _ACTIVE


def span(name: str, cat: str = "campaign", **args: object):
    """Context manager recording one span; free when tracing is off."""
    recorder = _ACTIVE
    if recorder is None:
        return _NULL_SPAN
    return _Span(recorder, name, cat, args)


def add_span(name: str, start: float, end: Optional[float] = None,
             cat: str = "campaign", **args: object) -> None:
    """Record a span with explicit endpoints (``end=None`` = now).

    For code paths where the outcome decides the annotation — the
    engine's head wait records ``failed=True, reason=...`` only after
    the future's result is known.
    """
    recorder = _ACTIVE
    if recorder is not None:
        recorder.add(name, start, now() if end is None else end,
                     cat=cat, **args)


def instant(name: str, cat: str = "campaign", **args: object) -> None:
    """Record an instant event (a point on the timeline, no duration)."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.add(name, now(), None, cat=cat, **args)


def drain() -> dict:
    """Snapshot and clear the active recorder (per-shard shipping)."""
    recorder = _ACTIVE
    if recorder is None:
        return {"trace_id": "", "spans": []}
    return recorder.drain()


def merge(snapshot: dict) -> None:
    """Fold a worker snapshot into the active recorder (no-op when off)."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.merge(snapshot)


# -- Chrome trace-event export ----------------------------------------------------

def _track_order(spans: List[dict]) -> Dict[int, int]:
    """Stable pid → tid mapping: the parent (the pid recording engine or
    analyze spans) is track 0, workers follow in first-span order."""
    parent: Optional[int] = None
    first_seen: Dict[int, float] = {}
    for record in spans:
        pid = int(record["pid"])
        ts = float(record["ts"])
        if pid not in first_seen or ts < first_seen[pid]:
            first_seen[pid] = ts
        if parent is None and record["cat"] in ("engine", "analyze"):
            parent = pid
    if parent is None and first_seen:
        parent = min(first_seen, key=lambda p: (first_seen[p], p))
    tids: Dict[int, int] = {}
    if parent is not None:
        tids[parent] = 0
    for pid in sorted(first_seen, key=lambda p: (first_seen[p], p)):
        if pid not in tids:
            tids[pid] = len(tids)
    return tids


def chrome_trace_events(spans: List[dict],
                        trace_id: str = "") -> List[dict]:
    """Render spans as Chrome trace-event dicts (B/E pairs + instants).

    Timestamps are microseconds relative to the earliest span; every
    recording process becomes one named thread track under a single
    "repro campaign" process, so Perfetto shows the parent and each
    worker as parallel lanes.
    """
    if not spans:
        return []
    tids = _track_order(spans)
    t0 = min(float(record["ts"]) for record in spans)
    events: List[Tuple[float, int, dict]] = []

    def us(seconds: float) -> float:
        return round((seconds - t0) * 1e6, 1)

    for pid, tid in tids.items():
        name = "parent" if tid == 0 else f"worker-{tid}"
        events.append((-1.0, 0, {"ph": "M", "name": "thread_name",
                                 "pid": 1, "tid": tid,
                                 "args": {"name": name}}))
    events.append((-1.0, 0, {"ph": "M", "name": "process_name",
                             "pid": 1, "tid": 0,
                             "args": {"name": "repro campaign"}}))

    for record in spans:
        tid = tids[int(record["pid"])]
        start = float(record["ts"])
        args = dict(record.get("args") or {})
        base = {"name": record["name"], "cat": record["cat"],
                "pid": 1, "tid": tid}
        if record["dur"] is None:
            events.append((start, 1, dict(base, ph="i", ts=us(start),
                                          s="t", args=args)))
            continue
        end = start + float(record["dur"])
        # Matched B/E pair; args ride on the B event.  At equal
        # timestamps the E sorts first so zero-length spans still nest.
        events.append((start, 1, dict(base, ph="B", ts=us(start),
                                      args=args)))
        events.append((end, 0, dict(base, ph="E", ts=us(end))))
    events.sort(key=lambda item: (item[0], item[1]))
    return [event for _, _, event in events]


def write_chrome_trace(path: Union[str, Path], spans: List[dict],
                       trace_id: str = "") -> Path:
    """Write spans as a Perfetto-loadable Chrome trace JSON file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "traceEvents": chrome_trace_events(spans, trace_id),
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace_id, "schema": TRACE_SCHEMA,
                      "spans": len(spans)},
    }
    path.write_text(json.dumps(payload) + "\n")
    return path


def load_chrome_trace(path: Union[str, Path]) -> Tuple[List[dict], str]:
    """Rebuild span dicts from an exported Chrome trace file.

    B/E pairs are re-matched per track with a stack (the export
    guarantees proper nesting); instants come back with ``dur=None``.
    The reconstructed ``pid`` is the export track id, which is all the
    summary math needs to tell the parent lane from the worker lanes.
    """
    payload = json.loads(Path(path).read_text())
    events = payload.get("traceEvents", payload if isinstance(payload, list)
                         else [])
    trace_id = ""
    if isinstance(payload, dict):
        trace_id = payload.get("otherData", {}).get("trace_id", "")
    spans: List[dict] = []
    stacks: Dict[int, List[dict]] = {}
    for event in events:
        phase = event.get("ph")
        tid = int(event.get("tid", 0))
        if phase == "B":
            stacks.setdefault(tid, []).append(event)
        elif phase == "E":
            stack = stacks.get(tid)
            if not stack:
                raise ValueError(f"unmatched E event on track {tid}")
            begin = stack.pop()
            if begin["name"] != event["name"]:
                raise ValueError(
                    f"mismatched B/E pair on track {tid}: "
                    f"{begin['name']!r} closed by {event['name']!r}")
            spans.append({
                "name": begin["name"],
                "cat": begin.get("cat", "campaign"),
                "ts": float(begin["ts"]) / 1e6,
                "dur": (float(event["ts"]) - float(begin["ts"])) / 1e6,
                "pid": tid,
                "args": begin.get("args", {}),
            })
        elif phase == "i":
            spans.append({
                "name": event["name"],
                "cat": event.get("cat", "campaign"),
                "ts": float(event["ts"]) / 1e6,
                "dur": None,
                "pid": tid,
                "args": event.get("args", {}),
            })
    leftovers = {tid: stack for tid, stack in stacks.items() if stack}
    if leftovers:
        raise ValueError(f"unclosed B events on tracks {sorted(leftovers)}")
    spans.sort(key=lambda s: s["ts"])
    return spans, trace_id


# -- summary ----------------------------------------------------------------------

@dataclass(frozen=True)
class ShardTimeline:
    """One shard's time accounting across every attempt."""

    shard: int
    attempts: int
    #: Worker-side seconds over all attempts (materialize + collect).
    run_seconds: float
    #: Parent seconds blocked at the head wait for this shard.
    head_wait_seconds: float
    #: Parent seconds ingesting this shard's uploads.
    ingest_seconds: float
    #: Seconds charged to recovery: failed waits, superseded attempts,
    #: and retry backoff sleeps.
    retry_seconds: float


@dataclass(frozen=True)
class TraceSummary:
    """The reduced operational picture of one traced campaign."""

    trace_id: str
    wall_seconds: float
    span_count: int
    #: Export tracks (parent + workers) that recorded spans.
    tracks: int
    #: Track label → busy seconds (top-level spans only; the parent
    #: track's head waits are *not* busy time).
    track_busy: Dict[str, float]
    #: Mean busy/wall across worker tracks (parent excluded); for a
    #: serial campaign the single track is the worker.
    worker_utilization: float
    #: Span-name → total seconds across all tracks (dotted names are
    #: sub-spans nested inside their parent's time).
    stage_seconds: Dict[str, float]
    #: Ordered decomposition of the parent track's wall time — the
    #: campaign's critical path, since ordered ingest serializes
    #: everything through the parent.  ``(label, seconds)`` segments in
    #: first-occurrence order; "other" is uninstrumented parent time.
    critical_path: List[Tuple[str, float]]
    critical_path_seconds: float
    #: Total parent head-wait time (idle, blocked on the ordered head).
    ingest_stall_seconds: float
    #: Total time charged to failed/superseded attempts and backoffs.
    retry_charged_seconds: float
    shards: Dict[int, ShardTimeline] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "wall_seconds": round(self.wall_seconds, 6),
            "span_count": self.span_count,
            "tracks": self.tracks,
            "track_busy": {k: round(v, 6)
                           for k, v in self.track_busy.items()},
            "worker_utilization": round(self.worker_utilization, 4),
            "stage_seconds": {k: round(v, 6)
                              for k, v in self.stage_seconds.items()},
            "critical_path": [[name, round(secs, 6)]
                              for name, secs in self.critical_path],
            "critical_path_seconds": round(self.critical_path_seconds, 6),
            "ingest_stall_seconds": round(self.ingest_stall_seconds, 6),
            "retry_charged_seconds": round(self.retry_charged_seconds, 6),
            "shards": {
                str(sid): {
                    "attempts": tl.attempts,
                    "run_seconds": round(tl.run_seconds, 6),
                    "head_wait_seconds": round(tl.head_wait_seconds, 6),
                    "ingest_seconds": round(tl.ingest_seconds, 6),
                    "retry_seconds": round(tl.retry_seconds, 6),
                }
                for sid, tl in sorted(self.shards.items())
            },
        }


def _is_top_level(record: dict) -> bool:
    return record["dur"] is not None and "." not in record["name"]


def summarize_spans(spans: List[dict],
                    trace_id: str = "") -> TraceSummary:
    """Reduce a span buffer to a :class:`TraceSummary`.

    Pure math over the span dicts — usable on a live recorder's buffer,
    a drained snapshot, or spans reloaded from an exported trace file.
    """
    timed = [record for record in spans if record["dur"] is not None]
    if not timed:
        return TraceSummary(trace_id=trace_id, wall_seconds=0.0,
                            span_count=len(spans), tracks=0, track_busy={},
                            worker_utilization=0.0, stage_seconds={},
                            critical_path=[], critical_path_seconds=0.0,
                            ingest_stall_seconds=0.0,
                            retry_charged_seconds=0.0)
    tids = _track_order(spans)
    t0 = min(record["ts"] for record in timed)
    t_end = max(record["ts"] + record["dur"] for record in timed)
    wall = t_end - t0

    def label(pid: int) -> str:
        tid = tids[int(pid)]
        return "parent" if tid == 0 else f"worker-{tid}"

    # Busy time per track: top-level spans, minus the parent's waits
    # (head_wait and retry.backoff are blocked time, not work).
    track_busy: Dict[str, float] = {}
    for record in timed:
        if not _is_top_level(record):
            continue
        if record["name"] in ("head_wait", "retry.backoff"):
            continue
        key = label(record["pid"])
        track_busy[key] = track_busy.get(key, 0.0) + record["dur"]

    worker_labels = [name for name in track_busy if name != "parent"]
    if worker_labels:
        busy = sum(track_busy[name] for name in worker_labels)
        utilization = busy / (wall * len(worker_labels)) if wall else 0.0
    else:  # serial campaign: the parent is the only worker
        utilization = (track_busy.get("parent", 0.0) / wall) if wall else 0.0

    stage_seconds: Dict[str, float] = {}
    for record in timed:
        name = record["name"]
        stage_seconds[name] = stage_seconds.get(name, 0.0) + record["dur"]

    # Critical path: the parent track's timeline, decomposed by span
    # name in first-occurrence order.  Ordered ingest serializes the
    # campaign through the parent, so its wall time *is* the critical
    # path; "other" is whatever the parent did between spans.
    parent_pid = next((pid for pid, tid in tids.items() if tid == 0), None)
    parent_spans = sorted(
        (record for record in timed
         if int(record["pid"]) == parent_pid and _is_top_level(record)),
        key=lambda record: record["ts"])
    segments: Dict[str, float] = {}
    order: List[str] = []
    covered = 0.0
    cursor = None
    for record in parent_spans:
        start, dur = record["ts"], record["dur"]
        if cursor is not None and start < cursor:
            # Clip overlap (nested top-level spans cannot happen in the
            # engine, but hand-built traces should not double-count).
            dur = max(0.0, start + dur - cursor)
            start = cursor
        if record["name"] not in segments:
            order.append(record["name"])
            segments[record["name"]] = 0.0
        segments[record["name"]] += dur
        covered += dur
        cursor = start + record["dur"] if cursor is None \
            else max(cursor, record["ts"] + record["dur"])
    if parent_spans:
        parent_wall = (max(r["ts"] + r["dur"] for r in parent_spans)
                       - parent_spans[0]["ts"])
    else:
        parent_wall = 0.0
    critical_path = [(name, segments[name]) for name in order]
    gap = max(0.0, parent_wall - covered)
    if gap > 1e-9:
        critical_path.append(("other", gap))
    critical_path_seconds = min(parent_wall, wall)

    ingest_stall = stage_seconds.get("head_wait", 0.0)

    # Retry charge: failed head waits, backoff sleeps, and worker spans
    # from superseded attempts (serial retries record their failed
    # attempt's spans live; parallel failed attempts die with their
    # worker and show up as the failed head wait instead).
    max_attempt: Dict[int, int] = {}
    for record in timed:
        args = record.get("args") or {}
        if record["cat"] == "shard" and "shard" in args:
            sid = int(args["shard"])
            max_attempt[sid] = max(max_attempt.get(sid, 0),
                                   int(args.get("attempt", 0)))
    retry_charged = 0.0
    shard_rows: Dict[int, dict] = {}

    def shard_row(sid: int) -> dict:
        return shard_rows.setdefault(sid, {
            "attempts": set(), "run": 0.0, "wait": 0.0,
            "ingest": 0.0, "retry": 0.0})

    for record in timed:
        args = record.get("args") or {}
        sid = args.get("shard")
        name = record["name"]
        if name == "retry.backoff":
            retry_charged += record["dur"]
            if sid is not None:
                shard_row(int(sid))["retry"] += record["dur"]
            continue
        if sid is None:
            continue
        sid = int(sid)
        row = shard_row(sid)
        if name == "head_wait":
            row["wait"] += record["dur"]
            if args.get("failed"):
                retry_charged += record["dur"]
                row["retry"] += record["dur"]
        elif name == "ingest":
            row["ingest"] += record["dur"]
        elif record["cat"] == "shard" and _is_top_level(record):
            row["attempts"].add(int(args.get("attempt", 0)))
            row["run"] += record["dur"]
            if (int(args.get("attempt", 0)) < max_attempt.get(sid, 0)
                    or args.get("failed")):
                retry_charged += record["dur"]
                row["retry"] += record["dur"]

    shards = {
        sid: ShardTimeline(
            shard=sid,
            attempts=max(len(row["attempts"]), 1),
            run_seconds=row["run"],
            head_wait_seconds=row["wait"],
            ingest_seconds=row["ingest"],
            retry_seconds=row["retry"],
        )
        for sid, row in shard_rows.items()
    }

    return TraceSummary(
        trace_id=trace_id,
        wall_seconds=wall,
        span_count=len(spans),
        tracks=len(tids),
        track_busy=track_busy,
        worker_utilization=utilization,
        stage_seconds=stage_seconds,
        critical_path=critical_path,
        critical_path_seconds=critical_path_seconds,
        ingest_stall_seconds=ingest_stall,
        retry_charged_seconds=retry_charged,
        shards=shards,
    )


def write_trace_summary(path: Union[str, Path],
                        summary: TraceSummary) -> Path:
    """Write the summary JSON next to the trace file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(summary.to_dict(), indent=2, sort_keys=True)
                    + "\n")
    return path


def render_trace_summary(summary: TraceSummary) -> str:
    """Render the operator-facing timeline tables."""
    from repro.core.report import render_table  # local: keep trace a leaf

    rows = [
        ("wall clock", f"{summary.wall_seconds:.3f}s"),
        ("critical path", f"{summary.critical_path_seconds:.3f}s"),
        ("worker utilization", f"{summary.worker_utilization:.0%}"),
        ("ingest stall (head wait)",
         f"{summary.ingest_stall_seconds:.3f}s"),
        ("retry-charged time", f"{summary.retry_charged_seconds:.3f}s"),
        ("spans", summary.span_count),
        ("tracks", summary.tracks),
    ]
    sections = [render_table(["quantity", "value"], rows,
                             title=f"Timeline — trace "
                                   f"{summary.trace_id or 'unnamed'}")]

    if summary.critical_path:
        total = summary.critical_path_seconds or 1.0
        sections.append(render_table(
            ["segment", "seconds", "share"],
            [(name, f"{secs:.3f}", f"{secs / total:.1%}")
             for name, secs in summary.critical_path],
            title="Critical path (parent timeline)"))

    if summary.track_busy:
        wall = summary.wall_seconds or 1.0
        sections.append(render_table(
            ["track", "busy", "of wall"],
            [(name, f"{secs:.3f}s", f"{secs / wall:.0%}")
             for name, secs in sorted(summary.track_busy.items())],
            title="Per-track busy time"))

    stalls = [(sid, tl) for sid, tl in sorted(summary.shards.items())
              if tl.retry_seconds > 0 or tl.attempts > 1]
    if stalls:
        sections.append(render_table(
            ["shard", "attempts", "run", "head wait", "retry-charged"],
            [(sid, tl.attempts, f"{tl.run_seconds:.3f}s",
              f"{tl.head_wait_seconds:.3f}s", f"{tl.retry_seconds:.3f}s")
             for sid, tl in stalls],
            title="Shards with recovery activity"))
    return "\n\n".join(sections)


__all__ = [
    "TRACE_SCHEMA",
    "CATEGORIES",
    "TraceRecorder",
    "TraceSummary",
    "ShardTimeline",
    "enable",
    "disable",
    "is_enabled",
    "active",
    "span",
    "add_span",
    "instant",
    "now",
    "drain",
    "merge",
    "chrome_trace_events",
    "write_chrome_trace",
    "load_chrome_trace",
    "summarize_spans",
    "write_trace_summary",
    "render_trace_summary",
]
