"""Statistical inference for the paper's group comparisons.

The paper argues from CDF plots that developed and developing homes differ
(Figs. 3, 4, 11) and acknowledges its small samples ("some country data
... may be inconclusive", Section 4.1).  This module quantifies those
comparisons with the standard nonparametric machinery — two-sample
Kolmogorov-Smirnov and Mann-Whitney U — plus a bootstrap interval for
medians, so every "X sees more than Y" claim carries a p-value and an
effect size.

scipy provides the test statistics; everything else is assembled here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.core import availability
from repro.core.datasets import StudyData
from repro.core.records import Spectrum


@dataclass(frozen=True)
class GroupComparison:
    """One two-sample comparison with tests and effect size."""

    quantity: str
    n_a: int
    n_b: int
    median_a: float
    median_b: float
    #: Kolmogorov-Smirnov two-sample statistic and p-value.
    ks_statistic: float
    ks_pvalue: float
    #: Mann-Whitney U p-value (two-sided).
    mw_pvalue: float
    #: Cliff's delta in [-1, 1]: probability-scale effect size
    #: (positive ⇒ group A stochastically larger).
    cliffs_delta: float

    @property
    def significant(self) -> bool:
        """True when both tests reject at the 5% level."""
        return self.ks_pvalue < 0.05 and self.mw_pvalue < 0.05

    @property
    def effect_label(self) -> str:
        """Conventional |delta| bands: negligible/small/medium/large."""
        magnitude = abs(self.cliffs_delta)
        if magnitude < 0.147:
            return "negligible"
        if magnitude < 0.33:
            return "small"
        if magnitude < 0.474:
            return "medium"
        return "large"


def cliffs_delta(a: Sequence[float], b: Sequence[float]) -> float:
    """Cliff's delta: P(a > b) − P(a < b) over all cross pairs."""
    a_arr = np.asarray(list(a), dtype=float)
    b_arr = np.asarray(list(b), dtype=float)
    if a_arr.size == 0 or b_arr.size == 0:
        raise ValueError("both samples must be non-empty")
    greater = np.sum(a_arr[:, None] > b_arr[None, :])
    lesser = np.sum(a_arr[:, None] < b_arr[None, :])
    return float((greater - lesser) / (a_arr.size * b_arr.size))


def compare_samples(quantity: str, a: Sequence[float],
                    b: Sequence[float]) -> GroupComparison:
    """Run the full comparison battery on two samples."""
    a_arr = np.asarray(list(a), dtype=float)
    b_arr = np.asarray(list(b), dtype=float)
    if a_arr.size < 2 or b_arr.size < 2:
        raise ValueError("need at least two observations per group")
    ks = scipy_stats.ks_2samp(a_arr, b_arr)
    mw = scipy_stats.mannwhitneyu(a_arr, b_arr, alternative="two-sided")
    return GroupComparison(
        quantity=quantity,
        n_a=int(a_arr.size),
        n_b=int(b_arr.size),
        median_a=float(np.median(a_arr)),
        median_b=float(np.median(b_arr)),
        ks_statistic=float(ks.statistic),
        ks_pvalue=float(ks.pvalue),
        mw_pvalue=float(mw.pvalue),
        cliffs_delta=cliffs_delta(a_arr, b_arr),
    )


def bootstrap_median_ci(samples: Sequence[float],
                        confidence: float = 0.95,
                        iterations: int = 2000,
                        seed: int = 0) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for a median."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(iterations, arr.size))
    medians = np.median(arr[idx], axis=1)
    alpha = (1 - confidence) / 2
    return (float(np.quantile(medians, alpha)),
            float(np.quantile(medians, 1 - alpha)))


# -- the paper's group claims, tested ------------------------------------------------

def _group_rates(data: StudyData, developed: bool) -> List[float]:
    cdf = availability.downtime_rate_cdf(data, developed)
    return cdf.values.tolist()


def development_divide(data: StudyData) -> List[GroupComparison]:
    """Test every developed-vs-developing claim the data supports.

    Returns one :class:`GroupComparison` per claim (downtime rate, downtime
    duration, neighbor APs); claims without enough data in both groups are
    skipped.
    """
    from repro.core import infrastructure  # local to avoid cycle at import

    comparisons: List[GroupComparison] = []

    dvg_rates = _group_rates(data, developed=False)
    dev_rates = _group_rates(data, developed=True)
    if len(dvg_rates) >= 2 and len(dev_rates) >= 2:
        comparisons.append(compare_samples(
            "downtimes/day (developing vs developed)",
            dvg_rates, dev_rates))

    dvg_durations = availability.downtime_duration_cdf(
        data, developed=False).values.tolist()
    dev_durations = availability.downtime_duration_cdf(
        data, developed=True).values.tolist()
    if len(dvg_durations) >= 2 and len(dev_durations) >= 2:
        comparisons.append(compare_samples(
            "downtime duration seconds (developing vs developed)",
            dvg_durations, dev_durations))

    dev_aps = infrastructure.neighbor_ap_cdf(
        data, Spectrum.GHZ_2_4, developed=True).values.tolist()
    dvg_aps = infrastructure.neighbor_ap_cdf(
        data, Spectrum.GHZ_2_4, developed=False).values.tolist()
    if len(dev_aps) >= 2 and len(dvg_aps) >= 2:
        comparisons.append(compare_samples(
            "2.4 GHz neighbor APs (developed vs developing)",
            dev_aps, dvg_aps))

    return comparisons
