"""Shared statistics kit: empirical CDFs, percentiles, binned profiles.

Every figure in the paper is one of a small number of statistical shapes —
an empirical CDF (Figs. 3, 4, 7, 10, 11), a mean-with-deviation bar
(Figs. 8, 9), an hour-of-day profile (Fig. 13), a scatter (Figs. 5, 15),
or a ranked-share breakdown (Figs. 17–19).  This module implements those
shapes once so each analysis module stays about its domain logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class EmpiricalCdf:
    """An empirical cumulative distribution over observed values."""

    values: np.ndarray      # sorted observations
    fractions: np.ndarray   # P(X <= values[i]), same length

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "EmpiricalCdf":
        """Build a CDF from raw samples (need not be sorted)."""
        arr = np.sort(np.asarray(list(samples), dtype=float))
        if arr.size == 0:
            return cls(values=np.empty(0), fractions=np.empty(0))
        fractions = np.arange(1, arr.size + 1, dtype=float) / arr.size
        return cls(values=arr, fractions=fractions)

    @property
    def n(self) -> int:
        """Number of underlying samples."""
        return int(self.values.size)

    @property
    def mean(self) -> float:
        """Mean of the underlying samples (nan when empty)."""
        if self.values.size == 0:
            return float("nan")
        return float(self.values.mean())

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1) of the observations."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.values.size == 0:
            raise ValueError("quantile of an empty CDF")
        return float(np.quantile(self.values, q))

    @property
    def median(self) -> float:
        """Convenience for :meth:`quantile` at 0.5."""
        return self.quantile(0.5)

    def fraction_at_most(self, threshold: float) -> float:
        """P(X <= threshold) under the empirical distribution."""
        if self.values.size == 0:
            raise ValueError("fraction of an empty CDF")
        return float(np.searchsorted(self.values, threshold, side="right")
                     / self.values.size)

    def fraction_at_least(self, threshold: float) -> float:
        """P(X >= threshold) under the empirical distribution."""
        if self.values.size == 0:
            raise ValueError("fraction of an empty CDF")
        below = np.searchsorted(self.values, threshold, side="left")
        return float((self.values.size - below) / self.values.size)

    def series(self, points: int = 50) -> List[Tuple[float, float]]:
        """Downsample to ~*points* (value, fraction) pairs for rendering."""
        if self.values.size == 0:
            return []
        if self.values.size <= points:
            return list(zip(self.values.tolist(), self.fractions.tolist()))
        idx = np.unique(np.linspace(0, self.values.size - 1, points).astype(int))
        return [(float(self.values[i]), float(self.fractions[i])) for i in idx]


@dataclass(frozen=True)
class MeanWithSpread:
    """A mean with its standard deviation and sample count (bar + error bar)."""

    mean: float
    std: float
    n: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "MeanWithSpread":
        arr = np.asarray(list(samples), dtype=float)
        if arr.size == 0:
            return cls(mean=float("nan"), std=float("nan"), n=0)
        return cls(mean=float(arr.mean()),
                   std=float(arr.std(ddof=0)),
                   n=int(arr.size))


@dataclass(frozen=True)
class HourOfDayProfile:
    """Mean of a quantity in each local hour of day (Fig. 13 shape)."""

    means: np.ndarray  # 24 entries, hour 0..23
    counts: np.ndarray

    @classmethod
    def from_samples(cls, hours: Sequence[int],
                     values: Sequence[float]) -> "HourOfDayProfile":
        """Aggregate (hour, value) samples into a 24-slot mean profile."""
        hours_arr = np.asarray(list(hours), dtype=int)
        values_arr = np.asarray(list(values), dtype=float)
        if hours_arr.shape != values_arr.shape:
            raise ValueError("hours and values must have the same length")
        if hours_arr.size and (hours_arr.min() < 0 or hours_arr.max() > 23):
            raise ValueError("hours must be in 0..23")
        sums = np.zeros(24)
        counts = np.zeros(24)
        np.add.at(sums, hours_arr, values_arr)
        np.add.at(counts, hours_arr, 1)
        return cls.from_sums(sums, counts)

    @classmethod
    def from_sums(cls, sums: np.ndarray,
                  counts: np.ndarray) -> "HourOfDayProfile":
        """Finalize pre-accumulated 24-slot sums/counts into a profile.

        Shared with the streaming accumulator
        (:class:`repro.core.sketches.StreamingHourProfile`) so both paths
        divide identically.
        """
        sums = np.asarray(sums, dtype=float)
        counts = np.asarray(counts, dtype=float)
        if sums.shape != (24,) or counts.shape != (24,):
            raise ValueError("sums and counts must have 24 slots")
        with np.errstate(invalid="ignore", divide="ignore"):
            means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
        return cls(means=means, counts=counts)

    @property
    def peak_hour(self) -> int:
        """Local hour with the highest mean."""
        return int(np.nanargmax(self.means))

    @property
    def trough_hour(self) -> int:
        """Local hour with the lowest mean."""
        return int(np.nanargmin(self.means))

    def amplitude(self) -> float:
        """Peak-to-trough difference; how diurnal the profile is."""
        if not np.any(self.counts > 0):
            return float("nan")
        return float(np.nanmax(self.means) - np.nanmin(self.means))


def shares(values: Sequence[float]) -> np.ndarray:
    """Normalize non-negative values into descending fractional shares.

    Used for Fig. 17 (per-device byte shares) and Fig. 19 (per-domain
    volume/connection shares).
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return arr
    if np.any(arr < 0):
        raise ValueError("shares require non-negative values")
    total = arr.sum()
    if total == 0:
        return np.zeros(arr.size)
    return np.sort(arr / total)[::-1]


def mean_ranked_shares(per_home_shares: Iterable[np.ndarray],
                       ranks: int) -> np.ndarray:
    """Average the rank-k share across homes (padding short homes with 0).

    The paper's "the most popular domain accounts for about 38% of traffic on
    average" is exactly ``mean_ranked_shares(...)[0]``.

    Implemented over the streaming accumulator so the exact and streaming
    analysis paths produce bitwise-identical ranked shares.
    """
    from repro.core.sketches import RankedShareAccumulator

    accumulator = RankedShareAccumulator(ranks)
    for share_vec in per_home_shares:
        accumulator.add(share_vec)
    return accumulator.result()


def percentile_by_key(pairs: Iterable[Tuple[str, float]],
                      q: float) -> Dict[str, float]:
    """Group (key, value) pairs by key and take the q-percentile per key."""
    grouped: Dict[str, List[float]] = {}
    for key, value in pairs:
        grouped.setdefault(key, []).append(value)
    return {
        key: float(np.percentile(np.asarray(values), q))
        for key, values in grouped.items()
    }
