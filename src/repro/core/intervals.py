"""Interval algebra over half-open time ranges ``[start, end)``.

Both the simulator (router power periods, ISP outages, device association
spans) and the availability analysis (up-intervals reconstructed from
heartbeats, gap extraction) work in terms of sets of disjoint intervals.
:class:`IntervalSet` provides the normalized representation plus the set
operations the pipeline needs: union, intersection, complement, clipping,
and total duration.

Storage is dual: a set can be *tuple-backed* (built from Python pairs, the
historical path) or *array-backed* (built by the columnar materializer from
``(starts, ends)`` float arrays).  Either backing lazily produces the other
representation on demand, and every operation yields bitwise-identical
floats regardless of backing — the digest-pin suite holds that invariant.
In particular :meth:`total_duration` always sums interval lengths in
sequential order (never ``np.sum``'s pairwise reduction), because analysis
thresholds compare against those sums.
"""

from __future__ import annotations

from bisect import bisect_right
from math import isfinite
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

Interval = Tuple[float, float]


def normalize_interval_arrays(
        starts: np.ndarray, ends: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Sort, drop empty, and merge touching intervals — pure array form.

    The exact array counterpart of the tuple-path normalization: sort by
    ``(start, end)``, then merge any interval whose start does not exceed
    the running maximum end.  Returns new ``(starts, ends)`` arrays.
    """
    starts = np.asarray(starts, dtype=float)
    ends = np.asarray(ends, dtype=float)
    keep = ends > starts
    if not keep.all():
        starts = starts[keep]
        ends = ends[keep]
    if starts.size == 0:
        return starts, ends
    if not (np.isfinite(starts).all() and np.isfinite(ends).all()):
        raise ValueError("non-finite interval bounds")
    order = np.lexsort((ends, starts))
    starts = starts[order]
    ends = ends[order]
    running_end = np.maximum.accumulate(ends)
    new_group = np.empty(starts.size, dtype=bool)
    new_group[0] = True
    # Same rule as the scalar merge: start <= merged[-1][1] joins the group.
    new_group[1:] = starts[1:] > running_end[:-1]
    group_starts = np.flatnonzero(new_group)
    group_last = np.append(group_starts[1:] - 1, starts.size - 1)
    return starts[group_starts], running_end[group_last]


class IntervalSet:
    """An immutable, normalized set of disjoint half-open intervals.

    Normalization sorts the intervals, drops empty ones, and merges any that
    touch or overlap, so two IntervalSets covering the same instants always
    compare equal.

    Point queries are hot (the firmware asks "was X up at tick t" millions
    of times per campaign), so the start points are kept as a parallel
    tuple for :func:`bisect.bisect_right` and the interval matrix used by
    :meth:`contains_many` is built lazily and cached.  Array-backed sets
    defer building the tuple form until something iterates them.
    """

    __slots__ = ("_tuple", "_starts_tuple", "_array")

    def __init__(self, intervals: Iterable[Interval] = ()):
        self._tuple: Optional[Tuple[Interval, ...]] = \
            self._normalize(intervals)
        self._starts_tuple: Optional[Tuple[float, ...]] = None
        self._array: Optional[np.ndarray] = None

    @classmethod
    def from_normalized_arrays(cls, starts: np.ndarray,
                               ends: np.ndarray) -> "IntervalSet":
        """Adopt already-normalized ``(starts, ends)`` arrays without copying.

        The caller guarantees the intervals are sorted, non-empty, and
        pairwise disjoint (strictly: each start exceeds the previous end).
        This is the columnar materializer's constructor: no per-interval
        Python objects are created until someone iterates the set.
        """
        obj = cls.__new__(cls)
        arr = np.empty((len(starts), 2), dtype=float)
        arr[:, 0] = starts
        arr[:, 1] = ends
        obj._tuple = None
        obj._starts_tuple = None
        obj._array = arr
        return obj

    @classmethod
    def from_event_arrays(cls, starts: np.ndarray,
                          ends: np.ndarray) -> "IntervalSet":
        """Build from unsorted, possibly overlapping event arrays."""
        return cls.from_normalized_arrays(
            *normalize_interval_arrays(starts, ends))

    @staticmethod
    def _normalize(intervals: Iterable[Interval]) -> Tuple[Interval, ...]:
        cleaned: List[Interval] = []
        for start, end in intervals:
            start = float(start)
            end = float(end)
            if not (isfinite(start) and isfinite(end)):
                raise ValueError(f"non-finite interval ({start!r}, {end!r})")
            if end > start:
                cleaned.append((start, end))
        cleaned.sort()
        merged: List[Interval] = []
        for start, end in cleaned:
            if merged and start <= merged[-1][1]:
                prev_start, prev_end = merged[-1]
                merged[-1] = (prev_start, max(prev_end, end))
            else:
                merged.append((start, end))
        return tuple(merged)

    # -- lazy representations -------------------------------------------------

    def _as_tuple(self) -> Tuple[Interval, ...]:
        """The interval tuple, materialized from the array on first need."""
        if self._tuple is None:
            self._tuple = tuple(
                (row[0], row[1]) for row in self._array.tolist())
        return self._tuple

    def _as_array(self) -> np.ndarray:
        """The (n, 2) interval matrix, built once and cached."""
        if self._array is None:
            if self._tuple:
                self._array = np.asarray(self._tuple, dtype=float)
            else:
                self._array = np.empty((0, 2), dtype=float)
        return self._array

    def _starts(self) -> Tuple[float, ...]:
        if self._starts_tuple is None:
            self._starts_tuple = tuple(s for s, _ in self._as_tuple())
        return self._starts_tuple

    # -- pickling (skip the lazy caches, rebuild derived state) ---------------

    def __getstate__(self) -> Tuple[Interval, ...]:
        return self._as_tuple()

    def __setstate__(self, intervals: Tuple[Interval, ...]) -> None:
        self._tuple = intervals
        self._starts_tuple = None
        self._array = None

    # -- basic container protocol -------------------------------------------

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._as_tuple())

    def __len__(self) -> int:
        if self._tuple is not None:
            return len(self._tuple)
        return self._array.shape[0]

    def __bool__(self) -> bool:
        return len(self) > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._as_tuple() == other._as_tuple()

    def __hash__(self) -> int:
        return hash(self._as_tuple())

    def __repr__(self) -> str:
        inner = ", ".join(f"[{s:g}, {e:g})" for s, e in self._as_tuple())
        return f"IntervalSet({inner})"

    @property
    def intervals(self) -> Tuple[Interval, ...]:
        """The normalized intervals as an immutable tuple."""
        return self._as_tuple()

    @property
    def span(self) -> Interval:
        """The smallest single interval containing the whole set.

        Raises ValueError on an empty set.
        """
        if not self:
            raise ValueError("empty IntervalSet has no span")
        arr = self._as_array()
        return (float(arr[0, 0]), float(arr[-1, 1]))

    def total_duration(self) -> float:
        """Sum of interval lengths (sequential summation order)."""
        if self._tuple is not None:
            return float(sum(end - start for start, end in self._tuple))
        arr = self._array
        # Element-wise subtraction then a sequential Python sum: identical
        # floats to the tuple path (np.sum's pairwise order would not be).
        return float(sum((arr[:, 1] - arr[:, 0]).tolist()))

    def durations(self) -> np.ndarray:
        """Lengths of each interval, in order."""
        if not self:
            return np.empty(0)
        arr = self._as_array()
        return arr[:, 1] - arr[:, 0]

    # -- point and set queries ----------------------------------------------

    def contains(self, instant: float) -> bool:
        """True when *instant* falls inside some interval."""
        return self.interval_at(instant) is not None

    def interval_at(self, instant: float) -> Optional[Interval]:
        """The interval covering *instant*, or None (bisect, O(log n))."""
        idx = bisect_right(self._starts(), instant) - 1
        if idx < 0:
            return None
        start, end = self._as_tuple()[idx]
        if start <= instant < end:
            return (start, end)
        return None

    def contains_many(self, instants: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`contains` returning a boolean array."""
        instants = np.asarray(instants, dtype=float)
        if not self:
            return np.zeros(instants.shape, dtype=bool)
        arr = self._as_array()
        idx = np.searchsorted(arr[:, 0], instants, side="right") - 1
        valid = idx >= 0
        # maximum() instead of np.clip: the searchsorted already bounds
        # idx above, and clip's dtype-limit probing dominated this path.
        clamped = np.maximum(idx, 0)
        inside = (instants >= arr[clamped, 0]) & (instants < arr[clamped, 1])
        return valid & inside

    # -- set algebra ----------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Instants covered by either set."""
        if self._tuple is None or other._tuple is None:
            a, b = self._as_array(), other._as_array()
            return IntervalSet.from_event_arrays(
                np.concatenate((a[:, 0], b[:, 0])),
                np.concatenate((a[:, 1], b[:, 1])))
        return IntervalSet(self._tuple + other._tuple)

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """Instants covered by both sets."""
        if self._tuple is None or other._tuple is None:
            return self._intersection_arrays(other)
        result: List[Interval] = []
        i, j = 0, 0
        a, b = self._tuple, other._tuple
        while i < len(a) and j < len(b):
            start = max(a[i][0], b[j][0])
            end = min(a[i][1], b[j][1])
            if end > start:
                result.append((start, end))
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        return IntervalSet(result)

    def _intersection_arrays(self, other: "IntervalSet") -> "IntervalSet":
        """Array path of :meth:`intersection`: identical pairs and floats.

        For each interval of ``self``, the overlapping run of ``other`` is
        located by binary search; the overlap of each pair is
        ``(max(starts), min(ends))`` exactly as in the two-pointer sweep.
        """
        a = self._as_array()
        b = other._as_array()
        if a.shape[0] == 0 or b.shape[0] == 0:
            return IntervalSet.from_normalized_arrays(
                np.empty(0), np.empty(0))
        lo = np.searchsorted(b[:, 1], a[:, 0], side="right")
        hi = np.searchsorted(b[:, 0], a[:, 1], side="left")
        counts = hi - lo
        pos = counts > 0
        if not pos.any():
            return IntervalSet.from_normalized_arrays(
                np.empty(0), np.empty(0))
        a_idx = np.repeat(np.flatnonzero(pos), counts[pos])
        offsets = np.concatenate(([0], np.cumsum(counts[pos])))[:-1]
        b_idx = (np.arange(a_idx.size) - np.repeat(offsets, counts[pos])
                 + np.repeat(lo[pos], counts[pos]))
        starts = np.maximum(a[a_idx, 0], b[b_idx, 0])
        ends = np.minimum(a[a_idx, 1], b[b_idx, 1])
        keep = ends > starts
        return IntervalSet.from_normalized_arrays(starts[keep], ends[keep])

    def complement(self, window: Interval) -> "IntervalSet":
        """Instants inside *window* not covered by this set (the "gaps")."""
        win_start, win_end = window
        if win_end <= win_start:
            return IntervalSet()
        clipped = self.clip(win_start, win_end)
        if clipped._tuple is None:
            arr = clipped._as_array()
            gap_starts = np.concatenate(([win_start], arr[:, 1]))
            gap_ends = np.concatenate((arr[:, 0], [win_end]))
            keep = gap_ends > gap_starts
            return IntervalSet.from_normalized_arrays(
                gap_starts[keep], gap_ends[keep])
        gaps: List[Interval] = []
        cursor = win_start
        for start, end in clipped:
            if start > cursor:
                gaps.append((cursor, start))
            cursor = max(cursor, end)
        if cursor < win_end:
            gaps.append((cursor, win_end))
        return IntervalSet(gaps)

    def clip(self, start: float, end: float) -> "IntervalSet":
        """Restrict the set to the window ``[start, end)``."""
        if end <= start:
            return IntervalSet()
        if self._tuple is None:
            arr = self._array
            keep = (arr[:, 1] > start) & (arr[:, 0] < end)
            return IntervalSet.from_normalized_arrays(
                np.maximum(arr[keep, 0], start),
                np.minimum(arr[keep, 1], end))
        clipped = [
            (max(s, start), min(e, end))
            for s, e in self._tuple
            if e > start and s < end
        ]
        return IntervalSet(clipped)

    def filter_min_duration(self, min_duration: float) -> "IntervalSet":
        """Keep only intervals at least *min_duration* long.

        This is the "gaps of ten minutes or longer" rule the paper uses to
        separate downtime from heartbeat loss.
        """
        if min_duration < 0:
            raise ValueError("min_duration cannot be negative")
        if self._tuple is None:
            arr = self._array
            keep = (arr[:, 1] - arr[:, 0]) >= min_duration
            return IntervalSet.from_normalized_arrays(arr[keep, 0],
                                                      arr[keep, 1])
        return IntervalSet(
            (s, e) for s, e in self._tuple if (e - s) >= min_duration
        )

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_timestamps(cls, timestamps: Sequence[float],
                        max_gap: float) -> "IntervalSet":
        """Reconstruct up-intervals from a sorted stream of heartbeats.

        Consecutive timestamps closer than *max_gap* belong to the same
        up-interval; each interval extends from its first to its last
        heartbeat.  This is how the availability analysis rebuilds router
        uptime from the Heartbeats data set.
        """
        if max_gap <= 0:
            raise ValueError("max_gap must be positive")
        ts = np.asarray(timestamps, dtype=float)
        if ts.size == 0:
            return cls()
        if np.any(np.diff(ts) < 0):
            ts = np.sort(ts)
        breaks = np.flatnonzero(np.diff(ts) > max_gap)
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks, [ts.size - 1]))
        # A lone heartbeat still proves ~one sampling period of uptime.
        return cls(
            (float(ts[i]), float(max(ts[j], ts[i] + 1.0)))
            for i, j in zip(starts, ends)
        )
