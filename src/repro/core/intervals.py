"""Interval algebra over half-open time ranges ``[start, end)``.

Both the simulator (router power periods, ISP outages, device association
spans) and the availability analysis (up-intervals reconstructed from
heartbeats, gap extraction) work in terms of sets of disjoint intervals.
:class:`IntervalSet` provides the normalized representation plus the set
operations the pipeline needs: union, intersection, complement, clipping,
and total duration.
"""

from __future__ import annotations

from bisect import bisect_right
from math import isfinite
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

Interval = Tuple[float, float]


class IntervalSet:
    """An immutable, normalized set of disjoint half-open intervals.

    Normalization sorts the intervals, drops empty ones, and merges any that
    touch or overlap, so two IntervalSets covering the same instants always
    compare equal.

    Point queries are hot (the firmware asks "was X up at tick t" millions
    of times per campaign), so the start points are kept as a parallel
    tuple for :func:`bisect.bisect_right` and the interval matrix used by
    :meth:`contains_many` is built lazily and cached.
    """

    __slots__ = ("_intervals", "_starts", "_array")

    def __init__(self, intervals: Iterable[Interval] = ()):
        self._intervals: Tuple[Interval, ...] = self._normalize(intervals)
        self._starts: Tuple[float, ...] = tuple(
            s for s, _ in self._intervals)
        self._array: Optional[np.ndarray] = None

    @staticmethod
    def _normalize(intervals: Iterable[Interval]) -> Tuple[Interval, ...]:
        cleaned: List[Interval] = []
        for start, end in intervals:
            start = float(start)
            end = float(end)
            if not (isfinite(start) and isfinite(end)):
                raise ValueError(f"non-finite interval ({start!r}, {end!r})")
            if end > start:
                cleaned.append((start, end))
        cleaned.sort()
        merged: List[Interval] = []
        for start, end in cleaned:
            if merged and start <= merged[-1][1]:
                prev_start, prev_end = merged[-1]
                merged[-1] = (prev_start, max(prev_end, end))
            else:
                merged.append((start, end))
        return tuple(merged)

    def _as_array(self) -> np.ndarray:
        """The (n, 2) interval matrix, built once and cached."""
        if self._array is None:
            self._array = np.asarray(self._intervals, dtype=float)
        return self._array

    # -- pickling (skip the lazy cache, rebuild derived state) ---------------

    def __getstate__(self) -> Tuple[Interval, ...]:
        return self._intervals

    def __setstate__(self, intervals: Tuple[Interval, ...]) -> None:
        self._intervals = intervals
        self._starts = tuple(s for s, _ in intervals)
        self._array = None

    # -- basic container protocol -------------------------------------------

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __len__(self) -> int:
        return len(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        return hash(self._intervals)

    def __repr__(self) -> str:
        inner = ", ".join(f"[{s:g}, {e:g})" for s, e in self._intervals)
        return f"IntervalSet({inner})"

    @property
    def intervals(self) -> Tuple[Interval, ...]:
        """The normalized intervals as an immutable tuple."""
        return self._intervals

    @property
    def span(self) -> Interval:
        """The smallest single interval containing the whole set.

        Raises ValueError on an empty set.
        """
        if not self._intervals:
            raise ValueError("empty IntervalSet has no span")
        return (self._intervals[0][0], self._intervals[-1][1])

    def total_duration(self) -> float:
        """Sum of interval lengths."""
        return float(sum(end - start for start, end in self._intervals))

    def durations(self) -> np.ndarray:
        """Lengths of each interval, in order."""
        if not self._intervals:
            return np.empty(0)
        arr = self._as_array()
        return arr[:, 1] - arr[:, 0]

    # -- point and set queries ----------------------------------------------

    def contains(self, instant: float) -> bool:
        """True when *instant* falls inside some interval."""
        idx = bisect_right(self._starts, instant) - 1
        if idx < 0:
            return False
        start, end = self._intervals[idx]
        return start <= instant < end

    def contains_many(self, instants: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`contains` returning a boolean array."""
        instants = np.asarray(instants, dtype=float)
        if not self._intervals:
            return np.zeros(instants.shape, dtype=bool)
        arr = self._as_array()
        idx = np.searchsorted(arr[:, 0], instants, side="right") - 1
        valid = idx >= 0
        result = np.zeros(instants.shape, dtype=bool)
        clamped = np.clip(idx, 0, len(self._intervals) - 1)
        inside = (instants >= arr[clamped, 0]) & (instants < arr[clamped, 1])
        result[valid & inside] = True
        return result

    # -- set algebra ----------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Instants covered by either set."""
        return IntervalSet(self._intervals + other._intervals)

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """Instants covered by both sets (two-pointer sweep)."""
        result: List[Interval] = []
        i, j = 0, 0
        a, b = self._intervals, other._intervals
        while i < len(a) and j < len(b):
            start = max(a[i][0], b[j][0])
            end = min(a[i][1], b[j][1])
            if end > start:
                result.append((start, end))
            if a[i][1] <= b[j][1]:
                i += 1
            else:
                j += 1
        return IntervalSet(result)

    def complement(self, window: Interval) -> "IntervalSet":
        """Instants inside *window* not covered by this set (the "gaps")."""
        win_start, win_end = window
        if win_end <= win_start:
            return IntervalSet()
        gaps: List[Interval] = []
        cursor = win_start
        for start, end in self.clip(win_start, win_end):
            if start > cursor:
                gaps.append((cursor, start))
            cursor = max(cursor, end)
        if cursor < win_end:
            gaps.append((cursor, win_end))
        return IntervalSet(gaps)

    def clip(self, start: float, end: float) -> "IntervalSet":
        """Restrict the set to the window ``[start, end)``."""
        if end <= start:
            return IntervalSet()
        clipped = [
            (max(s, start), min(e, end))
            for s, e in self._intervals
            if e > start and s < end
        ]
        return IntervalSet(clipped)

    def filter_min_duration(self, min_duration: float) -> "IntervalSet":
        """Keep only intervals at least *min_duration* long.

        This is the "gaps of ten minutes or longer" rule the paper uses to
        separate downtime from heartbeat loss.
        """
        if min_duration < 0:
            raise ValueError("min_duration cannot be negative")
        return IntervalSet(
            (s, e) for s, e in self._intervals if (e - s) >= min_duration
        )

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_timestamps(cls, timestamps: Sequence[float],
                        max_gap: float) -> "IntervalSet":
        """Reconstruct up-intervals from a sorted stream of heartbeats.

        Consecutive timestamps closer than *max_gap* belong to the same
        up-interval; each interval extends from its first to its last
        heartbeat.  This is how the availability analysis rebuilds router
        uptime from the Heartbeats data set.
        """
        if max_gap <= 0:
            raise ValueError("max_gap must be positive")
        ts = np.asarray(timestamps, dtype=float)
        if ts.size == 0:
            return cls()
        if np.any(np.diff(ts) < 0):
            ts = np.sort(ts)
        breaks = np.flatnonzero(np.diff(ts) > max_gap)
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks, [ts.size - 1]))
        # A lone heartbeat still proves ~one sampling period of uptime.
        return cls(
            (float(ts[i]), float(max(ts[j], ts[i] + 1.0)))
            for i, j in zip(starts, ends)
        )
