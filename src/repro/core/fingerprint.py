"""Device fingerprinting from traffic mixes (paper Sections 6.4 and 7).

The paper observes that a device's *domain mix* separates device types far
better than its MAC OUI: a Roku talks almost exclusively to streaming
services, a desktop syncs cloud storage, a phone leans social (Fig. 20).
Section 7 proposes building device fingerprinting on this; we implement it:

* :func:`category_vector` reduces a device's flows to a normalized
  byte-share vector over domain *categories* (streaming/web/social/...);
* :class:`DeviceFingerprinter` is a nearest-prototype classifier: fit it on
  a few user-labeled devices (the paper surveyed six homes for ground
  truth), then classify every other device in the deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.datasets import StudyData
from repro.core.records import OBFUSCATED_DOMAIN, FlowRecord
from repro.simulation.domains import Domain, build_domain_universe

#: Category axes of the fingerprint vector, fixed order.
CATEGORIES: Tuple[str, ...] = (
    "streaming", "web", "social", "cloud", "update", "gaming", "other",
)


def _default_category_map() -> Dict[str, str]:
    """domain name → category, from the public whitelist universe."""
    return {d.name: d.category for d in build_domain_universe()}


def category_vector(flows: Iterable[FlowRecord],
                    category_map: Optional[Mapping[str, str]] = None,
                    ) -> np.ndarray:
    """Reduce flows to a normalized byte-share vector over CATEGORIES.

    Obfuscated domains fall into ``"other"`` — the classifier must work on
    anonymized data, since that is all that leaves the home.
    """
    mapping = category_map if category_map is not None \
        else _default_category_map()
    index = {cat: i for i, cat in enumerate(CATEGORIES)}
    vector = np.zeros(len(CATEGORIES))
    for flow in flows:
        if flow.domain == OBFUSCATED_DOMAIN:
            category = "other"
        else:
            category = mapping.get(flow.domain, "other")
        vector[index.get(category, index["other"])] += flow.bytes_total
    total = vector.sum()
    if total > 0:
        vector /= total
    return vector


def feature_vector(flows: Iterable[FlowRecord],
                   category_map: Optional[Mapping[str, str]] = None,
                   ) -> np.ndarray:
    """A richer fingerprint: category shares plus flow-shape features.

    Device types that share a category mix (phone vs laptop vs tablet)
    still differ in *how* they talk: bytes per connection, upstream
    fraction, and flow count all separate them.  The extra axes are scaled
    into [0, 1] so cosine similarity stays meaningful.
    """
    flows = list(flows)
    categories = category_vector(flows, category_map)
    total_bytes = sum(f.bytes_total for f in flows)
    total_up = sum(f.bytes_up for f in flows)
    n = len(flows)
    if n == 0 or total_bytes == 0:
        return np.concatenate([categories, np.zeros(3)])
    upstream_fraction = total_up / total_bytes
    # log10 bytes/connection, squashed: 1 KB -> ~0.3, 100 MB -> ~0.9.
    bytes_per_conn = total_bytes / n
    size_axis = min(max(np.log10(bytes_per_conn) / 9.0, 0.0), 1.0)
    duration_axis = min(np.median([f.duration_seconds for f in flows])
                        / 3600.0, 1.0)
    return np.concatenate([
        categories,
        [upstream_fraction, size_axis, duration_axis],
    ])


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two fingerprint vectors (0 when empty)."""
    norm = float(np.linalg.norm(a) * np.linalg.norm(b))
    if norm == 0:
        return 0.0
    return float(np.dot(a, b) / norm)


@dataclass(frozen=True)
class FingerprintMatch:
    """A classification result with its confidence."""

    label: str
    similarity: float


class DeviceFingerprinter:
    """Nearest-prototype classifier over category vectors.

    Prototypes are the mean vector of each label's training examples; a
    query matches the most cosine-similar prototype.  ``min_similarity``
    guards against classifying devices unlike anything seen in training.
    """

    def __init__(self, min_similarity: float = 0.5):
        if not 0 <= min_similarity <= 1:
            raise ValueError("min_similarity must be in [0, 1]")
        self.min_similarity = min_similarity
        self._prototypes: Dict[str, np.ndarray] = {}

    @property
    def labels(self) -> List[str]:
        """Labels the classifier has been trained on."""
        return sorted(self._prototypes)

    def fit(self, examples: Sequence[Tuple[np.ndarray, str]]) -> None:
        """Train on (vector, label) pairs from :func:`category_vector` or
        :func:`feature_vector` — any consistent vector length works."""
        if not examples:
            raise ValueError("need at least one training example")
        width = np.asarray(examples[0][0]).shape
        grouped: Dict[str, List[np.ndarray]] = {}
        for vector, label in examples:
            vector = np.asarray(vector, dtype=float)
            if vector.ndim != 1 or vector.shape != width:
                raise ValueError(
                    "fingerprint vectors must be 1-D and equally sized")
            grouped.setdefault(label, []).append(vector)
        self._prototypes = {
            label: np.mean(np.vstack(vectors), axis=0)
            for label, vectors in grouped.items()
        }

    def classify(self, vector: np.ndarray) -> Optional[FingerprintMatch]:
        """Best-matching label, or None below the similarity floor."""
        if not self._prototypes:
            raise RuntimeError("classifier has not been fitted")
        best_label, best_sim = None, -1.0
        for label, prototype in sorted(self._prototypes.items()):
            similarity = cosine_similarity(vector, prototype)
            if similarity > best_sim:
                best_label, best_sim = label, similarity
        if best_label is None or best_sim < self.min_similarity:
            return None
        return FingerprintMatch(label=best_label, similarity=best_sim)


def fingerprint_devices(data: StudyData, router_id: str,
                        fingerprinter: DeviceFingerprinter,
                        min_bytes: float = 100e3,
                        use_flow_shape: bool = False,
                        ) -> Dict[str, Optional[FingerprintMatch]]:
    """Classify every sufficiently-active device in one traffic home.

    ``use_flow_shape`` selects :func:`feature_vector` (the classifier must
    have been trained on the same vector kind).
    """
    flows_by_mac: Dict[str, List[FlowRecord]] = {}
    for flow in data.flows:
        if flow.router_id == router_id:
            flows_by_mac.setdefault(flow.device_mac, []).append(flow)
    mapping = _default_category_map()
    vectorize = feature_vector if use_flow_shape else category_vector
    results: Dict[str, Optional[FingerprintMatch]] = {}
    for mac, flows in sorted(flows_by_mac.items()):
        if sum(f.bytes_total for f in flows) < min_bytes:
            continue
        results[mac] = fingerprinter.classify(vectorize(flows, mapping))
    return results
