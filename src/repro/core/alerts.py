"""Gateway-side security alerts from per-device behaviour baselines.

Paper Section 7 ("Device fingerprinting for security alerts"): ISPs can
tell *a home* is misbehaving but not *which device*; the gateway can.  The
detector here baselines each device during a training window and flags
three deviations in later traffic, each of which maps to a concrete
compromise signature:

* **behaviour shift** — the device's fingerprint vector (domain-category
  mix + flow shape) drifts far from its own baseline;
* **upstream anomaly** — daily upstream volume explodes past the baseline
  (exfiltration);
* **port anomaly** — the device starts speaking applications it never
  used before, weighted by how alarming the application is (a desktop
  suddenly originating SMTP is a spam bot).

All inputs are the anonymized flow records that leave the home — the
detector never needs PII the deployment didn't collect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.fingerprint import cosine_similarity, feature_vector
from repro.core.records import FlowRecord
from repro.simulation.timebase import DAY

#: Applications that are alarming for a *client* device to originate.
SUSPICIOUS_APPLICATIONS = ("smtp", "smtps", "ftp", "ftp-data")


@dataclass(frozen=True)
class SecurityAlert:
    """One detector finding, attributable to a single device."""

    router_id: str
    device_mac: str
    reason: str  # "behavior-shift" | "upstream-anomaly" | "port-anomaly"
    severity: float  # 0..1, larger is worse
    detail: str

    def __post_init__(self) -> None:
        if self.reason not in ("behavior-shift", "upstream-anomaly",
                               "port-anomaly"):
            raise ValueError(f"unknown alert reason {self.reason!r}")
        if not 0 <= self.severity <= 1:
            raise ValueError("severity must be within [0, 1]")


@dataclass
class DeviceBaseline:
    """What normal looks like for one device."""

    fingerprint: np.ndarray
    upstream_bytes_per_day: float
    applications: Set[str]
    observed_days: float


def _split_by_device(flows: Iterable[FlowRecord],
                     router_id: Optional[str] = None,
                     ) -> Dict[Tuple[str, str], List[FlowRecord]]:
    grouped: Dict[Tuple[str, str], List[FlowRecord]] = {}
    for flow in flows:
        if router_id is not None and flow.router_id != router_id:
            continue
        grouped.setdefault((flow.router_id, flow.device_mac),
                           []).append(flow)
    return grouped


def _observed_days(flows: Sequence[FlowRecord]) -> float:
    if len(flows) < 2:
        return 1.0
    stamps = [f.timestamp for f in flows]
    return max((max(stamps) - min(stamps)) / DAY, 1.0)


class SecurityMonitor:
    """Baseline-and-compare detector over anonymized flow records."""

    def __init__(self,
                 similarity_floor: float = 0.45,
                 upstream_factor: float = 8.0,
                 min_baseline_flows: int = 10):
        if not 0 <= similarity_floor <= 1:
            raise ValueError("similarity_floor must be within [0, 1]")
        if upstream_factor <= 1:
            raise ValueError("upstream_factor must exceed 1")
        self.similarity_floor = similarity_floor
        self.upstream_factor = upstream_factor
        self.min_baseline_flows = min_baseline_flows
        self._baselines: Dict[Tuple[str, str], DeviceBaseline] = {}

    @property
    def baselined_devices(self) -> List[Tuple[str, str]]:
        """(router, device) pairs with a learned baseline."""
        return sorted(self._baselines)

    def fit(self, flows: Iterable[FlowRecord]) -> int:
        """Learn baselines from a clean training window.

        Returns the number of devices baselined; devices with fewer than
        ``min_baseline_flows`` are skipped (too little to define normal).
        """
        count = 0
        for key, device_flows in _split_by_device(flows).items():
            if len(device_flows) < self.min_baseline_flows:
                continue
            days = _observed_days(device_flows)
            self._baselines[key] = DeviceBaseline(
                fingerprint=feature_vector(device_flows),
                upstream_bytes_per_day=sum(
                    f.bytes_up for f in device_flows) / days,
                applications={f.application for f in device_flows},
                observed_days=days,
            )
            count += 1
        return count

    def scan(self, flows: Iterable[FlowRecord]) -> List[SecurityAlert]:
        """Compare a later window against the baselines; return alerts."""
        if not self._baselines:
            raise RuntimeError("monitor has not been fitted")
        alerts: List[SecurityAlert] = []
        for key, device_flows in sorted(_split_by_device(flows).items()):
            baseline = self._baselines.get(key)
            if baseline is None:
                continue  # new device: a different product's problem
            alerts.extend(self._scan_device(key, device_flows, baseline))
        alerts.sort(key=lambda a: -a.severity)
        return alerts

    def _scan_device(self, key: Tuple[str, str],
                     flows: List[FlowRecord],
                     baseline: DeviceBaseline) -> List[SecurityAlert]:
        router_id, device_mac = key
        alerts: List[SecurityAlert] = []

        # A fingerprint built from a handful of flows is mostly noise;
        # don't compare until the device has said enough.
        similarity = cosine_similarity(feature_vector(flows),
                                       baseline.fingerprint)
        if (len(flows) >= self.min_baseline_flows
                and similarity < self.similarity_floor):
            alerts.append(SecurityAlert(
                router_id=router_id,
                device_mac=device_mac,
                reason="behavior-shift",
                severity=min(1.0, 1.0 - similarity),
                detail=f"fingerprint similarity {similarity:.2f} "
                       f"(floor {self.similarity_floor:.2f})",
            ))

        days = _observed_days(flows)
        upstream_rate = sum(f.bytes_up for f in flows) / days
        ceiling = max(baseline.upstream_bytes_per_day, 1e4) \
            * self.upstream_factor
        if upstream_rate > ceiling:
            ratio = upstream_rate / max(baseline.upstream_bytes_per_day, 1e4)
            alerts.append(SecurityAlert(
                router_id=router_id,
                device_mac=device_mac,
                reason="upstream-anomaly",
                severity=min(1.0, np.log10(ratio) / 3.0),
                detail=f"upstream {upstream_rate / 1e6:.1f} MB/day vs "
                       f"baseline "
                       f"{baseline.upstream_bytes_per_day / 1e6:.1f} MB/day",
            ))

        novel = {f.application for f in flows} - baseline.applications
        alarming = sorted(novel & set(SUSPICIOUS_APPLICATIONS))
        if alarming:
            alerts.append(SecurityAlert(
                router_id=router_id,
                device_mac=device_mac,
                reason="port-anomaly",
                severity=0.9,
                detail=f"new suspicious applications: "
                       f"{', '.join(alarming)}",
            ))
        return alerts


def split_training_window(flows: Sequence[FlowRecord],
                          fraction: float = 0.5,
                          ) -> Tuple[List[FlowRecord], List[FlowRecord]]:
    """Split flows at a time boundary into (training, scanning) halves."""
    if not 0 < fraction < 1:
        raise ValueError("fraction must be in (0, 1)")
    if not flows:
        return [], []
    stamps = sorted(f.timestamp for f in flows)
    boundary = stamps[int(len(stamps) * fraction)]
    train = [f for f in flows if f.timestamp < boundary]
    scan = [f for f in flows if f.timestamp >= boundary]
    return train, scan
