"""One-call reproduction of the paper's whole evaluation.

:func:`reproduce_all` runs every Section 4/5/6 analysis over a collected
study and returns a structured :class:`PaperReport`;
:func:`render_report` turns it into the text document a reader would
diff against the paper.  The per-experiment benchmarks under
``benchmarks/`` remain the authoritative shape checks; this module is the
library-user-facing "give me everything" entry point.

The rows are formatted off a :class:`~repro.core.streaming.StudyFigures`
bundle, so the same report comes from either analysis path: the exact
in-RAM functions (pass a ``StudyData``) or the one-pass streaming driver
(pass a stream source, e.g. a
:class:`~repro.core.streaming.StoreSource` over a spilled record store).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Union

import numpy as np

from repro.core.datasets import DatasetSummary, StudyData
from repro.core.records import Spectrum
from repro.core.report import render_comparison, render_table
from repro.core.streaming import (
    StudyFigures,
    compute_figures,
    stream_figures,
)
from repro.core import usage


@dataclass(frozen=True)
class ExperimentRow:
    """One paper-vs-measured line of the final report."""

    experiment: str
    quantity: str
    paper: str
    measured: object


@dataclass
class PaperReport:
    """Every reproduced number, grouped by paper section."""

    datasets: List[DatasetSummary]
    section4: List[ExperimentRow] = field(default_factory=list)
    section5: List[ExperimentRow] = field(default_factory=list)
    section6: List[ExperimentRow] = field(default_factory=list)

    def rows(self) -> List[ExperimentRow]:
        """All rows in paper order."""
        return self.section4 + self.section5 + self.section6

    def by_experiment(self) -> Dict[str, List[ExperimentRow]]:
        """Rows grouped by experiment label (e.g. ``"Fig. 3"``)."""
        grouped: Dict[str, List[ExperimentRow]] = {}
        for row in self.rows():
            grouped.setdefault(row.experiment, []).append(row)
        return grouped


def _section4_rows(figures: StudyFigures) -> List[ExperimentRow]:
    rows: List[ExperimentRow] = []
    dev = figures.fig3["developed"]
    dvg = figures.fig3["developing"]
    if dev.n and dvg.n:
        rows.append(ExperimentRow(
            "Fig. 3", "median downtimes/day developed vs developing",
            "~0.03 vs ~1", f"{dev.median:.3f} vs {dvg.median:.3f}"))
    dur_dev = figures.fig4["developed"]
    dur_dvg = figures.fig4["developing"]
    if dur_dev.n and dur_dvg.n:
        rows.append(ExperimentRow(
            "Fig. 4", "median downtime minutes developed vs developing",
            "~30 vs ~30 (longer tail)",
            f"{dur_dev.median / 60:.0f} vs {dur_dvg.median / 60:.0f}"))
    if figures.fig5:
        worst = sorted(figures.fig5, key=lambda p: -p.median_downtimes)[:2]
        rows.append(ExperimentRow(
            "Fig. 5", "two worst countries", "IN, PK",
            ", ".join(sorted(p.country_code for p in worst))))
    by_country = figures.table3_availability
    for code, paper in (("US", "98.25%"), ("IN", "76.01%"),
                        ("ZA", "85.57%")):
        if code in by_country:
            rows.append(ExperimentRow(
                "Table 3", f"median {code} availability", paper,
                f"{by_country[code]:.2%}"))
    return rows


def _section5_rows(figures: StudyFigures) -> List[ExperimentRow]:
    rows: List[ExperimentRow] = []
    cdf = figures.fig7
    if cdf.n:
        rows.append(ExperimentRow(
            "Fig. 7", "mean devices per home", "~7",
            round(cdf.mean, 2)))
        rows.append(ExperimentRow(
            "Fig. 7", "P(>=5 devices)", "> 0.5",
            round(cdf.fraction_at_least(5), 2)))
    for label in ("developed", "developing"):
        medium = figures.fig8[label]
        if medium["wired"].n:
            rows.append(ExperimentRow(
                "Fig. 8", f"wireless vs wired connected ({label})",
                "wireless > wired",
                f"{medium['wireless'].mean:.2f} vs "
                f"{medium['wired'].mean:.2f}"))
    table5 = {row.group: row for row in figures.table5}
    if table5["developed"].total_households:
        rows.append(ExperimentRow(
            "Table 5", "always-wired homes developed vs developing",
            "43% vs 12%",
            f"{table5['developed'].wired_fraction:.0%} vs "
            f"{table5['developing'].wired_fraction:.0%}"))
    ap_dev = figures.fig11[(Spectrum.GHZ_2_4, "developed")]
    ap_dvg = figures.fig11[(Spectrum.GHZ_2_4, "developing")]
    if ap_dev.n and ap_dvg.n:
        rows.append(ExperimentRow(
            "Fig. 11", "median neighbor APs developed vs developing",
            "~20 vs ~2", f"{ap_dev.median:.0f} vs {ap_dvg.median:.0f}"))
    if figures.fig12:
        rows.append(ExperimentRow(
            "Fig. 12", "most common manufacturer", "Apple",
            next(iter(figures.fig12))))
    return rows


def _section6_rows(figures: StudyFigures) -> List[ExperimentRow]:
    rows: List[ExperimentRow] = []
    weekday = figures.fig13["weekday"]
    weekend = figures.fig13["weekend"]
    if weekday.counts.sum() and weekend.counts.sum():
        rows.append(ExperimentRow(
            "Fig. 13", "weekday peak hour (local)", "evening",
            f"{weekday.peak_hour}:00"))
        rows.append(ExperimentRow(
            "Fig. 13", "weekday/weekend amplitude ratio", "> 1",
            round(figures.section6.weekday_weekend_amplitude_ratio, 2)))
    points = figures.fig15
    if points:
        over = usage.saturating_uplink_homes(points)
        rows.append(ExperimentRow(
            "Fig. 15", "homes with uplink utilization > 1", "2", len(over)))
        below_half = np.mean([p.downlink_utilization < 0.5 for p in points])
        rows.append(ExperimentRow(
            "Fig. 15", "homes under 50% downlink at p95", "most",
            f"{below_half:.0%}"))
    device_shares = figures.fig17
    if device_shares.size and device_shares[0] > 0:
        rows.append(ExperimentRow(
            "Fig. 17", "top / second device share", "~65% / ~20%",
            f"{device_shares[0]:.0%} / {device_shares[1]:.0%}"))
    domains = figures.fig19
    if domains.volume_share_by_rank.size and domains.volume_share_by_rank[0]:
        rows.append(ExperimentRow(
            "Fig. 19", "top domain volume share", "~38%",
            f"{domains.volume_share_by_rank[0]:.0%}"))
        rows.append(ExperimentRow(
            "Fig. 19", "whitelist byte coverage", "~65%",
            f"{domains.whitelist_byte_coverage:.0%}"))
    return rows


def report_from_figures(figures: StudyFigures) -> PaperReport:
    """Format one figure bundle into the paper-vs-measured report."""
    return PaperReport(
        datasets=figures.datasets,
        section4=_section4_rows(figures),
        section5=_section5_rows(figures),
        section6=_section6_rows(figures),
    )


def reproduce_all(data: Union[StudyData, StudyFigures, object]
                  ) -> PaperReport:
    """Compute the full paper-vs-measured report for one study.

    Accepts a :class:`StudyData` (exact in-RAM path), an already-computed
    :class:`StudyFigures` bundle, or a stream source (anything with an
    ``iter_dataset`` method, e.g. ``StoreSource``/``StudyDataSource``),
    which is analyzed in one pass at sketch memory.
    """
    if isinstance(data, StudyData):
        figures = compute_figures(data)
    elif isinstance(data, StudyFigures):
        figures = data
    elif hasattr(data, "iter_dataset"):
        figures = stream_figures(data)
    else:
        raise TypeError(
            "reproduce_all wants StudyData, StudyFigures, or a stream "
            f"source, got {type(data).__name__}")
    return report_from_figures(figures)


def render_report(report: PaperReport) -> str:
    """Render a :class:`PaperReport` as the full text document."""
    sections = [render_table(
        ["dataset", "kind", "routers", "countries"],
        [(row.name, row.kind, row.routers, row.countries)
         for row in report.datasets],
        title="Table 2 — data sets")]
    for title, rows in (("Section 4 — availability", report.section4),
                        ("Section 5 — infrastructure", report.section5),
                        ("Section 6 — usage", report.section6)):
        if rows:
            sections.append(render_comparison(title, [
                (f"{row.experiment}: {row.quantity}", row.paper,
                 row.measured) for row in rows]))
    return "\n\n".join(sections)
