"""One-call reproduction of the paper's whole evaluation.

:func:`reproduce_all` runs every Section 4/5/6 analysis over a collected
study and returns a structured :class:`PaperReport`;
:func:`render_report` turns it into the text document a reader would
diff against the paper.  The per-experiment benchmarks under
``benchmarks/`` remain the authoritative shape checks; this module is the
library-user-facing "give me everything" entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import availability, infrastructure, usage
from repro.core.datasets import DatasetSummary, StudyData, summarize_datasets
from repro.core.records import Spectrum
from repro.core.report import render_comparison, render_table


@dataclass(frozen=True)
class ExperimentRow:
    """One paper-vs-measured line of the final report."""

    experiment: str
    quantity: str
    paper: str
    measured: object


@dataclass
class PaperReport:
    """Every reproduced number, grouped by paper section."""

    datasets: List[DatasetSummary]
    section4: List[ExperimentRow] = field(default_factory=list)
    section5: List[ExperimentRow] = field(default_factory=list)
    section6: List[ExperimentRow] = field(default_factory=list)

    def rows(self) -> List[ExperimentRow]:
        """All rows in paper order."""
        return self.section4 + self.section5 + self.section6

    def by_experiment(self) -> Dict[str, List[ExperimentRow]]:
        """Rows grouped by experiment label (e.g. ``"Fig. 3"``)."""
        grouped: Dict[str, List[ExperimentRow]] = {}
        for row in self.rows():
            grouped.setdefault(row.experiment, []).append(row)
        return grouped


def _section4_rows(data: StudyData) -> List[ExperimentRow]:
    rows: List[ExperimentRow] = []
    dev = availability.downtime_rate_cdf(data, developed=True)
    dvg = availability.downtime_rate_cdf(data, developed=False)
    if dev.n and dvg.n:
        rows.append(ExperimentRow(
            "Fig. 3", "median downtimes/day developed vs developing",
            "~0.03 vs ~1", f"{dev.median:.3f} vs {dvg.median:.3f}"))
    dur_dev = availability.downtime_duration_cdf(data, developed=True)
    dur_dvg = availability.downtime_duration_cdf(data, developed=False)
    if dur_dev.n and dur_dvg.n:
        rows.append(ExperimentRow(
            "Fig. 4", "median downtime minutes developed vs developing",
            "~30 vs ~30 (longer tail)",
            f"{dur_dev.median / 60:.0f} vs {dur_dvg.median / 60:.0f}"))
    points = availability.downtimes_by_country(data)
    if points:
        worst = sorted(points, key=lambda p: -p.median_downtimes)[:2]
        rows.append(ExperimentRow(
            "Fig. 5", "two worst countries", "IN, PK",
            ", ".join(sorted(p.country_code for p in worst))))
    by_country = availability.median_availability_by_country(data)
    for code, paper in (("US", "98.25%"), ("IN", "76.01%"),
                        ("ZA", "85.57%")):
        if code in by_country:
            rows.append(ExperimentRow(
                "Table 3", f"median {code} availability", paper,
                f"{by_country[code]:.2%}"))
    return rows


def _section5_rows(data: StudyData) -> List[ExperimentRow]:
    rows: List[ExperimentRow] = []
    cdf = infrastructure.devices_per_home_cdf(data)
    if cdf.n:
        rows.append(ExperimentRow(
            "Fig. 7", "mean devices per home", "~7",
            round(float(np.mean(cdf.values)), 2)))
        rows.append(ExperimentRow(
            "Fig. 7", "P(>=5 devices)", "> 0.5",
            round(cdf.fraction_at_least(5), 2)))
    for developed, label in ((True, "developed"), (False, "developing")):
        medium = infrastructure.mean_connected_by_medium(data, developed)
        if medium["wired"].n:
            rows.append(ExperimentRow(
                "Fig. 8", f"wireless vs wired connected ({label})",
                "wireless > wired",
                f"{medium['wireless'].mean:.2f} vs "
                f"{medium['wired'].mean:.2f}"))
    table5 = {r.group: r
              for r in infrastructure.always_connected_households(data)}
    if table5["developed"].total_households:
        rows.append(ExperimentRow(
            "Table 5", "always-wired homes developed vs developing",
            "43% vs 12%",
            f"{table5['developed'].wired_fraction:.0%} vs "
            f"{table5['developing'].wired_fraction:.0%}"))
    ap_dev = infrastructure.neighbor_ap_cdf(data, Spectrum.GHZ_2_4, True)
    ap_dvg = infrastructure.neighbor_ap_cdf(data, Spectrum.GHZ_2_4, False)
    if ap_dev.n and ap_dvg.n:
        rows.append(ExperimentRow(
            "Fig. 11", "median neighbor APs developed vs developing",
            "~20 vs ~2", f"{ap_dev.median:.0f} vs {ap_dvg.median:.0f}"))
    histogram = infrastructure.vendor_histogram(data)
    if histogram:
        rows.append(ExperimentRow(
            "Fig. 12", "most common manufacturer", "Apple",
            next(iter(histogram))))
    return rows


def _section6_rows(data: StudyData) -> List[ExperimentRow]:
    rows: List[ExperimentRow] = []
    weekday = usage.diurnal_device_profile(data, weekend=False)
    weekend = usage.diurnal_device_profile(data, weekend=True)
    if weekday.counts.sum() and weekend.counts.sum():
        rows.append(ExperimentRow(
            "Fig. 13", "weekday peak hour (local)", "evening",
            f"{weekday.peak_hour}:00"))
        rows.append(ExperimentRow(
            "Fig. 13", "weekday/weekend amplitude ratio", "> 1",
            round(usage.diurnal_amplitude_ratio(data), 2)))
    points = usage.link_saturation(data)
    if points:
        over = usage.saturating_uplink_homes(points)
        rows.append(ExperimentRow(
            "Fig. 15", "homes with uplink utilization > 1", "2", len(over)))
        below_half = np.mean([p.downlink_utilization < 0.5 for p in points])
        rows.append(ExperimentRow(
            "Fig. 15", "homes under 50% downlink at p95", "most",
            f"{below_half:.0%}"))
    shares = usage.mean_device_share(data, ranks=2)
    if shares.size and shares[0] > 0:
        rows.append(ExperimentRow(
            "Fig. 17", "top / second device share", "~65% / ~20%",
            f"{shares[0]:.0%} / {shares[1]:.0%}"))
    domains = usage.domain_share(data)
    if domains.volume_share_by_rank.size and domains.volume_share_by_rank[0]:
        rows.append(ExperimentRow(
            "Fig. 19", "top domain volume share", "~38%",
            f"{domains.volume_share_by_rank[0]:.0%}"))
        rows.append(ExperimentRow(
            "Fig. 19", "whitelist byte coverage", "~65%",
            f"{domains.whitelist_byte_coverage:.0%}"))
    return rows


def reproduce_all(data: StudyData) -> PaperReport:
    """Compute the full paper-vs-measured report for one study."""
    return PaperReport(
        datasets=summarize_datasets(data),
        section4=_section4_rows(data),
        section5=_section5_rows(data),
        section6=_section6_rows(data),
    )


def render_report(report: PaperReport) -> str:
    """Render a :class:`PaperReport` as the full text document."""
    sections = [render_table(
        ["dataset", "kind", "routers", "countries"],
        [(row.name, row.kind, row.routers, row.countries)
         for row in report.datasets],
        title="Table 2 — data sets")]
    for title, rows in (("Section 4 — availability", report.section4),
                        ("Section 5 — infrastructure", report.section5),
                        ("Section 6 — usage", report.section6)):
        if rows:
            sections.append(render_comparison(title, [
                (f"{row.experiment}: {row.quantity}", row.paper,
                 row.measured) for row in rows]))
    return "\n\n".join(sections)
