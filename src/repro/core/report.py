"""Plain-text rendering of tables, CDFs, and profiles.

The benchmark harness regenerates each of the paper's tables and figures as
text: tables as aligned columns, CDFs and hour-of-day profiles as compact
(x, y) series with sparkline bars.  Everything here is presentation only —
no statistics are computed in this module.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

_BLOCKS = " ▁▂▃▄▅▆▇█"


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render rows as an aligned monospace table."""
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        widths = [max(w, len(cell)) for w, cell in zip(widths, row)]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if abs(value) >= 1000 or (abs(value) < 0.01 and value != 0):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_series(pairs: Sequence[Tuple[float, float]],
                  x_label: str = "x", y_label: str = "y",
                  title: Optional[str] = None,
                  max_points: int = 20) -> str:
    """Render (x, y) pairs as a table with a sparkline column."""
    if not pairs:
        return (title or "") + "\n(empty series)"
    if len(pairs) > max_points:
        step = len(pairs) / max_points
        pairs = [pairs[int(i * step)] for i in range(max_points)]
    ys = [y for _, y in pairs]
    lo, hi = min(ys), max(ys)
    span = (hi - lo) or 1.0
    rows = []
    for x, y in pairs:
        level = int((y - lo) / span * (len(_BLOCKS) - 1))
        rows.append((x, y, _BLOCKS[level] * 8))
    return render_table([x_label, y_label, "bar"], rows, title=title)


def render_cdf(cdf, x_label: str = "value",
               title: Optional[str] = None, points: int = 16) -> str:
    """Render an :class:`~repro.core.stats.EmpiricalCdf` as text."""
    return render_series(cdf.series(points), x_label=x_label,
                         y_label="CDF", title=title)


def render_profile(profile, title: Optional[str] = None) -> str:
    """Render an :class:`~repro.core.stats.HourOfDayProfile` as text."""
    pairs = [(float(hour), float(mean))
             for hour, mean in enumerate(profile.means)
             if mean == mean]  # skip NaN slots
    return render_series(pairs, x_label="hour", y_label="mean",
                         title=title, max_points=24)


def render_comparison(title: str,
                      rows: Iterable[Tuple[str, object, object]]) -> str:
    """Render paper-vs-measured rows (used by every bench)."""
    return render_table(["quantity", "paper", "measured"], rows, title=title)
