"""Section 6: usage characteristics of home networks.

Inputs: the Devices censuses (diurnal device presence), the Capacity data
set, and the Traffic data set (per-minute throughput, flow records).
Outputs: Figs. 13-20 and Table 6.

One methodological note: the paper's Fig. 13 uses the WiFi data set's
associated-client counts.  Our scanner, like the real one, backs off while
clients are associated — which biases scan-derived client counts — so the
diurnal profile here uses the hourly Devices censuses instead; they measure
the identical quantity (wireless devices associated, by local hour) without
the back-off bias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.datasets import StudyData, ThroughputSeries
from repro.core.records import OBFUSCATED_DOMAIN, FlowRecord
from repro.core.stats import (
    EmpiricalCdf,
    HourOfDayProfile,
    mean_ranked_shares,
    shares,
)
MBPS = 1e6


def _traffic_router_ids(data: StudyData,
                        router_ids: Optional[Iterable[str]]) -> List[str]:
    if router_ids is not None:
        return sorted(set(router_ids))
    return data.qualifying_traffic_routers()


# -- Fig. 13: diurnal device presence ----------------------------------------------

def diurnal_device_profile(data: StudyData, weekend: bool) -> HourOfDayProfile:
    """Fig. 13: mean wireless devices online per local hour of day."""
    hours: List[int] = []
    values: List[float] = []
    for sample in data.device_counts:
        calendar = data.calendar_for(sample.router_id)
        if calendar is None:
            continue
        if calendar.is_weekend(sample.timestamp) != weekend:
            continue
        hours.append(calendar.hour_of_day(sample.timestamp))
        values.append(float(sample.wireless))
    return HourOfDayProfile.from_samples(hours, values)


def diurnal_amplitude_ratio(data: StudyData) -> float:
    """How much more diurnal weekdays are than weekends (Table 6, row 1).

    Ratio of weekday to weekend peak-to-trough amplitude; > 1 means the
    weekday profile swings harder.
    """
    weekday = diurnal_device_profile(data, weekend=False).amplitude()
    weekend = diurnal_device_profile(data, weekend=True).amplitude()
    if weekend == 0:
        return float("inf")
    return weekday / weekend


# -- Figs. 14-16: link utilization ---------------------------------------------------

def median_capacity(data: StudyData,
                    router_id: str) -> Optional[Tuple[float, float]]:
    """Median (down, up) capacity estimate in Mbps for one router."""
    down = [m.downstream_mbps for m in data.capacity
            if m.router_id == router_id]
    up = [m.upstream_mbps for m in data.capacity if m.router_id == router_id]
    if not down:
        return None
    return (float(np.median(down)), float(np.median(up)))


@dataclass(frozen=True)
class UtilizationTimeseries:
    """Fig. 14 / Fig. 16 contents for one home."""

    router_id: str
    series: ThroughputSeries
    capacity_down_mbps: float
    capacity_up_mbps: float

    def downlink_utilization(self) -> np.ndarray:
        """Per-minute downlink peak as a fraction of estimated capacity."""
        return self.series.down_bps / (self.capacity_down_mbps * MBPS)

    def uplink_utilization(self) -> np.ndarray:
        """Per-minute uplink peak as a fraction of estimated capacity."""
        return self.series.up_bps / (self.capacity_up_mbps * MBPS)


def utilization_timeseries(data: StudyData,
                           router_id: str) -> Optional[UtilizationTimeseries]:
    """Join one home's throughput series with its capacity estimates."""
    series = data.throughput.get(router_id)
    capacity = median_capacity(data, router_id)
    if series is None or capacity is None:
        return None
    down, up = capacity
    return UtilizationTimeseries(router_id=router_id, series=series,
                                 capacity_down_mbps=down,
                                 capacity_up_mbps=up)


@dataclass(frozen=True)
class SaturationPoint:
    """One home's point in the Fig. 15 scatter."""

    router_id: str
    capacity_down_mbps: float
    capacity_up_mbps: float
    downlink_utilization: float
    uplink_utilization: float


def link_saturation(data: StudyData, percentile: float = 95.0,
                    router_ids: Optional[Iterable[str]] = None,
                    ) -> List[SaturationPoint]:
    """Fig. 15: 95th-percentile utilization vs capacity, per home.

    Only active minutes count (some device exchanging traffic), matching
    Section 6.2's methodology.
    """
    points: List[SaturationPoint] = []
    for rid in _traffic_router_ids(data, router_ids):
        joined = utilization_timeseries(data, rid)
        if joined is None:
            continue
        active = joined.series.active_mask()
        if not np.any(active):
            continue
        down_util = joined.downlink_utilization()[active]
        up_util = joined.uplink_utilization()[active]
        points.append(SaturationPoint(
            router_id=rid,
            capacity_down_mbps=joined.capacity_down_mbps,
            capacity_up_mbps=joined.capacity_up_mbps,
            downlink_utilization=float(np.percentile(down_util, percentile)),
            uplink_utilization=float(np.percentile(up_util, percentile)),
        ))
    return points


def saturating_uplink_homes(points: Sequence[SaturationPoint]) -> List[str]:
    """Homes whose 95th-pct uplink utilization exceeds capacity (Fig. 16)."""
    return [p.router_id for p in points if p.uplink_utilization > 1.0]


# -- Fig. 17: per-device shares --------------------------------------------------------

def device_share_per_home(data: StudyData,
                          router_ids: Optional[Iterable[str]] = None,
                          ) -> Dict[str, np.ndarray]:
    """Per home: descending per-device byte shares from flow records."""
    wanted = set(_traffic_router_ids(data, router_ids))
    per_device: Dict[str, Dict[str, float]] = {}
    for flow in data.flows:
        if flow.router_id not in wanted:
            continue
        home = per_device.setdefault(flow.router_id, {})
        home[flow.device_mac] = home.get(flow.device_mac, 0.0) \
            + flow.bytes_total
    return {rid: shares(list(macs.values()))
            for rid, macs in per_device.items()}


def mean_device_share(data: StudyData, ranks: int = 5,
                      router_ids: Optional[Iterable[str]] = None) -> np.ndarray:
    """Fig. 17 summary: mean share of the rank-k device across homes."""
    per_home = device_share_per_home(data, router_ids)
    return mean_ranked_shares(per_home.values(), ranks)


# -- Figs. 18-19: domain shares ----------------------------------------------------------

def _domain_totals(flows: Iterable[FlowRecord],
                   include_obfuscated: bool) -> Dict[str, Dict[str, float]]:
    """domain → {"bytes": ..., "connections": ...} for a flow stream."""
    totals: Dict[str, Dict[str, float]] = {}
    for flow in flows:
        if flow.domain == OBFUSCATED_DOMAIN and not include_obfuscated:
            continue
        entry = totals.setdefault(flow.domain,
                                  {"bytes": 0.0, "connections": 0.0})
        entry["bytes"] += flow.bytes_total
        entry["connections"] += 1.0
    return totals


def domain_rankings(data: StudyData,
                    router_ids: Optional[Iterable[str]] = None,
                    by: str = "bytes") -> Dict[str, List[Tuple[str, float]]]:
    """Per home: whitelisted domains ranked by bytes or connections."""
    if by not in ("bytes", "connections"):
        raise ValueError(f"rank key must be bytes/connections, got {by!r}")
    wanted = set(_traffic_router_ids(data, router_ids))
    per_home: Dict[str, List[FlowRecord]] = {}
    for flow in data.flows:
        if flow.router_id in wanted:
            per_home.setdefault(flow.router_id, []).append(flow)
    rankings: Dict[str, List[Tuple[str, float]]] = {}
    for rid, flows in per_home.items():
        totals = _domain_totals(flows, include_obfuscated=False)
        ranked = sorted(((name, t[by]) for name, t in totals.items()),
                        key=lambda kv: -kv[1])
        rankings[rid] = ranked
    return rankings


def domain_top_counts(data: StudyData,
                      router_ids: Optional[Iterable[str]] = None,
                      ) -> Dict[str, Tuple[int, int]]:
    """Fig. 18: per domain, #homes where it ranks top-5 / top-10 by volume."""
    counts: Dict[str, List[int]] = {}
    for ranked in domain_rankings(data, router_ids, by="bytes").values():
        for rank, (name, _volume) in enumerate(ranked[:10]):
            entry = counts.setdefault(name, [0, 0])
            if rank < 5:
                entry[0] += 1
            entry[1] += 1
    ordered = sorted(counts.items(), key=lambda kv: (-kv[1][0], -kv[1][1]))
    return {name: (top5, top10) for name, (top5, top10) in ordered}


@dataclass(frozen=True)
class DomainShareSummary:
    """Fig. 19's three panels in numbers."""

    #: Mean share of whitelisted bytes carried by the rank-k volume domain.
    volume_share_by_rank: np.ndarray
    #: Mean share of connections made to the rank-k connection domain.
    connection_share_by_rank: np.ndarray
    #: Mean share of connections made to the rank-k *volume* domain
    #: (Fig. 19c: the volume-top domain holds few connections).
    connections_of_volume_ranked: np.ndarray
    #: Mean fraction of all bytes that went to whitelisted domains (~65%).
    whitelist_byte_coverage: float


def domain_share(data: StudyData, ranks: int = 10,
                 router_ids: Optional[Iterable[str]] = None,
                 ) -> DomainShareSummary:
    """Fig. 19: per-rank domain shares of volume and connections."""
    wanted = set(_traffic_router_ids(data, router_ids))
    per_home: Dict[str, List[FlowRecord]] = {}
    for flow in data.flows:
        if flow.router_id in wanted:
            per_home.setdefault(flow.router_id, []).append(flow)

    volume_shares: List[np.ndarray] = []
    connection_shares: List[np.ndarray] = []
    conn_of_volume: List[np.ndarray] = []
    coverages: List[float] = []
    for flows in per_home.values():
        visible = _domain_totals(flows, include_obfuscated=False)
        everything = _domain_totals(flows, include_obfuscated=True)
        if not visible:
            continue
        total_bytes_all = sum(t["bytes"] for t in everything.values())
        total_bytes_wl = sum(t["bytes"] for t in visible.values())
        total_conns_wl = sum(t["connections"] for t in visible.values())
        if total_bytes_all > 0:
            coverages.append(total_bytes_wl / total_bytes_all)
        by_volume = sorted(visible.values(), key=lambda t: -t["bytes"])
        by_conns = sorted(visible.values(), key=lambda t: -t["connections"])
        if total_bytes_wl > 0:
            volume_shares.append(np.asarray(
                [t["bytes"] / total_bytes_wl for t in by_volume]))
        if total_conns_wl > 0:
            connection_shares.append(np.asarray(
                [t["connections"] / total_conns_wl for t in by_conns]))
            conn_of_volume.append(np.asarray(
                [t["connections"] / total_conns_wl for t in by_volume]))

    return DomainShareSummary(
        volume_share_by_rank=mean_ranked_shares(volume_shares, ranks),
        connection_share_by_rank=mean_ranked_shares(connection_shares, ranks),
        connections_of_volume_ranked=mean_ranked_shares(conn_of_volume, ranks),
        whitelist_byte_coverage=(float(np.mean(coverages))
                                 if coverages else float("nan")),
    )


# -- Fig. 20: per-device domain mixes -------------------------------------------------------

def device_domain_profile(data: StudyData, router_id: str,
                          device_mac: str,
                          top: int = 8) -> List[Tuple[str, float]]:
    """Fig. 20: one device's top domains by byte share."""
    totals: Dict[str, float] = {}
    grand_total = 0.0
    for flow in data.flows:
        if flow.router_id != router_id or flow.device_mac != device_mac:
            continue
        totals[flow.domain] = totals.get(flow.domain, 0.0) + flow.bytes_total
        grand_total += flow.bytes_total
    if grand_total == 0:
        return []
    ranked = sorted(totals.items(), key=lambda kv: -kv[1])[:top]
    return [(name, volume / grand_total) for name, volume in ranked]


def devices_in_traffic_home(data: StudyData, router_id: str,
                            min_bytes: float = 100e3) -> List[str]:
    """Device MACs in one traffic home that moved at least *min_bytes*."""
    totals: Dict[str, float] = {}
    for flow in data.flows:
        if flow.router_id == router_id:
            totals[flow.device_mac] = totals.get(flow.device_mac, 0.0) \
                + flow.bytes_total
    return sorted((mac for mac, total in totals.items()
                   if total >= min_bytes),
                  key=lambda mac: -totals[mac])


# -- Section 7: usage by country --------------------------------------------------------------

@dataclass(frozen=True)
class CountryUsage:
    """Per-country usage summary for the Section 7 expansion."""

    country_code: str
    homes: int
    total_bytes: float
    mean_daily_bytes_per_home: float
    top_device_share: float
    top_domain_volume_share: float
    whitelist_byte_coverage: float


def usage_by_country(data: StudyData,
                     min_bytes: float = 1e6) -> List[CountryUsage]:
    """Compare Section 6 statistics across countries with Traffic homes.

    The paper's Traffic data set was US-only; Section 7 proposed expanding
    it ("how usage patterns ... differ by country").  With international
    consents enabled in the deployment, this computes the comparison.
    Homes need only *min_bytes* to count — international cohorts are small,
    so the paper's 100 MB bar would leave single-home countries.
    """
    totals = data.traffic_bytes_by_router()
    by_country: Dict[str, List[str]] = {}
    for rid, total in totals.items():
        info = data.routers.get(rid)
        if info is None or total < min_bytes:
            continue
        by_country.setdefault(info.country_code, []).append(rid)

    window_days = max(
        (data.windows.traffic[1] - data.windows.traffic[0]) / 86400.0, 1e-6)
    results: List[CountryUsage] = []
    for code, rids in sorted(by_country.items()):
        shares = mean_ranked_shares(
            device_share_per_home(data, router_ids=rids).values(), ranks=1)
        domains = domain_share(data, router_ids=rids)
        country_bytes = sum(totals[rid] for rid in rids)
        results.append(CountryUsage(
            country_code=code,
            homes=len(rids),
            total_bytes=country_bytes,
            mean_daily_bytes_per_home=country_bytes / len(rids) / window_days,
            top_device_share=float(shares[0]) if shares.size else float("nan"),
            top_domain_volume_share=(
                float(domains.volume_share_by_rank[0])
                if domains.volume_share_by_rank.size else float("nan")),
            whitelist_byte_coverage=domains.whitelist_byte_coverage,
        ))
    results.sort(key=lambda c: -c.total_bytes)
    return results


# -- Table 6 -----------------------------------------------------------------------------------

@dataclass(frozen=True)
class Section6Highlights:
    """The Table 6 claims, as measured."""

    weekday_weekend_amplitude_ratio: float
    homes_with_saturated_uplink: int
    top_device_mean_share: float
    top_domain_mean_volume_share: float
    top_domain_mean_connection_share: float
    whitelist_byte_coverage: float


def section6_highlights(data: StudyData) -> Section6Highlights:
    """Compute Table 6 from the Devices + Capacity + Traffic data sets."""
    points = link_saturation(data)
    device_shares = mean_device_share(data, ranks=3)
    domains = domain_share(data)
    return Section6Highlights(
        weekday_weekend_amplitude_ratio=diurnal_amplitude_ratio(data),
        homes_with_saturated_uplink=len(saturating_uplink_homes(points)),
        top_device_mean_share=float(device_shares[0]) if device_shares.size
        else float("nan"),
        top_domain_mean_volume_share=float(domains.volume_share_by_rank[0])
        if domains.volume_share_by_rank.size else float("nan"),
        top_domain_mean_connection_share=float(
            domains.connection_share_by_rank[0])
        if domains.connection_share_by_rank.size else float("nan"),
        whitelist_byte_coverage=domains.whitelist_byte_coverage,
    )
