"""Record schemas for the six BISmark data sets (paper Section 3.2).

Every collector in :mod:`repro.firmware` emits these records, the collection
server stores them, and the analysis modules consume them.  The schemas
deliberately contain only what the paper says was collected — e.g. flow
records carry an *obfuscated* device MAC and a domain that is either
whitelisted or the ``OBFUSCATED_DOMAIN`` sentinel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

#: Sentinel domain used when a DNS name was not on the whitelist.  The
#: firmware replaces the name *before* the record leaves the home.
OBFUSCATED_DOMAIN = "(obfuscated)"


class Spectrum(enum.Enum):
    """The two wireless bands the BISmark routers operate (802.11gn/an)."""

    GHZ_2_4 = "2.4GHz"
    GHZ_5 = "5GHz"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Medium(enum.Enum):
    """How a device attaches to the gateway."""

    WIRED = "wired"
    WIRELESS = "wireless"


@dataclass(frozen=True)
class RouterInfo:
    """Deployment metadata for one gateway (who/where, not measurements)."""

    router_id: str
    country_code: str
    developed: bool
    tz_offset_hours: float
    #: Per-capita GDP (PPP, international dollars) of the router's country.
    gdp_ppp_per_capita: float

    def __post_init__(self) -> None:
        if not self.router_id:
            raise ValueError("router_id must be non-empty")
        if self.gdp_ppp_per_capita <= 0:
            raise ValueError("gdp_ppp_per_capita must be positive")


@dataclass(frozen=True)
class Heartbeat:
    """One ~1-minute keepalive received by the central server.

    A heartbeat proves the router was powered on, its access link was up,
    and the path to the server worked at ``timestamp``.  Heartbeats are not
    retransmitted (Section 3.2.2), so absence is ambiguous — resolving that
    ambiguity is the availability analysis's job.
    """

    router_id: str
    timestamp: float


@dataclass(frozen=True)
class UptimeReport:
    """12-hourly report of seconds since the router last booted."""

    router_id: str
    timestamp: float
    uptime_seconds: float

    def __post_init__(self) -> None:
        if self.uptime_seconds < 0:
            raise ValueError("uptime_seconds cannot be negative")

    @property
    def boot_time(self) -> float:
        """Epoch at which this router last powered on."""
        return self.timestamp - self.uptime_seconds


@dataclass(frozen=True)
class CapacityMeasurement:
    """12-hourly ShaperProbe-style estimate of access-link capacity (Mbps)."""

    router_id: str
    timestamp: float
    downstream_mbps: float
    upstream_mbps: float

    def __post_init__(self) -> None:
        if self.downstream_mbps < 0 or self.upstream_mbps < 0:
            raise ValueError("capacity estimates cannot be negative")


@dataclass(frozen=True)
class DeviceCountSample:
    """Hourly census: devices on Ethernet ports and per wireless band."""

    router_id: str
    timestamp: float
    wired: int
    wireless_2_4: int
    wireless_5: int

    def __post_init__(self) -> None:
        if min(self.wired, self.wireless_2_4, self.wireless_5) < 0:
            raise ValueError("device counts cannot be negative")

    @property
    def wireless(self) -> int:
        """Total wireless devices across both bands."""
        return self.wireless_2_4 + self.wireless_5

    @property
    def total(self) -> int:
        """All devices connected at this sample."""
        return self.wired + self.wireless


@dataclass(frozen=True)
class DeviceRosterEntry:
    """One device ever seen by a gateway (Devices data set, non-PII).

    The MAC is anonymized (lower 24 bits hashed) but keeps its OUI, so the
    analysis can resolve the manufacturer (Fig. 12) without identifying the
    device.  ``always_connected`` records whether the device was associated
    whenever the router was powered across the whole Devices window — the
    paper's Table 5 "never disconnects for over five weeks" criterion.
    """

    router_id: str
    device_mac: str
    medium: Medium
    spectrum: Optional[Spectrum]
    first_seen: float
    last_seen: float
    always_connected: bool

    def __post_init__(self) -> None:
        if self.last_seen < self.first_seen:
            raise ValueError("last_seen cannot precede first_seen")
        if self.medium is Medium.WIRED and self.spectrum is not None:
            raise ValueError("wired devices have no spectrum")


@dataclass(frozen=True)
class WifiScanSample:
    """~10-minute scan of one channel for neighboring APs.

    ``channel`` records which channel was scanned; the deployed firmware
    only scanned the configured channel (11 on 2.4 GHz, 36 on 5 GHz), but
    the full-spectrum extension sweeps them all.  0 means unknown (legacy
    records).
    """

    router_id: str
    timestamp: float
    spectrum: Spectrum
    neighbor_aps: int
    associated_clients: int
    channel: int = 0

    def __post_init__(self) -> None:
        if self.neighbor_aps < 0 or self.associated_clients < 0:
            raise ValueError("scan counts cannot be negative")
        if self.channel < 0:
            raise ValueError("channel cannot be negative")


@dataclass(frozen=True)
class FlowRecord:
    """One sampled Internet-bound flow (Traffic data set, consented homes).

    ``device_mac`` has its lower 24 bits hashed; ``domain`` is a whitelisted
    name or :data:`OBFUSCATED_DOMAIN`; ``remote_ip`` is the deterministic
    pseudonym from :func:`repro.netutils.ip.obfuscate_ipv4`.
    """

    router_id: str
    timestamp: float
    device_mac: str
    domain: str
    remote_ip: int
    port: int
    application: str
    bytes_up: float
    bytes_down: float
    duration_seconds: float

    def __post_init__(self) -> None:
        if self.bytes_up < 0 or self.bytes_down < 0:
            raise ValueError("flow byte counts cannot be negative")
        if self.duration_seconds < 0:
            raise ValueError("flow duration cannot be negative")

    @property
    def bytes_total(self) -> float:
        """Bytes in both directions."""
        return self.bytes_up + self.bytes_down


@dataclass(frozen=True)
class ThroughputSample:
    """Per-minute traffic sample: the peak 1-second throughput in the minute.

    This is exactly the statistic the paper computes for Section 6.2 ("the
    maximum per-second throughput every minute"), recorded at the gateway.
    """

    router_id: str
    timestamp: float
    up_bps: float
    down_bps: float

    def __post_init__(self) -> None:
        if self.up_bps < 0 or self.down_bps < 0:
            raise ValueError("throughput cannot be negative")


@dataclass(frozen=True)
class DnsRecord:
    """A sampled A/CNAME response, domain whitelisted-or-obfuscated."""

    router_id: str
    timestamp: float
    device_mac: str
    domain: str
    record_type: str
    #: Resolved (obfuscated) address for A records; None for CNAMEs.
    address: Optional[int] = None

    def __post_init__(self) -> None:
        if self.record_type not in ("A", "CNAME"):
            raise ValueError(f"unsupported DNS record type {self.record_type!r}")
