"""One-pass streaming analytics: every Section 4-6 figure at O(sketch) memory.

The exact analysis functions each take a fully-materialized
:class:`~repro.core.datasets.StudyData` and walk its record lists — fine
at paper scale, an O(study) memory wall at a million homes.  This module
is the streaming twin: :func:`stream_figures` routes each dataset's
record iterator through the per-figure accumulators of
:mod:`repro.core.sketches` in a single pass per dataset and emits a
:class:`StudyFigures` holding the same result dataclasses the exact
functions return.  :func:`compute_figures` computes the identical bundle
with the exact functions, so the in-RAM pipeline stays the oracle the
streamed results are asserted against.

Tolerance policy (asserted in ``tests/test_streaming.py`` and CI):

* **bitwise-equal** — integer counts and sets (Table 2, Table 5, ports
  fractions, Fig. 12, Fig. 18, appliance counts), ranked shares
  (Figs. 17/19, via the shared :class:`RankedShareAccumulator`), diurnal
  profiles (Fig. 13, via shared ``HourOfDayProfile.from_sums``),
  saturation points (Fig. 15), and — below the sketch's exact threshold
  — every quantile statistic (the sketch delegates to a real
  ``EmpiricalCdf``);
* **~1e-9 relative** — means/stds computed by Welford instead of numpy
  pairwise summation (Figs. 8/9, port means), and per-country medians
  (``np.median`` vs ``np.quantile(.., 0.5)`` rounding);
* **rank tolerance** (:data:`~repro.core.sketches.QUANTILE_RANK_TOLERANCE`)
  — quantiles of a *compressed* sketch, which only engages past
  thousands of samples per distribution.

Memory: per-record iterators plus per-home state flushed at group
boundaries (records are sorted by router), per-country/group sketches,
and per-traffic-home aggregates bounded by the consent count — never a
``StoreContents`` list.  The DNS dataset feeds no figure and is not read.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro import perf, trace
from repro.core import availability, infrastructure, usage
from repro.core.availability import CountryDowntime, Section4Highlights
from repro.core.datasets import (
    TRAFFIC_MIN_BYTES,
    CalendarPool,
    DatasetSummary,
    HeartbeatLog,
    StudyData,
    ThroughputSeries,
    summarize_datasets,
)
from repro.core.infrastructure import (
    AlwaysConnectedRow,
    PortUsage,
    Section5Highlights,
)
from repro.core.records import (
    OBFUSCATED_DOMAIN,
    Medium,
    RouterInfo,
    Spectrum,
)
from repro.core.sketches import (
    DEFAULT_EXACT_THRESHOLD,
    QuantileSketch,
    RankedShareAccumulator,
    StreamingHourProfile,
    StreamingMeanSpread,
)
from repro.core.stats import HourOfDayProfile, MeanWithSpread, shares
from repro.core.usage import (
    DomainShareSummary,
    SaturationPoint,
    Section6Highlights,
)
from repro.netutils.mac import parse_mac
from repro.simulation.timebase import StudyWindows
from repro.simulation.vendors import BISMARK_OUI, vendor_category

GROUPS = ("developed", "developing")
SPECTRA = (Spectrum.GHZ_2_4, Spectrum.GHZ_5)


# -- stream sources ----------------------------------------------------------------

class StudyDataSource:
    """Stream adapter over an in-RAM :class:`StudyData` (oracle parity)."""

    _DATASETS = {
        "uptime": "uptime_reports",
        "capacity": "capacity",
        "device_counts": "device_counts",
        "roster": "roster",
        "wifi_scans": "wifi_scans",
        "flows": "flows",
        "dns": "dns",
    }

    def __init__(self, data: StudyData):
        self.data = data

    @property
    def routers(self) -> Dict[str, RouterInfo]:
        return self.data.routers

    @property
    def windows(self) -> StudyWindows:
        return self.data.windows

    def iter_dataset(self, name: str) -> Iterator:
        return iter(getattr(self.data, self._DATASETS[name]))

    def iter_heartbeats(self) -> Iterator[HeartbeatLog]:
        return iter(self.data.heartbeats.values())

    def iter_throughput(self) -> Iterator[ThroughputSeries]:
        return iter(self.data.throughput.values())


class StoreSource:
    """Stream adapter over a live RecordStore — never materializes.

    Reads through the backend's ``iter_*`` API; ``finalize()`` (which
    would build ``StoreContents`` lists) is never called.
    """

    def __init__(self, store) -> None:
        self.store = store

    @property
    def routers(self) -> Dict[str, RouterInfo]:
        return self.store.routers

    @property
    def windows(self) -> StudyWindows:
        return self.store.windows

    def iter_dataset(self, name: str) -> Iterator:
        return self.store.backend.iter_dataset(name)

    def iter_heartbeats(self) -> Iterator[HeartbeatLog]:
        return self.store.backend.iter_heartbeats()

    def iter_throughput(self) -> Iterator[ThroughputSeries]:
        return self.store.backend.iter_throughput()


# -- the figure bundle -------------------------------------------------------------

@dataclass
class StudyFigures:
    """Every Section 4-6 figure/table, from either analysis path.

    CDF-shaped entries hold an :class:`~repro.core.stats.EmpiricalCdf`
    (exact path) or a :class:`~repro.core.sketches.QuantileSketch`
    (stream path); both expose ``n``, ``mean``, ``quantile``, ``median``,
    ``fraction_at_most/least``, and ``series``.
    """

    datasets: List[DatasetSummary]
    #: Fig. 3/4 — downtime rate and duration CDFs per development group.
    fig3: Dict[str, object]
    fig4: Dict[str, object]
    #: Fig. 5 — per-country downtime medians vs GDP (min 3 routers).
    fig5: List[CountryDowntime]
    #: Section 4.2 — median availability per country.
    table3_availability: Dict[str, float]
    section4: Section4Highlights
    #: Fig. 7 — unique devices per home CDF.
    fig7: object
    #: Fig. 8/9 — mean connected devices by medium / band, per group.
    fig8: Dict[str, Dict[str, MeanWithSpread]]
    fig9: Dict[str, Dict[str, MeanWithSpread]]
    #: Fig. 10 — unique devices per band CDFs.
    fig10: Dict[Spectrum, object]
    table5: List[AlwaysConnectedRow]
    ports: PortUsage
    #: Fig. 11 — neighbor-AP CDFs keyed (band, "all"/"developed"/"developing").
    fig11: Dict[Tuple[Spectrum, str], object]
    #: Fig. 12 — vendor histogram, descending.
    fig12: Dict[str, int]
    section5: Section5Highlights
    #: Fig. 13 — diurnal profiles keyed "weekday"/"weekend".
    fig13: Dict[str, HourOfDayProfile]
    fig15: List[SaturationPoint]
    #: Fig. 17 — mean per-device byte share by rank (10 ranks).
    fig17: np.ndarray
    fig18: Dict[str, Tuple[int, int]]
    fig19: DomainShareSummary
    section6: Section6Highlights
    #: Records the stream path consumed (0 on the exact path).
    records_streamed: int = 0


#: Rank depth of :attr:`StudyFigures.fig17`; slices reproduce any
#: smaller ``mean_device_share(..., ranks=k)`` bitwise (per-rank sums
#: are independent).
DEVICE_SHARE_RANKS = 10


def compute_figures(data: StudyData) -> StudyFigures:
    """The exact in-RAM path: every figure via the Section 4-6 functions."""
    return StudyFigures(
        datasets=summarize_datasets(data),
        fig3={"developed": availability.downtime_rate_cdf(data, True),
              "developing": availability.downtime_rate_cdf(data, False)},
        fig4={"developed": availability.downtime_duration_cdf(data, True),
              "developing": availability.downtime_duration_cdf(data, False)},
        fig5=availability.downtimes_by_country(data),
        table3_availability=availability.median_availability_by_country(data),
        section4=availability.section4_highlights(data),
        fig7=infrastructure.devices_per_home_cdf(data),
        fig8={"developed": infrastructure.mean_connected_by_medium(data, True),
              "developing":
                  infrastructure.mean_connected_by_medium(data, False)},
        fig9={"developed":
                  infrastructure.mean_connected_by_spectrum(data, True),
              "developing":
                  infrastructure.mean_connected_by_spectrum(data, False)},
        fig10={spectrum:
                   infrastructure.unique_devices_per_spectrum_cdf(data,
                                                                  spectrum)
               for spectrum in SPECTRA},
        table5=infrastructure.always_connected_households(data),
        ports=infrastructure.ethernet_port_usage(data),
        fig11={(spectrum, label):
                   infrastructure.neighbor_ap_cdf(data, spectrum, developed)
               for spectrum in SPECTRA
               for label, developed in (("all", None), ("developed", True),
                                        ("developing", False))},
        fig12=infrastructure.vendor_histogram(data),
        section5=infrastructure.section5_highlights(data),
        fig13={"weekday": usage.diurnal_device_profile(data, weekend=False),
               "weekend": usage.diurnal_device_profile(data, weekend=True)},
        fig15=usage.link_saturation(data),
        fig17=usage.mean_device_share(data, ranks=DEVICE_SHARE_RANKS),
        fig18=usage.domain_top_counts(data),
        fig19=usage.domain_share(data),
        section6=usage.section6_highlights(data),
    )


# -- the streaming driver ----------------------------------------------------------

@dataclass
class _CountryStats:
    """Per-country Section 4 accumulators (Fig. 5 + Table 3)."""

    gdp: float = float("nan")
    developed: bool = False
    routers: int = 0
    counts: QuantileSketch = None  # type: ignore[assignment]
    durations: QuantileSketch = None  # type: ignore[assignment]
    avail: QuantileSketch = None  # type: ignore[assignment]


@dataclass
class _HomeFlows:
    """One traffic home's flow aggregates (bounded by consent count)."""

    device_bytes: Dict[str, float] = field(default_factory=dict)
    visible: Dict[str, Dict[str, float]] = field(default_factory=dict)
    everything: Dict[str, Dict[str, float]] = field(default_factory=dict)


def _by_router(records) -> Iterator[Tuple[str, Iterator]]:
    """Group a (router_id, ...)-sorted record stream by home."""
    return itertools.groupby(records, key=lambda r: r.router_id)


class _StreamingAnalysis:
    """Single-pass driver state; one method per dataset pass."""

    def __init__(self, source, compression: int, exact_threshold: int,
                 normalize_days: float):
        self.source = source
        self.routers: Dict[str, RouterInfo] = source.routers
        self.windows: StudyWindows = source.windows
        self.calendars = CalendarPool(self.routers)
        self.normalize_days = normalize_days
        self._compression = compression
        self._exact_threshold = exact_threshold
        self.records = 0

        # Table 2 distinct-router sets (O(#routers), the irreducible
        # working set — Table 2 counts distinct ids by definition).
        self.ids: Dict[str, set] = {name: set() for name in (
            "heartbeats", "capacity", "uptime", "devices", "wifi",
            "flows", "throughput")}

        # Section 4
        self.fig3 = {group: self._sketch() for group in GROUPS}
        self.fig4 = {group: self._sketch() for group in GROUPS}
        self.country: Dict[str, _CountryStats] = {}
        self.appliance_count = 0

        # Section 5
        self.fig7 = self._sketch()
        self.fig8 = {group: {"wired": StreamingMeanSpread(),
                             "wireless": StreamingMeanSpread()}
                     for group in GROUPS}
        self.fig9 = {group: {"2.4GHz": StreamingMeanSpread(),
                             "5GHz": StreamingMeanSpread()}
                     for group in GROUPS}
        self.fig10 = {spectrum: self._sketch() for spectrum in SPECTRA}
        self.table5_totals = {group: 0 for group in GROUPS}
        self.table5_wired = {group: 0 for group in GROUPS}
        self.table5_wireless = {group: 0 for group in GROUPS}
        self.port_homes = 0
        self.port_all_four = 0
        self.port_at_most_two = 0
        self.port_mean = StreamingMeanSpread()
        self.fig11 = {(spectrum, label): self._sketch()
                      for spectrum in SPECTRA
                      for label in ("all",) + GROUPS}
        self.fig12: Dict[str, int] = {}

        # Section 6
        self.fig13 = {"weekday": StreamingHourProfile(),
                      "weekend": StreamingHourProfile()}
        self.saturation: Dict[str, SaturationPoint] = {}
        self.flow_totals: Dict[str, float] = {}
        self.bytes_by_mac: Dict[str, float] = {}
        self.home_flows: Dict[str, _HomeFlows] = {}
        self.capacity_medians: Dict[str, Tuple[float, float]] = {}
        self.qualifying: set = set()

    def _sketch(self) -> QuantileSketch:
        return QuantileSketch(self._compression, self._exact_threshold)

    def _group(self, router_id: str) -> Optional[str]:
        info = self.routers.get(router_id)
        if info is None:
            return None
        return "developed" if info.developed else "developing"

    # -- passes (run order matters: flows first fixes the qualifying set) --------

    def pass_flows(self) -> None:
        for rid, group in _by_router(self.source.iter_dataset("flows")):
            agg = self.home_flows.setdefault(rid, _HomeFlows())
            for flow in group:
                self.records += 1
                self.ids["flows"].add(rid)
                self.flow_totals[rid] = self.flow_totals.get(rid, 0.0) \
                    + flow.bytes_total
                self.bytes_by_mac[flow.device_mac] = \
                    self.bytes_by_mac.get(flow.device_mac, 0.0) \
                    + flow.bytes_total
                agg.device_bytes[flow.device_mac] = \
                    agg.device_bytes.get(flow.device_mac, 0.0) \
                    + flow.bytes_total
                # Mirror usage._domain_totals' accumulation exactly.
                if flow.domain != OBFUSCATED_DOMAIN:
                    entry = agg.visible.setdefault(
                        flow.domain, {"bytes": 0.0, "connections": 0.0})
                    entry["bytes"] += flow.bytes_total
                    entry["connections"] += 1.0
                entry = agg.everything.setdefault(
                    flow.domain, {"bytes": 0.0, "connections": 0.0})
                entry["bytes"] += flow.bytes_total
                entry["connections"] += 1.0
        self.qualifying = {rid for rid, total in self.flow_totals.items()
                           if total >= TRAFFIC_MIN_BYTES}

    def pass_capacity(self) -> None:
        for rid, group in _by_router(self.source.iter_dataset("capacity")):
            down: List[float] = []
            up: List[float] = []
            for measurement in group:
                self.records += 1
                down.append(measurement.downstream_mbps)
                up.append(measurement.upstream_mbps)
            self.ids["capacity"].add(rid)
            if rid in self.qualifying:
                self.capacity_medians[rid] = (float(np.median(down)),
                                              float(np.median(up)))

    def pass_throughput(self, percentile: float = 95.0) -> None:
        for series in self.source.iter_throughput():
            rid = series.router_id
            self.records += len(series)
            self.ids["throughput"].add(rid)
            capacity = self.capacity_medians.get(rid)
            if rid not in self.qualifying or capacity is None:
                continue
            joined = usage.UtilizationTimeseries(
                router_id=rid, series=series,
                capacity_down_mbps=capacity[0],
                capacity_up_mbps=capacity[1])
            active = series.active_mask()
            if not np.any(active):
                continue
            down_util = joined.downlink_utilization()[active]
            up_util = joined.uplink_utilization()[active]
            self.saturation[rid] = SaturationPoint(
                router_id=rid,
                capacity_down_mbps=capacity[0],
                capacity_up_mbps=capacity[1],
                downlink_utilization=float(
                    np.percentile(down_util, percentile)),
                uplink_utilization=float(np.percentile(up_util, percentile)),
            )

    def _country_stats(self, info: RouterInfo) -> _CountryStats:
        stats = self.country.get(info.country_code)
        if stats is None:
            stats = _CountryStats(
                gdp=info.gdp_ppp_per_capita,
                developed=info.developed,
                counts=self._sketch(),
                durations=self._sketch(),
                avail=self._sketch())
            self.country[info.country_code] = stats
        return stats

    def pass_heartbeats(self, max_availability: float = 0.6,
                        min_daily_cycles: float = 0.7) -> None:
        for log in self.source.iter_heartbeats():
            rid = log.router_id
            self.records += len(log)
            self.ids["heartbeats"].add(rid)
            days = availability.observed_days(log)
            fraction = availability.availability_fraction(log)
            rate = availability.downtime_rate_per_day(log)
            # Appliance-mode detection deliberately precedes the
            # registration check, matching appliance_mode_routers.
            if fraction is not None and rate is not None and \
                    fraction <= max_availability and \
                    rate >= min_daily_cycles:
                self.appliance_count += 1
            info = self.routers.get(rid)
            if info is None:
                continue
            group = "developed" if info.developed else "developing"
            if days >= 1.0:
                durations = availability.downtime_events(log).durations()
                if rate is not None:
                    self.fig3[group].add(rate)
                self.fig4[group].add_many(durations)
                stats = self._country_stats(info)
                stats.routers += 1
                if rate is not None:
                    stats.counts.add(rate * self.normalize_days)
                stats.durations.add_many(durations)
            if fraction is not None:
                self._country_stats(info).avail.add(fraction)

    def pass_device_counts(self) -> None:
        for rid, group in _by_router(
                self.source.iter_dataset("device_counts")):
            calendar = self.calendars.get(rid)
            sums: Optional[np.ndarray] = None
            count = 0
            max_wired = 0
            for sample in group:
                self.records += 1
                vec = np.array([sample.wired, sample.wireless_2_4,
                                sample.wireless_5], dtype=float)
                if sums is None:
                    sums = vec
                else:
                    sums += vec
                count += 1
                max_wired = max(max_wired, sample.wired)
                if calendar is not None:
                    key = ("weekend"
                           if calendar.is_weekend(sample.timestamp)
                           else "weekday")
                    self.fig13[key].add(
                        calendar.hour_of_day(sample.timestamp),
                        float(sample.wireless))
            self.ids["devices"].add(rid)
            wired, w24, w5 = sums / count
            wireless = w24 + w5
            home_group = self._group(rid)
            if home_group is not None:
                self.fig8[home_group]["wired"].add(wired)
                self.fig8[home_group]["wireless"].add(wireless)
                self.fig9[home_group]["2.4GHz"].add(w24)
                self.fig9[home_group]["5GHz"].add(w5)
            self.port_homes += 1
            self.port_mean.add(wired)
            if max_wired >= 4:
                self.port_all_four += 1
            if max_wired <= 2:
                self.port_at_most_two += 1

    def pass_roster(self) -> None:
        vendor_wanted = self.ids["throughput"] | self.ids["flows"]
        for rid, group in _by_router(self.source.iter_dataset("roster")):
            n_devices = 0
            per_spectrum = {spectrum: 0 for spectrum in SPECTRA}
            has_always_wired = False
            has_always_wireless = False
            for entry in group:
                self.records += 1
                n_devices += 1
                if entry.spectrum is not None:
                    per_spectrum[entry.spectrum] += 1
                if entry.always_connected:
                    if entry.medium is Medium.WIRED:
                        has_always_wired = True
                    else:
                        has_always_wireless = True
                # Fig. 12, mirroring vendor_histogram's filters.
                if rid in vendor_wanted and \
                        self.bytes_by_mac.get(entry.device_mac, 0.0) >= 100e3:
                    mac = parse_mac(entry.device_mac)
                    if mac.oui != BISMARK_OUI:
                        category = vendor_category(mac.oui)
                        self.fig12[category] = \
                            self.fig12.get(category, 0) + 1
            self.fig7.add(n_devices)
            for spectrum in SPECTRA:
                self.fig10[spectrum].add(per_spectrum[spectrum])
            home_group = self._group(rid)
            if home_group is not None:
                self.table5_totals[home_group] += 1
                if has_always_wired:
                    self.table5_wired[home_group] += 1
                if has_always_wireless:
                    self.table5_wireless[home_group] += 1

    def pass_wifi(self) -> None:
        for rid, group in _by_router(self.source.iter_dataset("wifi_scans")):
            per_spectrum: Dict[Spectrum, List[int]] = \
                {spectrum: [] for spectrum in SPECTRA}
            for sample in group:
                self.records += 1
                per_spectrum[sample.spectrum].append(sample.neighbor_aps)
            self.ids["wifi"].add(rid)
            home_group = self._group(rid)
            for spectrum in SPECTRA:
                counts = per_spectrum[spectrum]
                if not counts:
                    continue
                q95 = float(np.quantile(np.asarray(counts), 0.95))
                self.fig11[(spectrum, "all")].add(q95)
                if home_group is not None:
                    self.fig11[(spectrum, home_group)].add(q95)

    def pass_uptime(self) -> None:
        for report in self.source.iter_dataset("uptime"):
            self.records += 1
            self.ids["uptime"].add(report.router_id)

    # -- finalize ----------------------------------------------------------------

    def _table2(self) -> List[DatasetSummary]:
        def row(name: str, kind: str, ids: set,
                window: Tuple[float, float]) -> DatasetSummary:
            countries = {self.routers[rid].country_code for rid in ids
                         if rid in self.routers}
            return DatasetSummary(name=name, kind=kind, routers=len(ids),
                                  countries=len(countries), window=window)

        return [
            row("Heartbeats", "active", self.ids["heartbeats"],
                self.windows.heartbeats),
            row("Capacity", "active", self.ids["capacity"],
                self.windows.capacity),
            row("Uptime", "passive", self.ids["uptime"],
                self.windows.uptime),
            row("Devices", "passive", self.ids["devices"],
                self.windows.devices),
            row("WiFi", "passive", self.ids["wifi"], self.windows.wifi),
            row("Traffic", "passive",
                self.ids["flows"] | self.ids["throughput"],
                self.windows.traffic),
        ]

    def _country_points(self) -> List[CountryDowntime]:
        """Per-country downtime points (every country; callers filter)."""
        points = []
        for code in sorted(self.country):
            stats = self.country[code]
            if stats.routers == 0 or stats.counts.n == 0:
                continue
            points.append(CountryDowntime(
                country_code=code,
                gdp_ppp_per_capita=stats.gdp,
                developed=stats.developed,
                routers=stats.routers,
                median_downtimes=stats.counts.median,
                median_duration=(stats.durations.median
                                 if stats.durations.n else 0.0),
            ))
        points.sort(key=lambda p: p.gdp_ppp_per_capita)
        return points

    def _section4(self, all_points: List[CountryDowntime]
                  ) -> Section4Highlights:
        worst = sorted(all_points, key=lambda p: -p.median_downtimes)[:2]
        worst_codes = tuple(p.country_code for p in worst)
        if len(worst_codes) < 2:
            worst_codes = worst_codes + ("??",) * (2 - len(worst_codes))

        def days_between(group: str) -> float:
            sketch = self.fig3[group]
            if sketch.n == 0:
                return float("nan")
            rate = sketch.median
            return float("inf") if rate == 0 else 1.0 / rate

        return Section4Highlights(
            median_days_between_downtimes_developed=days_between(
                "developed"),
            median_days_between_downtimes_developing=days_between(
                "developing"),
            worst_two_countries_by_downtimes=worst_codes,  # type: ignore[arg-type]
            appliance_mode_router_count=self.appliance_count,
        )

    def _ports(self) -> PortUsage:
        if self.port_homes == 0:
            return PortUsage(float("nan"), float("nan"), float("nan"))
        return PortUsage(
            mean_wired_in_use=self.port_mean.result().mean,
            fraction_all_four_used=self.port_all_four / self.port_homes,
            fraction_at_most_two_needed=(
                self.port_at_most_two / self.port_homes),
        )

    def _table5(self) -> List[AlwaysConnectedRow]:
        return [AlwaysConnectedRow(
            group=group,
            total_households=self.table5_totals[group],
            with_always_wired=self.table5_wired[group],
            with_always_wireless=self.table5_wireless[group],
        ) for group in GROUPS]

    def _section5(self, table5: List[AlwaysConnectedRow]
                  ) -> Section5Highlights:
        rows = {row.group: row for row in table5}
        cdf_24 = self.fig10[Spectrum.GHZ_2_4]
        cdf_5 = self.fig10[Spectrum.GHZ_5]
        ap_dev = self.fig11[(Spectrum.GHZ_2_4, "developed")]
        ap_dvg = self.fig11[(Spectrum.GHZ_2_4, "developing")]
        return Section5Highlights(
            always_wired_fraction_developed=rows["developed"].wired_fraction,
            always_wired_fraction_developing=(
                rows["developing"].wired_fraction),
            median_devices_2_4ghz=(cdf_24.median if cdf_24.n
                                   else float("nan")),
            median_devices_5ghz=cdf_5.median if cdf_5.n else float("nan"),
            median_neighbor_aps_developed=(ap_dev.median if ap_dev.n
                                           else float("nan")),
            median_neighbor_aps_developing=(ap_dvg.median if ap_dvg.n
                                            else float("nan")),
        )

    def _fig15(self) -> List[SaturationPoint]:
        return [self.saturation[rid] for rid in sorted(self.qualifying)
                if rid in self.saturation]

    def _fig17(self) -> np.ndarray:
        accumulator = RankedShareAccumulator(DEVICE_SHARE_RANKS)
        for rid, agg in self.home_flows.items():
            if rid in self.qualifying:
                accumulator.add(shares(list(agg.device_bytes.values())))
        return accumulator.result()

    def _fig18(self) -> Dict[str, Tuple[int, int]]:
        counts: Dict[str, List[int]] = {}
        for rid, agg in self.home_flows.items():
            if rid not in self.qualifying:
                continue
            ranked = sorted(
                ((name, t["bytes"]) for name, t in agg.visible.items()),
                key=lambda kv: -kv[1])
            for rank, (name, _volume) in enumerate(ranked[:10]):
                entry = counts.setdefault(name, [0, 0])
                if rank < 5:
                    entry[0] += 1
                entry[1] += 1
        ordered = sorted(counts.items(), key=lambda kv: (-kv[1][0],
                                                         -kv[1][1]))
        return {name: (top5, top10) for name, (top5, top10) in ordered}

    def _fig19(self, ranks: int = 10) -> DomainShareSummary:
        volume = RankedShareAccumulator(ranks)
        connection = RankedShareAccumulator(ranks)
        conn_of_volume = RankedShareAccumulator(ranks)
        coverages: List[float] = []
        # Mirrors usage.domain_share home by home off the stored
        # aggregates (bounded by the consent count).
        for rid, agg in self.home_flows.items():
            if rid not in self.qualifying or not agg.visible:
                continue
            total_bytes_all = sum(t["bytes"]
                                  for t in agg.everything.values())
            total_bytes_wl = sum(t["bytes"] for t in agg.visible.values())
            total_conns_wl = sum(t["connections"]
                                 for t in agg.visible.values())
            if total_bytes_all > 0:
                coverages.append(total_bytes_wl / total_bytes_all)
            by_volume = sorted(agg.visible.values(),
                               key=lambda t: -t["bytes"])
            by_conns = sorted(agg.visible.values(),
                              key=lambda t: -t["connections"])
            if total_bytes_wl > 0:
                volume.add(np.asarray(
                    [t["bytes"] / total_bytes_wl for t in by_volume]))
            if total_conns_wl > 0:
                connection.add(np.asarray(
                    [t["connections"] / total_conns_wl for t in by_conns]))
                conn_of_volume.add(np.asarray(
                    [t["connections"] / total_conns_wl for t in by_volume]))
        return DomainShareSummary(
            volume_share_by_rank=volume.result(),
            connection_share_by_rank=connection.result(),
            connections_of_volume_ranked=conn_of_volume.result(),
            whitelist_byte_coverage=(float(np.mean(coverages))
                                     if coverages else float("nan")),
        )

    def _section6(self, fig13: Dict[str, HourOfDayProfile],
                  fig15: List[SaturationPoint], fig17: np.ndarray,
                  fig19: DomainShareSummary) -> Section6Highlights:
        weekday = fig13["weekday"].amplitude()
        weekend = fig13["weekend"].amplitude()
        ratio = float("inf") if weekend == 0 else weekday / weekend
        return Section6Highlights(
            weekday_weekend_amplitude_ratio=ratio,
            homes_with_saturated_uplink=len(
                usage.saturating_uplink_homes(fig15)),
            top_device_mean_share=(float(fig17[0]) if fig17.size
                                   else float("nan")),
            top_domain_mean_volume_share=(
                float(fig19.volume_share_by_rank[0])
                if fig19.volume_share_by_rank.size else float("nan")),
            top_domain_mean_connection_share=(
                float(fig19.connection_share_by_rank[0])
                if fig19.connection_share_by_rank.size else float("nan")),
            whitelist_byte_coverage=fig19.whitelist_byte_coverage,
        )

    def result(self) -> StudyFigures:
        all_points = self._country_points()
        table5 = self._table5()
        fig13 = {key: profile.result()
                 for key, profile in self.fig13.items()}
        fig15 = self._fig15()
        fig17 = self._fig17()
        fig19 = self._fig19()
        return StudyFigures(
            datasets=self._table2(),
            fig3=dict(self.fig3),
            fig4=dict(self.fig4),
            fig5=[p for p in all_points if p.routers >= 3],
            table3_availability={
                code: self.country[code].avail.median
                for code in sorted(self.country)
                if self.country[code].avail.n},
            section4=self._section4(all_points),
            fig7=self.fig7,
            fig8={group: {k: acc.result() for k, acc in accs.items()}
                  for group, accs in self.fig8.items()},
            fig9={group: {k: acc.result() for k, acc in accs.items()}
                  for group, accs in self.fig9.items()},
            fig10=dict(self.fig10),
            table5=table5,
            ports=self._ports(),
            fig11=dict(self.fig11),
            fig12=dict(sorted(self.fig12.items(), key=lambda kv: -kv[1])),
            section5=self._section5(table5),
            fig13=fig13,
            fig15=fig15,
            fig17=fig17,
            fig18=self._fig18(),
            fig19=fig19,
            section6=self._section6(fig13, fig15, fig17, fig19),
            records_streamed=self.records,
        )


def stream_figures(source, compression: int = 200,
                   exact_threshold: int = DEFAULT_EXACT_THRESHOLD,
                   normalize_days: float = 197.0) -> StudyFigures:
    """Compute every Section 4-6 figure in one pass per dataset.

    *source* is a :class:`StoreSource` (streaming straight off a record
    store's backend — the spill store never materializes) or a
    :class:`StudyDataSource` (parity testing over in-RAM data).  Flows
    stream first so the paper's ≥100 MB qualifying-traffic set is fixed
    before capacity/throughput need it; DNS feeds no figure and is
    skipped.  See the module docstring for the tolerance policy.
    """
    analysis = _StreamingAnalysis(source, compression, exact_threshold,
                                  normalize_days)
    passes = (
        ("flows", analysis.pass_flows),
        ("capacity", analysis.pass_capacity),
        ("throughput", analysis.pass_throughput),
        ("heartbeats", analysis.pass_heartbeats),
        ("device_counts", analysis.pass_device_counts),
        ("roster", analysis.pass_roster),
        ("wifi_scans", analysis.pass_wifi),
        ("uptime", analysis.pass_uptime),
    )
    for name, run_pass in passes:
        with perf.stage(f"analyze.{name}"), \
                trace.span(f"analyze.{name}", cat="analyze"):
            run_pass()
    return analysis.result()
