"""Typed containers for the six collected data sets, plus Table 2.

:class:`StudyData` is the hand-off point between collection and analysis —
everything Sections 4-6 compute starts from one of these.  Two data sets
are large enough to deserve columnar storage (per-router numpy arrays):
heartbeat timestamps (:class:`HeartbeatLog`) and per-minute throughput
(:class:`ThroughputSeries`); the rest are plain record lists.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.records import (
    CapacityMeasurement,
    DeviceCountSample,
    DeviceRosterEntry,
    DnsRecord,
    FlowRecord,
    RouterInfo,
    ThroughputSample,
    UptimeReport,
    WifiScanSample,
)
from repro.simulation.timebase import MINUTE, StudyCalendar, StudyWindows

#: The paper's activity bar for the Traffic data set (Section 3.2.2).
TRAFFIC_MIN_BYTES = 100e6


class CalendarPool:
    """Shared memoized :class:`StudyCalendar` lookup for a router table.

    Calendars only depend on the timezone offset, so one instance per
    distinct offset serves every router in it.  Both the exact analysis
    path (via :meth:`StudyData.calendar_for`) and the streaming driver
    use this pool instead of growing per-function caches.
    """

    def __init__(self, routers: Dict[str, "RouterInfo"]):
        self._routers = routers
        self._by_offset: Dict[float, StudyCalendar] = {}

    def get(self, router_id: str) -> Optional[StudyCalendar]:
        """The router's local calendar, or None for an unknown router."""
        info = self._routers.get(router_id)
        if info is None:
            return None
        calendar = self._by_offset.get(info.tz_offset_hours)
        if calendar is None:
            calendar = StudyCalendar(info.tz_offset_hours)
            self._by_offset[info.tz_offset_hours] = calendar
        return calendar


@dataclass
class HeartbeatLog:
    """All heartbeats received from one router, as a sorted timestamp array."""

    router_id: str
    timestamps: np.ndarray

    def __post_init__(self) -> None:
        self.timestamps = np.asarray(self.timestamps, dtype=float)
        if self.timestamps.ndim != 1:
            raise ValueError("heartbeat timestamps must be one-dimensional")
        if np.any(np.diff(self.timestamps) < 0):
            self.timestamps = np.sort(self.timestamps)

    def __len__(self) -> int:
        return int(self.timestamps.size)

    def clipped(self, start: float, end: float) -> "HeartbeatLog":
        """Heartbeats within ``[start, end)``."""
        mask = (self.timestamps >= start) & (self.timestamps < end)
        return HeartbeatLog(self.router_id, self.timestamps[mask])


@dataclass
class ThroughputSeries:
    """Per-minute peak-throughput series for one router (Section 6.2)."""

    router_id: str
    start: float
    up_bps: np.ndarray
    down_bps: np.ndarray
    interval_seconds: float = MINUTE

    def __post_init__(self) -> None:
        self.up_bps = np.asarray(self.up_bps, dtype=float)
        self.down_bps = np.asarray(self.down_bps, dtype=float)
        if self.up_bps.shape != self.down_bps.shape:
            raise ValueError("up/down series must be the same length")
        if self.interval_seconds <= 0:
            raise ValueError("interval must be positive")

    def __len__(self) -> int:
        return int(self.up_bps.size)

    @property
    def timestamps(self) -> np.ndarray:
        """Epochs of each minute slot's start."""
        return self.start + np.arange(self.up_bps.size) * self.interval_seconds

    def samples(self) -> Iterator[ThroughputSample]:
        """Materialize record objects (for export; analysis uses arrays)."""
        for epoch, up, down in zip(self.timestamps, self.up_bps, self.down_bps):
            yield ThroughputSample(self.router_id, float(epoch),
                                   float(up), float(down))

    def active_mask(self) -> np.ndarray:
        """Minutes during which some device exchanged traffic.

        The paper's utilization statistic "only consider[s] instances when
        there is some device exchanging traffic with the Internet".
        """
        return (self.up_bps > 0) | (self.down_bps > 0)


@dataclass
class StudyData:
    """Everything the deployment collected, ready for analysis."""

    routers: Dict[str, RouterInfo]
    windows: StudyWindows
    heartbeats: Dict[str, HeartbeatLog] = field(default_factory=dict)
    uptime_reports: List[UptimeReport] = field(default_factory=list)
    capacity: List[CapacityMeasurement] = field(default_factory=list)
    device_counts: List[DeviceCountSample] = field(default_factory=list)
    roster: List[DeviceRosterEntry] = field(default_factory=list)
    wifi_scans: List[WifiScanSample] = field(default_factory=list)
    flows: List[FlowRecord] = field(default_factory=list)
    throughput: Dict[str, ThroughputSeries] = field(default_factory=dict)
    dns: List[DnsRecord] = field(default_factory=list)
    #: Per-router heartbeat delivery tally ``{router_id: (sent, delivered)}``
    #: from the collection server's loss accounting.  Operational metadata,
    #: not collected data: it feeds the deployment-health report and is
    #: deliberately excluded from :func:`study_digest` (the digest covers
    #: what was *collected*, and older archives lack the tally).
    heartbeat_delivery: Dict[str, Tuple[int, int]] = field(
        default_factory=dict)

    # -- router helpers --------------------------------------------------------

    def router_ids(self) -> List[str]:
        """All deployed router ids, sorted."""
        return sorted(self.routers)

    def developed_ids(self) -> List[str]:
        """Routers in developed countries."""
        return sorted(rid for rid, info in self.routers.items()
                      if info.developed)

    def developing_ids(self) -> List[str]:
        """Routers in developing countries."""
        return sorted(rid for rid, info in self.routers.items()
                      if not info.developed)

    def info(self, router_id: str) -> RouterInfo:
        """Metadata for one router (KeyError if unknown)."""
        return self.routers[router_id]

    def countries_of(self, router_ids: Sequence[str]) -> List[str]:
        """Distinct country codes among *router_ids*, sorted."""
        return sorted({self.routers[rid].country_code for rid in router_ids
                       if rid in self.routers})

    def calendar_for(self, router_id: str) -> Optional[StudyCalendar]:
        """Memoized local-time calendar for one router (None if unknown).

        Calendars are shared per timezone offset via one
        :class:`CalendarPool` on the instance, replacing the per-function
        caches the analysis modules used to rebuild on every call.
        """
        pool = getattr(self, "_calendar_pool", None)
        if pool is None:
            pool = CalendarPool(self.routers)
            self._calendar_pool = pool
        return pool.get(router_id)

    # -- traffic helpers ---------------------------------------------------------

    def traffic_bytes_by_router(self) -> Dict[str, float]:
        """Total Traffic-data-set bytes per router (from flow records)."""
        totals: Dict[str, float] = {}
        for flow in self.flows:
            totals[flow.router_id] = totals.get(flow.router_id, 0.0) \
                + flow.bytes_total
        return totals

    def qualifying_traffic_routers(
            self, min_bytes: float = TRAFFIC_MIN_BYTES) -> List[str]:
        """Routers whose Traffic data clears the paper's ≥100 MB bar."""
        totals = self.traffic_bytes_by_router()
        return sorted(rid for rid, total in totals.items()
                      if total >= min_bytes)


def study_digest(data: StudyData) -> str:
    """Canonical SHA-256 digest of everything a study collected.

    Two ``StudyData`` bundles digest identically iff every record, array,
    and window matches bitwise.  Record lists hash in their stored
    (deterministically sorted) order; keyed dicts hash in sorted-key
    order; floats hash via their exact binary representation — so the
    digest is the engine's determinism oracle: ``workers=1`` vs
    ``workers=4``, memory vs spill backend, must all agree.
    """
    hasher = hashlib.sha256()

    def put(*parts: object) -> None:
        for part in parts:
            if isinstance(part, float):
                hasher.update(np.float64(part).tobytes())
            else:
                hasher.update(str(part).encode())
            hasher.update(b"\x1f")
        hasher.update(b"\n")

    for name in ("heartbeats", "uptime", "capacity", "devices", "wifi",
                 "traffic"):
        window = getattr(data.windows, name)
        put("window", name, float(window[0]), float(window[1]))
    for rid in sorted(data.routers):
        info = data.routers[rid]
        put("router", rid, info.country_code, int(info.developed),
            float(info.tz_offset_hours), float(info.gdp_ppp_per_capita))
    for rid in sorted(data.heartbeats):
        log = data.heartbeats[rid]
        put("heartbeats", rid, len(log))
        hasher.update(np.ascontiguousarray(log.timestamps,
                                           dtype=float).tobytes())
    for r in data.uptime_reports:
        put("uptime", r.router_id, float(r.timestamp),
            float(r.uptime_seconds))
    for m in data.capacity:
        put("capacity", m.router_id, float(m.timestamp),
            float(m.downstream_mbps), float(m.upstream_mbps))
    for s in data.device_counts:
        put("device_counts", s.router_id, float(s.timestamp), int(s.wired),
            int(s.wireless_2_4), int(s.wireless_5))
    for e in data.roster:
        put("roster", e.router_id, e.device_mac, e.medium.value,
            "" if e.spectrum is None else e.spectrum.value,
            float(e.first_seen), float(e.last_seen), int(e.always_connected))
    for s in data.wifi_scans:
        put("wifi", s.router_id, float(s.timestamp), s.spectrum.value,
            int(s.neighbor_aps), int(s.associated_clients), int(s.channel))
    for f in data.flows:
        put("flow", f.router_id, float(f.timestamp), f.device_mac, f.domain,
            int(f.remote_ip), int(f.port), f.application, float(f.bytes_up),
            float(f.bytes_down), float(f.duration_seconds))
    for rid in sorted(data.throughput):
        series = data.throughput[rid]
        put("throughput", rid, float(series.start),
            float(series.interval_seconds), len(series))
        hasher.update(np.ascontiguousarray(series.up_bps,
                                           dtype=float).tobytes())
        hasher.update(np.ascontiguousarray(series.down_bps,
                                           dtype=float).tobytes())
    for d in data.dns:
        put("dns", d.router_id, float(d.timestamp), d.device_mac, d.domain,
            d.record_type, "" if d.address is None else int(d.address))
    return hasher.hexdigest()


@dataclass(frozen=True)
class DatasetSummary:
    """One row of the paper's Table 2."""

    name: str
    kind: str  # "active" or "passive"
    routers: int
    countries: int
    window: Tuple[float, float]


def summarize_datasets(data: StudyData) -> List[DatasetSummary]:
    """Reproduce Table 2: per-data-set router/country counts and windows."""

    def row(name: str, kind: str, router_ids: Sequence[str],
            window: Tuple[float, float]) -> DatasetSummary:
        distinct = sorted(set(router_ids))
        return DatasetSummary(
            name=name, kind=kind, routers=len(distinct),
            countries=len(data.countries_of(distinct)), window=window)

    throughput_routers = list(data.throughput)
    flow_routers = [flow.router_id for flow in data.flows]
    return [
        row("Heartbeats", "active", list(data.heartbeats),
            data.windows.heartbeats),
        row("Capacity", "active",
            [m.router_id for m in data.capacity], data.windows.capacity),
        row("Uptime", "passive",
            [r.router_id for r in data.uptime_reports], data.windows.uptime),
        row("Devices", "passive",
            [s.router_id for s in data.device_counts], data.windows.devices),
        row("WiFi", "passive",
            [s.router_id for s in data.wifi_scans], data.windows.wifi),
        row("Traffic", "passive",
            sorted(set(flow_routers) | set(throughput_routers)),
            data.windows.traffic),
    ]
