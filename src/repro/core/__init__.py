"""The paper's contribution: the BISmark measurement-analysis pipeline.

``repro.core`` turns the six raw data sets (Heartbeats, Uptime, Capacity,
Devices, WiFi, Traffic — Section 3 of the paper) into every statistic in the
paper's evaluation:

* :mod:`repro.core.availability` — Section 4 (downtime frequency, duration,
  GDP correlation, availability timelines).
* :mod:`repro.core.infrastructure` — Section 5 (device censuses, spectrum
  occupancy, neighbor APs, vendor profiles).
* :mod:`repro.core.usage` — Section 6 (diurnal profiles, link saturation,
  per-device and per-domain traffic shares).
* :mod:`repro.core.fingerprint` — Section 6.4/7 (device fingerprinting from
  domain mixes).
* :mod:`repro.core.pipeline` — one-call orchestration of
  simulate → collect → analyze.
"""

from repro.core.records import (
    CapacityMeasurement,
    DeviceCountSample,
    DnsRecord,
    FlowRecord,
    Heartbeat,
    RouterInfo,
    Spectrum,
    ThroughputSample,
    UptimeReport,
    WifiScanSample,
)
from repro.core.intervals import IntervalSet
from repro.core.datasets import StudyData, DatasetSummary, summarize_datasets
from repro.core.pipeline import (
    StreamedStudy,
    StudyConfig,
    run_study,
    run_study_streaming,
)
from repro.core.sketches import QuantileSketch
from repro.core.streaming import (
    StoreSource,
    StudyDataSource,
    StudyFigures,
    compute_figures,
    stream_figures,
)

__all__ = [
    "CapacityMeasurement",
    "DeviceCountSample",
    "DnsRecord",
    "FlowRecord",
    "Heartbeat",
    "RouterInfo",
    "Spectrum",
    "ThroughputSample",
    "UptimeReport",
    "WifiScanSample",
    "IntervalSet",
    "StudyData",
    "DatasetSummary",
    "summarize_datasets",
    "StudyConfig",
    "run_study",
    "StreamedStudy",
    "run_study_streaming",
    "QuantileSketch",
    "StoreSource",
    "StudyDataSource",
    "StudyFigures",
    "compute_figures",
    "stream_figures",
]
