"""Section 4: availability of home broadband access.

The methodology follows the paper exactly:

* a router's *up intervals* are reconstructed from its heartbeat log —
  consecutive heartbeats less than ten minutes apart belong to the same up
  interval;
* *downtime* is any gap between consecutive heartbeats of ten minutes or
  longer (shorter gaps are attributed to heartbeat loss);
* downtime *frequency* is events per observed day (Fig. 3), *duration* is
  the gap length (Fig. 4), and both are grouped by development class and
  joined against per-capita GDP (Fig. 5);
* the Uptime data set disambiguates, where it can, whether a downtime was a
  powered-off router or a network outage (Section 4.2 / Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.datasets import HeartbeatLog, StudyData
from repro.core.intervals import IntervalSet
from repro.core.stats import EmpiricalCdf
from repro.simulation.timebase import DAY, MINUTE

#: The paper's downtime threshold: gaps of ten minutes or longer.
DOWNTIME_THRESHOLD = 10 * MINUTE


# -- per-router primitives -----------------------------------------------------

def up_intervals(log: HeartbeatLog,
                 max_gap: float = DOWNTIME_THRESHOLD) -> IntervalSet:
    """Reconstruct one router's up intervals from its heartbeat log."""
    return IntervalSet.from_timestamps(log.timestamps, max_gap=max_gap)


def downtime_events(log: HeartbeatLog,
                    threshold: float = DOWNTIME_THRESHOLD) -> IntervalSet:
    """Gaps of at least *threshold* between consecutive heartbeats.

    Only *internal* gaps count: time before the first heartbeat or after
    the last says nothing (the router may simply not have been deployed).
    """
    ts = log.timestamps
    if ts.size < 2:
        return IntervalSet()
    gaps = np.diff(ts)
    idx = np.flatnonzero(gaps >= threshold)
    return IntervalSet((float(ts[i]), float(ts[i + 1])) for i in idx)


def observed_days(log: HeartbeatLog) -> float:
    """Days between a router's first and last heartbeat."""
    ts = log.timestamps
    if ts.size < 2:
        return 0.0
    return float((ts[-1] - ts[0]) / DAY)


def downtime_rate_per_day(log: HeartbeatLog,
                          threshold: float = DOWNTIME_THRESHOLD) -> Optional[float]:
    """Average ≥threshold downtimes per observed day (None if unobserved)."""
    days = observed_days(log)
    if days <= 0:
        return None
    return len(downtime_events(log, threshold)) / days


def availability_fraction(log: HeartbeatLog) -> Optional[float]:
    """Fraction of the observed span the router was up (heartbeat-based)."""
    ts = log.timestamps
    if ts.size < 2:
        return None
    span = float(ts[-1] - ts[0])
    if span <= 0:
        return None
    return up_intervals(log).total_duration() / span


def availability_timeline(log: HeartbeatLog,
                          window: Tuple[float, float]) -> IntervalSet:
    """The Fig. 6 timeline: up intervals clipped to a display window."""
    return up_intervals(log).clip(*window)


# -- deployment-level statistics -------------------------------------------------

def _logs_for(data: StudyData, developed: bool,
              min_observed_days: float) -> List[HeartbeatLog]:
    wanted = set(data.developed_ids() if developed else data.developing_ids())
    return [log for rid, log in data.heartbeats.items()
            if rid in wanted and observed_days(log) >= min_observed_days]


def downtime_rate_cdf(data: StudyData, developed: bool,
                      min_observed_days: float = 1.0) -> EmpiricalCdf:
    """Fig. 3: CDF over homes of average ≥10-min downtimes per day."""
    rates = []
    for log in _logs_for(data, developed, min_observed_days):
        rate = downtime_rate_per_day(log)
        if rate is not None:
            rates.append(rate)
    return EmpiricalCdf.from_samples(rates)


def downtime_duration_cdf(data: StudyData, developed: bool,
                          min_observed_days: float = 1.0) -> EmpiricalCdf:
    """Fig. 4: CDF of individual downtime durations (seconds), pooled."""
    durations: List[float] = []
    for log in _logs_for(data, developed, min_observed_days):
        durations.extend(downtime_events(log).durations().tolist())
    return EmpiricalCdf.from_samples(durations)


def median_days_between_downtimes(data: StudyData,
                                  developed: bool) -> Optional[float]:
    """The Table 3 headline: median over homes of days per downtime."""
    cdf = downtime_rate_cdf(data, developed)
    if cdf.n == 0:
        return None
    rate = cdf.median
    return float("inf") if rate == 0 else 1.0 / rate


@dataclass(frozen=True)
class CountryDowntime:
    """One point of the Fig. 5 scatter."""

    country_code: str
    gdp_ppp_per_capita: float
    developed: bool
    routers: int
    #: Median per-home downtime count, normalized to *normalize_days* days.
    median_downtimes: float
    #: Median downtime duration (seconds) across the country's events.
    median_duration: float


def downtimes_by_country(data: StudyData, min_routers: int = 3,
                         normalize_days: float = 197.0) -> List[CountryDowntime]:
    """Fig. 5: per-country median downtime counts vs per-capita GDP.

    The paper plots raw counts over its 6.5-month window (~197 days); we
    normalize each home's rate to *normalize_days* so shortened simulation
    windows produce comparable numbers.
    """
    by_country: Dict[str, List[HeartbeatLog]] = {}
    for rid, log in data.heartbeats.items():
        info = data.routers.get(rid)
        if info is not None:
            by_country.setdefault(info.country_code, []).append(log)

    points: List[CountryDowntime] = []
    for code, logs in sorted(by_country.items()):
        logs = [log for log in logs if observed_days(log) >= 1.0]
        if len(logs) < min_routers:
            continue
        counts = []
        durations: List[float] = []
        for log in logs:
            rate = downtime_rate_per_day(log)
            if rate is None:
                continue
            counts.append(rate * normalize_days)
            durations.extend(downtime_events(log).durations().tolist())
        if not counts:
            continue
        sample = data.routers[logs[0].router_id]
        points.append(CountryDowntime(
            country_code=code,
            gdp_ppp_per_capita=sample.gdp_ppp_per_capita,
            developed=sample.developed,
            routers=len(logs),
            median_downtimes=float(np.median(counts)),
            median_duration=float(np.median(durations)) if durations else 0.0,
        ))
    points.sort(key=lambda p: p.gdp_ppp_per_capita)
    return points


def median_availability_by_country(data: StudyData) -> Dict[str, float]:
    """Median heartbeat-based availability per country (Section 4.2).

    This is the "the median US user has his router on 98.25% of the time"
    statistic (the paper reads it as power-on time; heartbeats conflate
    link outages, which is one of its acknowledged limitations).
    """
    by_country: Dict[str, List[float]] = {}
    for rid, log in data.heartbeats.items():
        fraction = availability_fraction(log)
        info = data.routers.get(rid)
        if fraction is None or info is None:
            continue
        by_country.setdefault(info.country_code, []).append(fraction)
    return {code: float(np.median(values))
            for code, values in sorted(by_country.items())}


# -- downtime attribution (power vs network) -------------------------------------

def classify_downtime(data: StudyData, router_id: str,
                      downtime: Tuple[float, float]) -> str:
    """Attribute one downtime: ``"power"``, ``"network"``, or ``"unknown"``.

    Uses the Uptime data set (Section 3.2.2): if a report after the gap
    shows the router booted *inside or after* the gap, the router was
    powered off; if a report after the gap shows uptime spanning the whole
    gap, the router stayed powered — a network outage.  No covering report
    means the 12-hour cadence was too coarse: unknown.
    """
    gap_start, gap_end = downtime
    for report in data.uptime_reports:
        if report.router_id != router_id or report.timestamp < gap_end:
            continue
        boot = report.boot_time
        if boot >= gap_start:
            return "power"
        return "network"
    return "unknown"


def downtime_attribution(data: StudyData,
                         router_id: str) -> Dict[str, int]:
    """Count one router's downtimes by attribution class."""
    log = data.heartbeats.get(router_id)
    if log is None:
        return {"power": 0, "network": 0, "unknown": 0}
    counts = {"power": 0, "network": 0, "unknown": 0}
    for event in downtime_events(log):
        counts[classify_downtime(data, router_id, event)] += 1
    return counts


def appliance_mode_routers(data: StudyData,
                           max_availability: float = 0.6,
                           min_daily_cycles: float = 0.7) -> List[str]:
    """Routers that behave like Fig. 6b appliances.

    An appliance-mode home has low overall availability *and* cycles at
    least ~daily — distinguishing it from a mostly-up home with rare long
    outages.
    """
    routers: List[str] = []
    for rid, log in sorted(data.heartbeats.items()):
        fraction = availability_fraction(log)
        rate = downtime_rate_per_day(log)
        if fraction is None or rate is None:
            continue
        if fraction <= max_availability and rate >= min_daily_cycles:
            routers.append(rid)
    return routers


# -- Table 3 ---------------------------------------------------------------------

@dataclass(frozen=True)
class Section4Highlights:
    """The three Table 3 claims, as measured."""

    median_days_between_downtimes_developed: float
    median_days_between_downtimes_developing: float
    worst_two_countries_by_downtimes: Tuple[str, str]
    appliance_mode_router_count: int


def section4_highlights(data: StudyData) -> Section4Highlights:
    """Compute Table 3 from the Heartbeats + Uptime data sets."""
    by_country = downtimes_by_country(data, min_routers=1)
    worst = sorted(by_country, key=lambda p: -p.median_downtimes)[:2]
    worst_codes = tuple(p.country_code for p in worst)
    if len(worst_codes) < 2:
        worst_codes = worst_codes + ("??",) * (2 - len(worst_codes))
    developed = median_days_between_downtimes(data, developed=True)
    developing = median_days_between_downtimes(data, developed=False)
    return Section4Highlights(
        median_days_between_downtimes_developed=(
            developed if developed is not None else float("nan")),
        median_days_between_downtimes_developing=(
            developing if developing is not None else float("nan")),
        worst_two_countries_by_downtimes=worst_codes,  # type: ignore[arg-type]
        appliance_mode_router_count=len(appliance_mode_routers(data)),
    )
