"""Analysis side of the usage-cap tool: the per-home "web interface" data.

The paper gave consenting users "access to a Web interface that allowed
them to observe and manage their usage over time and across devices; this
feature turns out to be quite useful for users who have Internet service
plans with low data caps" (Section 3.2.2).  This module computes exactly
what that interface showed:

* per-device byte usage over the billing cycle (who is eating the cap);
* cycle-to-date usage against the cap, with an end-of-cycle projection;
* days until the cap is exhausted at the current burn rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.datasets import StudyData
from repro.core.usage import device_domain_profile
from repro.firmware.caps import UsageCapPolicy
from repro.simulation.timebase import DAY


@dataclass(frozen=True)
class DeviceUsage:
    """One row of the dashboard's per-device table."""

    device_mac: str
    bytes_total: float
    bytes_up: float
    bytes_down: float
    share_of_home: float
    top_domains: "tuple"


@dataclass(frozen=True)
class CapForecast:
    """Cycle-to-date accounting plus the linear end-of-cycle projection."""

    router_id: str
    cycle_start: float
    elapsed_days: float
    used_bytes: float
    cap_bytes: float
    projected_bytes: float
    days_until_cap: Optional[float]

    @property
    def used_fraction(self) -> float:
        """Cap fraction consumed so far."""
        return self.used_bytes / self.cap_bytes

    @property
    def projected_fraction(self) -> float:
        """Projected end-of-cycle cap fraction at the current rate."""
        return self.projected_bytes / self.cap_bytes

    @property
    def will_exceed(self) -> bool:
        """True when the linear projection crosses the cap."""
        return self.projected_fraction > 1.0


def device_usage_table(data: StudyData, router_id: str,
                       top_domains: int = 3) -> List[DeviceUsage]:
    """The dashboard's per-device breakdown, largest consumer first."""
    per_device: Dict[str, List[float]] = {}
    for flow in data.flows:
        if flow.router_id != router_id:
            continue
        entry = per_device.setdefault(flow.device_mac, [0.0, 0.0])
        entry[0] += flow.bytes_up
        entry[1] += flow.bytes_down
    home_total = sum(up + down for up, down in per_device.values())
    rows = []
    for mac, (up, down) in per_device.items():
        total = up + down
        rows.append(DeviceUsage(
            device_mac=mac,
            bytes_total=total,
            bytes_up=up,
            bytes_down=down,
            share_of_home=total / home_total if home_total else 0.0,
            top_domains=tuple(
                name for name, _share in device_domain_profile(
                    data, router_id, mac, top=top_domains)),
        ))
    rows.sort(key=lambda row: -row.bytes_total)
    return rows


def cap_forecast(data: StudyData, router_id: str,
                 policy: UsageCapPolicy,
                 as_of: Optional[float] = None) -> Optional[CapForecast]:
    """Cycle accounting for one home from its throughput series.

    ``as_of`` defaults to the end of the collected series; the cycle is
    assumed to start at the series start (the collection window is shorter
    than a billing cycle, so this is the in-window view the user saw).
    """
    series = data.throughput.get(router_id)
    if series is None or len(series) == 0:
        return None
    timestamps = series.timestamps
    horizon = float(timestamps[-1]) if as_of is None else as_of
    mask = timestamps <= horizon
    if not mask.any():
        return None
    # Mean-rate floor of the per-minute peaks (see firmware.caps).
    mean_bps = (series.up_bps[mask] + series.down_bps[mask]) / 2.2
    used = float(mean_bps.sum()) / 8.0 * series.interval_seconds
    elapsed_days = max((horizon - series.start) / DAY, 1e-6)
    daily_rate = used / elapsed_days
    projected = daily_rate * policy.cycle_days
    if daily_rate > 0 and used < policy.monthly_cap_bytes:
        days_until = (policy.monthly_cap_bytes - used) / daily_rate
    elif used >= policy.monthly_cap_bytes:
        days_until = 0.0
    else:
        days_until = None
    return CapForecast(
        router_id=router_id,
        cycle_start=series.start,
        elapsed_days=elapsed_days,
        used_bytes=used,
        cap_bytes=policy.monthly_cap_bytes,
        projected_bytes=projected,
        days_until_cap=days_until,
    )


def homes_projected_over_cap(data: StudyData,
                             policy: UsageCapPolicy) -> List[str]:
    """Qualifying homes whose current burn rate would blow the cap."""
    over = []
    for rid in data.qualifying_traffic_routers():
        forecast = cap_forecast(data, rid, policy)
        if forecast is not None and forecast.will_exceed:
            over.append(rid)
    return over
