"""Longitudinal analysis: what continuous monitoring buys you.

The paper's core methodological argument (Section 2) is that a gateway
vantage point enables *continuous* monitoring — "how usage patterns change
over time, both on short and long timescales" — where prior work took
one-shot measurements.  This module delivers that promise over the
collected data sets:

* per-week availability series and trends per home or group;
* rolling downtime rates (is a home's connectivity getting worse?);
* device-population growth across the Devices window;
* per-day traffic volume series for consenting homes.

Each series comes with a least-squares slope so "getting better/worse" is
a number, not a squint at a plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import availability
from repro.core.datasets import HeartbeatLog, StudyData
from repro.simulation.timebase import DAY, WEEK


@dataclass(frozen=True)
class TrendSeries:
    """A time series of (bucket_start_epoch, value) with its linear trend."""

    label: str
    times: np.ndarray
    values: np.ndarray
    #: Least-squares slope in value-units per day.
    slope_per_day: float

    @classmethod
    def from_points(cls, label: str,
                    points: Sequence[Tuple[float, float]]) -> "TrendSeries":
        """Build a series; slope is NaN with fewer than two points."""
        if points:
            times = np.asarray([t for t, _ in points], dtype=float)
            values = np.asarray([v for _, v in points], dtype=float)
        else:
            times = np.empty(0)
            values = np.empty(0)
        if times.size >= 2 and np.ptp(times) > 0:
            # Closed-form OLS slope on centered data: identical to the
            # polyfit slope analytically, but a constant series yields an
            # exactly-zero numerator instead of lstsq rounding noise
            # amplified by a tiny time spread.
            days = (times - times[0]) / DAY
            dx = days - days.mean()
            dy = values - values.mean()
            slope = float(np.dot(dx, dy) / np.dot(dx, dx))
        else:
            slope = float("nan")
        return cls(label=label, times=times, values=values,
                   slope_per_day=slope)

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def mean(self) -> float:
        """Mean value across buckets (NaN when empty)."""
        return float(self.values.mean()) if self.values.size else float("nan")

    def points(self) -> List[Tuple[float, float]]:
        """(time, value) pairs, for rendering."""
        return list(zip(self.times.tolist(), self.values.tolist()))


def _bucket_edges(start: float, end: float,
                  bucket_seconds: float) -> np.ndarray:
    if end <= start:
        return np.asarray([start])
    count = int(np.ceil((end - start) / bucket_seconds))
    return start + np.arange(count + 1) * bucket_seconds


# -- availability over time ---------------------------------------------------------

def availability_series(log: HeartbeatLog,
                        bucket_seconds: float = WEEK) -> TrendSeries:
    """Per-bucket availability fraction for one router."""
    ts = log.timestamps
    if ts.size < 2:
        return TrendSeries.from_points(log.router_id, [])
    up = availability.up_intervals(log)
    edges = _bucket_edges(float(ts[0]), float(ts[-1]), bucket_seconds)
    points = []
    for left, right in zip(edges, edges[1:]):
        span = min(right, float(ts[-1])) - left
        if span < bucket_seconds * 0.5:
            continue  # ignore ragged final bucket
        covered = up.clip(left, left + span).total_duration()
        points.append((left, covered / span))
    return TrendSeries.from_points(log.router_id, points)


def downtime_rate_series(log: HeartbeatLog,
                         bucket_seconds: float = WEEK,
                         threshold: float = 600.0) -> TrendSeries:
    """Per-bucket ≥threshold downtimes per day for one router."""
    ts = log.timestamps
    if ts.size < 2:
        return TrendSeries.from_points(log.router_id, [])
    events = availability.downtime_events(log, threshold)
    starts = np.asarray([s for s, _ in events])
    edges = _bucket_edges(float(ts[0]), float(ts[-1]), bucket_seconds)
    points = []
    for left, right in zip(edges, edges[1:]):
        span = min(right, float(ts[-1])) - left
        if span < bucket_seconds * 0.5:
            continue
        count = int(np.sum((starts >= left) & (starts < left + span))) \
            if starts.size else 0
        points.append((left, count / (span / DAY)))
    return TrendSeries.from_points(log.router_id, points)


def group_availability_trend(data: StudyData, developed: bool,
                             bucket_seconds: float = WEEK) -> TrendSeries:
    """Median availability per bucket across one development class."""
    wanted = set(data.developed_ids() if developed else data.developing_ids())
    per_bucket: Dict[float, List[float]] = {}
    for rid, log in data.heartbeats.items():
        if rid not in wanted:
            continue
        for t, value in availability_series(log, bucket_seconds).points():
            per_bucket.setdefault(t, []).append(value)
    label = "developed" if developed else "developing"
    points = sorted((t, float(np.median(values)))
                    for t, values in per_bucket.items())
    return TrendSeries.from_points(label, points)


# -- infrastructure over time ---------------------------------------------------------

def connected_devices_series(data: StudyData,
                             bucket_seconds: float = WEEK) -> TrendSeries:
    """Mean simultaneously-connected devices per bucket, all homes."""
    if not data.device_counts:
        return TrendSeries.from_points("devices", [])
    start = min(s.timestamp for s in data.device_counts)
    per_bucket: Dict[float, List[int]] = {}
    for sample in data.device_counts:
        bucket = start + ((sample.timestamp - start) // bucket_seconds) \
            * bucket_seconds
        per_bucket.setdefault(bucket, []).append(sample.total)
    points = sorted((t, float(np.mean(values)))
                    for t, values in per_bucket.items())
    return TrendSeries.from_points("devices", points)


# -- usage over time ----------------------------------------------------------------------

def traffic_volume_series(data: StudyData, router_id: str,
                          bucket_seconds: float = DAY) -> TrendSeries:
    """Per-bucket gateway bytes for one consenting home."""
    series = data.throughput.get(router_id)
    if series is None or len(series) == 0:
        return TrendSeries.from_points(router_id, [])
    # Mean-rate floor of per-minute peaks (see firmware.caps).
    byte_rate = (series.up_bps + series.down_bps) / 2.2 / 8.0
    bytes_per_minute = byte_rate * series.interval_seconds
    times = series.timestamps
    start = float(times[0])
    per_bucket: Dict[float, float] = {}
    for t, b in zip(times, bytes_per_minute):
        bucket = start + ((t - start) // bucket_seconds) * bucket_seconds
        per_bucket[bucket] = per_bucket.get(bucket, 0.0) + float(b)
    return TrendSeries.from_points(router_id, sorted(per_bucket.items()))


@dataclass(frozen=True)
class DegradingHome:
    """A home whose connectivity is measurably worsening."""

    router_id: str
    downtime_slope_per_day: float
    current_rate_per_day: float


def degrading_homes(data: StudyData,
                    min_slope: float = 0.02,
                    bucket_seconds: float = WEEK) -> List[DegradingHome]:
    """Homes whose weekly downtime rate trends upward.

    The ISP-facing payoff of continuous monitoring: a one-shot measurement
    cannot distinguish a bad week from a deteriorating line.
    """
    results: List[DegradingHome] = []
    for rid, log in sorted(data.heartbeats.items()):
        series = downtime_rate_series(log, bucket_seconds)
        if len(series) < 3 or not np.isfinite(series.slope_per_day):
            continue
        if series.slope_per_day >= min_slope:
            results.append(DegradingHome(
                router_id=rid,
                downtime_slope_per_day=series.slope_per_day,
                current_rate_per_day=float(series.values[-1]),
            ))
    results.sort(key=lambda h: -h.downtime_slope_per_day)
    return results
