"""One-call orchestration: simulate → collect → analyze-ready data.

:func:`run_study` is the library's main entry point:

>>> from repro import StudyConfig, run_study
>>> result = run_study(StudyConfig(seed=7, router_scale=0.2,
...                                duration_scale=0.1))
>>> len(result.data.heartbeats) > 0
True

``duration_scale`` shrinks every Table 2 collection window proportionally
(rate statistics are invariant; count statistics are normalized by the
analysis functions), and ``router_scale`` shrinks the per-country cohort.
Both default to the paper's full scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.datasets import StudyData
from repro.simulation.deployment import (
    Deployment,
    DeploymentConfig,
    build_deployment,
)
from repro.simulation.timebase import StudyWindows
from repro.collection.path import PathConfig
from repro.collection.server import collect_study


@dataclass(frozen=True)
class StudyConfig:
    """Top-level configuration for a full simulated study."""

    seed: int = 2013
    #: Scale on per-country router counts (1.0 = the paper's 126 homes).
    router_scale: float = 1.0
    #: Scale on every collection window (1.0 = the paper's Table 2 dates).
    duration_scale: float = 1.0
    #: Traffic-consenting US homes before the ≥100 MB filter.
    traffic_consents: int = 28
    #: Consenting homes that are barely active (the filter's exercise).
    low_activity_consents: int = 3
    #: Traffic-consenting homes outside the US (Section 7 expansion; the
    #: paper's own Traffic data set is US-only, so the default is 0).
    international_consents: int = 0
    #: Heartbeat path loss / collection outage model.
    path: PathConfig = PathConfig()

    def __post_init__(self) -> None:
        if not 0 < self.duration_scale <= 1:
            raise ValueError("duration_scale must be in (0, 1]")
        if self.router_scale <= 0:
            raise ValueError("router_scale must be positive")

    def windows(self) -> StudyWindows:
        """The (possibly shrunk) collection windows."""
        base = StudyWindows()
        if self.duration_scale >= 1.0:
            return base
        return base.scaled(self.duration_scale)

    def deployment_config(self) -> DeploymentConfig:
        """The deployment this study instantiates."""
        return DeploymentConfig(
            seed=self.seed,
            windows=self.windows(),
            router_scale=self.router_scale,
            traffic_consents=self.traffic_consents,
            low_activity_consents=self.low_activity_consents,
            international_consents=self.international_consents,
        )


@dataclass
class StudyResult:
    """A completed measurement campaign.

    ``deployment`` retains the simulator's ground truth (per-home power
    models, device populations, link configurations), which tests use to
    validate that the *analysis* recovers what the *simulation* planted.
    """

    config: StudyConfig
    deployment: Deployment
    data: StudyData


def run_study(config: Optional[StudyConfig] = None) -> StudyResult:
    """Run the full campaign: build homes, run firmware, collect, bundle."""
    config = config or StudyConfig()
    deployment = build_deployment(config.deployment_config())
    data = collect_study(deployment, seed=config.seed,
                         path_config=config.path)
    return StudyResult(config=config, deployment=deployment, data=data)
