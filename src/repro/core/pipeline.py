"""One-call orchestration: simulate → collect → analyze-ready data.

:func:`run_study` is the library's main entry point:

>>> from repro import StudyConfig, run_study
>>> result = run_study(StudyConfig(seed=7, router_scale=0.2,
...                                duration_scale=0.1))
>>> len(result.data.heartbeats) > 0
True

``duration_scale`` shrinks every Table 2 collection window proportionally
(rate statistics are invariant; count statistics are normalized by the
analysis functions), and ``router_scale`` shrinks the per-country cohort.
Both default to the paper's full scale.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro import trace
from repro.core.datasets import StudyData
from repro.core.streaming import StoreSource, StudyFigures, stream_figures
from repro.simulation.deployment import (
    Deployment,
    DeploymentConfig,
    build_deployment_plan,
)
from repro.simulation.timebase import StudyWindows
from repro.collection.backends import MemoryBackend, SpillBackend
from repro.collection.engine import run_campaign
from repro.collection.path import PathConfig
from repro.collection.storage import RecordStore

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class StudyConfig:
    """Top-level configuration for a full simulated study."""

    seed: int = 2013
    #: Scale on per-country router counts (1.0 = the paper's 126 homes).
    router_scale: float = 1.0
    #: Scale on every collection window (1.0 = the paper's Table 2 dates).
    duration_scale: float = 1.0
    #: Traffic-consenting US homes before the ≥100 MB filter.
    traffic_consents: int = 28
    #: Consenting homes that are barely active (the filter's exercise).
    low_activity_consents: int = 3
    #: Traffic-consenting homes outside the US (Section 7 expansion; the
    #: paper's own Traffic data set is US-only, so the default is 0).
    international_consents: int = 0
    #: Heartbeat path loss / collection outage model.
    path: PathConfig = field(default_factory=PathConfig)
    #: Worker processes for the campaign engine (1 = in-process serial).
    workers: int = 1
    #: Homes per engine shard (None = the engine's default).
    shard_size: Optional[int] = None
    #: Record-store backend: ``"memory"`` (everything in RAM) or
    #: ``"spill"`` (bounded-memory JSONL spill to disk).
    store_backend: str = "memory"
    #: Spill directory (None = a private temporary directory).
    spill_dir: Optional[str] = None
    #: Resident-record bound for the spill backend.
    spill_buffer_records: int = 8192
    #: Checkpoint directory for crash-safe resume (the engine then owns
    #: a durable spill store inside it; ``store_backend`` is ignored).
    checkpoint_dir: Optional[str] = None
    #: Retry budget per shard (attempts = retries + 1).
    max_shard_retries: int = 2
    #: Straggler timeout per shard, seconds (None = wait forever;
    #: applies to the parallel engine path only).
    shard_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0 < self.duration_scale <= 1:
            raise ValueError("duration_scale must be in (0, 1]")
        if self.router_scale <= 0:
            raise ValueError("router_scale must be positive")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.shard_size is not None and self.shard_size < 1:
            raise ValueError("shard_size must be positive")
        if self.store_backend not in ("memory", "spill"):
            raise ValueError("store_backend must be 'memory' or 'spill'")
        if self.spill_buffer_records < 1:
            raise ValueError("spill_buffer_records must be positive")
        if self.max_shard_retries < 0:
            raise ValueError("max_shard_retries cannot be negative")
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive")

    def windows(self) -> StudyWindows:
        """The (possibly shrunk) collection windows."""
        base = StudyWindows()
        if self.duration_scale >= 1.0:
            return base
        return base.scaled(self.duration_scale)

    def deployment_config(self) -> DeploymentConfig:
        """The deployment this study instantiates."""
        return DeploymentConfig(
            seed=self.seed,
            windows=self.windows(),
            router_scale=self.router_scale,
            traffic_consents=self.traffic_consents,
            low_activity_consents=self.low_activity_consents,
            international_consents=self.international_consents,
        )

    def make_store(self, windows: StudyWindows) -> RecordStore:
        """Build the record store this config selects."""
        if self.store_backend == "spill":
            backend = SpillBackend(
                directory=self.spill_dir,
                max_buffered_records=self.spill_buffer_records)
        else:
            backend = MemoryBackend()
        return RecordStore(windows, backend=backend)


@dataclass
class StudyResult:
    """A completed measurement campaign.

    ``deployment`` retains the simulator's ground truth (per-home power
    models, device populations, link configurations), which tests use to
    validate that the *analysis* recovers what the *simulation* planted.
    """

    config: StudyConfig
    deployment: Deployment
    data: StudyData


@dataclass
class StreamedStudy:
    """A completed campaign analyzed on the streaming path.

    Instead of materialized ``StudyData`` it carries the figure bundle
    computed in one pass off the record store's backend — with the spill
    backend, the records were never resident as Python lists.  ``store``
    stays open for further streaming passes (or an explicit
    ``to_study_data()`` when the caller decides to pay for it).
    """

    config: StudyConfig
    deployment: Deployment
    figures: StudyFigures
    store: RecordStore


def _start_tracing(trace_dir: Union[str, Path, None],
                   seed: int) -> Optional[Path]:
    """Enable span tracing for one study run; returns the export dir."""
    if trace_dir is None:
        return None
    directory = Path(trace_dir)
    directory.mkdir(parents=True, exist_ok=True)
    recorder = trace.enable(f"study-s{seed}-{int(time.time())}")
    recorder.clear()
    return directory


def _export_trace(directory: Optional[Path]):
    """Drain, export, and deactivate tracing; returns the TraceSummary."""
    if directory is None:
        return None
    snapshot = trace.drain()
    trace.disable()
    spans = snapshot["spans"]
    trace.write_chrome_trace(directory / "trace.json", spans,
                             snapshot["trace_id"])
    summary = trace.summarize_spans(spans, snapshot["trace_id"])
    trace.write_trace_summary(directory / "trace_summary.json", summary)
    logger.info("trace written to %s (%d spans)", directory, len(spans))
    return summary


def _progress_path(telemetry_dir, trace_dir) -> Optional[Path]:
    """Where the engine's heartbeat lands: the telemetry dir when there
    is one (so ``repro watch`` finds progress + events together), else
    the trace dir."""
    from repro.telemetry.progress import PROGRESS_NAME
    for directory in (telemetry_dir, trace_dir):
        if directory is not None:
            return Path(directory) / PROGRESS_NAME
    return None


def run_study(config: Optional[StudyConfig] = None,
              workers: Optional[int] = None,
              shard_size: Optional[int] = None,
              profile: bool = False,
              telemetry_dir: Union[str, Path, None] = None,
              resume: bool = False,
              fault_plan=None,
              trace_dir: Union[str, Path, None] = None) -> StudyResult:
    """Run the full campaign: plan homes, run firmware shards, collect.

    *workers* and *shard_size* override the config's engine knobs.  For a
    fixed seed the result is bitwise-identical for any worker count; the
    returned :attr:`StudyResult.deployment` is a lazy view that only
    materializes household ground truth when inspected.

    ``profile=True`` records per-stage timings via :mod:`repro.perf`
    (inspect them with ``repro.perf.snapshot()`` after the call, or use the
    CLI's ``--profile``).  *telemetry_dir* activates the full
    :mod:`repro.telemetry` subsystem for this run and writes its artifacts
    (Prometheus/JSON metrics, JSONL event log, run manifest,
    deployment-health report) to that directory.  Neither observer
    changes the collected data — ``study_digest`` is pinned identical
    with telemetry on and off.

    With ``config.checkpoint_dir`` the engine owns a durable store inside
    that directory and checkpoints after every shard ingest;
    ``resume=True`` continues a previously interrupted campaign from its
    checkpoint.  *fault_plan* injects deterministic failures for testing
    (:mod:`repro.collection.faults`).  None of the fault-tolerance
    machinery changes the collected data.

    *trace_dir* activates :mod:`repro.trace` for this run and writes
    ``trace.json`` (Chrome trace-event format — load it in Perfetto) and
    ``trace_summary.json`` there; the engine also heartbeats an atomic
    ``progress.json`` (into *telemetry_dir* when given, else
    *trace_dir*) that ``repro watch`` tails.  Like telemetry, tracing
    observes the campaign without steering it — ``study_digest`` stays
    pinned.
    """
    config = config or StudyConfig()
    session = None
    if telemetry_dir is not None:
        from repro.telemetry import TelemetrySession
        session = TelemetrySession(telemetry_dir)
    trace_out = _start_tracing(trace_dir, config.seed)
    effective_workers = config.workers if workers is None else workers
    try:
        plan = build_deployment_plan(config.deployment_config())
        data = run_campaign(
            plan,
            seed=config.seed,
            path_config=config.path,
            # With a checkpoint directory the engine owns the durable
            # store; otherwise the config picks the backend.
            store=(None if config.checkpoint_dir is not None
                   else config.make_store(plan.windows)),
            workers=effective_workers,
            shard_size=(config.shard_size if shard_size is None
                        else shard_size),
            profile=profile,
            max_shard_retries=config.max_shard_retries,
            shard_timeout=config.shard_timeout,
            fault_plan=fault_plan,
            checkpoint_dir=config.checkpoint_dir,
            resume=resume,
            progress_path=_progress_path(telemetry_dir, trace_dir),
        )
        summary = _export_trace(trace_out)
        trace_out = None
        if session is not None:
            session.finalize(config, data, workers=effective_workers,
                             trace_summary=summary)
    finally:
        if trace_out is not None:  # an exception beat the export
            trace.disable()
        if session is not None:
            session.close()
    return StudyResult(config=config, deployment=Deployment(plan), data=data)


def run_study_streaming(config: Optional[StudyConfig] = None,
                        workers: Optional[int] = None,
                        shard_size: Optional[int] = None,
                        profile: bool = False,
                        fault_plan=None,
                        trace_dir: Union[str, Path, None] = None
                        ) -> StreamedStudy:
    """Run the campaign and analyze it without materializing the study.

    The engine collects into the config's record store as usual, but the
    store is never frozen into ``StudyData``: every Section 4-6 figure is
    computed by :func:`repro.core.streaming.stream_figures` in one pass
    over the backend's record iterators.  With ``store_backend="spill"``
    peak memory stays at the spill buffer plus the sketches, whatever the
    campaign size.
    """
    config = config or StudyConfig()
    trace_out = _start_tracing(trace_dir, config.seed)
    effective_workers = config.workers if workers is None else workers
    try:
        plan = build_deployment_plan(config.deployment_config())
        store = run_campaign(
            plan,
            seed=config.seed,
            path_config=config.path,
            store=(None if config.checkpoint_dir is not None
                   else config.make_store(plan.windows)),
            workers=effective_workers,
            shard_size=(config.shard_size if shard_size is None
                        else shard_size),
            profile=profile,
            max_shard_retries=config.max_shard_retries,
            shard_timeout=config.shard_timeout,
            fault_plan=fault_plan,
            checkpoint_dir=config.checkpoint_dir,
            materialize=False,
            progress_path=_progress_path(None, trace_dir),
        )
        # The streaming analyze passes record their spans too, so the
        # exported timeline covers collection *and* analysis.
        figures = stream_figures(StoreSource(store))
        _export_trace(trace_out)
        trace_out = None
    finally:
        if trace_out is not None:
            trace.disable()
    return StreamedStudy(config=config, deployment=Deployment(plan),
                         figures=figures, store=store)
