"""Mergeable online accumulators for one-pass streaming analytics.

The exact analysis functions in :mod:`repro.core` hold every sample in
RAM (``EmpiricalCdf`` keeps the sorted array, ``MeanWithSpread`` the raw
list).  The streaming driver (:mod:`repro.core.streaming`) cannot — a
million-home archive holds billions of samples — so this module provides
the O(sketch)-memory counterparts:

* :class:`QuantileSketch` — the ``EmpiricalCdf`` query interface
  (``quantile``, ``median``, ``fraction_at_most/least``, ``series``,
  ``n``, ``mean``) over a t-digest-style merging-centroid summary.
  Below :attr:`~QuantileSketch.exact_threshold` samples it keeps the raw
  values and delegates every query to a real ``EmpiricalCdf`` — bitwise
  identical to the exact path.  Past the threshold it compresses into at
  most ~2x``compression`` centroids with the classic rank-error bound:
  tightest at the tails, worst (~``1/compression`` relative rank) at the
  median; :data:`QUANTILE_RANK_TOLERANCE` is the bound CI asserts.
* :class:`StreamingMeanSpread` — Welford's online mean/variance,
  finalized into a :class:`~repro.core.stats.MeanWithSpread`.
* :class:`StreamingHourProfile` — 24-slot sum/count accumulation,
  finalized via :meth:`HourOfDayProfile.from_sums` so streamed and exact
  profiles are bitwise-identical.
* :class:`RankedShareAccumulator` — running padded rank sums;
  :func:`repro.core.stats.mean_ranked_shares` is implemented on top of
  it, so streamed and exact ranked shares are identical by construction.

Every accumulator supports ``merge`` so per-shard partials can combine
associatively (the driver today runs single-threaded; merge keeps the
door open for sharded analysis).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.stats import EmpiricalCdf, HourOfDayProfile, MeanWithSpread

#: Declared rank-error bound for a *compressed* sketch: for every q,
#: ``sketch.quantile(q)`` lies between the exact quantiles at
#: ``q - tol`` and ``q + tol``, and ``fraction_at_most`` is within
#: ``+/- tol`` of the exact fraction.  With ``compression=200`` the
#: worst-case mid-distribution error is ~1/200; 0.02 adds slack for
#: interpolation.  Uncompressed sketches are bitwise-exact.
QUANTILE_RANK_TOLERANCE = 0.02

#: Sample count up to which the sketch stays exact.  Every per-country /
#: per-group distribution in a paper-scale (126-home) study is far below
#: this, so small studies reproduce the exact figures bitwise.
DEFAULT_EXACT_THRESHOLD = 4096


def _k_scale(q: float, compression: float) -> float:
    """The t-digest k1 scale function: maps quantile to centroid index."""
    return compression / (2.0 * math.pi) * math.asin(
        min(1.0, max(-1.0, 2.0 * q - 1.0)))


def _k_scale_inv(k: float, compression: float) -> float:
    """Inverse of :func:`_k_scale` (clamped to [0, 1])."""
    return min(1.0, max(0.0, (1.0 + math.sin(
        2.0 * math.pi * k / compression)) / 2.0))


class QuantileSketch:
    """A mergeable quantile sketch behind the ``EmpiricalCdf`` interface.

    Exact below ``exact_threshold`` samples (queries delegate to a cached
    :class:`EmpiricalCdf` over the raw values), t-digest merging-centroid
    summary above it (memory bounded by ~2x``compression`` centroids no
    matter how many samples stream through).
    """

    def __init__(self, compression: int = 200,
                 exact_threshold: int = DEFAULT_EXACT_THRESHOLD):
        if compression < 20:
            raise ValueError("compression must be at least 20")
        self.compression = compression
        self.exact_threshold = exact_threshold
        #: Raw values while exact; None once compressed (one-way door).
        self._exact: Optional[List[float]] = []
        self._cdf: Optional[EmpiricalCdf] = None
        self._means = np.empty(0)
        self._weights = np.empty(0)
        self._buffer: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- ingest ------------------------------------------------------------------

    def add(self, value: float) -> None:
        """Add one observation."""
        value = float(value)
        self._count += 1
        self._sum += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        self._cdf = None
        if self._exact is not None:
            self._exact.append(value)
            if len(self._exact) > self.exact_threshold:
                self._buffer = self._exact
                self._exact = None
                self._compress()
            return
        self._buffer.append(value)
        if len(self._buffer) >= 4 * self.compression:
            self._compress()

    def add_many(self, values: Iterable[float]) -> None:
        """Add a batch of observations."""
        for value in np.asarray(
                values if isinstance(values, np.ndarray) else list(values),
                dtype=float).ravel():
            self.add(value)

    def merge(self, other: "QuantileSketch") -> None:
        """Fold *other*'s state into this sketch."""
        if other._count == 0:
            return
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._cdf = None
        other_values = (list(other._buffer) if other._exact is None
                        else list(other._exact))
        if self._exact is not None and other._exact is not None and \
                len(self._exact) + len(other_values) <= self.exact_threshold:
            self._exact.extend(other_values)
            return
        if self._exact is not None:
            self._buffer = self._exact
            self._exact = None
        self._buffer.extend(other_values)
        if other._means.size:
            self._means = np.concatenate([self._means, other._means])
            self._weights = np.concatenate([self._weights, other._weights])
        self._compress()

    def _compress(self) -> None:
        """Fold the buffer into the centroid summary (k1 size limits)."""
        if self._buffer:
            points = np.asarray(self._buffer, dtype=float)
            self._buffer = []
            self._means = np.concatenate([self._means, points])
            self._weights = np.concatenate(
                [self._weights, np.ones(points.size)])
        if self._means.size <= 1:
            return
        order = np.argsort(self._means, kind="stable")
        means = self._means[order]
        weights = self._weights[order]
        total = float(weights.sum())
        out_means: List[float] = []
        out_weights: List[float] = []
        cur_mean = float(means[0])
        cur_weight = float(weights[0])
        emitted = 0.0  # weight already flushed to out_*
        q_limit = _k_scale_inv(_k_scale(0.0, self.compression) + 1.0,
                               self.compression)
        for mean, weight in zip(means[1:], weights[1:]):
            candidate = (emitted + cur_weight + weight) / total
            if candidate <= q_limit:
                cur_weight += weight
                cur_mean += weight * (mean - cur_mean) / cur_weight
            else:
                out_means.append(cur_mean)
                out_weights.append(cur_weight)
                emitted += cur_weight
                q_limit = _k_scale_inv(
                    _k_scale(emitted / total, self.compression) + 1.0,
                    self.compression)
                cur_mean = float(mean)
                cur_weight = float(weight)
        out_means.append(cur_mean)
        out_weights.append(cur_weight)
        self._means = np.asarray(out_means)
        self._weights = np.asarray(out_weights)

    # -- queries -----------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of observations added."""
        return self._count

    @property
    def compressed(self) -> bool:
        """True once the sketch left exact mode (error bounds apply)."""
        return self._exact is None

    @property
    def mean(self) -> float:
        """Exact running mean (independent of compression)."""
        if self._count == 0:
            return float("nan")
        return self._sum / self._count

    def _exact_cdf(self) -> EmpiricalCdf:
        if self._cdf is None:
            self._cdf = EmpiricalCdf.from_samples(self._exact or [])
        return self._cdf

    def _centroid_centers(self) -> Tuple[np.ndarray, np.ndarray]:
        """Centroid means and the cumulative weight at each center."""
        self._compress()
        cum = np.cumsum(self._weights)
        centers = cum - self._weights / 2.0
        return self._means, centers

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1); exact or within the rank bound."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self._count == 0:
            raise ValueError("quantile of an empty CDF")
        if self._exact is not None:
            return self._exact_cdf().quantile(q)
        means, centers = self._centroid_centers()
        index = q * self._count
        if means.size == 1 or index <= centers[0]:
            if centers[0] <= 0:
                return float(means[0])
            lo, hi = self._min, float(means[0])
            frac = index / centers[0]
            return float(lo + frac * (hi - lo))
        if index >= centers[-1]:
            span = self._count - centers[-1]
            if span <= 0:
                return float(means[-1])
            frac = (index - centers[-1]) / span
            return float(means[-1] + frac * (self._max - means[-1]))
        hi_idx = int(np.searchsorted(centers, index, side="right"))
        lo_idx = hi_idx - 1
        span = centers[hi_idx] - centers[lo_idx]
        frac = 0.0 if span <= 0 else (index - centers[lo_idx]) / span
        return float(means[lo_idx] + frac * (means[hi_idx] - means[lo_idx]))

    @property
    def median(self) -> float:
        """Convenience for :meth:`quantile` at 0.5."""
        return self.quantile(0.5)

    def _cdf_at(self, threshold: float) -> float:
        means, centers = self._centroid_centers()
        if threshold < self._min:
            return 0.0
        if threshold >= self._max:
            return 1.0
        # Piecewise-linear through (min, 0), every centroid center, (max, n).
        xs = np.concatenate([[self._min], means, [self._max]])
        ys = np.concatenate([[0.0], centers, [float(self._count)]])
        return float(np.interp(threshold, xs, ys) / self._count)

    def fraction_at_most(self, threshold: float) -> float:
        """P(X <= threshold); exact or within the rank bound."""
        if self._count == 0:
            raise ValueError("fraction of an empty CDF")
        if self._exact is not None:
            return self._exact_cdf().fraction_at_most(threshold)
        return self._cdf_at(threshold)

    def fraction_at_least(self, threshold: float) -> float:
        """P(X >= threshold); exact or within the rank bound."""
        if self._count == 0:
            raise ValueError("fraction of an empty CDF")
        if self._exact is not None:
            return self._exact_cdf().fraction_at_least(threshold)
        return 1.0 - self._cdf_at(threshold)

    def series(self, points: int = 50) -> List[Tuple[float, float]]:
        """Downsample to ~*points* (value, fraction) pairs for rendering."""
        if self._count == 0:
            return []
        if self._exact is not None:
            return self._exact_cdf().series(points)
        means, centers = self._centroid_centers()
        values = np.concatenate([[self._min], means, [self._max]])
        fractions = np.concatenate(
            [[0.0], centers / self._count, [1.0]])
        if values.size <= points:
            return list(zip(values.tolist(), fractions.tolist()))
        idx = np.unique(np.linspace(0, values.size - 1, points).astype(int))
        return [(float(values[i]), float(fractions[i])) for i in idx]

    def to_cdf(self) -> EmpiricalCdf:
        """Materialize an :class:`EmpiricalCdf` view of this sketch.

        Exact mode returns the true empirical CDF; compressed mode returns
        the centroid-center approximation (same data :meth:`series` plots).
        """
        if self._exact is not None:
            return self._exact_cdf()
        means, centers = self._centroid_centers()
        return EmpiricalCdf(values=means.copy(),
                            fractions=centers / max(self._count, 1))


class StreamingMeanSpread:
    """Welford online mean/std, finalized as a ``MeanWithSpread``.

    The streamed mean/std agree with the exact numpy computation to
    ~1e-9 relative (numpy uses pairwise summation; Welford is sequential
    — both are stable, the rounding differs in the last few bits).
    """

    __slots__ = ("_n", "_mean", "_m2")

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, value: float) -> None:
        """Add one observation."""
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)

    def merge(self, other: "StreamingMeanSpread") -> None:
        """Fold *other* in (Chan et al.'s parallel update)."""
        if other._n == 0:
            return
        if self._n == 0:
            self._n, self._mean, self._m2 = other._n, other._mean, other._m2
            return
        total = self._n + other._n
        delta = other._mean - self._mean
        self._mean += delta * other._n / total
        self._m2 += other._m2 + delta * delta * self._n * other._n / total
        self._n = total

    @property
    def n(self) -> int:
        return self._n

    def result(self) -> MeanWithSpread:
        """Finalize (nan mean/std for an empty accumulator)."""
        if self._n == 0:
            return MeanWithSpread(mean=float("nan"), std=float("nan"), n=0)
        return MeanWithSpread(mean=self._mean,
                              std=math.sqrt(max(self._m2, 0.0) / self._n),
                              n=self._n)


class StreamingHourProfile:
    """24-slot sum/count accumulation for :class:`HourOfDayProfile`.

    Adding each (hour, value) sample in record order performs the same
    float additions ``np.add.at`` does in the exact path, so the streamed
    profile is bitwise-identical to the exact one.
    """

    __slots__ = ("_sums", "_counts")

    def __init__(self) -> None:
        self._sums = np.zeros(24)
        self._counts = np.zeros(24)

    def add(self, hour: int, value: float) -> None:
        """Add one sample (hour must be 0..23)."""
        if not 0 <= hour <= 23:
            raise ValueError("hours must be in 0..23")
        self._sums[hour] += value
        self._counts[hour] += 1

    def merge(self, other: "StreamingHourProfile") -> None:
        self._sums += other._sums
        self._counts += other._counts

    def result(self) -> HourOfDayProfile:
        return HourOfDayProfile.from_sums(self._sums.copy(),
                                          self._counts.copy())


class RankedShareAccumulator:
    """Running mean of the rank-k share across homes (Figs. 17-19 shape).

    :func:`repro.core.stats.mean_ranked_shares` delegates to this class,
    so exact and streamed ranked shares are identical by construction.
    """

    __slots__ = ("_sums", "_homes")

    def __init__(self, ranks: int) -> None:
        if ranks <= 0:
            raise ValueError("ranks must be positive")
        self._sums = np.zeros(ranks)
        self._homes = 0

    def add(self, share_vec: np.ndarray) -> None:
        """Add one home's descending share vector (padded with zeros)."""
        vec = np.asarray(share_vec, dtype=float)
        take = min(self._sums.size, vec.size)
        self._sums[:take] += vec[:take]
        self._homes += 1

    def merge(self, other: "RankedShareAccumulator") -> None:
        if other._sums.size != self._sums.size:
            raise ValueError("cannot merge accumulators of different ranks")
        self._sums += other._sums
        self._homes += other._homes

    @property
    def homes(self) -> int:
        return self._homes

    def result(self) -> np.ndarray:
        """The mean share per rank (zeros when no home was added)."""
        if self._homes == 0:
            return np.zeros(self._sums.size)
        return self._sums / self._homes
