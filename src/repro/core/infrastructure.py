"""Section 5: the infrastructure inside home networks.

Inputs are the Devices data set (hourly censuses + the per-device roster)
and the WiFi data set (neighbor-AP scans); outputs are Figs. 7-12 and
Tables 4-5:

* device censuses: how many devices exist per home (Fig. 7) and how many
  are connected at a time, split wired/wireless (Fig. 8) and by band
  (Fig. 9 / Fig. 10);
* always-connected devices (Table 5);
* Ethernet port pressure (the "two ports would suffice" argument);
* neighbor-AP crowding per band and development class (Fig. 11);
* manufacturer profiles from roster OUIs (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.datasets import StudyData
from repro.core.records import DeviceRosterEntry, Medium, Spectrum
from repro.core.stats import EmpiricalCdf, MeanWithSpread
from repro.netutils.mac import parse_mac
from repro.simulation.vendors import BISMARK_OUI, vendor_category


# -- Fig. 7: how many devices? ----------------------------------------------------

def devices_per_home(data: StudyData) -> Dict[str, int]:
    """Unique devices ever seen per home (roster size)."""
    counts: Dict[str, int] = {}
    for entry in data.roster:
        counts[entry.router_id] = counts.get(entry.router_id, 0) + 1
    return counts


def devices_per_home_cdf(data: StudyData) -> EmpiricalCdf:
    """Fig. 7: CDF of the number of unique devices per home."""
    return EmpiricalCdf.from_samples(devices_per_home(data).values())


# -- Figs. 8-9: how many connected at a time? ---------------------------------------

def _per_home_census_means(data: StudyData) -> Dict[str, Dict[str, float]]:
    """Per home: mean connected devices by medium/band across censuses."""
    sums: Dict[str, np.ndarray] = {}
    counts: Dict[str, int] = {}
    for sample in data.device_counts:
        vec = np.array([sample.wired, sample.wireless_2_4,
                        sample.wireless_5], dtype=float)
        if sample.router_id in sums:
            sums[sample.router_id] += vec
            counts[sample.router_id] += 1
        else:
            sums[sample.router_id] = vec
            counts[sample.router_id] = 1
    means: Dict[str, Dict[str, float]] = {}
    for rid, total in sums.items():
        wired, w24, w5 = total / counts[rid]
        means[rid] = {"wired": wired, "wireless_2_4": w24, "wireless_5": w5,
                      "wireless": w24 + w5}
    return means


def mean_connected_by_medium(data: StudyData,
                             developed: bool) -> Dict[str, MeanWithSpread]:
    """Fig. 8: mean simultaneously-connected devices, wired vs wireless."""
    wanted = set(data.developed_ids() if developed else data.developing_ids())
    per_home = _per_home_census_means(data)
    wired = [v["wired"] for rid, v in per_home.items() if rid in wanted]
    wireless = [v["wireless"] for rid, v in per_home.items() if rid in wanted]
    return {
        "wired": MeanWithSpread.from_samples(wired),
        "wireless": MeanWithSpread.from_samples(wireless),
    }


def mean_connected_by_spectrum(data: StudyData,
                               developed: bool) -> Dict[str, MeanWithSpread]:
    """Fig. 9: mean simultaneously-connected wireless devices per band."""
    wanted = set(data.developed_ids() if developed else data.developing_ids())
    per_home = _per_home_census_means(data)
    w24 = [v["wireless_2_4"] for rid, v in per_home.items() if rid in wanted]
    w5 = [v["wireless_5"] for rid, v in per_home.items() if rid in wanted]
    return {
        "2.4GHz": MeanWithSpread.from_samples(w24),
        "5GHz": MeanWithSpread.from_samples(w5),
    }


# -- Table 5: always-connected devices ----------------------------------------------

@dataclass(frozen=True)
class AlwaysConnectedRow:
    """One row of Table 5."""

    group: str
    total_households: int
    with_always_wired: int
    with_always_wireless: int

    @property
    def wired_fraction(self) -> float:
        """Share of households with an always-connected wired device."""
        if self.total_households == 0:
            return float("nan")
        return self.with_always_wired / self.total_households

    @property
    def wireless_fraction(self) -> float:
        """Share of households with an always-connected wireless device."""
        if self.total_households == 0:
            return float("nan")
        return self.with_always_wireless / self.total_households


def always_connected_households(data: StudyData) -> List[AlwaysConnectedRow]:
    """Table 5: households with ≥1 never-disconnecting device, by group."""
    homes_in_dataset = {entry.router_id for entry in data.roster}
    rows: List[AlwaysConnectedRow] = []
    for group, wanted_ids in (
            ("developed", set(data.developed_ids())),
            ("developing", set(data.developing_ids()))):
        homes = homes_in_dataset & wanted_ids
        wired_homes = set()
        wireless_homes = set()
        for entry in data.roster:
            if entry.router_id not in homes or not entry.always_connected:
                continue
            if entry.medium is Medium.WIRED:
                wired_homes.add(entry.router_id)
            else:
                wireless_homes.add(entry.router_id)
        rows.append(AlwaysConnectedRow(
            group=group,
            total_households=len(homes),
            with_always_wired=len(wired_homes),
            with_always_wireless=len(wireless_homes),
        ))
    return rows


# -- Fig. 10: unique devices per band -------------------------------------------------

def unique_devices_per_spectrum_cdf(data: StudyData,
                                    spectrum: Spectrum) -> EmpiricalCdf:
    """Fig. 10: CDF over homes of unique devices seen on one band.

    Homes with Devices data but no device on the band contribute zero, as
    in the paper (the CDFs start well above zero at x=0 for 5 GHz).
    """
    homes = {entry.router_id for entry in data.roster}
    counts = {rid: 0 for rid in homes}
    for entry in data.roster:
        if entry.spectrum is spectrum:
            counts[entry.router_id] += 1
    return EmpiricalCdf.from_samples(counts.values())


# -- Ethernet port pressure -------------------------------------------------------------

@dataclass(frozen=True)
class PortUsage:
    """How hard homes push the four LAN ports (Section 5.2)."""

    mean_wired_in_use: float
    fraction_all_four_used: float
    fraction_at_most_two_needed: float


def ethernet_port_usage(data: StudyData, ports: int = 4) -> PortUsage:
    """Wired-port statistics across all census samples."""
    per_home_max: Dict[str, int] = {}
    wired_means = _per_home_census_means(data)
    for sample in data.device_counts:
        current = per_home_max.get(sample.router_id, 0)
        per_home_max[sample.router_id] = max(current, sample.wired)
    if not per_home_max:
        return PortUsage(float("nan"), float("nan"), float("nan"))
    maxima = np.array(list(per_home_max.values()))
    means = np.array([v["wired"] for v in wired_means.values()])
    return PortUsage(
        mean_wired_in_use=float(means.mean()),
        fraction_all_four_used=float((maxima >= ports).mean()),
        fraction_at_most_two_needed=float((maxima <= 2).mean()),
    )


# -- Fig. 11: neighbor APs ----------------------------------------------------------------

def neighbor_aps_per_home(data: StudyData, spectrum: Spectrum,
                          quantile: float = 0.95) -> Dict[str, float]:
    """Per home: the q-quantile of neighbor-AP counts across its scans.

    A high quantile approximates "unique access points seen" while staying
    robust to scans taken while neighbors were off.
    """
    scans: Dict[str, List[int]] = {}
    for sample in data.wifi_scans:
        if sample.spectrum is spectrum:
            scans.setdefault(sample.router_id, []).append(sample.neighbor_aps)
    return {rid: float(np.quantile(np.asarray(counts), quantile))
            for rid, counts in scans.items()}


def neighbor_ap_cdf(data: StudyData, spectrum: Spectrum,
                    developed: Optional[bool] = None) -> EmpiricalCdf:
    """Fig. 11: CDF over homes of visible neighbor APs on one band."""
    per_home = neighbor_aps_per_home(data, spectrum)
    if developed is None:
        values = list(per_home.values())
    else:
        wanted = set(data.developed_ids() if developed
                     else data.developing_ids())
        values = [v for rid, v in per_home.items() if rid in wanted]
    return EmpiricalCdf.from_samples(values)


def neighbor_ap_bimodality(cdf: EmpiricalCdf,
                           low: float = 3.0,
                           gap_high: float = 10.0) -> float:
    """Fraction of homes outside the (low, gap_high) middle band.

    The paper observes "either there are very few access points in that
    channel or there are a lot"; values near 1 mean strongly bimodal.
    """
    if cdf.n == 0:
        return float("nan")
    middle = cdf.fraction_at_most(gap_high) - cdf.fraction_at_most(low)
    return 1.0 - middle


# -- Fig. 12: vendors ---------------------------------------------------------------------

def vendor_histogram(data: StudyData,
                     router_ids: Optional[Iterable[str]] = None,
                     min_bytes: float = 100e3) -> Dict[str, int]:
    """Fig. 12: device counts per manufacturer bucket.

    Mirrors the paper's filters: only homes in the Traffic data set, only
    devices that transferred at least *min_bytes*, and the BISmark gateways
    themselves removed.  MACs are lower-24-hashed but keep their OUI, which
    is all this resolution needs.
    """
    if router_ids is None:
        wanted = set(data.throughput) | {f.router_id for f in data.flows}
    else:
        wanted = set(router_ids)

    bytes_by_mac: Dict[str, float] = {}
    for flow in data.flows:
        if flow.router_id in wanted:
            bytes_by_mac[flow.device_mac] = (
                bytes_by_mac.get(flow.device_mac, 0.0) + flow.bytes_total)

    histogram: Dict[str, int] = {}
    for entry in data.roster:
        if entry.router_id not in wanted:
            continue
        if bytes_by_mac.get(entry.device_mac, 0.0) < min_bytes:
            continue
        mac = parse_mac(entry.device_mac)
        if mac.oui == BISMARK_OUI:
            continue
        category = vendor_category(mac.oui)
        histogram[category] = histogram.get(category, 0) + 1
    return dict(sorted(histogram.items(), key=lambda kv: -kv[1]))


# -- Table 4 --------------------------------------------------------------------------------

@dataclass(frozen=True)
class Section5Highlights:
    """The Table 4 claims, as measured."""

    always_wired_fraction_developed: float
    always_wired_fraction_developing: float
    median_devices_2_4ghz: float
    median_devices_5ghz: float
    median_neighbor_aps_developed: float
    median_neighbor_aps_developing: float


def section5_highlights(data: StudyData) -> Section5Highlights:
    """Compute Table 4 from the Devices + WiFi data sets."""
    rows = {row.group: row for row in always_connected_households(data)}
    cdf_24 = unique_devices_per_spectrum_cdf(data, Spectrum.GHZ_2_4)
    cdf_5 = unique_devices_per_spectrum_cdf(data, Spectrum.GHZ_5)
    ap_dev = neighbor_ap_cdf(data, Spectrum.GHZ_2_4, developed=True)
    ap_dvg = neighbor_ap_cdf(data, Spectrum.GHZ_2_4, developed=False)
    return Section5Highlights(
        always_wired_fraction_developed=rows["developed"].wired_fraction,
        always_wired_fraction_developing=rows["developing"].wired_fraction,
        median_devices_2_4ghz=cdf_24.median if cdf_24.n else float("nan"),
        median_devices_5ghz=cdf_5.median if cdf_5.n else float("nan"),
        median_neighbor_aps_developed=ap_dev.median if ap_dev.n else float("nan"),
        median_neighbor_aps_developing=ap_dvg.median if ap_dvg.n else float("nan"),
    )
