"""The heartbeat sender: ~one packet per minute, no retransmissions.

The real daemon sends a UDP heartbeat to the central server roughly every
minute whenever the router is up and the link carries traffic; heartbeats
are never retransmitted (paper Section 3.2.2).  The simulator therefore
emits a *send* timestamp for every minute slot during which the household
was online; delivery loss is the collection path's job
(:mod:`repro.collection.path`).
"""

from __future__ import annotations

import numpy as np

from repro.simulation.household import Household
from repro.simulation.timebase import MINUTE


def heartbeat_send_times(household: Household, start: float, end: float,
                         rng: np.random.Generator,
                         interval: float = MINUTE,
                         jitter_seconds: float = 2.0) -> np.ndarray:
    """Epochs at which the router transmitted a heartbeat in ``[start, end)``.

    The daemon ticks on its own clock (a fixed phase per boot, approximated
    here by a fixed per-router phase) and only transmits when the router is
    powered *and* the access link is up — a powered router behind a dead
    link cannot reach the server, which is exactly the ambiguity the
    paper's Section 3.3 discusses.
    """
    if end <= start:
        return np.empty(0)
    if interval <= 0:
        raise ValueError("heartbeat interval must be positive")
    phase = float(rng.uniform(0, interval))
    ticks = np.arange(start + phase, end, interval)
    if ticks.size == 0:
        return ticks
    online = household.online_intervals(start, end)
    sendable = online.contains_many(ticks)
    times = ticks[sendable]
    if jitter_seconds > 0 and times.size:
        times = times + rng.uniform(-jitter_seconds, jitter_seconds,
                                    size=times.size)
    return np.sort(times)
