"""The hourly device census (paper Section 3.2.2, "Devices").

Every hour the firmware counts devices on the wired Ethernet ports and
associated clients on each wireless band.  The WNDR3800 has exactly four
LAN ports, so the wired count is physically capped at four — the paper
leans on this ("only a few households use all four Ethernet ports").

The census is a *local* observation: it needs the router powered but not
the access link (devices associate with the AP regardless of the ISP), and
it is delivered later in batch, so link outages don't create census holes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

import numpy as np

from repro.core.records import DeviceCountSample, DeviceRosterEntry, Medium, Spectrum
from repro.simulation.household import Household
from repro.simulation.timebase import HOUR

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.firmware.anonymize import AnonymizationPolicy

#: LAN ports on the Netgear WNDR3800/WNDR3700v2.
ETHERNET_PORTS = 4


def census_at(household: Household, epoch: float) -> DeviceCountSample:
    """Count connected devices at one instant (router assumed powered)."""
    wired = 0
    wireless_24 = 0
    wireless_5 = 0
    for device in household.devices:
        if not device.is_connected(epoch):
            continue
        if device.medium is Medium.WIRED:
            wired += 1
        elif device.spectrum is Spectrum.GHZ_5:
            wireless_5 += 1
        else:
            wireless_24 += 1
    return DeviceCountSample(
        router_id=household.router_id,
        timestamp=epoch,
        wired=min(wired, ETHERNET_PORTS),
        wireless_2_4=wireless_24,
        wireless_5=wireless_5,
    )


def device_roster(household: Household, start: float, end: float,
                  policy: "AnonymizationPolicy",
                  min_on_fraction: float = 0.25) -> List[DeviceRosterEntry]:
    """Enumerate every device the gateway saw in ``[start, end)``.

    A device counts as *always connected* when its association covers all
    the router's powered time in the window (the gateway cannot observe
    anything while itself unpowered), which is the observable form of the
    paper's "never disconnects from the home gateway router" criterion.
    Appliance-mode homes whose router is on less than *min_on_fraction* of
    the window cannot certify anything as always-connected — a phone that
    shows up for every three-hour evening block is not "never disconnects
    for over five weeks".
    """
    router_on = household.power.up_intervals(start, end)
    enough_observation = (
        router_on.total_duration() >= min_on_fraction * (end - start))
    entries: List[DeviceRosterEntry] = []
    for device in household.devices:
        seen = device.connected_intervals(start, end)
        observed = seen.intersection(router_on)
        if not observed:
            continue
        covers_all_on = (
            enough_observation
            and router_on.intersection(seen).total_duration()
            >= router_on.total_duration() - 1.0
        )
        entries.append(DeviceRosterEntry(
            router_id=household.router_id,
            device_mac=policy.anonymize_mac(device.mac),
            medium=device.medium,
            spectrum=device.spectrum,
            first_seen=observed.span[0],
            last_seen=observed.span[1],
            always_connected=covers_all_on and bool(router_on),
        ))
    return entries


def device_counts(household: Household, start: float, end: float,
                  rng: np.random.Generator,
                  interval: float = HOUR) -> List[DeviceCountSample]:
    """Collect the hourly censuses one router took in ``[start, end)``.

    Equivalent to running :func:`census_at` at every powered tick, but the
    per-device association lookups are batched: each device answers for
    all ticks in one vectorized interval query, so the cost scales with
    devices + ticks rather than devices × ticks.
    """
    if interval <= 0:
        raise ValueError("census interval must be positive")
    samples: List[DeviceCountSample] = []
    phase = float(rng.uniform(0, interval))
    # Same accumulating tick walk as before (bitwise-identical timestamps).
    tick_list: List[float] = []
    tick = start + phase
    while tick < end:
        tick_list.append(tick)
        tick += interval
    if not tick_list:
        return samples
    ticks = np.asarray(tick_list)
    powered = household.power.on_intervals.contains_many(ticks)
    wired = np.zeros(ticks.size, dtype=np.int64)
    wireless_24 = np.zeros(ticks.size, dtype=np.int64)
    wireless_5 = np.zeros(ticks.size, dtype=np.int64)
    for device in household.devices:
        if device.always_connected:
            connected: "np.ndarray | int" = 1
        else:
            connected = device.connected.contains_many(ticks)
        if device.medium is Medium.WIRED:
            wired += connected
        elif device.spectrum is Spectrum.GHZ_5:
            wireless_5 += connected
        else:
            wireless_24 += connected
    wired = np.minimum(wired, ETHERNET_PORTS)
    for index, tick in enumerate(tick_list):
        if not powered[index]:
            continue
        samples.append(DeviceCountSample(
            router_id=household.router_id,
            timestamp=tick,
            wired=int(wired[index]),
            wireless_2_4=int(wireless_24[index]),
            wireless_5=int(wireless_5[index]),
        ))
    return samples
