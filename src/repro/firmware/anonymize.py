"""The privacy transforms applied on the router, before data leaves home.

Section 3.2.2 of the paper commits to three transforms for the Traffic data
set, all applied at the gateway:

* device MACs keep their OUI but have the lower 24 bits hashed;
* DNS names are passed through only when on the (user-extensible) whitelist
  of the Alexa top-200 US domains, otherwise replaced by an opaque token;
* remote IP addresses are replaced by stable pseudonyms.

:class:`AnonymizationPolicy` bundles the three with a per-study salt so
pseudonyms are stable within a study but unlinkable across studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable

from repro.core.records import OBFUSCATED_DOMAIN
from repro.netutils.ip import obfuscate_ipv4
from repro.netutils.mac import MacAddress, hash_lower24


@dataclass(frozen=True)
class AnonymizationPolicy:
    """The gateway-side anonymization configuration for one home.

    ``whitelist`` holds the domains allowed through by name; users may add
    their own via the router's web interface (the paper's usage-cap UI), so
    the set is per-home.

    Every transform is a pure function of ``(whitelist, salt)`` plus its
    input, so results are memoized in per-instance caches: a campaign
    applies the same few hundred domains and addresses across millions of
    flow records, and the SHA-256 per record was a measured hot spot.
    Caches live on the instance — never shared between policies — so two
    policies with different salts (or whitelists) can never leak each
    other's pseudonyms.  The caches are not dataclass fields: equality,
    hashing, and pickling semantics of the policy are unchanged.
    """

    whitelist: FrozenSet[str]
    salt: bytes = b"bismark-study"

    def __post_init__(self) -> None:
        if not isinstance(self.whitelist, frozenset):
            object.__setattr__(self, "whitelist", frozenset(self.whitelist))
        # Intern the per-flow lookup state: the coerced frozenset is what
        # the memoized lookups consult, and each transform gets a private
        # cache bound to this policy instance.
        object.__setattr__(self, "_domain_cache", {})
        object.__setattr__(self, "_ip_cache", {})
        object.__setattr__(self, "_mac_cache", {})

    @classmethod
    def for_whitelist(cls, domains: Iterable[str],
                      salt: bytes = b"bismark-study") -> "AnonymizationPolicy":
        """Build a policy from any iterable of whitelisted names."""
        return cls(whitelist=frozenset(domains), salt=salt)

    def anonymize_mac(self, mac: MacAddress) -> str:
        """Hash the NIC-specific bits, keep the OUI, render as text."""
        cache: Dict[MacAddress, str] = self._mac_cache
        rendered = cache.get(mac)
        if rendered is None:
            rendered = str(hash_lower24(mac, salt=self.salt))
            cache[mac] = rendered
        return rendered

    def filter_domain(self, domain: str) -> str:
        """Pass whitelisted names; everything else becomes the sentinel."""
        cache: Dict[str, str] = self._domain_cache
        filtered = cache.get(domain)
        if filtered is None:
            filtered = domain if domain in self.whitelist else OBFUSCATED_DOMAIN
            cache[domain] = filtered
        return filtered

    def anonymize_ip(self, address: int) -> int:
        """Stable pseudonym for a remote address."""
        cache: Dict[int, int] = self._ip_cache
        pseudonym = cache.get(address)
        if pseudonym is None:
            pseudonym = obfuscate_ipv4(address, salt=self.salt)
            cache[address] = pseudonym
        return pseudonym
