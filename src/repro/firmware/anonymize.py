"""The privacy transforms applied on the router, before data leaves home.

Section 3.2.2 of the paper commits to three transforms for the Traffic data
set, all applied at the gateway:

* device MACs keep their OUI but have the lower 24 bits hashed;
* DNS names are passed through only when on the (user-extensible) whitelist
  of the Alexa top-200 US domains, otherwise replaced by an opaque token;
* remote IP addresses are replaced by stable pseudonyms.

:class:`AnonymizationPolicy` bundles the three with a per-study salt so
pseudonyms are stable within a study but unlinkable across studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable

from repro.core.records import OBFUSCATED_DOMAIN
from repro.netutils.ip import obfuscate_ipv4
from repro.netutils.mac import MacAddress, hash_lower24


@dataclass(frozen=True)
class AnonymizationPolicy:
    """The gateway-side anonymization configuration for one home.

    ``whitelist`` holds the domains allowed through by name; users may add
    their own via the router's web interface (the paper's usage-cap UI), so
    the set is per-home.
    """

    whitelist: FrozenSet[str]
    salt: bytes = b"bismark-study"

    def __post_init__(self) -> None:
        if not isinstance(self.whitelist, frozenset):
            object.__setattr__(self, "whitelist", frozenset(self.whitelist))

    @classmethod
    def for_whitelist(cls, domains: Iterable[str],
                      salt: bytes = b"bismark-study") -> "AnonymizationPolicy":
        """Build a policy from any iterable of whitelisted names."""
        return cls(whitelist=frozenset(domains), salt=salt)

    def anonymize_mac(self, mac: MacAddress) -> str:
        """Hash the NIC-specific bits, keep the OUI, render as text."""
        return str(hash_lower24(mac, salt=self.salt))

    def filter_domain(self, domain: str) -> str:
        """Pass whitelisted names; everything else becomes the sentinel."""
        return domain if domain in self.whitelist else OBFUSCATED_DOMAIN

    def anonymize_ip(self, address: int) -> int:
        """Stable pseudonym for a remote address."""
        return obfuscate_ipv4(address, salt=self.salt)
