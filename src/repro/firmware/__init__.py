"""The BISmark router firmware simulator.

Each module here is one of the measurement daemons the real OpenWrt
firmware ran on the Netgear WNDR3800 gateways (paper Section 3.1): the
heartbeat sender, the uptime and capacity reporters, the hourly device
census, the 10-minute WiFi scanner, and the traffic monitor with its
anonymization pipeline.  :class:`repro.firmware.router.BismarkRouter` wires
them all onto one simulated household.
"""

from repro.firmware.anonymize import AnonymizationPolicy
from repro.firmware.router import BismarkRouter, RouterOutput

__all__ = ["AnonymizationPolicy", "BismarkRouter", "RouterOutput"]
