"""The usage-cap management tool (paper Section 3.1, reference [24]).

Several BISmark households were recruited through a usage-cap manager the
authors built on the firmware ("Communicating with caps", Kim et al.): ISPs
in several deployment countries bill against monthly data caps, and the
router is the one place that can meter *all* of a home's usage and warn
before the cap bites.

This module is the on-router half: a billing-cycle-aware byte meter fed by
the gateway's per-minute counters, which emits threshold-crossing alerts
(50%, 90%, 100% by default).  The analysis-side half — per-device
breakdowns and end-of-cycle projections — lives in
:mod:`repro.core.caps`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.datasets import ThroughputSeries
from repro.simulation.timebase import DAY


@dataclass(frozen=True)
class UsageCapPolicy:
    """One home's data-cap contract."""

    #: Bytes allowed per billing cycle (up + down combined, as most
    #: capped ISPs count them).
    monthly_cap_bytes: float
    #: Fractions of the cap at which the router alerts the user.
    alert_thresholds: Tuple[float, ...] = (0.5, 0.9, 1.0)
    #: Billing cycles restart every this many days (ISOs vary; 30 is the
    #: common case and keeps cycle arithmetic timezone-free).
    cycle_days: float = 30.0

    def __post_init__(self) -> None:
        if self.monthly_cap_bytes <= 0:
            raise ValueError("cap must be positive")
        if self.cycle_days <= 0:
            raise ValueError("cycle length must be positive")
        thresholds = tuple(sorted(self.alert_thresholds))
        if any(not 0 < t for t in thresholds):
            raise ValueError("alert thresholds must be positive")
        object.__setattr__(self, "alert_thresholds", thresholds)

    @property
    def cycle_seconds(self) -> float:
        """Length of one billing cycle in seconds."""
        return self.cycle_days * DAY


@dataclass(frozen=True)
class CapAlert:
    """A threshold crossing the router reported to the user."""

    router_id: str
    timestamp: float
    threshold: float
    used_bytes: float
    cap_bytes: float

    @property
    def over_cap(self) -> bool:
        """True for the 100%-and-beyond alert."""
        return self.threshold >= 1.0


class CapMeter:
    """Billing-cycle byte meter for one gateway.

    Feed it the per-minute byte counts the traffic monitor already
    maintains; it resets at each cycle boundary and emits each configured
    alert at most once per cycle — exactly the semantics a user-facing
    cap tool needs (no alert storms).
    """

    def __init__(self, router_id: str, policy: UsageCapPolicy,
                 cycle_start: float):
        self.router_id = router_id
        self.policy = policy
        self.cycle_start = cycle_start
        self.used_bytes = 0.0
        self._fired: set = set()
        self.alerts: List[CapAlert] = []

    def _roll_cycle(self, epoch: float) -> None:
        # Strictly-greater: a record landing exactly on the boundary bills
        # to the closing cycle.  With >= a record a hair under the
        # boundary could round up to it in float arithmetic, roll the
        # cycle early, and re-fire thresholds that already alerted this
        # cycle — the alert-storm the once-per-cycle contract forbids.
        cycle = self.policy.cycle_seconds
        while epoch > self.cycle_start + cycle:
            self.cycle_start += cycle
            self.used_bytes = 0.0
            self._fired.clear()

    def record(self, epoch: float, byte_count: float) -> List[CapAlert]:
        """Account *byte_count* bytes at *epoch*; return alerts fired now."""
        if byte_count < 0:
            raise ValueError("byte count cannot be negative")
        if epoch < self.cycle_start:
            raise ValueError("records must not precede the cycle start")
        self._roll_cycle(epoch)
        self.used_bytes += byte_count
        fired_now: List[CapAlert] = []
        fraction = self.used_bytes / self.policy.monthly_cap_bytes
        for threshold in self.policy.alert_thresholds:
            if fraction >= threshold and threshold not in self._fired:
                self._fired.add(threshold)
                alert = CapAlert(
                    router_id=self.router_id,
                    timestamp=epoch,
                    threshold=threshold,
                    used_bytes=self.used_bytes,
                    cap_bytes=self.policy.monthly_cap_bytes,
                )
                self.alerts.append(alert)
                fired_now.append(alert)
        return fired_now

    @property
    def used_fraction(self) -> float:
        """Cap fraction consumed so far this cycle."""
        return self.used_bytes / self.policy.monthly_cap_bytes


def meter_throughput(series: ThroughputSeries, policy: UsageCapPolicy,
                     cycle_start: Optional[float] = None) -> CapMeter:
    """Run a cap meter over a collected throughput series.

    The per-minute *peak* rate overstates the mean, so bytes are estimated
    from the mean-rate floor of each minute: peak / typical burstiness.
    Measurement-side estimation is part of the tool's reality — the meter
    sees what the gateway counted, not what the ISP bills.
    """
    meter = CapMeter(series.router_id, policy,
                     cycle_start if cycle_start is not None else series.start)
    interval = series.interval_seconds
    # Invert the monitor's typical burstiness (median factor ~2.2).
    mean_bps = (series.up_bps + series.down_bps) / 2.2
    for epoch, bps in zip(series.timestamps, mean_bps):
        if bps > 0:
            meter.record(float(epoch), float(bps) / 8.0 * interval)
    return meter
