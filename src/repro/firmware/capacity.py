"""The 12-hourly ShaperProbe-style capacity measurement.

Every twelve hours the firmware measures the access link's upstream and
downstream capacity (paper Section 3.2.2, "Capacity"; the real tool was
ShaperProbe).  The probe only runs when the router is online, and its
estimates carry the small multiplicative noise modeled by
:meth:`repro.simulation.link.AccessLink.measure_capacity` — Fig. 14 shows
the resulting near-constant capacity lines.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.records import CapacityMeasurement
from repro.simulation.household import Household
from repro.simulation.timebase import HOUR


def capacity_measurements(household: Household, start: float, end: float,
                          rng: np.random.Generator,
                          interval: float = 12 * HOUR) -> List[CapacityMeasurement]:
    """Collect the capacity probes one router ran in ``[start, end)``."""
    if interval <= 0:
        raise ValueError("probe interval must be positive")
    measurements: List[CapacityMeasurement] = []
    phase = float(rng.uniform(0, interval))
    tick = start + phase
    while tick < end:
        if household.is_online(tick):
            estimate = household.link.measure_capacity(tick, rng)
            if estimate is not None:
                down, up = estimate
                measurements.append(CapacityMeasurement(
                    router_id=household.router_id,
                    timestamp=tick,
                    downstream_mbps=down,
                    upstream_mbps=up,
                ))
        tick += interval
    return measurements
