"""Columnar firmware collection: every collector over a whole shard at once.

PR 5 made home *generation* columnar; this module does the same for the
measurement loop.  :func:`collect_shard` runs each collector (heartbeat,
capacity, uptime, device census + roster, wifi scans, traffic) for all
homes in a shard as batched numpy operations directly over the
:class:`~repro.simulation.cohort.ShardCohort` column arrays — the lazy
per-home ``Household`` views are never built on this path (the sole
exception is the handful of traffic-consenting homes, whose flow
generator is genuinely per-home).

Determinism contract (the reason ``study_digest`` pins survive):

* Every router's randomness still comes from the exact streams the
  per-home :class:`~repro.firmware.router.BismarkRouter` used:
  ``seeds.child("firmware", router_id).generator(name)``.  Streams are
  independent per ``(home, collector)``, so iterating collector-major
  instead of home-major changes nothing; only the draw order *within*
  one stream is load-bearing, and each columnar collector reproduces it:

  - **heartbeat**: one phase ``uniform(0, interval)``, then — only when
    sendable ticks exist — one ``uniform(-jitter, jitter, size=k)``
    array draw (bitwise what *k* scalar draws would consume).
  - **capacity**: one phase, then one ``normal(1.0, 0.03, size=2k)``
    array draw for the *k* online ticks; even indices are the downstream
    noise, odd the upstream, exactly the per-tick (down, up) pair order.
  - **uptime / devices**: one phase each; no further draws.
  - **wifi**: one phase, then per *executed* scan — tick order, 2.4 GHz
    before 5 GHz — a conditional ``binomial(base, 0.85)`` (skipped when
    the home's audible-neighbor base is zero) followed by a
    ``poisson(0.15)``, matching ``WirelessEnvironment
    .scan_neighbor_count``.
  - **traffic**: delegated unchanged to ``monitor_traffic``.

* Tick schedules are bitwise-identical: the heartbeat grid is
  ``np.arange`` (as the reference), while the four accumulating
  ``tick += interval`` walks are reproduced by :func:`_tick_walk` as a
  ``cumsum`` over ``[first, interval, interval, ...]`` — ``cumsum``
  performs the same sequential additions, so every element equals the
  scalar walk by induction.

Columns read per collector (see ``build_shard_cohort`` for the layout):

====================  =====================================================
collector             columns
====================  =====================================================
heartbeat             ``power_on``, ``link_up``
capacity              ``power_on``, ``link_up``, ``link_down``,
                      ``link_up_mbps``
uptime                ``power_on``, ``link_up``
devices (census)      ``power_on``, ``device_*``, ``associations``
devices (roster)      ``power_on``, ``device_*``, ``associations``
wifi                  ``power_on``, ``device_*``, ``associations``,
                      ``neighbors``
====================  =====================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import perf, trace
from repro.collection.batches import (
    RecordBatch,
    RouterUpload,
    columnar_batches,
    list_batches,
)
from repro.core.records import DeviceRosterEntry, Medium, RouterInfo, Spectrum
from repro.firmware.anonymize import AnonymizationPolicy
from repro.firmware.devices import ETHERNET_PORTS
from repro.firmware.traffic import monitor_traffic
from repro.firmware.wifi import BACKOFF_FACTOR, SCAN_INTERVAL
from repro.netutils.mac import MacAddress
from repro.simulation.channels import audible_counts
from repro.simulation.cohort import ShardCohort
from repro.simulation.deployment import DeploymentPlan
from repro.simulation.device_models import KIND_ORDER, SPECTRUM_BY_CODE, kind_traits
from repro.simulation.seeding import SeedHierarchy
from repro.simulation.timebase import HOUR, MINUTE
from repro.simulation.wireless import DEFAULT_CHANNELS

#: Collector cadences, mirroring each reference collector's default.
HEARTBEAT_INTERVAL = MINUTE
HEARTBEAT_JITTER_SECONDS = 2.0
CAPACITY_INTERVAL = 12 * HOUR
UPTIME_INTERVAL = 12 * HOUR
CENSUS_INTERVAL = HOUR

#: Capacity probes never report below this floor (AccessLink semantics).
_CAPACITY_FLOOR_MBPS = 0.05

#: device_spectrum column codes (0 = wired/None, 1 = 2.4 GHz, 2 = 5 GHz).
_CODE_GHZ_2_4 = 1
_CODE_GHZ_5 = 2


# -- schedule + membership helpers --------------------------------------------

def _tick_walk(first: float, end: float, interval: float) -> np.ndarray:
    """The ``tick += interval`` schedule starting at *first*, as an array.

    The reference collectors accumulate (``tick += interval``), which can
    differ from ``np.arange``'s multiply-based grid in the last ulp — so
    we accumulate too: ``cumsum`` over ``[first, interval, interval, ...]``
    computes ``out[i] = out[i-1] + interval`` sequentially, which is
    bitwise the scalar walk by induction.  The length estimate only needs
    to overshoot (``+2`` absorbs any ulp drift); the ``< end`` filter is
    the loop's exit test.
    """
    if first >= end:
        return np.empty(0)
    steps = np.full(int(np.ceil((end - first) / interval)) + 2, interval,
                    dtype=np.float64)
    steps[0] = first
    ticks = np.cumsum(steps)
    return ticks[ticks < end]


def _contains(starts: np.ndarray, ends: np.ndarray,
              ticks: np.ndarray) -> np.ndarray:
    """``IntervalSet.contains_many`` straight over flat column slices."""
    if starts.size == 0:
        return np.zeros(ticks.shape, dtype=bool)
    idx = np.searchsorted(starts, ticks, side="right") - 1
    valid = idx >= 0
    # maximum() beats np.clip here: same clamp (idx < size always holds
    # after the searchsorted), none of clip's dtype-limit probing.
    clamped = np.maximum(idx, 0)
    inside = (ticks >= starts[clamped]) & (ticks < ends[clamped])
    return valid & inside


def _slices(cols: Dict[str, object], key: str, n: int,
            ) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Per-home ``(starts, ends)`` views of one flattened interval column."""
    starts, ends, offsets = cols[key]
    return [(starts[offsets[i]:offsets[i + 1]],
             ends[offsets[i]:offsets[i + 1]]) for i in range(n)]


class _HomeDevices:
    """One home's device table decoded from the cohort columns."""

    __slots__ = ("kinds", "media", "spec_codes", "always", "slots", "macs",
                 "_assoc", "_groups")

    def __init__(self, cols: Dict[str, object], index: int) -> None:
        offsets = cols["device_offsets"]
        lo, hi = int(offsets[index]), int(offsets[index + 1])
        self.kinds = cols["device_kind"][lo:hi]
        self.media = [kind_traits(KIND_ORDER[code]).medium
                      for code in self.kinds]
        self.spec_codes = cols["device_spectrum"][lo:hi]
        self.always = cols["device_always"][lo:hi]
        self.slots = cols["device_slot"][lo:hi]
        self.macs = cols["device_mac"][lo:hi]
        self._assoc = cols["associations"]
        self._groups: Optional[Dict[str, Tuple[np.ndarray, np.ndarray, int]]] \
            = None

    def __len__(self) -> int:
        return len(self.media)

    def groups(self) -> Dict[str, Tuple[np.ndarray, np.ndarray, int]]:
        """Per connectivity class: sorted interval bounds + always count.

        Classes mirror the census/wifi classification exactly: ``wired``
        (medium is WIRED), ``w5`` (wireless on 5 GHz), ``w24`` (every
        other non-wired device).  Each entry holds the class's pooled
        association interval ``(sorted starts, sorted ends)`` plus how
        many of its devices are always-connected, which is all
        :func:`_group_counts` needs to count connected devices per tick
        without a per-device pass.
        """
        if self._groups is None:
            pools: Dict[str, List[np.ndarray]] = \
                {"wired": [], "w24": [], "w5": []}
            always_n = {"wired": 0, "w24": 0, "w5": 0}
            for dev in range(len(self.media)):
                if self.media[dev] is Medium.WIRED:
                    key = "wired"
                elif self.spec_codes[dev] == _CODE_GHZ_5:
                    key = "w5"
                else:
                    key = "w24"
                if self.always[dev]:
                    always_n[key] += 1
                else:
                    pools[key].append(
                        _assoc_slice(self._assoc, int(self.slots[dev])))
            self._groups = {}
            for key, parts in pools.items():
                if parts:
                    starts = np.sort(np.concatenate([p[0] for p in parts]))
                    ends = np.sort(np.concatenate([p[1] for p in parts]))
                else:
                    starts = ends = np.empty(0)
                self._groups[key] = (starts, ends, always_n[key])
        return self._groups


def _group_counts(group: Tuple[np.ndarray, np.ndarray, int],
                  ticks: np.ndarray) -> np.ndarray:
    """Connected-device count per tick for one pooled class.

    For disjoint-per-device intervals, summing per-device membership
    equals ``#(starts <= t) - #(ends <= t)`` over the pooled bounds —
    the comparisons are the same ``t >= start`` / ``t < end`` float
    tests :func:`_contains` runs, just counted in bulk — plus the
    class's always-connected devices.
    """
    starts, ends, always_n = group
    if starts.size == 0:
        counts = np.zeros(ticks.size, dtype=np.int64)
    else:
        counts = (np.searchsorted(starts, ticks, side="right")
                  - np.searchsorted(ends, ticks, side="right"))
    if always_n:
        counts = counts + always_n
    return counts


def _assoc_slice(assoc: Tuple[np.ndarray, np.ndarray, np.ndarray],
                 slot: int) -> Tuple[np.ndarray, np.ndarray]:
    starts, ends, offsets = assoc
    lo, hi = offsets[slot], offsets[slot + 1]
    return starts[lo:hi], ends[lo:hi]


# -- per-collector columnar passes --------------------------------------------

def _heartbeat_sends(rng: np.random.Generator, start: float, end: float,
                     online: Tuple[np.ndarray, np.ndarray]) -> np.ndarray:
    """``heartbeat_send_times`` over column slices, draw-for-draw.

    *online* is the home's precomputed power∩link interval set:
    membership in the intersection is exactly membership in both.
    """
    if end <= start:
        return np.empty(0)
    phase = float(rng.uniform(0, HEARTBEAT_INTERVAL))
    ticks = np.arange(start + phase, end, HEARTBEAT_INTERVAL)
    if ticks.size == 0:
        return ticks
    # The reference tests a power∩link set *clipped* to the window; ticks
    # sit at/above start always, but arange can overshoot ``end`` by an
    # ulp, so the window's right edge needs re-imposing here.
    sendable = _contains(*online, ticks) & (ticks < end)
    times = ticks[sendable]
    if HEARTBEAT_JITTER_SECONDS > 0 and times.size:
        times = times + rng.uniform(-HEARTBEAT_JITTER_SECONDS,
                                    HEARTBEAT_JITTER_SECONDS,
                                    size=times.size)
    return np.sort(times)


def _online_ticks(rng: np.random.Generator, start: float, end: float,
                  interval: float,
                  online: Tuple[np.ndarray, np.ndarray]) -> np.ndarray:
    """Phase draw + accumulated walk + ``is_online`` filter (unclipped)."""
    phase = float(rng.uniform(0, interval))
    ticks = _tick_walk(start + phase, end, interval)
    if not ticks.size:
        return ticks
    return ticks[_contains(*online, ticks)]


def _capacity_columns(rng: np.random.Generator, start: float, end: float,
                      online: Tuple[np.ndarray, np.ndarray],
                      down_mbps: float, up_mbps: float,
                      ) -> Optional[Dict[str, list]]:
    """``capacity_measurements`` over column slices, draw-for-draw."""
    ticks = _online_ticks(rng, start, end, CAPACITY_INTERVAL, online)
    if not ticks.size:
        return None
    # The reference draws (down, up) noise pairs per online tick; one
    # array draw of 2k consumes the stream identically, with the even
    # indices landing on the downstream draws.
    noise = rng.normal(1.0, 0.03, size=2 * ticks.size)
    down = np.maximum(down_mbps * noise[0::2], _CAPACITY_FLOOR_MBPS)
    up = np.maximum(up_mbps * noise[1::2], _CAPACITY_FLOOR_MBPS)
    return {"timestamp": ticks.tolist(),
            "downstream_mbps": down.tolist(),
            "upstream_mbps": up.tolist()}


def _uptime_columns(rng: np.random.Generator, start: float, end: float,
                    power: Tuple[np.ndarray, np.ndarray],
                    online: Tuple[np.ndarray, np.ndarray],
                    ) -> Optional[Dict[str, list]]:
    """``uptime_reports`` over column slices, draw-for-draw."""
    ticks = _online_ticks(rng, start, end, UPTIME_INTERVAL, online)
    if not ticks.size:
        return None
    p_starts = power[0]
    idx = np.searchsorted(p_starts, ticks, side="right") - 1
    uptimes = ticks - p_starts[idx]
    return {"timestamp": ticks.tolist(), "uptime_seconds": uptimes.tolist()}


def _census_columns(rng: np.random.Generator, start: float, end: float,
                    power: Tuple[np.ndarray, np.ndarray],
                    devices: _HomeDevices,
                    ) -> Optional[Dict[str, list]]:
    """``device_counts`` over column slices, draw-for-draw."""
    phase = float(rng.uniform(0, CENSUS_INTERVAL))
    ticks = _tick_walk(start + phase, end, CENSUS_INTERVAL)
    if not ticks.size:
        return None
    powered = _contains(*power, ticks)
    if not powered.any():
        return None
    groups = devices.groups()
    wired = _group_counts(groups["wired"], ticks)
    wireless_24 = _group_counts(groups["w24"], ticks)
    wireless_5 = _group_counts(groups["w5"], ticks)
    wired = np.minimum(wired, ETHERNET_PORTS)
    return {"timestamp": ticks[powered].tolist(),
            "wired": wired[powered].tolist(),
            "wireless_2_4": wireless_24[powered].tolist(),
            "wireless_5": wireless_5[powered].tolist()}


def _clip_arrays(starts: np.ndarray, ends: np.ndarray,
                 start: float, end: float,
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """``IntervalSet.clip``'s array path on bare ``(starts, ends)``."""
    keep = (ends > start) & (starts < end)
    return (np.maximum(starts[keep], start), np.minimum(ends[keep], end))


def _intersect_arrays(a_starts: np.ndarray, a_ends: np.ndarray,
                      b_starts: np.ndarray, b_ends: np.ndarray,
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """``IntervalSet._intersection_arrays`` on bare ``(starts, ends)``.

    Same binary-search pairing, same ``(max(starts), min(ends))`` floats —
    just without allocating the wrapper objects, which dominated the
    roster collector's profile.
    """
    if a_starts.size == 0 or b_starts.size == 0:
        return np.empty(0), np.empty(0)
    lo = np.searchsorted(b_ends, a_starts, side="right")
    hi = np.searchsorted(b_starts, a_ends, side="left")
    counts = hi - lo
    pos = counts > 0
    if not pos.any():
        return np.empty(0), np.empty(0)
    a_idx = np.repeat(np.flatnonzero(pos), counts[pos])
    offsets = np.concatenate(([0], np.cumsum(counts[pos])))[:-1]
    b_idx = (np.arange(a_idx.size) - np.repeat(offsets, counts[pos])
             + np.repeat(lo[pos], counts[pos]))
    starts = np.maximum(a_starts[a_idx], b_starts[b_idx])
    ends = np.minimum(a_ends[a_idx], b_ends[b_idx])
    keep = ends > starts
    return starts[keep], ends[keep]


def _duration_sum(starts: np.ndarray, ends: np.ndarray) -> float:
    """``IntervalSet.total_duration``: sequential sum, identical floats."""
    return float(sum((ends - starts).tolist()))


def _intersect_tagged(a_starts: np.ndarray, a_ends: np.ndarray,
                      owner: np.ndarray,
                      b_starts: np.ndarray, b_ends: np.ndarray,
                      ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`_intersect_arrays` that also maps each output row to the
    owner tag of the ``a`` interval it came from.

    Because every ``a`` row searches ``b`` independently, concatenating
    several devices' interval lists and intersecting once yields exactly
    the per-device intersections, still grouped in ``a`` (device) order.
    """
    if a_starts.size == 0 or b_starts.size == 0:
        return np.empty(0), np.empty(0), np.empty(0, dtype=np.intp)
    lo = np.searchsorted(b_ends, a_starts, side="right")
    hi = np.searchsorted(b_starts, a_ends, side="left")
    counts = hi - lo
    pos = counts > 0
    if not pos.any():
        return np.empty(0), np.empty(0), np.empty(0, dtype=np.intp)
    a_idx = np.repeat(np.flatnonzero(pos), counts[pos])
    offsets = np.concatenate(([0], np.cumsum(counts[pos])))[:-1]
    b_idx = (np.arange(a_idx.size) - np.repeat(offsets, counts[pos])
             + np.repeat(lo[pos], counts[pos]))
    starts = np.maximum(a_starts[a_idx], b_starts[b_idx])
    ends = np.minimum(a_ends[a_idx], b_ends[b_idx])
    keep = ends > starts
    return starts[keep], ends[keep], owner[a_idx[keep]]


def _roster_entries(router_id: str, start: float, end: float,
                    power: Tuple[np.ndarray, np.ndarray],
                    devices: _HomeDevices,
                    assoc: Tuple[np.ndarray, np.ndarray, np.ndarray],
                    policy: AnonymizationPolicy,
                    min_on_fraction: float = 0.25,
                    ) -> List[DeviceRosterEntry]:
    """``device_roster`` over column slices (RNG-free).

    All interval algebra runs on bare arrays via the ``IntervalSet``
    replicas above; each step is float-for-float what the per-home path's
    ``clip``/``intersection``/``total_duration``/``span`` compute.  The
    non-always devices are intersected with router-on in ONE tagged batch
    (their concatenated rows stay device-grouped, so per-device firsts/
    lasts are group boundaries and per-device durations fall out of a
    ``bincount``, which accumulates in the same sequential order as the
    reference's Python ``sum``).
    """
    on_starts, on_ends = _clip_arrays(*power, start, end)
    on_duration = _duration_sum(on_starts, on_ends)
    enough_observation = on_duration >= min_on_fraction * (end - start)
    has_on_time = on_starts.size > 0
    n_dev = len(devices)

    parts: List[Tuple[np.ndarray, np.ndarray]] = []
    part_dev: List[int] = []
    for dev in range(n_dev):
        if not devices.always[dev]:
            parts.append(_assoc_slice(assoc, int(devices.slots[dev])))
            part_dev.append(dev)
    dur_by_dev = np.full(n_dev, -1.0)
    first_by_dev = np.empty(n_dev)
    last_by_dev = np.empty(n_dev)
    if parts and has_on_time:
        a_starts = np.concatenate([p[0] for p in parts])
        a_ends = np.concatenate([p[1] for p in parts])
        owner = np.repeat(np.arange(len(parts)),
                          [p[0].size for p in parts])
        keep = (a_ends > start) & (a_starts < end)
        obs_starts, obs_ends, obs_owner = _intersect_tagged(
            np.maximum(a_starts[keep], start),
            np.minimum(a_ends[keep], end),
            owner[keep], on_starts, on_ends)
        if obs_owner.size:
            # intersection() is symmetric down to the float level, so the
            # reference's router_on∩seen duration is observed's duration.
            durs = np.bincount(obs_owner, weights=obs_ends - obs_starts,
                               minlength=len(parts))
            uniq, first_idx = np.unique(obs_owner, return_index=True)
            last_idx = np.concatenate((first_idx[1:], [obs_owner.size])) - 1
            devs = np.asarray(part_dev, dtype=np.intp)[uniq]
            dur_by_dev[devs] = durs[uniq]
            first_by_dev[devs] = obs_starts[first_idx]
            last_by_dev[devs] = obs_ends[last_idx]

    entries: List[DeviceRosterEntry] = []
    for dev in range(n_dev):
        if devices.always[dev]:
            # seen = [(start, end)] ⊇ router_on (already clipped to the
            # window), so the intersection IS router_on and its duration
            # is on_duration — no recomputation needed.
            if not has_on_time:
                continue
            first_seen = float(on_starts[0])
            last_seen = float(on_ends[-1])
            observed_duration = on_duration
        else:
            observed_duration = float(dur_by_dev[dev])
            if observed_duration < 0.0:
                continue
            first_seen = float(first_by_dev[dev])
            last_seen = float(last_by_dev[dev])
        covers_all_on = (enough_observation
                        and observed_duration >= on_duration - 1.0)
        entries.append(DeviceRosterEntry(
            router_id=router_id,
            device_mac=policy.anonymize_mac(
                MacAddress(int(devices.macs[dev]))),
            medium=devices.media[dev],
            spectrum=SPECTRUM_BY_CODE[devices.spec_codes[dev]],
            first_seen=first_seen,
            last_seen=last_seen,
            always_connected=covers_all_on and has_on_time,
        ))
    return entries


def _wifi_columns(rng: np.random.Generator, start: float, end: float,
                  power: Tuple[np.ndarray, np.ndarray],
                  devices: _HomeDevices,
                  base_24: int, base_5: int, channel_24: int, channel_5: int,
                  ) -> Optional[Dict[str, list]]:
    """``wifi_scans`` over column slices, draw-for-draw.

    The audible-neighbor base count per band is static for a home (the
    neighborhood doesn't move), so the caller hoists it; the remaining
    loop only touches executed scans, drawing the conditional binomial
    then the poisson in exactly the reference tick/band order.
    """
    phase = float(rng.uniform(0, SCAN_INTERVAL))
    ticks = _tick_walk(start + phase, end, SCAN_INTERVAL)
    if not ticks.size:
        return None
    powered = _contains(*power, ticks)
    groups = devices.groups()
    clients_24 = _group_counts(groups["w24"], ticks)
    clients_5 = _group_counts(groups["w5"], ticks)
    backed_off = (np.arange(ticks.size) % BACKOFF_FACTOR) != 0
    executed_24 = powered & ~((clients_24 > 0) & backed_off)
    executed_5 = powered & ~((clients_5 > 0) & backed_off)
    either = np.flatnonzero(executed_24 | executed_5)
    if not either.size:
        return None
    tick_list = ticks.tolist()
    c24_list = clients_24.tolist()
    c5_list = clients_5.tolist()
    run_24 = executed_24.tolist()
    run_5 = executed_5.tolist()
    binomial = rng.binomial
    poisson = rng.poisson
    audible_24 = base_24 > 0
    audible_5 = base_5 > 0
    timestamps: List[float] = []
    spectrum_codes: List[int] = []
    neighbor_aps: List[int] = []
    clients: List[int] = []
    channels: List[int] = []
    for index in either.tolist():
        tick = tick_list[index]
        if run_24[index]:
            visible = int(binomial(base_24, 0.85)) if audible_24 else 0
            timestamps.append(tick)
            spectrum_codes.append(_CODE_GHZ_2_4)
            neighbor_aps.append(visible + int(poisson(0.15)))
            clients.append(c24_list[index])
            channels.append(channel_24)
        if run_5[index]:
            visible = int(binomial(base_5, 0.85)) if audible_5 else 0
            timestamps.append(tick)
            spectrum_codes.append(_CODE_GHZ_5)
            neighbor_aps.append(visible + int(poisson(0.15)))
            clients.append(c5_list[index])
            channels.append(channel_5)
    return {"timestamp": timestamps, "spectrum_code": spectrum_codes,
            "neighbor_aps": neighbor_aps, "associated_clients": clients,
            "channel": channels}


# -- the shard pass -----------------------------------------------------------

def _router_info(config) -> RouterInfo:
    country = config.country
    return RouterInfo(
        router_id=config.router_id,
        country_code=country.code,
        developed=country.developed,
        tz_offset_hours=country.tz_offset_hours,
        gdp_ppp_per_capita=country.gdp_ppp_per_capita,
    )


def collect_shard(cohort: ShardCohort, plan: DeploymentPlan,
                  seeds: SeedHierarchy, policy: AnonymizationPolicy,
                  ) -> List[RouterUpload]:
    """Run every collector for every home in *cohort*; return the uploads.

    Output-equivalent to running :class:`BismarkRouter` per home (same
    records, same batch chunking, same dataset order) but iterates
    collector-major over the cohort columns.  Each collector runs under a
    ``collect.<name>`` perf sub-stage; every stage is entered once per
    shard even when no home subscribes to it, so profiles always cover
    the full stage set.
    """
    cols = cohort.columns
    configs = cohort.configs
    windows = plan.windows
    n = len(configs)
    firmware = [seeds.child("firmware", config.router_id)
                for config in configs]
    power = _slices(cols, "power_on", n)
    link = _slices(cols, "link_up", n)
    assoc = cols["associations"]

    heartbeats: List[np.ndarray] = [None] * n  # type: ignore[list-item]
    capacity: List[Optional[Dict[str, list]]] = [None] * n
    uptime: List[Optional[Dict[str, list]]] = [None] * n
    census: List[Optional[Dict[str, list]]] = [None] * n
    roster: List[list] = [[] for _ in range(n)]
    wifi: List[Optional[Dict[str, list]]] = [None] * n
    throughput = [None] * n
    flows: List[list] = [[] for _ in range(n)]
    dns: List[list] = [[] for _ in range(n)]

    with perf.stage("collect.heartbeat"), \
            trace.span("collect.heartbeat", cat="shard"):
        start, end = windows.heartbeats
        # power∩link, computed once per home here and reused by the
        # capacity and uptime passes below (`is_online` membership in the
        # intersection equals membership in both sets).
        online = [_intersect_arrays(*power[i], *link[i]) for i in range(n)]
        for i in range(n):
            heartbeats[i] = _heartbeat_sends(
                firmware[i].generator("heartbeat"), start, end, online[i])

    with perf.stage("collect.capacity"), \
            trace.span("collect.capacity", cat="shard"):
        start, end = windows.capacity
        down_col = cols["link_down"]
        up_col = cols["link_up_mbps"]
        for i in range(n):
            capacity[i] = _capacity_columns(
                firmware[i].generator("capacity"), start, end,
                online[i], float(down_col[i]), float(up_col[i]))

    with perf.stage("collect.uptime"), \
            trace.span("collect.uptime", cat="shard"):
        start, end = windows.uptime
        for i in range(n):
            if configs[i].router_id not in plan.uptime_routers:
                continue
            uptime[i] = _uptime_columns(
                firmware[i].generator("uptime"), start, end,
                power[i], online[i])

    devices_cache: Dict[int, _HomeDevices] = {}

    def home_devices(i: int) -> _HomeDevices:
        table = devices_cache.get(i)
        if table is None:
            table = devices_cache[i] = _HomeDevices(cols, i)
        return table

    with perf.stage("collect.devices"), \
            trace.span("collect.devices", cat="shard"):
        start, end = windows.devices
        for i in range(n):
            rid = configs[i].router_id
            if rid not in plan.devices_routers:
                continue
            devices = home_devices(i)
            census[i] = _census_columns(
                firmware[i].generator("devices"), start, end,
                power[i], devices)
            roster[i] = _roster_entries(rid, start, end, power[i],
                                        devices, assoc, policy)

    with perf.stage("collect.wifi"), \
            trace.span("collect.wifi", cat="shard"):
        start, end = windows.wifi
        channel_24 = DEFAULT_CHANNELS[Spectrum.GHZ_2_4]
        channel_5 = DEFAULT_CHANNELS[Spectrum.GHZ_5]
        flat_24, offsets_24 = cols["neighbors"][Spectrum.GHZ_2_4]
        flat_5, offsets_5 = cols["neighbors"][Spectrum.GHZ_5]
        for i in range(n):
            if configs[i].router_id not in plan.wifi_routers:
                continue
            base_24 = int(audible_counts(
                Spectrum.GHZ_2_4, (channel_24,),
                flat_24[offsets_24[i]:offsets_24[i + 1]])[0])
            base_5 = int(audible_counts(
                Spectrum.GHZ_5, (channel_5,),
                flat_5[offsets_5[i]:offsets_5[i + 1]])[0])
            wifi[i] = _wifi_columns(
                firmware[i].generator("wifi"), start, end,
                power[i], home_devices(i),
                base_24, base_5, channel_24, channel_5)

    with perf.stage("collect.traffic"), \
            trace.span("collect.traffic", cat="shard"):
        start, end = windows.traffic
        for i in range(n):
            if configs[i].router_id not in plan.traffic_routers:
                continue
            # Traffic is the one genuinely per-home collector (flow
            # generation walks device schedules); ~4% of homes consent,
            # so the lazy Household view is built only for them.
            throughput[i], flows[i], dns[i] = monitor_traffic(
                cohort.household(i), start, end,
                rng=firmware[i].generator("traffic"), policy=policy)
            perf.count("flows", len(flows[i]))
    perf.count("routers", n)

    with perf.stage("collect.serialize"), \
            trace.span("collect.serialize", cat="shard"):
        uploads = _build_uploads(configs, heartbeats, uptime, capacity,
                                 census, roster, wifi, flows, dns,
                                 throughput)
    return uploads


def _build_uploads(configs, heartbeats, uptime, capacity, census, roster,
                   wifi, flows, dns, throughput) -> List[RouterUpload]:
    """Assemble per-router uploads from the collector columns, preserving
    the monolithic path's batch chunking and dataset order."""
    n = len(configs)
    uploads: List[RouterUpload] = []
    for i in range(n):
        rid = configs[i].router_id
        batches = [RecordBatch("heartbeats", rid, heartbeats[i])]
        batches += columnar_batches("uptime", rid, uptime[i])
        batches += columnar_batches("capacity", rid, capacity[i])
        batches += columnar_batches("device_counts", rid, census[i])
        batches += list_batches("roster", rid, roster[i])
        batches += columnar_batches("wifi_scans", rid, wifi[i])
        batches += list_batches("flows", rid, flows[i])
        batches += list_batches("dns", rid, dns[i])
        if throughput[i] is not None:
            batches.append(RecordBatch("throughput", rid, throughput[i]))
        uploads.append(RouterUpload(info=_router_info(configs[i]),
                                    batches=tuple(batches)))
    return uploads
