"""The WiFi scanner: neighbor APs on the configured channel (Section 3.2.2).

Every ~10 minutes the firmware scans the channel each radio is configured
for (2.4 GHz channel 11, 5 GHz channel 36 by default) and records visible
access points.  Scanning can knock associated clients off the AP, so the
real firmware backs off when clients are associated — we reproduce that:
with clients present, two of every three scheduled scans are skipped.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.records import Medium, Spectrum, WifiScanSample
from repro.simulation.channels import CHANNELS_2_4, CHANNELS_5, audible_counts
from repro.simulation.household import Household
from repro.simulation.timebase import MINUTE

SCAN_INTERVAL = 10 * MINUTE
#: With associated clients, only one in this many scheduled scans runs.
BACKOFF_FACTOR = 3


def _associated_clients(household: Household, epoch: float,
                        spectrum: Spectrum) -> int:
    return sum(
        1 for device in household.devices
        if device.medium is Medium.WIRELESS
        and device.spectrum is spectrum
        and device.is_connected(epoch)
    )


def _client_counts(household: Household, spectrum: Spectrum,
                   ticks: np.ndarray) -> np.ndarray:
    """Associated-client counts on one band for every tick at once.

    Element-wise identical to calling :func:`_associated_clients` per tick
    — the per-spectrum wireless device list is collected once and each
    device contributes its association mask in one vectorized query
    instead of a per-tick scan over all devices.
    """
    counts = np.zeros(ticks.size, dtype=np.int64)
    for device in household.devices:
        if device.medium is not Medium.WIRELESS or device.spectrum is not spectrum:
            continue
        if device.always_connected:
            counts += 1
        else:
            counts += device.connected.contains_many(ticks)
    return counts


def wifi_scans(household: Household, start: float, end: float,
               rng: np.random.Generator,
               interval: float = SCAN_INTERVAL,
               backoff_factor: int = BACKOFF_FACTOR) -> List[WifiScanSample]:
    """Collect the neighbor-AP scans one router ran in ``[start, end)``.

    The per-tick work (router powered? clients on band?) is precomputed
    with vectorized interval queries; the remaining loop only builds the
    samples that actually scan, drawing the neighbor-count RNG in exactly
    the original tick/spectrum order.
    """
    if interval <= 0:
        raise ValueError("scan interval must be positive")
    if backoff_factor < 1:
        raise ValueError("backoff factor must be at least 1")
    samples: List[WifiScanSample] = []
    phase = float(rng.uniform(0, interval))
    # Accumulate ticks exactly as the original `tick += interval` loop did
    # (np.arange would multiply instead and can differ in the last ulp).
    tick_list: List[float] = []
    tick = start + phase
    while tick < end:
        tick_list.append(tick)
        tick += interval
    if not tick_list:
        return samples
    ticks = np.asarray(tick_list)
    powered = household.power.on_intervals.contains_many(ticks)
    clients_by_spectrum = {
        spectrum: _client_counts(household, spectrum, ticks).tolist()
        for spectrum in (Spectrum.GHZ_2_4, Spectrum.GHZ_5)
    }
    wireless = household.wireless
    for index, tick in enumerate(tick_list):
        if not powered[index]:
            continue
        backed_off = index % backoff_factor != 0
        for spectrum in (Spectrum.GHZ_2_4, Spectrum.GHZ_5):
            clients = clients_by_spectrum[spectrum][index]
            if clients > 0 and backed_off:
                continue
            samples.append(WifiScanSample(
                router_id=household.router_id,
                timestamp=tick,
                spectrum=spectrum,
                neighbor_aps=wireless.scan_neighbor_count(spectrum, rng),
                associated_clients=clients,
                channel=wireless.channels[spectrum],
            ))
    return samples


def full_spectrum_scans(household: Household, epoch: float,
                        rng: np.random.Generator) -> List[WifiScanSample]:
    """Sweep every channel of both bands once (the Section 7 extension).

    The deployed firmware never did this (a sweep takes the radio off the
    service channel for seconds), but it is the measurement the paper says
    it wants: "more widespread statistics about the usage of wireless
    spectrum".  The ablation bench quantifies what the deployed
    single-channel scan misses.

    The per-channel loop is batched: client counts come from one
    ``_client_counts`` query per band and the audible-neighbor base
    counts from one :func:`~repro.simulation.channels.audible_counts`
    broadcast over the whole band, leaving only the RNG draws — which
    stay scalar, per channel in sweep order, so the samples are
    bitwise-identical to the per-channel ``scan_neighbor_count`` path.
    """
    samples: List[WifiScanSample] = []
    router_id = household.router_id
    wireless = household.wireless
    tick = np.asarray([epoch])
    for spectrum, channels in ((Spectrum.GHZ_2_4, CHANNELS_2_4),
                               (Spectrum.GHZ_5, CHANNELS_5)):
        clients = int(_client_counts(household, spectrum, tick)[0])
        bases = audible_counts(spectrum, channels,
                               wireless.neighborhood_channels(spectrum))
        for channel, base in zip(channels, bases.tolist()):
            visible = int(rng.binomial(base, 0.85)) if base > 0 else 0
            samples.append(WifiScanSample(
                router_id=router_id,
                timestamp=epoch,
                spectrum=spectrum,
                neighbor_aps=visible + int(rng.poisson(0.15)),
                associated_clients=clients,
                channel=channel,
            ))
    return samples
