"""The 12-hourly uptime reporter (paper Section 3.2.2, "Uptime").

Starting March 2013 each router reported its kernel uptime every twelve
hours.  Uptime resets on power cycles but *not* on ISP outages, which is
how the paper distinguishes "router powered off" from "router online but
disconnected" — at the coarse granularity the 12-hour cadence allows.

Reports are only delivered while the router can reach the server (powered
and link up); a powered router behind a dead link queues nothing.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.records import UptimeReport
from repro.simulation.household import Household
from repro.simulation.timebase import HOUR


def uptime_reports(household: Household, start: float, end: float,
                   rng: np.random.Generator,
                   interval: float = 12 * HOUR) -> List[UptimeReport]:
    """Collect the uptime reports one router delivered in ``[start, end)``."""
    if interval <= 0:
        raise ValueError("report interval must be positive")
    reports: List[UptimeReport] = []
    phase = float(rng.uniform(0, interval))
    tick = start + phase
    while tick < end:
        if household.is_online(tick):
            uptime = household.uptime_at(tick)
            if uptime is not None:
                reports.append(UptimeReport(
                    router_id=household.router_id,
                    timestamp=tick,
                    uptime_seconds=uptime,
                ))
        tick += interval
    return reports
