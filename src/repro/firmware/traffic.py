"""The traffic monitor: packet, flow, and DNS collection (Section 3.2.2).

For the consenting homes only, the firmware records:

* **Packet statistics** — reduced on-router to the per-minute peak
  one-second throughput, the statistic Section 6.2 analyzes.  The peak is
  the mean minute rate amplified by a burstiness factor, then clamped by
  the physical link: downlink at line rate, uplink at line rate *plus* the
  bufferbloat overshoot (Figs. 15, 16).
* **Flow statistics** — one record per sampled connection with obfuscated
  device MAC, whitelisted-or-obfuscated domain, pseudonymous remote IP,
  and the application port.
* **DNS responses** — a sample of A/CNAME answers, same domain policy.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import List, Tuple

import numpy as np

from repro.core.datasets import ThroughputSeries
from repro.core.records import DnsRecord, FlowRecord
from repro.netutils.ports import port_application
from repro.simulation.household import Household
from repro.simulation.timebase import MINUTE
from repro.simulation.traffic_model import HomeTraffic
from repro.firmware.anonymize import AnonymizationPolicy

#: Fraction of connections whose flow record is exported (the paper samples
#: flows rather than exporting all of them).
FLOW_SAMPLE_FRACTION = 1.0
#: Fraction of flows that also yield a sampled DNS response record.
DNS_SAMPLE_FRACTION = 0.25


@lru_cache(maxsize=65536)
def _domain_ip(domain: str) -> int:
    """A stable fake public IPv4 for a domain (pre-anonymization).

    Memoized: a campaign sees each domain name across thousands of flows,
    and the mapping is a pure (salt-free) function of the name, so one
    SHA-256 per distinct domain suffices instead of one per flow.
    """
    digest = hashlib.sha256(domain.encode("utf-8")).digest()
    value = int.from_bytes(digest[:4], "big")
    # Pin the first octet to 23/24/25/26 — always-public CDN-ish space.
    first_octet = 23 + (value >> 24) % 4
    return (first_octet << 24) | (value & 0x00FFFFFF)


def monitor_traffic(household: Household, start: float, end: float,
                    rng: np.random.Generator,
                    policy: AnonymizationPolicy,
                    flow_sample_fraction: float = FLOW_SAMPLE_FRACTION,
                    dns_sample_fraction: float = DNS_SAMPLE_FRACTION,
                    ) -> Tuple[ThroughputSeries, List[FlowRecord], List[DnsRecord]]:
    """Run the traffic monitor over ``[start, end)`` for one home."""
    if not 0 <= flow_sample_fraction <= 1:
        raise ValueError("flow_sample_fraction must be in [0, 1]")
    if not 0 <= dns_sample_fraction <= 1:
        raise ValueError("dns_sample_fraction must be in [0, 1]")
    traffic = household.traffic(start, end)
    series = _throughput_series(household, traffic, rng)
    flows, dns = _flow_records(household, traffic, rng, policy,
                               flow_sample_fraction, dns_sample_fraction)
    return series, flows, dns


def _throughput_series(household: Household, traffic: HomeTraffic,
                       rng: np.random.Generator) -> ThroughputSeries:
    """Per-minute peak throughput, physically shaped by the access link."""
    n = traffic.minutes
    mean_up = traffic.minute_up_bytes * 8 / MINUTE
    mean_down = traffic.minute_down_bytes * 8 / MINUTE
    bursts = np.clip(rng.lognormal(np.log(2.2), 0.5, size=n), 1.0, 6.0)
    # Vectorized shaping: downlink clamping is RNG-free and the uplink
    # shaper draws only for bufferbloat minutes in minute order, exactly
    # as the per-minute scalar loop did.
    link = household.link
    peak_down = link.shape_downlink_peak_many(mean_down * bursts)
    peak_up = link.shape_uplink_peak_many(mean_up * bursts, rng)
    return ThroughputSeries(
        router_id=household.router_id,
        start=traffic.window[0],
        up_bps=peak_up,
        down_bps=peak_down,
    )


def _flow_records(household: Household, traffic: HomeTraffic,
                  rng: np.random.Generator,
                  policy: AnonymizationPolicy,
                  flow_sample_fraction: float,
                  dns_sample_fraction: float,
                  ) -> Tuple[List[FlowRecord], List[DnsRecord]]:
    """Anonymize and sample the generated connections."""
    flows: List[FlowRecord] = []
    dns: List[DnsRecord] = []
    mac_cache = {
        index: policy.anonymize_mac(device.mac)
        for index, device in enumerate(household.devices)
    }
    # Per-campaign domain cache: each distinct domain name resolves its
    # whitelist filtering and IP pseudonym once, not once per flow.
    domain_cache: "dict[str, Tuple[str, int]]" = {}
    for flow in traffic.flows:
        if flow_sample_fraction < 1 and rng.random() >= flow_sample_fraction:
            continue
        name = flow.domain.name
        cached = domain_cache.get(name)
        if cached is None:
            cached = (policy.filter_domain(name),
                      policy.anonymize_ip(_domain_ip(name)))
            domain_cache[name] = cached
        domain, remote_ip = cached
        port = flow.domain.profile.port
        device_mac = mac_cache[flow.device_index]
        flows.append(FlowRecord(
            router_id=household.router_id,
            timestamp=flow.timestamp,
            device_mac=device_mac,
            domain=domain,
            remote_ip=remote_ip,
            port=port,
            application=port_application(port),
            bytes_up=flow.bytes_up,
            bytes_down=flow.bytes_down,
            duration_seconds=flow.duration_seconds,
        ))
        if rng.random() < dns_sample_fraction:
            record_type = "CNAME" if rng.random() < 0.15 else "A"
            dns.append(DnsRecord(
                router_id=household.router_id,
                timestamp=flow.timestamp - float(rng.uniform(0.01, 0.5)),
                device_mac=device_mac,
                domain=domain,
                record_type=record_type,
                address=remote_ip if record_type == "A" else None,
            ))
    return flows, dns
