"""One instrumented gateway: the collectors wired onto one household.

:class:`BismarkRouter` runs whichever collectors the home's consent tier
enables (paper Section 3.2.1: most homes only report non-PII diagnostics;
only homes with written consent run the traffic monitor) and returns a
:class:`RouterOutput` bundle for the collection server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.datasets import ThroughputSeries
from repro.core.records import (
    CapacityMeasurement,
    DeviceCountSample,
    DeviceRosterEntry,
    DnsRecord,
    FlowRecord,
    UptimeReport,
    WifiScanSample,
)
from repro import perf
from repro.simulation.household import Household
from repro.simulation.seeding import SeedHierarchy
from repro.simulation.timebase import StudyWindows
from repro.firmware.anonymize import AnonymizationPolicy
from repro.firmware.capacity import capacity_measurements
from repro.firmware.devices import device_counts, device_roster
from repro.firmware.heartbeat import heartbeat_send_times
from repro.firmware.traffic import monitor_traffic
from repro.firmware.uptime import uptime_reports
from repro.firmware.wifi import wifi_scans


@dataclass
class RouterOutput:
    """Everything one router produced over the study."""

    router_id: str
    heartbeat_sends: np.ndarray
    uptime: List[UptimeReport] = field(default_factory=list)
    capacity: List[CapacityMeasurement] = field(default_factory=list)
    device_counts: List[DeviceCountSample] = field(default_factory=list)
    roster: List[DeviceRosterEntry] = field(default_factory=list)
    wifi_scans: List[WifiScanSample] = field(default_factory=list)
    flows: List[FlowRecord] = field(default_factory=list)
    throughput: Optional[ThroughputSeries] = None
    dns: List[DnsRecord] = field(default_factory=list)


class BismarkRouter:
    """The firmware stack for one home."""

    def __init__(self, household: Household, seeds: SeedHierarchy,
                 policy: AnonymizationPolicy,
                 collect_uptime: bool = True,
                 collect_devices: bool = True,
                 collect_wifi: bool = True,
                 collect_traffic: bool = False):
        self.household = household
        self.policy = policy
        self.collect_uptime = collect_uptime
        self.collect_devices = collect_devices
        self.collect_wifi = collect_wifi
        self.collect_traffic = collect_traffic
        self._seeds = seeds.child("firmware", household.router_id)

    def run(self, windows: StudyWindows) -> RouterOutput:
        """Run every enabled collector over its Table 2 window.

        Each collector runs under a :mod:`repro.perf` stage so ``--profile``
        can attribute wall time; the stages are free when profiling is off.
        """
        home = self.household
        with perf.stage("heartbeat"):
            heartbeat_sends = heartbeat_send_times(
                home, *windows.heartbeats,
                rng=self._seeds.generator("heartbeat"))
        with perf.stage("capacity"):
            capacity = capacity_measurements(
                home, *windows.capacity,
                rng=self._seeds.generator("capacity"))
        output = RouterOutput(
            router_id=home.router_id,
            heartbeat_sends=heartbeat_sends,
            capacity=capacity,
        )
        if self.collect_uptime:
            with perf.stage("uptime"):
                output.uptime = uptime_reports(
                    home, *windows.uptime,
                    rng=self._seeds.generator("uptime"))
        if self.collect_devices:
            with perf.stage("devices"):
                output.device_counts = device_counts(
                    home, *windows.devices,
                    rng=self._seeds.generator("devices"))
                output.roster = device_roster(home, *windows.devices,
                                              self.policy)
        if self.collect_wifi:
            with perf.stage("wifi"):
                output.wifi_scans = wifi_scans(
                    home, *windows.wifi, rng=self._seeds.generator("wifi"))
        if self.collect_traffic:
            with perf.stage("traffic"):
                output.throughput, output.flows, output.dns = monitor_traffic(
                    home, *windows.traffic,
                    rng=self._seeds.generator("traffic"),
                    policy=self.policy)
                perf.count("flows", len(output.flows))
        perf.count("routers")
        return output
