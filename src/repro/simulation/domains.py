"""The domain universe: popularity ranks, categories, and device profiles.

Sections 6.4 and 3.2.2 of the paper hinge on a *whitelist* of the Alexa
top-200 US domains: traffic to whitelisted domains keeps its name, anything
else is obfuscated before leaving the home, and whitelisted traffic covers
about 65% of bytes.  This module builds that universe:

* a ranked whitelist whose head is the real one (google, youtube, facebook,
  amazon, apple, twitter, ...) and whose tail is synthetic;
* a *category* per domain (streaming / web / social / cloud / update /
  gaming / other) fixing its flow shape — streaming moves two orders of
  magnitude more bytes per connection than web browsing, which is exactly
  why the volume-top domain carries ~38% of bytes on ~14% of connections
  (Fig. 19);
* per-device-kind domain preference profiles — a Roku talks almost only to
  streaming services, a desktop syncs dropbox (Fig. 20).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Sentinel name prefix for the non-whitelisted tail the firmware obfuscates.
TAIL_DOMAIN_PREFIX = "tail-site-"

WHITELIST_SIZE = 200


@dataclass(frozen=True)
class DomainProfile:
    """Flow shape of one domain category."""

    #: Median bytes transferred per connection (downstream-dominant).
    bytes_per_connection: float
    #: Lognormal sigma for per-connection bytes.
    bytes_sigma: float
    #: Mean connections opened per session touching this domain.
    connections_per_session: float
    #: Fraction of the bytes that flow upstream.
    upstream_fraction: float
    #: Typical flow duration in seconds (streaming runs long).
    duration_seconds: float
    #: Dominant destination port.
    port: int


#: Flow shapes per category, calibrated to make streaming byte-heavy and
#: connection-light, and web the reverse (Fig. 19a vs 19b).
CATEGORY_PROFILES: Dict[str, DomainProfile] = {
    "streaming": DomainProfile(
        bytes_per_connection=45e6, bytes_sigma=1.0,
        connections_per_session=2.0, upstream_fraction=0.02,
        duration_seconds=1500.0, port=443),
    "web": DomainProfile(
        bytes_per_connection=450e3, bytes_sigma=1.2,
        connections_per_session=10.0, upstream_fraction=0.10,
        duration_seconds=20.0, port=80),
    "social": DomainProfile(
        bytes_per_connection=500e3, bytes_sigma=1.2,
        connections_per_session=9.0, upstream_fraction=0.15,
        duration_seconds=45.0, port=443),
    "cloud": DomainProfile(
        bytes_per_connection=15e6, bytes_sigma=1.5,
        connections_per_session=3.0, upstream_fraction=0.45,
        duration_seconds=300.0, port=443),
    "update": DomainProfile(
        bytes_per_connection=25e6, bytes_sigma=1.3,
        connections_per_session=2.0, upstream_fraction=0.02,
        duration_seconds=240.0, port=443),
    "gaming": DomainProfile(
        bytes_per_connection=6e6, bytes_sigma=1.2,
        connections_per_session=3.0, upstream_fraction=0.20,
        duration_seconds=1800.0, port=3074),
    "other": DomainProfile(
        bytes_per_connection=800e3, bytes_sigma=1.6,
        connections_per_session=5.0, upstream_fraction=0.15,
        duration_seconds=60.0, port=443),
}


@dataclass(frozen=True)
class Domain:
    """One destination domain with its global rank and category."""

    name: str
    rank: int
    category: str
    whitelisted: bool

    @property
    def profile(self) -> DomainProfile:
        """Flow shape for this domain's category."""
        return CATEGORY_PROFILES[self.category]


# The whitelist head mirrors the real Alexa-top-US head the paper names
# (Google, YouTube, Facebook, Amazon, Apple, Twitter are "the most
# consistently popular domains"), plus the streaming/cloud services that
# Figs. 14-20 discuss by name.
_HEAD: Tuple[Tuple[str, str], ...] = (
    ("google.com", "web"),
    ("youtube.com", "streaming"),
    ("facebook.com", "social"),
    ("amazon.com", "web"),
    ("apple.com", "update"),
    ("twitter.com", "social"),
    ("netflix.com", "streaming"),
    ("yahoo.com", "web"),
    ("wikipedia.org", "web"),
    ("hulu.com", "streaming"),
    ("pandora.com", "streaming"),
    ("dropbox.com", "cloud"),
    ("microsoft.com", "update"),
    ("ebay.com", "web"),
    ("bing.com", "web"),
    ("craigslist.org", "web"),
    ("linkedin.com", "social"),
    ("pinterest.com", "social"),
    ("instagram.com", "social"),
    ("tumblr.com", "social"),
    ("espn.com", "web"),
    ("cnn.com", "web"),
    ("nytimes.com", "web"),
    ("imgur.com", "web"),
    ("paypal.com", "web"),
    ("live.com", "web"),
    ("blogspot.com", "web"),
    ("wordpress.com", "web"),
    ("reddit.com", "web"),
    ("aol.com", "web"),
    ("xboxlive.com", "gaming"),
    ("steampowered.com", "gaming"),
    ("icloud.com", "cloud"),
    ("twitch.tv", "streaming"),
    ("vimeo.com", "streaming"),
    ("spotify.com", "streaming"),
)


def build_domain_universe(tail_domains: int = 400) -> List[Domain]:
    """Build the ranked universe: 200 whitelisted + an obfuscated tail.

    Ranks 1..200 form the whitelist (real head, synthetic ``site-N.com``
    filler); ranks beyond are the long tail the firmware obfuscates.
    """
    if tail_domains < 0:
        raise ValueError("tail_domains cannot be negative")
    domains: List[Domain] = []
    for index, (name, category) in enumerate(_HEAD):
        domains.append(Domain(name, index + 1, category, whitelisted=True))
    for rank in range(len(_HEAD) + 1, WHITELIST_SIZE + 1):
        # Synthetic filler for the rest of the top-200: mostly web, with a
        # sprinkling of streaming/cloud so mid-ranks can matter in Fig. 18.
        if rank % 29 == 0:
            category = "streaming"
        elif rank % 17 == 0:
            category = "cloud"
        else:
            category = "web"
        domains.append(Domain(f"site-{rank:03d}.com", rank, category,
                              whitelisted=True))
    for offset in range(tail_domains):
        rank = WHITELIST_SIZE + 1 + offset
        # The obfuscated tail is not all small-object traffic: it includes
        # CDNs, adult streaming, and sync services, which is how ~35% of
        # bytes end up outside the whitelist (Fig. 19's "Total" caveat).
        if rank % 11 == 0:
            category = "streaming"
        elif rank % 7 == 0:
            category = "cloud"
        else:
            category = "other"
        domains.append(Domain(f"{TAIL_DOMAIN_PREFIX}{offset:04d}.com",
                              rank, category, whitelisted=False))
    return domains


@lru_cache(maxsize=1)
def default_universe() -> Tuple[Domain, ...]:
    """The default domain universe, memoized per process.

    Shard workers, fault-tolerance retries, and default
    ``materialize_shard`` calls all need the same deterministic universe;
    building it once per process instead of once per shard keeps retry and
    resubmission paths from redoing the construction.  The tuple is shared,
    so callers must treat it as immutable (every ``Domain`` already is).
    """
    return tuple(build_domain_universe())


def zipf_weights(ranks: Sequence[int], exponent: float = 0.75) -> np.ndarray:
    """Zipf popularity weights over global ranks (normalized)."""
    arr = np.asarray(list(ranks), dtype=float)
    if np.any(arr < 1):
        raise ValueError("ranks start at 1")
    weights = arr ** -exponent
    return weights / weights.sum()


#: Device-kind → per-category appetite multipliers (Fig. 20's separation).
KIND_CATEGORY_APPETITE: Dict[str, Dict[str, float]] = {
    "phone": {"web": 1.0, "social": 2.5, "streaming": 0.8, "cloud": 0.3,
              "update": 0.8, "gaming": 0.1, "other": 1.0},
    "tablet": {"web": 1.0, "social": 1.5, "streaming": 1.8, "cloud": 0.3,
               "update": 0.6, "gaming": 0.3, "other": 0.8},
    "laptop": {"web": 1.3, "social": 1.0, "streaming": 1.2, "cloud": 0.8,
               "update": 0.6, "gaming": 0.2, "other": 1.2},
    "desktop": {"web": 1.3, "social": 0.7, "streaming": 0.8, "cloud": 2.5,
                "update": 0.8, "gaming": 0.3, "other": 1.2},
    "media_box": {"web": 0.02, "social": 0.0, "streaming": 12.0, "cloud": 0.0,
                  "update": 0.1, "gaming": 0.0, "other": 0.05},
    "console": {"web": 0.1, "social": 0.05, "streaming": 2.0, "cloud": 0.0,
                "update": 1.0, "gaming": 8.0, "other": 0.1},
    "background": {"web": 0.3, "social": 0.05, "streaming": 0.05,
                   "cloud": 0.5, "update": 1.5, "gaming": 0.0, "other": 1.0},
}


class DomainSampler:
    """Per-home domain sampling: global popularity × device appetite × taste.

    Each home picks a *favorite* streaming service whose weight is boosted,
    which is what concentrates ~38% of a home's bytes on one domain while
    different homes favor different services (Fig. 18's long tail of
    locally-popular domains).
    """

    def __init__(self, rng: np.random.Generator,
                 universe: Sequence[Domain],
                 favorite_boost: float = 1.3,
                 taste_sigma: float = 0.8,
                 tail_weight_multiplier: float = 1.6):
        if not universe:
            raise ValueError("domain universe must be non-empty")
        if tail_weight_multiplier < 0:
            raise ValueError("tail_weight_multiplier cannot be negative")
        self.universe = list(universe)
        base = zipf_weights([d.rank for d in self.universe])
        # Household taste: independent lognormal jitter per domain.
        taste = rng.lognormal(0.0, taste_sigma, size=len(self.universe))
        weights = base * taste
        tail_mask = np.asarray([not d.whitelisted for d in self.universe])
        weights[tail_mask] *= tail_weight_multiplier
        streaming_idx = [i for i, d in enumerate(self.universe)
                         if d.category == "streaming" and d.whitelisted]
        if streaming_idx:
            favorite = int(rng.choice(streaming_idx))
            weights[favorite] *= favorite_boost
            self.favorite_domain = self.universe[favorite].name
        else:
            self.favorite_domain = None
        self._home_weights = weights / weights.sum()
        self._by_kind: Dict[str, np.ndarray] = {}

    def _kind_weights(self, profile_key: str) -> np.ndarray:
        cached = self._by_kind.get(profile_key)
        if cached is not None:
            return cached
        appetite = KIND_CATEGORY_APPETITE.get(
            profile_key, KIND_CATEGORY_APPETITE["laptop"])
        scales = np.asarray([appetite.get(d.category, 0.1)
                             for d in self.universe])
        weights = self._home_weights * scales
        total = weights.sum()
        if total == 0:
            weights = self._home_weights.copy()
            total = weights.sum()
        weights = weights / total
        self._by_kind[profile_key] = weights
        return weights

    def sample(self, rng: np.random.Generator, profile_key: str,
               count: int) -> List[Domain]:
        """Draw *count* session target domains for a device profile."""
        if count < 0:
            raise ValueError("count cannot be negative")
        if count == 0:
            return []
        weights = self._kind_weights(profile_key)
        idx = rng.choice(len(self.universe), size=count, p=weights)
        return [self.universe[int(i)] for i in idx]
