"""The simulated world the BISmark routers live in.

This subpackage is the substitute for the paper's 126 real homes: it builds a
deterministic, parameterized deployment of households whose power habits,
access links, device populations, wireless neighborhoods, and traffic are
generated from per-country behaviour models calibrated to the marginals the
paper reports (see DESIGN.md section 4).

The entry point is :func:`repro.simulation.deployment.build_deployment`.
"""

from repro.simulation.seeding import SeedHierarchy
from repro.simulation.timebase import (
    StudyCalendar,
    StudyWindows,
    DAY,
    HOUR,
    MINUTE,
    WEEK,
)
from repro.simulation.countries import (
    Country,
    COUNTRIES,
    DEPLOYMENT_COUNTS,
    classify_development,
    country_by_code,
)
from repro.simulation.household import Household, HouseholdConfig
from repro.simulation.deployment import Deployment, DeploymentConfig, build_deployment

__all__ = [
    "SeedHierarchy",
    "StudyCalendar",
    "StudyWindows",
    "DAY",
    "HOUR",
    "MINUTE",
    "WEEK",
    "Country",
    "COUNTRIES",
    "DEPLOYMENT_COUNTS",
    "classify_development",
    "country_by_code",
    "Household",
    "HouseholdConfig",
    "Deployment",
    "DeploymentConfig",
    "build_deployment",
]
