"""Household activity schedules: who is home and who is using the network.

Two distinct hour-of-day curves drive the simulation, because the paper's
Figure 13 shows device *presence* dips only slightly at night (phones stay
associated while people sleep) whereas *traffic* collapses at night:

* **presence** — probability a portable device is at home, powered, and
  associated with the AP.  High at night, low during weekday work hours,
  peaking in the evening.
* **activity** — probability the household is actively generating traffic.
  Near-zero at night, moderate in the morning, peaking in the evening.

Weekends flatten both curves (Fig. 13b: "usage on weekends is more
constant").  Each household gets a private, jittered copy of the base curves
so homes differ without losing the population-level shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simulation.timebase import StudyCalendar

#: Base probability a portable device is associated, by local hour (weekday).
_PRESENCE_WEEKDAY = np.array([
    0.60, 0.60, 0.59, 0.59, 0.59, 0.59,   # 00-05 asleep, phones connected
    0.58, 0.55, 0.44,                     # 06-08 leaving for work/school
    0.32, 0.30, 0.28, 0.28, 0.30, 0.31, 0.34,  # 09-15 workday trough
    0.44, 0.56,                           # 16-17 returning home
    0.64, 0.68, 0.70, 0.69,               # 18-21 evening peak
    0.66, 0.64,                           # 22-23 winding down
])

#: Weekend presence: flatter, people home most of the day (Fig. 13b).
_PRESENCE_WEEKEND = np.array([
    0.62, 0.62, 0.61, 0.61, 0.61, 0.61,
    0.60, 0.58, 0.55,
    0.53, 0.51, 0.50, 0.50, 0.50, 0.51, 0.52,
    0.54, 0.57,
    0.61, 0.64, 0.65, 0.64,
    0.63, 0.62,
])

#: Base probability of active network use, by local hour (weekday).
_ACTIVITY_WEEKDAY = np.array([
    0.12, 0.08, 0.05, 0.04, 0.04, 0.06,
    0.20, 0.40, 0.42,
    0.30, 0.28, 0.27, 0.28, 0.28, 0.29, 0.32,
    0.45, 0.60,
    0.80, 0.92, 0.95, 0.88,
    0.60, 0.30,
])

#: Weekend activity: higher during the day, similar evening peak.
_ACTIVITY_WEEKEND = np.array([
    0.18, 0.12, 0.07, 0.05, 0.05, 0.06,
    0.15, 0.28, 0.42,
    0.52, 0.58, 0.60, 0.58, 0.56, 0.55, 0.56,
    0.60, 0.66,
    0.75, 0.82, 0.84, 0.80,
    0.62, 0.35,
])


def _jitter_curve(base: np.ndarray, rng: np.random.Generator,
                  scale_sigma: float, shift_hours: int) -> np.ndarray:
    """Produce a household-private variant of a base curve.

    The curve is scaled by a lognormal factor and circularly shifted by up
    to ±*shift_hours* so households peak at slightly different times.
    """
    scale = float(rng.lognormal(mean=0.0, sigma=scale_sigma))
    shift = int(rng.integers(-shift_hours, shift_hours + 1))
    curve = np.roll(base, shift) * scale
    return np.clip(curve, 0.0, 1.0)


@dataclass(frozen=True)
class ActivitySchedule:
    """One household's presence and activity curves (24 slots each)."""

    presence_weekday: np.ndarray
    presence_weekend: np.ndarray
    activity_weekday: np.ndarray
    activity_weekend: np.ndarray

    def __post_init__(self) -> None:
        for curve in (self.presence_weekday, self.presence_weekend,
                      self.activity_weekday, self.activity_weekend):
            if curve.shape != (24,):
                raise ValueError("schedule curves must have 24 hourly slots")
            if curve.min() < 0 or curve.max() > 1:
                raise ValueError("schedule curves must stay within [0, 1]")

    @classmethod
    def generate(cls, rng: np.random.Generator) -> "ActivitySchedule":
        """Draw a household-private schedule around the base curves."""
        return cls(
            presence_weekday=_jitter_curve(_PRESENCE_WEEKDAY, rng, 0.08, 1),
            presence_weekend=_jitter_curve(_PRESENCE_WEEKEND, rng, 0.08, 1),
            activity_weekday=_jitter_curve(_ACTIVITY_WEEKDAY, rng, 0.15, 1),
            activity_weekend=_jitter_curve(_ACTIVITY_WEEKEND, rng, 0.15, 1),
        )

    @classmethod
    def baseline(cls) -> "ActivitySchedule":
        """The unjittered population curves (useful for tests)."""
        return cls(
            presence_weekday=_PRESENCE_WEEKDAY.copy(),
            presence_weekend=_PRESENCE_WEEKEND.copy(),
            activity_weekday=_ACTIVITY_WEEKDAY.copy(),
            activity_weekend=_ACTIVITY_WEEKEND.copy(),
        )

    def presence(self, calendar: StudyCalendar, epoch: float) -> float:
        """Probability a portable device is associated at *epoch*."""
        curve = (self.presence_weekend if calendar.is_weekend(epoch)
                 else self.presence_weekday)
        return float(curve[calendar.hour_of_day(epoch)])

    def activity(self, calendar: StudyCalendar, epoch: float) -> float:
        """Probability the household is generating traffic at *epoch*."""
        curve = (self.activity_weekend if calendar.is_weekend(epoch)
                 else self.activity_weekday)
        return float(curve[calendar.hour_of_day(epoch)])

    def presence_many(self, calendar: StudyCalendar,
                      epochs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`presence` (bitwise-equal element-wise)."""
        hours = calendar.hour_of_day_many(epochs)
        weekend = calendar.is_weekend_many(epochs)
        return np.where(weekend, self.presence_weekend[hours],
                        self.presence_weekday[hours])

    def activity_many(self, calendar: StudyCalendar,
                      epochs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`activity` (bitwise-equal element-wise)."""
        hours = calendar.hour_of_day_many(epochs)
        weekend = calendar.is_weekend_many(epochs)
        return np.where(weekend, self.activity_weekend[hours],
                        self.activity_weekday[hours])

    def evening_block(self, calendar: StudyCalendar,
                      day_start_epoch: float,
                      rng: np.random.Generator) -> "tuple[float, float]":
        """Sample the contiguous evening-use block for an appliance-mode home.

        Returns (start, end) epochs within the local day starting at
        *day_start_epoch*.  Weekends produce earlier, longer blocks —
        matching the Chinese household of Fig. 6b whose router is on
        "briefly in evenings and during weekends".
        """
        weekend = calendar.is_weekend(day_start_epoch + 12 * 3600)
        if weekend:
            start_hour = float(rng.uniform(10.0, 16.0))
            duration_hours = float(rng.uniform(4.0, 9.0))
        else:
            start_hour = float(rng.uniform(17.5, 20.0))
            duration_hours = float(rng.uniform(1.5, 4.5))
        start = day_start_epoch + start_hour * 3600
        return (start, start + duration_hours * 3600)
