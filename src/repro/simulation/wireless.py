"""The wireless neighborhood: how many other APs does a home hear?

Figure 11 of the paper shows two things this module reproduces:

* developed-country homes hear far more 2.4 GHz neighbors (median ≈ 20)
  than developing-country homes (median ≈ 2);
* both distributions are *bimodal* — a home either hears very few APs
  (detached house, rural) or a lot (apartment building, dense urban).

The 5 GHz band is nearly empty everywhere (median ≈ 1).

Each home gets a static *density class* (sparse or dense) and a concrete
neighborhood: every neighboring AP has a channel assignment
(:mod:`repro.simulation.channels`), and a scan hears only the neighbors
whose channel overlaps the scanned one — reproducing the paper's
configured-channel-only vantage and letting the full-spectrum ablation
quantify what it misses.  Individual scans jitter because neighboring APs
power-cycle and signal conditions vary.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional

import numpy as np

from repro.core.records import Spectrum
from repro.simulation.channels import (
    assign_channels,
    audible,
    channel_weights,
    contention_index,
    least_contended_channel,
)

#: Default channels the BISmark firmware configures (Section 3.2.2): the
#: scanner only sees APs sharing (or overlapping) the configured channel.
DEFAULT_CHANNELS: Dict[Spectrum, int] = {
    Spectrum.GHZ_2_4: 11,
    Spectrum.GHZ_5: 36,
}


@dataclass(frozen=True)
class WirelessEnvironmentConfig:
    """Static parameters of one home's radio neighborhood."""

    #: Mean 2.4 GHz neighbor count *visible on the configured channel* for
    #: dense homes in this country (the Fig. 11 calibration target).
    neighbor_ap_level: float
    #: Probability the home is in a sparse (few-neighbor) location.
    sparse_probability: float = 0.35

    def __post_init__(self) -> None:
        if self.neighbor_ap_level < 0:
            raise ValueError("neighbor_ap_level cannot be negative")
        if not 0 <= self.sparse_probability <= 1:
            raise ValueError("sparse_probability must be in [0, 1]")


@lru_cache(maxsize=None)
def _audible_mass(spectrum: Spectrum, channel: int) -> float:
    """Fraction of neighborhood popularity audible from *channel*."""
    channels, weights = channel_weights(spectrum)
    return float(sum(w for c, w in zip(channels, weights)
                     if audible(spectrum, channel, c)))


class WirelessEnvironment:
    """One home's neighbor-AP population, with per-AP channels.

    The home's density class, total neighborhood size, and each neighbor's
    channel are drawn once at construction;
    :meth:`scan_neighbor_count` produces the per-scan counts the WiFi
    collector records.
    """

    def __init__(self, rng: np.random.Generator,
                 config: WirelessEnvironmentConfig):
        self.config = config
        self.sparse = bool(rng.random() < config.sparse_probability)
        self.channels = dict(DEFAULT_CHANNELS)

        # Calibrate the *visible-on-default-channel* count (the Fig. 11
        # quantity), then size the total neighborhood so that the expected
        # audible fraction reproduces it.
        if self.sparse:
            visible_24 = rng.poisson(max(config.neighbor_ap_level * 0.08,
                                         0.4))
        else:
            visible_24 = rng.poisson(max(config.neighbor_ap_level, 0.4))
        visible_5 = rng.poisson(1.2 if not self.sparse else 0.2)

        self._neighbors: Dict[Spectrum, List[int]] = {}
        for spectrum, visible in ((Spectrum.GHZ_2_4, int(visible_24)),
                                  (Spectrum.GHZ_5, int(visible_5))):
            mass = _audible_mass(spectrum, self.channels[spectrum])
            total = int(round(visible / mass)) if visible else 0
            channels = assign_channels(rng, spectrum, total)
            # Guarantee the calibrated visible count exactly: top up with
            # co-channel neighbors if the draw under-shot.
            audible_now = sum(
                1 for c in channels
                if audible(spectrum, self.channels[spectrum], c))
            channels += [self.channels[spectrum]] * max(
                visible - audible_now, 0)
            self._neighbors[spectrum] = channels

    @classmethod
    def from_columns(cls, config: WirelessEnvironmentConfig, sparse: bool,
                     neighbors: Dict[Spectrum, List[int]],
                     ) -> "WirelessEnvironment":
        """Rebuild an environment from cohort columns (no RNG consumed).

        The columnar materializer stores ``(sparse, neighbor channels)``
        after drawing them once; this reconstructs an object identical to
        the one the draws produced.
        """
        obj = cls.__new__(cls)
        obj.config = config
        obj.sparse = sparse
        obj.channels = dict(DEFAULT_CHANNELS)
        obj._neighbors = neighbors
        return obj

    # -- ground-truth queries ---------------------------------------------------

    def neighborhood_channels(self, spectrum: Spectrum) -> List[int]:
        """Every neighbor's channel on one band (ground truth)."""
        return list(self._neighbors[spectrum])

    def total_neighbors(self, spectrum: Spectrum) -> int:
        """All neighboring APs on one band, audible or not."""
        return len(self._neighbors[spectrum])

    def base_neighbor_count(self, spectrum: Spectrum,
                            channel: Optional[int] = None) -> int:
        """Neighbors audible from *channel* (default: the configured one)."""
        scan_channel = channel if channel is not None \
            else self.channels[spectrum]
        return sum(1 for c in self._neighbors[spectrum]
                   if audible(spectrum, scan_channel, c))

    def contention(self, spectrum: Spectrum,
                   channel: Optional[int] = None) -> float:
        """Interference pressure on a channel from the whole neighborhood."""
        own = channel if channel is not None else self.channels[spectrum]
        return contention_index(spectrum, own,
                                self._neighbors[spectrum])

    def best_channel(self, spectrum: Spectrum) -> int:
        """The least-contended channel (what a spectrum-aware AP picks)."""
        return least_contended_channel(spectrum,
                                       self._neighbors[spectrum])

    # -- the scanner's view --------------------------------------------------------

    def scan_neighbor_count(self, spectrum: Spectrum,
                            rng: np.random.Generator,
                            channel: Optional[int] = None) -> int:
        """One scan's visible-AP count: audible neighbors plus churn.

        Churn is per-neighbor Bernoulli thinning (some neighbors asleep or
        below the noise floor) plus a small Poisson arrival of transient
        networks (hotspots, printers).
        """
        base = self.base_neighbor_count(spectrum, channel)
        visible = int(rng.binomial(base, 0.85)) if base > 0 else 0
        transient = int(rng.poisson(0.15))
        return visible + transient
