"""The OUI registry and vendor categories of Figure 12.

The paper resolves the unobfuscated top 24 bits of each MAC to a
manufacturer, then buckets manufacturers into the categories of Fig. 12
(Apple, ODM, Intel, SmartPhone, Samsung, Gateway, ...).  This module bundles
a registry with the same bucket structure: each vendor has one or more OUIs,
and :func:`vendor_category` resolves an OUI back to its bucket — which is
all Fig. 12 needs.

The registry is intentionally the *analysis-side* source of truth too: the
simulator allocates device MACs from it, and the infrastructure analysis
resolves collected (lower-24-hashed) MACs through it, exactly as the paper
resolved real OUIs through the IEEE registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.netutils.mac import MacAddress, random_mac

# Fig. 12 category labels, in the paper's display order.
CATEGORY_ORDER: Tuple[str, ...] = (
    "Apple", "ODM", "Intel", "SmartPhone", "Samsung", "Gateway", "Asus",
    "Misc.", "Microsoft", "InternetTV", "Gaming", "WirelessCard", "VoIP",
    "Hewlett-Packard", "Hardware", "VMware", "Raspberry-Pi", "Printer",
)


@dataclass(frozen=True)
class Vendor:
    """One manufacturer: display name, Fig. 12 bucket, registered OUIs."""

    name: str
    category: str
    ouis: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.category not in CATEGORY_ORDER:
            raise ValueError(f"unknown vendor category {self.category!r}")
        if not self.ouis:
            raise ValueError(f"vendor {self.name!r} needs at least one OUI")


#: The bundled registry.  OUI values follow real allocations where widely
#: known (Apple, Raspberry-Pi, VMware, ...), and are stable placeholders
#: otherwise; Fig. 12 depends only on the OUI → bucket mapping.
VENDORS: Tuple[Vendor, ...] = (
    Vendor("Apple", "Apple", (0x3C0754, 0x28CFDA, 0x7CD1C3, 0xF0B479, 0x0026BB)),
    Vendor("Compal", "ODM", (0x001A73,)),
    Vendor("Hon Hai Precision", "ODM", (0x00242B, 0x60D819)),
    Vendor("Quanta", "ODM", (0x00C09F,)),
    Vendor("Universal Global Systems", "ODM", (0x0016D4,)),
    Vendor("Wistron Infocomm", "ODM", (0x3C970F,)),
    Vendor("Intel", "Intel", (0x001B21, 0x8C705A, 0x4C8093)),
    Vendor("HTC", "SmartPhone", (0x188796,)),
    Vendor("LG", "SmartPhone", (0x0021FB,)),
    Vendor("Motorola", "SmartPhone", (0x40786A,)),
    Vendor("Nokia", "SmartPhone", (0x0026CC,)),
    Vendor("Murata", "SmartPhone", (0x44A7CF,)),
    Vendor("Samsung", "Samsung", (0x002339, 0x5C0A5B, 0x8C71F8)),
    Vendor("TP-Link", "Gateway", (0xF4EC38,)),
    Vendor("Realtek", "Gateway", (0x00E04C,)),
    Vendor("Liteon", "Gateway", (0x74DE2B,)),
    Vendor("D-Link", "Gateway", (0x14D64D,)),
    Vendor("Cisco-Linksys", "Gateway", (0x687F74,)),
    Vendor("Belkin", "Gateway", (0x944452,)),
    Vendor("Askey", "Gateway", (0x0E5610,)),
    Vendor("Asus", "Asus", (0x50465D, 0xBCAEC5)),
    Vendor("Polycom", "Misc.", (0x0004F2,)),
    Vendor("Prolifix", "Misc.", (0x04E9E5,)),
    Vendor("Pegatron", "Misc.", (0x10C37B,)),
    Vendor("Microsoft", "Microsoft", (0x7CED8D, 0x0017FA)),
    Vendor("Roku", "InternetTV", (0xB0A737,)),
    Vendor("TiVo", "InternetTV", (0x0011D9,)),
    Vendor("ASRock", "InternetTV", (0xBC5FF4,)),
    Vendor("Nintendo", "Gaming", (0x0019FD,)),
    Vendor("Mitsumi", "Gaming", (0x0009BF,)),
    Vendor("AzureWave", "WirelessCard", (0x74F06D,)),
    Vendor("GainSpan", "WirelessCard", (0x20F85E,)),
    Vendor("UniData", "VoIP", (0x00E091,)),
    Vendor("Hewlett-Packard", "Hewlett-Packard", (0x308D99, 0x3CD92B)),
    Vendor("Giga-Byte", "Hardware", (0x1C6F65,)),
    Vendor("Microchip", "Hardware", (0x001EC0,)),
    Vendor("VMware", "VMware", (0x000C29,)),
    Vendor("Raspberry Pi Foundation", "Raspberry-Pi", (0xB827EB,)),
    Vendor("Epson", "Printer", (0x64EB8C,)),
    Vendor("Netgear", "Gateway", (0x204E7F,)),  # the BISmark router itself
)

#: OUI of the deployed BISmark gateways; the paper removes these from
#: Fig. 12 ("we have removed all references to Netgear originating from our
#: BISmark routers").
BISMARK_OUI = 0x204E7F

_OUI_TO_VENDOR: Dict[int, Vendor] = {}
for _vendor in VENDORS:
    for _oui in _vendor.ouis:
        if _oui in _OUI_TO_VENDOR:
            raise RuntimeError(f"duplicate OUI {_oui:#08x} in registry")
        _OUI_TO_VENDOR[_oui] = _vendor

_CATEGORY_TO_OUIS: Dict[str, List[int]] = {}
for _vendor in VENDORS:
    _CATEGORY_TO_OUIS.setdefault(_vendor.category, []).extend(_vendor.ouis)


def vendor_of_oui(oui: int) -> "Vendor | None":
    """The registered vendor owning *oui*, or None for unknown OUIs."""
    return _OUI_TO_VENDOR.get(oui)


def vendor_category(oui: int) -> str:
    """The Fig. 12 bucket for *oui* (``"Unknown"`` when unregistered)."""
    vendor = _OUI_TO_VENDOR.get(oui)
    return vendor.category if vendor is not None else "Unknown"


def allocate_mac(rng: np.random.Generator, category: str) -> MacAddress:
    """Allocate a device MAC under a random OUI of the given bucket."""
    try:
        ouis = _CATEGORY_TO_OUIS[category]
    except KeyError:
        raise KeyError(f"no vendors registered for category {category!r}") from None
    oui = int(ouis[int(rng.integers(0, len(ouis)))])
    return random_mac(rng, oui)
