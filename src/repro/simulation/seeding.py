"""Hierarchical deterministic random streams.

Every stochastic component of the simulator draws from its own named stream
derived from a single study seed, so (a) the whole study is reproducible from
one integer, and (b) changing one component's draws (e.g. adding a device to
one home) never perturbs any other component's randomness.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Tuple, Union

import numpy as np

_KeyPart = Union[str, int]


def _digest_key(parts: Iterable[_KeyPart]) -> int:
    """Hash a key path into a 128-bit integer suitable for SeedSequence."""
    hasher = hashlib.sha256()
    for part in parts:
        if isinstance(part, int):
            hasher.update(b"i" + part.to_bytes(16, "big", signed=True))
        else:
            hasher.update(b"s" + part.encode("utf-8"))
        hasher.update(b"\x00")
    return int.from_bytes(hasher.digest()[:16], "big")


class SeedHierarchy:
    """A tree of named, independent random generators.

    >>> seeds = SeedHierarchy(42)
    >>> rng = seeds.generator("household", 3, "power")
    >>> rng2 = seeds.generator("household", 3, "traffic")

    The two generators above are statistically independent, and each is fully
    determined by ``(42, key path)``.
    """

    def __init__(self, study_seed: int):
        if not isinstance(study_seed, int):
            raise TypeError(f"study seed must be an int, got {study_seed!r}")
        self.study_seed = study_seed

    def child(self, *parts: _KeyPart) -> "SeedHierarchy":
        """Return a sub-hierarchy rooted at the given key path."""
        scoped = SeedHierarchy(self.study_seed)
        scoped._prefix = getattr(self, "_prefix", ()) + tuple(parts)
        return scoped

    def _full_key(self, parts: Tuple[_KeyPart, ...]) -> Tuple[_KeyPart, ...]:
        return getattr(self, "_prefix", ()) + parts

    def seed_sequence(self, *parts: _KeyPart) -> np.random.SeedSequence:
        """Build the SeedSequence for a key path under this hierarchy."""
        key = self._full_key(parts)
        return np.random.SeedSequence([self.study_seed, _digest_key(key)])

    def generator(self, *parts: _KeyPart) -> np.random.Generator:
        """Return a fresh, independent generator for the given key path.

        Calling this twice with the same path returns generators that produce
        identical streams — callers own the generator state.
        """
        return np.random.Generator(np.random.PCG64(self.seed_sequence(*parts)))

    def integer(self, *parts: _KeyPart, high: int = 2**31) -> int:
        """Draw one deterministic integer in ``[0, high)`` for a key path."""
        return int(self.generator(*parts).integers(0, high))
