"""One simulated home: link + power + devices + wireless + traffic.

A :class:`Household` is the unit the firmware simulator instruments.  It
wires together every per-home model with independent random streams derived
from the study seed, and exposes the queries the collectors need:

* when was the router powered (:attr:`power`), the link up (:attr:`link`),
  and both (:meth:`online_intervals`) — heartbeats need the conjunction;
* which devices were associated when (:attr:`devices`);
* what the radio neighborhood looks like (:attr:`wireless`);
* the generated traffic, for consenting homes (:meth:`traffic`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.intervals import IntervalSet
from repro.core.records import RouterInfo
from repro.simulation.behavior import ActivitySchedule
from repro.simulation.countries import Country
from repro.simulation.device_models import SimDevice, generate_devices
from repro.simulation.domains import Domain, DomainSampler, build_domain_universe
from repro.simulation.link import AccessLink, AccessLinkConfig
from repro.simulation.power import PowerModel, draw_power_model
from repro.simulation.seeding import SeedHierarchy
from repro.simulation.timebase import StudyCalendar
from repro.simulation.traffic_model import HomeTraffic, TrafficGenerator
from repro.simulation.wireless import WirelessEnvironment, WirelessEnvironmentConfig


@dataclass(frozen=True)
class HouseholdConfig:
    """Static description of one home before any randomness is drawn."""

    router_id: str
    country: Country
    span: Tuple[float, float]
    traffic_consent: bool = False
    #: None, "continuous", or "diurnal" — the Fig. 16 uplink saturators.
    uplink_saturator: Optional[str] = None
    #: Multiplier on traffic volume; <1 models barely-active homes that the
    #: paper's ≥100 MB Traffic filter excludes.
    traffic_intensity: float = 1.0
    #: Deployment-stratified appliance-mode decision.  None keeps the
    #: per-home Bernoulli draw; True/False pins the mode so each country
    #: gets exactly its calibrated share of appliance homes.
    appliance_hint: "Optional[bool]" = None

    def __post_init__(self) -> None:
        if self.span[1] <= self.span[0]:
            raise ValueError("household span must be non-empty")
        if self.traffic_intensity <= 0:
            raise ValueError("traffic_intensity must be positive")


class Household:
    """A fully-instantiated home, deterministic given (seed, config)."""

    def __init__(self, seeds: SeedHierarchy, config: HouseholdConfig,
                 domain_universe: Optional[Sequence[Domain]] = None):
        self.config = config
        self.country = config.country
        self.router_id = config.router_id
        self.span = config.span
        self.calendar = StudyCalendar(config.country.tz_offset_hours)

        scope = seeds.child("household", config.router_id)
        profile = config.country.behavior

        self.schedule = ActivitySchedule.generate(scope.generator("schedule"))
        if config.appliance_hint is None:
            appliance_probability = profile.appliance_probability
        else:
            appliance_probability = 1.0 if config.appliance_hint else 0.0
        self.power: PowerModel = draw_power_model(
            scope.generator("power"), config.span, self.calendar,
            self.schedule, appliance_probability,
            config.country.developed,
            nightly_off_probability=profile.nightly_off_probability)

        link_rng = scope.generator("link")
        capacity_jitter = float(link_rng.lognormal(0.0, 0.35))
        self.link = AccessLink(link_rng, config.span, AccessLinkConfig(
            downstream_mbps=profile.downstream_mbps * capacity_jitter,
            upstream_mbps=profile.upstream_mbps * capacity_jitter,
            outage_rate_per_day=profile.isp_outage_rate_per_day,
            outage_median_seconds=profile.isp_outage_median_seconds,
            outage_duration_sigma=profile.isp_outage_duration_sigma,
        ))

        self.wireless = WirelessEnvironment(
            scope.generator("wireless"),
            WirelessEnvironmentConfig(
                neighbor_ap_level=profile.neighbor_ap_level,
                sparse_probability=0.30 if config.country.developed else 0.42,
            ))

        self.devices: List[SimDevice] = generate_devices(
            scope.generator("devices"), config.router_id, config.span,
            self.calendar, self.schedule, config.country.developed,
            profile.mean_devices, profile.always_wired_probability,
            profile.always_wireless_probability)

        self._universe = (list(domain_universe) if domain_universe is not None
                          else build_domain_universe())
        self._sampler: Optional[DomainSampler] = None
        self._traffic_cache: "dict[Tuple[float, float], HomeTraffic]" = {}
        self._seeds = scope

    @property
    def info(self) -> RouterInfo:
        """Deployment metadata record for this home's gateway."""
        return RouterInfo(
            router_id=self.router_id,
            country_code=self.country.code,
            developed=self.country.developed,
            tz_offset_hours=self.country.tz_offset_hours,
            gdp_ppp_per_capita=self.country.gdp_ppp_per_capita,
        )

    @property
    def domain_sampler(self) -> DomainSampler:
        """This home's domain taste (lazy: only traffic homes need it)."""
        if self._sampler is None:
            self._sampler = DomainSampler(
                self._seeds.generator("domains"), self._universe)
        return self._sampler

    # -- availability queries ---------------------------------------------------

    def online_intervals(self, start: float, end: float) -> IntervalSet:
        """When the router was powered AND the access link was up."""
        return self.power.up_intervals(start, end).intersection(
            self.link.up_intervals(start, end))

    def is_online(self, epoch: float) -> bool:
        """True when both power and link were up at *epoch*."""
        return self.power.is_on(epoch) and self.link.is_up(epoch)

    def uptime_at(self, epoch: float) -> Optional[float]:
        """Seconds since last boot at *epoch*, or None if powered off.

        This is what the 12-hourly Uptime reports carry; it resets on every
        power cycle but *not* on ISP outages, which is precisely how the
        paper distinguishes powered-off routers from offline ones.
        """
        for on_start, on_end in self.power.on_intervals:
            if on_start <= epoch < on_end:
                return epoch - on_start
        return None

    # -- traffic -----------------------------------------------------------------

    def traffic(self, start: float, end: float) -> HomeTraffic:
        """Generated traffic for a window (cached per window)."""
        key = (start, end)
        cached = self._traffic_cache.get(key)
        if cached is not None:
            return cached
        generator = TrafficGenerator(
            rng=self._seeds.generator("traffic"),
            devices=self.devices,
            schedule=self.schedule,
            calendar=self.calendar,
            sampler=self.domain_sampler,
            online=self.online_intervals(start, end),
            uplink_saturator=self.config.uplink_saturator,
            upstream_capacity_bps=self.link.upstream_bps,
            intensity=self.config.traffic_intensity,
        )
        traffic = generator.generate(start, end)
        self._traffic_cache[key] = traffic
        return traffic
