"""One simulated home: link + power + devices + wireless + traffic.

A :class:`Household` is the unit the firmware simulator instruments.  It
wires together every per-home model with independent random streams derived
from the study seed, and exposes the queries the collectors need:

* when was the router powered (:attr:`power`), the link up (:attr:`link`),
  and both (:meth:`online_intervals`) — heartbeats need the conjunction;
* which devices were associated when (:attr:`devices`);
* what the radio neighborhood looks like (:attr:`wireless`);
* the generated traffic, for consenting homes (:meth:`traffic`).

Households come into existence two ways with identical results:

* the **reference path** — ``Household(seeds, config)`` draws and expands
  every model eagerly, one home at a time;
* the **cohort path** — ``repro.simulation.cohort`` draws a whole shard
  columnar-style and hands out :meth:`_from_cohort` views whose model
  attributes assemble lazily from the shard's column arrays.

The cohort equivalence suite pins the two paths together bitwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.intervals import IntervalSet
from repro.core.records import RouterInfo
from repro.simulation.behavior import ActivitySchedule
from repro.simulation.countries import Country
from repro.simulation.device_models import SimDevice, generate_devices
from repro.simulation.domains import Domain, DomainSampler, default_universe
from repro.simulation.link import AccessLink, AccessLinkConfig
from repro.simulation.power import PowerModel, draw_power_model
from repro.simulation.seeding import SeedHierarchy
from repro.simulation.timebase import StudyCalendar
from repro.simulation.traffic_model import HomeTraffic, TrafficGenerator
from repro.simulation.wireless import WirelessEnvironment, WirelessEnvironmentConfig


@dataclass(frozen=True)
class HouseholdConfig:
    """Static description of one home before any randomness is drawn."""

    router_id: str
    country: Country
    span: Tuple[float, float]
    traffic_consent: bool = False
    #: None, "continuous", or "diurnal" — the Fig. 16 uplink saturators.
    uplink_saturator: Optional[str] = None
    #: Multiplier on traffic volume; <1 models barely-active homes that the
    #: paper's ≥100 MB Traffic filter excludes.
    traffic_intensity: float = 1.0
    #: Deployment-stratified appliance-mode decision.  None keeps the
    #: per-home Bernoulli draw; True/False pins the mode so each country
    #: gets exactly its calibrated share of appliance homes.
    appliance_hint: "Optional[bool]" = None

    def __post_init__(self) -> None:
        if self.span[1] <= self.span[0]:
            raise ValueError("household span must be non-empty")
        if self.traffic_intensity <= 0:
            raise ValueError("traffic_intensity must be positive")


class Household:
    """A fully-instantiated home, deterministic given (seed, config)."""

    def __init__(self, seeds: SeedHierarchy, config: HouseholdConfig,
                 domain_universe: Optional[Sequence[Domain]] = None):
        self.config = config
        self.country = config.country
        self.router_id = config.router_id
        self.span = config.span
        self.calendar = StudyCalendar(config.country.tz_offset_hours)
        self._cohort = None
        self._cohort_index = -1

        scope = seeds.child("household", config.router_id)
        profile = config.country.behavior

        self._schedule: Optional[ActivitySchedule] = \
            ActivitySchedule.generate(scope.generator("schedule"))
        if config.appliance_hint is None:
            appliance_probability = profile.appliance_probability
        else:
            appliance_probability = 1.0 if config.appliance_hint else 0.0
        self._power: Optional[PowerModel] = draw_power_model(
            scope.generator("power"), config.span, self.calendar,
            self._schedule, appliance_probability,
            config.country.developed,
            nightly_off_probability=profile.nightly_off_probability)

        link_rng = scope.generator("link")
        capacity_jitter = float(link_rng.lognormal(0.0, 0.35))
        self._link: Optional[AccessLink] = AccessLink(
            link_rng, config.span, AccessLinkConfig(
                downstream_mbps=profile.downstream_mbps * capacity_jitter,
                upstream_mbps=profile.upstream_mbps * capacity_jitter,
                outage_rate_per_day=profile.isp_outage_rate_per_day,
                outage_median_seconds=profile.isp_outage_median_seconds,
                outage_duration_sigma=profile.isp_outage_duration_sigma,
            ))

        self._wireless: Optional[WirelessEnvironment] = WirelessEnvironment(
            scope.generator("wireless"),
            WirelessEnvironmentConfig(
                neighbor_ap_level=profile.neighbor_ap_level,
                sparse_probability=0.30 if config.country.developed else 0.42,
            ))

        self._devices: Optional[List[SimDevice]] = generate_devices(
            scope.generator("devices"), config.router_id, config.span,
            self.calendar, self._schedule, config.country.developed,
            profile.mean_devices, profile.always_wired_probability,
            profile.always_wireless_probability)

        self._universe = (list(domain_universe) if domain_universe is not None
                          else default_universe())
        self._sampler: Optional[DomainSampler] = None
        self._traffic_cache: "dict[Tuple[float, float], HomeTraffic]" = {}
        self._seeds = scope

    @classmethod
    def _from_cohort(cls, cohort, index: int) -> "Household":
        """A lazy view into a :class:`~repro.simulation.cohort.ShardCohort`.

        No RNG is consumed here: every draw already happened during the
        cohort's columnar pass.  Model attributes assemble on first touch
        from the cohort's column arrays.
        """
        config = cohort.configs[index]
        obj = cls.__new__(cls)
        obj.config = config
        obj.country = config.country
        obj.router_id = config.router_id
        obj.span = config.span
        obj.calendar = cohort.calendar_for(config)
        obj._cohort = cohort
        obj._cohort_index = index
        obj._schedule = None
        obj._power = None
        obj._link = None
        obj._wireless = None
        obj._devices = None
        obj._universe = cohort.universe
        obj._sampler = None
        obj._traffic_cache = {}
        obj._seeds = cohort.seeds.child("household", config.router_id)
        return obj

    # -- model attributes (eager on the reference path, lazy on cohorts) -------

    @property
    def schedule(self) -> ActivitySchedule:
        """The home's presence/activity curves."""
        if self._schedule is None:
            self._schedule = self._cohort._build_schedule(self._cohort_index)
        return self._schedule

    @property
    def power(self) -> PowerModel:
        """When the router is powered (always-on or appliance mode)."""
        if self._power is None:
            self._power = self._cohort._build_power(self._cohort_index)
        return self._power

    @property
    def link(self) -> AccessLink:
        """The ISP access link: capacity, outages, bufferbloat."""
        if self._link is None:
            self._link = self._cohort._build_link(self._cohort_index)
        return self._link

    @property
    def wireless(self) -> WirelessEnvironment:
        """The radio neighborhood the WiFi collector scans."""
        if self._wireless is None:
            self._wireless = self._cohort._build_wireless(self._cohort_index)
        return self._wireless

    @property
    def devices(self) -> List[SimDevice]:
        """The home's device population with association timelines."""
        if self._devices is None:
            self._devices = self._cohort._build_devices(self._cohort_index)
        return self._devices

    @property
    def info(self) -> RouterInfo:
        """Deployment metadata record for this home's gateway."""
        return RouterInfo(
            router_id=self.router_id,
            country_code=self.country.code,
            developed=self.country.developed,
            tz_offset_hours=self.country.tz_offset_hours,
            gdp_ppp_per_capita=self.country.gdp_ppp_per_capita,
        )

    @property
    def domain_sampler(self) -> DomainSampler:
        """This home's domain taste (lazy: only traffic homes need it)."""
        if self._sampler is None:
            self._sampler = DomainSampler(
                self._seeds.generator("domains"), self._universe)
        return self._sampler

    # -- availability queries ---------------------------------------------------

    def online_intervals(self, start: float, end: float) -> IntervalSet:
        """When the router was powered AND the access link was up."""
        return self.power.up_intervals(start, end).intersection(
            self.link.up_intervals(start, end))

    def is_online(self, epoch: float) -> bool:
        """True when both power and link were up at *epoch*."""
        return self.power.is_on(epoch) and self.link.is_up(epoch)

    def uptime_at(self, epoch: float) -> Optional[float]:
        """Seconds since last boot at *epoch*, or None if powered off.

        This is what the 12-hourly Uptime reports carry; it resets on every
        power cycle but *not* on ISP outages, which is precisely how the
        paper distinguishes powered-off routers from offline ones.
        """
        interval = self.power.on_intervals.interval_at(epoch)
        if interval is None:
            return None
        return epoch - interval[0]

    # -- traffic -----------------------------------------------------------------

    def traffic(self, start: float, end: float) -> HomeTraffic:
        """Generated traffic for a window (cached per window)."""
        key = (start, end)
        cached = self._traffic_cache.get(key)
        if cached is not None:
            return cached
        generator = TrafficGenerator(
            rng=self._seeds.generator("traffic"),
            devices=self.devices,
            schedule=self.schedule,
            calendar=self.calendar,
            sampler=self.domain_sampler,
            online=self.online_intervals(start, end),
            uplink_saturator=self.config.uplink_saturator,
            upstream_capacity_bps=self.link.upstream_bps,
            intensity=self.config.traffic_intensity,
        )
        traffic = generator.generate(start, end)
        self._traffic_cache[key] = traffic
        return traffic
