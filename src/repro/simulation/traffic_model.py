"""The traffic generator: sessions, flows, and per-minute byte series.

This is the substrate under all of Section 6.  For each consenting home it
produces:

* a list of :class:`SimFlow` — one entry per TCP connection, carrying the
  *real* device MAC and the *real* domain (the firmware anonymizes both
  before anything leaves the home);
* per-minute upstream/downstream byte series at the gateway, from which the
  traffic monitor derives the paper's "maximum per-second throughput every
  minute" statistic.

Generation walks device-hours: whenever a device is associated and the
household is active, the device opens sessions at its own rate; each session
picks a domain from the home's :class:`~repro.simulation.domains.DomainSampler`
and expands into connections whose byte counts follow the domain category's
flow shape.  Two special *uplink saturator* behaviours reproduce Fig. 16:
``"continuous"`` uploads scientific data around the clock; ``"diurnal"``
bursts uploads in the evening.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.intervals import IntervalSet
from repro.simulation.behavior import ActivitySchedule
from repro.simulation.device_models import SimDevice
from repro.simulation.domains import Domain, DomainSampler
from repro.simulation.timebase import HOUR, MINUTE, StudyCalendar


@dataclass(frozen=True)
class SimFlow:
    """One simulated TCP connection, pre-anonymization."""

    timestamp: float
    device_index: int
    domain: Domain
    bytes_up: float
    bytes_down: float
    duration_seconds: float


@dataclass
class HomeTraffic:
    """One home's generated traffic over a window."""

    window: Tuple[float, float]
    flows: List[SimFlow]
    #: Per-minute gateway byte counts; index 0 is the window start minute.
    minute_up_bytes: np.ndarray
    minute_down_bytes: np.ndarray

    @property
    def minutes(self) -> int:
        """Number of minute slots in the window."""
        return int(self.minute_up_bytes.size)

    def minute_epoch(self, index: int) -> float:
        """Epoch of the start of minute slot *index*."""
        return self.window[0] + index * MINUTE

    def total_bytes(self) -> float:
        """All bytes in both directions."""
        return float(self.minute_up_bytes.sum() + self.minute_down_bytes.sum())


# Overall session-rate scale: sessions per active device-hour per unit of
# device traffic weight.  Tuned so a typical home moves 0.5-5 GB/day.
_SESSIONS_PER_WEIGHT_HOUR = 1.1


class TrafficGenerator:
    """Generates one home's traffic over the Traffic window."""

    def __init__(self, rng: np.random.Generator,
                 devices: Sequence[SimDevice],
                 schedule: ActivitySchedule,
                 calendar: StudyCalendar,
                 sampler: DomainSampler,
                 online: IntervalSet,
                 uplink_saturator: Optional[str] = None,
                 upstream_capacity_bps: float = 1e6,
                 intensity: float = 1.0):
        if uplink_saturator not in (None, "continuous", "diurnal"):
            raise ValueError(f"unknown saturator mode {uplink_saturator!r}")
        if intensity <= 0:
            raise ValueError("intensity must be positive")
        self.rng = rng
        self.devices = list(devices)
        self.schedule = schedule
        self.calendar = calendar
        self.sampler = sampler
        self.online = online
        self.uplink_saturator = uplink_saturator
        self.upstream_capacity_bps = upstream_capacity_bps
        self.intensity = intensity

    # -- top level -------------------------------------------------------------

    def generate(self, start: float, end: float) -> HomeTraffic:
        """Generate flows and minute series for ``[start, end)``."""
        if end <= start:
            raise ValueError("traffic window must be non-empty")
        n_minutes = int(np.ceil((end - start) / MINUTE))
        up = np.zeros(n_minutes)
        down = np.zeros(n_minutes)
        flows: List[SimFlow] = []
        spreads: List[Tuple[int, int, float, float]] = []

        for index, device in enumerate(self.devices):
            for hour_start, hour_end in device.connected_intervals(start, end):
                cursor = hour_start
                while cursor < hour_end:
                    slot_end = min(cursor + HOUR, hour_end)
                    self._device_hour(index, device, cursor, slot_end,
                                      start, up, flows, spreads)
                    cursor = slot_end

        # Flush every connection's bin spread in one pass, before the
        # saturator overlay touches the series (as the incremental adds
        # used to happen before it).
        self._flush_spreads(spreads, up, down)

        if self.uplink_saturator is not None:
            self._add_saturator_upload(start, end, up, flows)

        self._mask_offline(start, up, down)
        if flows:
            timestamps = np.fromiter((f.timestamp for f in flows),
                                     dtype=np.float64, count=len(flows))
            keep = self.online.contains_many(timestamps)
            flows = [f for f, k in zip(flows, keep) if k]
        flows.sort(key=lambda f: f.timestamp)
        return HomeTraffic(window=(start, end), flows=flows,
                           minute_up_bytes=up, minute_down_bytes=down)

    # -- pieces ----------------------------------------------------------------

    def _device_hour(self, index: int, device: SimDevice,
                     slot_start: float, slot_end: float,
                     window_start: float,
                     up: np.ndarray, flows: List[SimFlow],
                     spreads: List[Tuple[int, int, float, float]]) -> None:
        """Generate the sessions one device opens during one hour slot."""
        activity = self.schedule.activity(self.calendar, slot_start)
        mean_sessions = (device.traffic_weight * activity
                         * _SESSIONS_PER_WEIGHT_HOUR * self.intensity
                         * (slot_end - slot_start) / HOUR)
        n_sessions = int(self.rng.poisson(mean_sessions))
        if n_sessions == 0:
            return
        profile_key = device.traits.traffic_profile
        domains = self.sampler.sample(self.rng, profile_key, n_sessions)
        for domain in domains:
            session_start = float(self.rng.uniform(slot_start, slot_end))
            self._expand_session(index, domain, session_start,
                                 window_start, up, flows, spreads)

    def _expand_session(self, device_index: int, domain: Domain,
                        session_start: float, window_start: float,
                        up: np.ndarray, flows: List[SimFlow],
                        spreads: List[Tuple[int, int, float, float]]) -> None:
        """Expand one session into connections and account their bytes.

        The RNG draws stay scalar and in the original per-connection order
        (the digest contract); only the RNG-free work is batched — the log
        of the profile means is hoisted out of the connection loop and the
        bin spreads are recorded for one vectorized flush.
        """
        profile = domain.profile
        n_conns = 1 + int(self.rng.poisson(
            max(profile.connections_per_session - 1, 0)))
        log_bytes = np.log(profile.bytes_per_connection)
        log_duration = np.log(profile.duration_seconds)
        for conn in range(n_conns):
            conn_start = session_start + conn * float(self.rng.uniform(0.5, 10.0))
            total = float(self.rng.lognormal(log_bytes, profile.bytes_sigma))
            bytes_up = total * profile.upstream_fraction
            bytes_down = total - bytes_up
            duration = max(float(self.rng.lognormal(log_duration, 0.6)), 1.0)
            flows.append(SimFlow(
                timestamp=conn_start,
                device_index=device_index,
                domain=domain,
                bytes_up=bytes_up,
                bytes_down=bytes_down,
                duration_seconds=duration,
            ))
            self._accumulate(conn_start, duration, bytes_up, bytes_down,
                             window_start, up.size, spreads)

    @staticmethod
    def _accumulate(conn_start: float, duration: float,
                    bytes_up: float, bytes_down: float,
                    window_start: float, n_minutes: int,
                    spreads: List[Tuple[int, int, float, float]]) -> None:
        """Record which minute bins a connection's bytes spread across."""
        first = int((conn_start - window_start) // MINUTE)
        last = int((conn_start + duration - window_start) // MINUTE)
        first = max(first, 0)
        last = min(max(last, first), n_minutes - 1)
        if first >= n_minutes:
            return
        spreads.append((first, last - first + 1, bytes_up, bytes_down))

    @staticmethod
    def _flush_spreads(spreads: List[Tuple[int, int, float, float]],
                       up: np.ndarray, down: np.ndarray) -> None:
        """Apply all recorded bin spreads in one vectorized pass.

        ``np.add.at`` applies repeated-index contributions in index-array
        order, and the index array concatenates each connection's bins in
        connection order — so every bin receives exactly the additions the
        per-connection slice adds performed, in the same order, keeping
        the float accumulation bitwise identical.
        """
        if not spreads:
            return
        count = len(spreads)
        firsts = np.fromiter((s[0] for s in spreads), dtype=np.int64,
                             count=count)
        spans = np.fromiter((s[1] for s in spreads), dtype=np.int64,
                            count=count)
        bytes_up = np.fromiter((s[2] for s in spreads), dtype=np.float64,
                               count=count)
        bytes_down = np.fromiter((s[3] for s in spreads), dtype=np.float64,
                                 count=count)
        total = int(spans.sum())
        # Concatenated aranges: for each connection, first .. first+span-1.
        resets = np.repeat(np.cumsum(spans) - spans, spans)
        indices = np.repeat(firsts, spans) + np.arange(total) - resets
        np.add.at(up, indices, np.repeat(bytes_up / spans, spans))
        np.add.at(down, indices, np.repeat(bytes_down / spans, spans))

    def _add_saturator_upload(self, start: float, end: float,
                              up: np.ndarray,
                              flows: List[SimFlow]) -> None:
        """Overlay the Fig. 16 upload process onto the uplink series.

        ``continuous`` keeps the uplink offered load above capacity nearly
        all the time (the scientific-data uploader of Fig. 16a);
        ``diurnal`` pushes bursts during evening hours (Fig. 16b).
        """
        capacity_bytes_per_minute = self.upstream_capacity_bps / 8 * MINUTE
        cloud = next((d for d in self.sampler.universe
                      if d.category == "cloud" and d.whitelisted), None)
        minute_epochs = start + np.arange(up.size) * MINUTE
        for slot, epoch in enumerate(minute_epochs):
            if self.uplink_saturator == "continuous":
                load = float(self.rng.uniform(1.05, 1.9))
            else:
                hour = self.calendar.hour_of_day(epoch)
                if 18 <= hour <= 23:
                    load = float(self.rng.uniform(0.9, 1.8))
                elif 8 <= hour < 18:
                    load = float(self.rng.uniform(0.1, 0.5))
                else:
                    load = 0.05
            up[slot] += load * capacity_bytes_per_minute
        # Record the upload as daily long-running flows so domain/device
        # accounting (Figs. 17, 19) sees the bytes too.
        if cloud is not None:
            day = 86400.0
            cursor = start
            while cursor < end:
                chunk_end = min(cursor + day, end)
                seconds = chunk_end - cursor
                flows.append(SimFlow(
                    timestamp=cursor + 1.0,
                    device_index=0,
                    domain=cloud,
                    bytes_up=self.upstream_capacity_bps / 8 * seconds * 0.9,
                    bytes_down=1e6,
                    duration_seconds=seconds,
                ))
                cursor = chunk_end

    def _mask_offline(self, start: float,
                      up: np.ndarray, down: np.ndarray) -> None:
        """Zero traffic in minutes when the gateway or link was down."""
        minute_epochs = start + np.arange(up.size) * MINUTE + MINUTE / 2
        mask = self.online.contains_many(minute_epochs)
        up[~mask] = 0.0
        down[~mask] = 0.0
