"""Country metadata: GDP, development class, and deployment counts (Table 1).

The paper classifies the 19 deployment countries into *developed* (top-50
per-capita GDP in 2011) and *developing*, and deploys the router counts of
Table 1.  GDP values are purchasing-power-parity international dollars (the
x-axis of Figure 5); they are approximate 2011/2012 World Bank values, which
is all Figure 5 needs.

Per-country behaviour knobs (appliance-mode probability, ISP outage rates,
device-population scaling) encode the paper's reported marginals: e.g. the
median Indian router is on only 76.01% of the time, Pakistan sees nearly two
≥10-minute downtimes per day, and US homes are on 98.25% of the time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class BehaviorProfile:
    """Generative knobs for the households of one country.

    These are the only free parameters of the availability and
    infrastructure simulation; DESIGN.md section 4 lists the targets they
    were calibrated against.
    """

    #: Probability a household treats the router as an appliance — powering
    #: it on only while actively using the Internet (paper Section 4.2).
    appliance_probability: float
    #: Mean ISP outages (any duration) per day on the access link.
    isp_outage_rate_per_day: float
    #: Probability (per night) an always-on home still powers the router
    #: off overnight — common thrift behaviour in developing countries.
    nightly_off_probability: float
    #: Log-space sigma of outage durations (larger ⇒ heavier tail).
    isp_outage_duration_sigma: float
    #: Median ISP outage duration in seconds.
    isp_outage_median_seconds: float
    #: Mean number of unique devices a household owns.
    mean_devices: float
    #: Probability a household has at least one never-disconnecting wired
    #: device (media box, NAS, desktop left on — paper Table 5).
    always_wired_probability: float
    #: Same for an always-connected wireless device (VoIP phone etc.).
    always_wireless_probability: float
    #: Mean neighboring APs on the 2.4 GHz channel (Fig. 11); drawn from a
    #: bimodal mixture around this level.
    neighbor_ap_level: float
    #: Typical downstream capacity in Mbps (tier center; homes vary).
    downstream_mbps: float
    #: Typical upstream capacity in Mbps.
    upstream_mbps: float

    def __post_init__(self) -> None:
        if not 0 <= self.appliance_probability <= 1:
            raise ValueError("appliance_probability must be in [0, 1]")
        if self.isp_outage_rate_per_day < 0:
            raise ValueError("isp_outage_rate_per_day cannot be negative")
        if self.mean_devices <= 0:
            raise ValueError("mean_devices must be positive")


@dataclass(frozen=True)
class Country:
    """One deployment country: identity, wealth, zone, and behaviour."""

    code: str
    name: str
    gdp_ppp_per_capita: float
    developed: bool
    tz_offset_hours: float
    routers: int
    behavior: BehaviorProfile

    def __post_init__(self) -> None:
        if len(self.code) != 2:
            raise ValueError(f"country code must be ISO-2: {self.code!r}")
        if self.routers < 0:
            raise ValueError("router count cannot be negative")


def _developed_behavior(mean_devices: float = 7.5,
                        neighbor_ap_level: float = 22.0,
                        downstream: float = 30.0,
                        upstream: float = 5.0,
                        outage_rate: float = 0.022) -> BehaviorProfile:
    return BehaviorProfile(
        appliance_probability=0.02,
        isp_outage_rate_per_day=outage_rate,
        nightly_off_probability=0.01,
        isp_outage_duration_sigma=0.9,
        isp_outage_median_seconds=1100.0,
        mean_devices=mean_devices,
        always_wired_probability=0.46,
        always_wireless_probability=0.17,
        neighbor_ap_level=neighbor_ap_level,
        downstream_mbps=downstream,
        upstream_mbps=upstream,
    )


def _developing_behavior(appliance: float = 0.35,
                         outage_rate: float = 0.70,
                         nightly: float = 0.25,
                         mean_devices: float = 5.0,
                         neighbor_ap_level: float = 3.0,
                         downstream: float = 4.0,
                         upstream: float = 1.0,
                         sigma: float = 1.5) -> BehaviorProfile:
    return BehaviorProfile(
        appliance_probability=appliance,
        isp_outage_rate_per_day=outage_rate,
        nightly_off_probability=nightly,
        isp_outage_duration_sigma=sigma,
        isp_outage_median_seconds=900.0,
        mean_devices=mean_devices,
        always_wired_probability=0.17,
        always_wireless_probability=0.12,
        neighbor_ap_level=neighbor_ap_level,
        downstream_mbps=downstream,
        upstream_mbps=upstream,
    )


#: The 19 deployment countries of Table 1 with router counts and GDP (PPP).
COUNTRIES: Tuple[Country, ...] = (
    # -- developed (top-50 per-capita GDP, 2011) ---------------------------
    Country("US", "United States", 49800, True, -5.0, 63,
            _developed_behavior(mean_devices=8.0, neighbor_ap_level=24.0,
                                downstream=30.0, upstream=5.0)),
    Country("GB", "United Kingdom", 36000, True, 0.0, 12,
            _developed_behavior(mean_devices=7.0, neighbor_ap_level=20.0,
                                downstream=20.0, upstream=2.0)),
    Country("NL", "Netherlands", 43200, True, 1.0, 3,
            _developed_behavior(mean_devices=7.5, neighbor_ap_level=26.0,
                                downstream=40.0, upstream=6.0)),
    Country("CA", "Canada", 41100, True, -5.0, 2,
            _developed_behavior(mean_devices=7.0, downstream=25.0)),
    Country("DE", "Germany", 40100, True, 1.0, 2,
            _developed_behavior(mean_devices=6.5, downstream=25.0)),
    Country("FR", "France", 35500, True, 1.0, 1,
            _developed_behavior(mean_devices=6.5, downstream=20.0)),
    Country("IE", "Ireland", 41600, True, 0.0, 2,
            _developed_behavior(mean_devices=6.5, downstream=15.0)),
    Country("IT", "Italy", 33100, True, 1.0, 1,
            _developed_behavior(mean_devices=6.0, downstream=10.0,
                                outage_rate=0.06)),
    Country("JP", "Japan", 34300, True, 9.0, 2,
            _developed_behavior(mean_devices=7.0, downstream=60.0,
                                upstream=20.0)),
    Country("SG", "Singapore", 61000, True, 8.0, 2,
            _developed_behavior(mean_devices=7.5, neighbor_ap_level=30.0,
                                downstream=80.0, upstream=30.0)),
    # -- developing --------------------------------------------------------
    Country("IN", "India", 3700, False, 5.5, 12,
            _developing_behavior(appliance=0.42, outage_rate=1.20,
                                 nightly=0.40, mean_devices=4.5,
                                 neighbor_ap_level=2.5,
                                 downstream=2.0, upstream=0.5, sigma=1.5)),
    Country("PK", "Pakistan", 2700, False, 5.0, 5,
            _developing_behavior(appliance=0.40, outage_rate=2.00,
                                 nightly=0.40, mean_devices=4.0,
                                 neighbor_ap_level=2.0,
                                 downstream=2.0, upstream=0.5, sigma=1.5)),
    Country("ZA", "South Africa", 11000, False, 2.0, 10,
            _developing_behavior(appliance=0.15, outage_rate=0.60,
                                 nightly=0.30, mean_devices=5.5,
                                 neighbor_ap_level=3.5,
                                 downstream=4.0, upstream=1.0)),
    Country("MX", "Mexico", 16000, False, -6.0, 2,
            _developing_behavior(appliance=0.25, outage_rate=0.25,
                                 nightly=0.15, mean_devices=5.5,
                                 downstream=5.0)),
    Country("CN", "China", 8400, False, 8.0, 2,
            _developing_behavior(appliance=0.55, outage_rate=0.60,
                                 nightly=0.25, mean_devices=5.0,
                                 neighbor_ap_level=5.0, downstream=4.0)),
    Country("BR", "Brazil", 11600, False, -3.0, 2,
            _developing_behavior(appliance=0.25, outage_rate=0.28,
                                 nightly=0.15, mean_devices=5.5,
                                 downstream=5.0)),
    Country("MY", "Malaysia", 16200, False, 8.0, 1,
            _developing_behavior(appliance=0.20, outage_rate=0.20,
                                 nightly=0.10, mean_devices=5.5,
                                 downstream=5.0)),
    Country("ID", "Indonesia", 4600, False, 7.0, 1,
            _developing_behavior(appliance=0.35, outage_rate=0.35,
                                 nightly=0.30, mean_devices=4.5,
                                 downstream=2.0)),
    Country("TH", "Thailand", 9000, False, 7.0, 1,
            _developing_behavior(appliance=0.30, outage_rate=0.28,
                                 nightly=0.20, mean_devices=5.0,
                                 downstream=4.0)),
)

#: Router counts per country code (Table 1 of the paper).
DEPLOYMENT_COUNTS: Dict[str, int] = {c.code: c.routers for c in COUNTRIES}

_BY_CODE: Dict[str, Country] = {c.code: c for c in COUNTRIES}

#: The paper's classification threshold: top-50 per-capita GDP ⇒ developed.
#: Singapore/US sit far above it; South Africa/Mexico/Malaysia below.
_DEVELOPED_GDP_THRESHOLD = 25000.0


def country_by_code(code: str) -> Country:
    """Look up a deployment country by ISO-2 code (KeyError if absent)."""
    try:
        return _BY_CODE[code.upper()]
    except KeyError:
        raise KeyError(f"no deployment country with code {code!r}") from None


def classify_development(gdp_ppp_per_capita: float) -> bool:
    """True (developed) when per-capita GDP clears the top-50 threshold.

    This mirrors the paper's GDP-rank rule with a fixed dollar threshold
    that produces the identical partition over the 19 deployment countries.
    """
    if gdp_ppp_per_capita <= 0:
        raise ValueError("GDP must be positive")
    return gdp_ppp_per_capita >= _DEVELOPED_GDP_THRESHOLD


def total_routers(developed: bool) -> int:
    """Total routers in one development class (Table 1 bottom row)."""
    return sum(c.routers for c in COUNTRIES if c.developed == developed)
