"""Device archetypes and household device-population generation.

A household's device population determines most of Section 5: how many
devices exist (Fig. 7), how many are connected at once (Figs. 8, 9), which
band they use (Fig. 10), which vendors appear (Fig. 12), and which homes
have always-connected devices (Table 5).

Each device gets:

* a *kind* (phone, laptop, desktop, media box, ...), which fixes its
  attachment medium, band capability, vendor-bucket mix, presence behaviour,
  and traffic profile;
* a MAC allocated from the vendor registry;
* an hour-granularity association process: a Markov chain whose stationary
  distribution tracks the household presence/activity curves, so devices
  stay connected for realistic stretches instead of flapping hourly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.intervals import IntervalSet
from repro.core.records import Medium, Spectrum
from repro.netutils.mac import MacAddress
from repro.simulation.behavior import ActivitySchedule
from repro.simulation.timebase import HOUR, StudyCalendar
from repro.simulation.vendors import allocate_mac


class DeviceKind(enum.Enum):
    """Archetypes the simulator knows how to behave as."""

    PHONE = "phone"
    TABLET = "tablet"
    LAPTOP = "laptop"
    DESKTOP = "desktop"
    MEDIA_BOX = "media_box"
    CONSOLE = "console"
    PRINTER = "printer"
    VOIP_PHONE = "voip_phone"
    IOT = "iot"


@dataclass(frozen=True)
class KindTraits:
    """Static behaviour of one device kind."""

    medium: Medium
    #: Probability the device is dual-band capable (can use 5 GHz).
    dual_band_probability: float
    #: Vendor-bucket mix this kind draws its MAC from.
    vendor_mix: Tuple[Tuple[str, float], ...]
    #: Whether the association process follows presence (portables) or
    #: activity (powered-during-use devices); always-connected overrides.
    follows_presence: bool
    #: Multiplier on the schedule curve for this kind.
    schedule_scale: float
    #: Relative traffic intensity (sessions per active hour).
    session_rate: float
    #: Traffic profile key used by :mod:`repro.simulation.domains`.
    traffic_profile: str


_TRAITS: Dict[DeviceKind, KindTraits] = {
    DeviceKind.PHONE: KindTraits(
        Medium.WIRELESS, 0.30,
        (("Apple", 0.50), ("Samsung", 0.22), ("SmartPhone", 0.28)),
        follows_presence=True, schedule_scale=1.0,
        session_rate=5.0, traffic_profile="phone"),
    DeviceKind.TABLET: KindTraits(
        Medium.WIRELESS, 0.80,
        (("Apple", 0.66), ("Samsung", 0.20), ("ODM", 0.14)),
        follows_presence=True, schedule_scale=0.85,
        session_rate=3.0, traffic_profile="tablet"),
    DeviceKind.LAPTOP: KindTraits(
        Medium.WIRELESS, 0.75,
        (("Apple", 0.16), ("Intel", 0.30), ("ODM", 0.42), ("Asus", 0.03),
         ("Hewlett-Packard", 0.04), ("WirelessCard", 0.05)),
        follows_presence=True, schedule_scale=0.75,
        session_rate=8.0, traffic_profile="laptop"),
    DeviceKind.DESKTOP: KindTraits(
        Medium.WIRED, 0.0,
        (("Apple", 0.10), ("Intel", 0.36), ("ODM", 0.26), ("Asus", 0.08),
         ("Hewlett-Packard", 0.08), ("Hardware", 0.08), ("Gateway", 0.02),
         ("VMware", 0.04)),
        follows_presence=False, schedule_scale=0.9,
        session_rate=8.0, traffic_profile="desktop"),
    DeviceKind.MEDIA_BOX: KindTraits(
        Medium.WIRED, 0.0,
        (("InternetTV", 0.85), ("Misc.", 0.15)),
        follows_presence=False, schedule_scale=0.8,
        session_rate=1.2, traffic_profile="media_box"),
    DeviceKind.CONSOLE: KindTraits(
        Medium.WIRED, 0.0,
        (("Gaming", 0.55), ("Microsoft", 0.45)),
        follows_presence=False, schedule_scale=0.5,
        session_rate=1.5, traffic_profile="console"),
    DeviceKind.PRINTER: KindTraits(
        Medium.WIRED, 0.0,
        (("Printer", 0.60), ("Hewlett-Packard", 0.40)),
        follows_presence=False, schedule_scale=0.25,
        session_rate=0.6, traffic_profile="background"),
    DeviceKind.VOIP_PHONE: KindTraits(
        Medium.WIRELESS, 0.0,
        (("VoIP", 0.70), ("Misc.", 0.30)),
        follows_presence=False, schedule_scale=0.3,
        session_rate=1.0, traffic_profile="background"),
    DeviceKind.IOT: KindTraits(
        Medium.WIRELESS, 0.10,
        (("Raspberry-Pi", 0.30), ("WirelessCard", 0.30), ("Misc.", 0.25),
         ("Hardware", 0.15)),
        follows_presence=False, schedule_scale=0.4,
        session_rate=1.0, traffic_profile="background"),
}


def kind_traits(kind: DeviceKind) -> KindTraits:
    """Static traits for a device kind."""
    return _TRAITS[kind]


@dataclass
class SimDevice:
    """One concrete device in one home."""

    device_id: str
    kind: DeviceKind
    mac: MacAddress
    medium: Medium
    #: Band the device associates on (None for wired devices).
    spectrum: Optional[Spectrum]
    always_connected: bool
    #: Hour-granularity association spans over the study span.
    connected: IntervalSet
    #: Relative traffic weight within the home (drives Fig. 17 dominance).
    traffic_weight: float

    @property
    def traits(self) -> KindTraits:
        """Static traits of this device's kind."""
        return kind_traits(self.kind)

    def is_connected(self, epoch: float) -> bool:
        """True when the device is associated/powered at *epoch*."""
        return self.always_connected or self.connected.contains(epoch)

    def connected_intervals(self, start: float, end: float) -> IntervalSet:
        """Association intervals clipped to a window."""
        if self.always_connected:
            return IntervalSet([(start, end)])
        return self.connected.clip(start, end)


def association_span_hours(span: Tuple[float, float]) -> int:
    """Whole hours the association process covers (ceil of the span)."""
    start, end = span
    return int(np.ceil((end - start) / HOUR))


def association_time_index(span: Tuple[float, float],
                           calendar: StudyCalendar,
                           ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-hour ``(local hour-of-day, weekend?)`` arrays for one span.

    Depends only on the calendar's timezone and the span, so the cohort
    materializer computes it once per timezone and shares it across every
    :func:`association_probs` call in the shard.
    """
    start, _ = span
    hours = association_span_hours(span)
    epochs = start + np.arange(hours) * HOUR
    return (calendar.hour_of_day_many(epochs),
            calendar.is_weekend_many(epochs))


def association_probs(span: Tuple[float, float],
                      calendar: StudyCalendar,
                      schedule: ActivitySchedule,
                      follows_presence: bool,
                      scale: float,
                      persistence: float = 0.55,
                      time_index: Optional[Tuple[np.ndarray,
                                                 np.ndarray]] = None,
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-hour transition probabilities ``(prob_off, prob_on)``.

    Pure arithmetic over the schedule curves — no RNG.  ``prob_off`` is
    the connect probability from the disconnected state, ``prob_on`` from
    the connected state; the shared clamp keeps ``prob_off <= prob_on``
    element-wise, which the columnar batch solver relies on.  Passing a
    precomputed *time_index* (:func:`association_time_index`) skips the
    epoch-to-local-time conversion; the level lookup below is the exact
    expression ``ActivitySchedule.presence_many``/``activity_many`` use,
    so the result is bitwise-identical either way.
    """
    if time_index is None:
        time_index = association_time_index(span, calendar)
    hour_index, weekend = time_index
    if follows_presence:
        levels = np.where(weekend, schedule.presence_weekend[hour_index],
                          schedule.presence_weekday[hour_index])
    else:
        levels = np.where(weekend, schedule.activity_weekend[hour_index],
                          schedule.activity_weekday[hour_index])
    target = levels * scale
    np.minimum(target, 1.0, out=target)
    stay = (1 - persistence) * target
    floor = 0.02 * target
    # ceiling = 1 - 0.02 * (1 - target), kept as the same three
    # elementwise steps so the floats don't move.
    ceiling = 1.0 - target
    ceiling *= 0.02
    np.subtract(1.0, ceiling, out=ceiling)
    # Transition probability given the previous state, pre-clamped.
    # ``stay + persistence * state`` collapses to ``stay`` for state 0
    # (stay is never -0.0, so adding +0.0 is the identity) and a scalar
    # add of ``persistence`` for state 1.
    prob_off = np.maximum(stay, floor)
    np.minimum(prob_off, ceiling, out=prob_off)
    prob_on = stay + persistence
    np.maximum(prob_on, floor, out=prob_on)
    np.minimum(prob_on, ceiling, out=prob_on)
    return prob_off, prob_on


def _markov_association(rng: np.random.Generator,
                        span: Tuple[float, float],
                        calendar: StudyCalendar,
                        schedule: ActivitySchedule,
                        follows_presence: bool,
                        scale: float,
                        persistence: float = 0.55) -> IntervalSet:
    """Hourly association process tracking the household schedule.

    Each hour the device is connected with probability equal to the
    (scaled) schedule level, but transitions are smoothed: the previous
    state pulls the draw toward itself with weight *persistence*, giving
    realistic multi-hour sessions while preserving the hourly marginals.

    This is the scalar reference path; the columnar materializer solves
    the same recurrence shard-wide (see ``repro.simulation.cohort``) and
    the cohort equivalence suite pins the two together bitwise.
    """
    start, end = span
    hours = association_span_hours(span)
    if hours <= 0:
        return IntervalSet()
    # One uniform draw per hour, exactly as the scalar loop consumed them:
    # Generator.random(n) produces the same stream as n scalar .random()
    # calls, so pre-drawing is bitwise-neutral (the digest-pin test holds
    # this invariant).  The schedule levels and transition probabilities
    # are pure arithmetic, so they vectorize bitwise-identically too; only
    # the state recursion (inherently sequential) stays a Python loop, now
    # over precomputed scalars.
    epochs = start + np.arange(hours) * HOUR
    probs = association_probs(span, calendar, schedule, follows_presence,
                              scale, persistence)
    prob_off = probs[0].tolist()
    prob_on = probs[1].tolist()
    draws = rng.random(hours).tolist()
    epoch_list = epochs.tolist()

    connected: List[Tuple[float, float]] = []
    state = False
    run_start = 0.0
    for idx in range(hours):
        new_state = draws[idx] < (prob_on[idx] if state else prob_off[idx])
        if new_state and not state:
            run_start = epoch_list[idx]
        elif state and not new_state:
            connected.append((run_start, epoch_list[idx]))
        state = new_state
    if state:
        connected.append((run_start, start + hours * HOUR))
    return IntervalSet(connected).clip(start, end)


# Population mixes: (kind, mean count per home).  Calibrated so developed
# homes average ~7-8 unique devices with ~2.5 wired, developing ~4-5 with
# ~1.2 wired (Figs. 7, 8) and the Fig. 12 vendor histogram emerges.
_DEVELOPED_MIX: Tuple[Tuple[DeviceKind, float], ...] = (
    (DeviceKind.PHONE, 2.8),
    (DeviceKind.LAPTOP, 2.1),
    (DeviceKind.TABLET, 0.9),
    (DeviceKind.DESKTOP, 0.5),
    (DeviceKind.MEDIA_BOX, 0.7),
    (DeviceKind.CONSOLE, 0.45),
    (DeviceKind.PRINTER, 0.25),
    (DeviceKind.VOIP_PHONE, 0.12),
    (DeviceKind.IOT, 0.55),
)

_DEVELOPING_MIX: Tuple[Tuple[DeviceKind, float], ...] = (
    (DeviceKind.PHONE, 2.0),
    (DeviceKind.LAPTOP, 1.3),
    (DeviceKind.TABLET, 0.35),
    (DeviceKind.DESKTOP, 0.55),
    (DeviceKind.MEDIA_BOX, 0.15),
    (DeviceKind.CONSOLE, 0.12),
    (DeviceKind.PRINTER, 0.12),
    (DeviceKind.VOIP_PHONE, 0.08),
    (DeviceKind.IOT, 0.12),
)


#: Cached (labels, CDF) per vendor-mix tuple: ``Generator.choice(p=...)``
#: internally cumsums the weights, renormalizes by the last element, draws
#: one uniform, and binary-searches — so this cache draws the identical
#: label from the identical stream position at a fraction of the cost.
_VENDOR_CDF: Dict[Tuple[Tuple[str, float], ...],
                  Tuple[Tuple[str, ...], np.ndarray]] = {}


def _choose_weighted(rng: np.random.Generator,
                     options: Tuple[Tuple[str, float], ...]) -> str:
    cached = _VENDOR_CDF.get(options)
    if cached is None:
        labels = tuple(label for label, _ in options)
        weights = np.asarray([w for _, w in options], dtype=float)
        weights /= weights.sum()
        cdf = weights.cumsum()
        cdf /= cdf[-1]
        cached = _VENDOR_CDF[options] = (labels, cdf)
    labels, cdf = cached
    return labels[int(np.searchsorted(cdf, rng.random(), side="right"))]


def generate_devices(rng: np.random.Generator,
                     router_id: str,
                     span: Tuple[float, float],
                     calendar: StudyCalendar,
                     schedule: ActivitySchedule,
                     developed: bool,
                     mean_devices: float,
                     always_wired_probability: float,
                     always_wireless_probability: float) -> List[SimDevice]:
    """Generate one household's device population.

    The per-kind Poisson counts are rescaled so the expected total matches
    the country's ``mean_devices``; every home gets at least one device.
    """
    mix = _DEVELOPED_MIX if developed else _DEVELOPING_MIX
    base_total = sum(mean for _, mean in mix)
    # Household size varies far more than Poisson alone allows: Fig. 7 shows
    # ~20% of homes with two or fewer devices next to double-digit homes.
    size_factor = float(rng.lognormal(-0.10, 0.55))
    scale = mean_devices / base_total * size_factor

    kinds: List[DeviceKind] = []
    for kind, mean in mix:
        kinds.extend([kind] * int(rng.poisson(mean * scale)))
    if not kinds:
        kinds.append(DeviceKind.PHONE)

    # Table 5: decide up-front whether this home keeps an always-connected
    # wired and/or wireless device, then pin one eligible device of each.
    wants_always_wired = bool(rng.random() < always_wired_probability)
    wants_always_wireless = bool(rng.random() < always_wireless_probability)
    if wants_always_wired and not any(
            kind_traits(k).medium is Medium.WIRED for k in kinds):
        kinds.append(DeviceKind.MEDIA_BOX)

    # Dirichlet traffic weights with a heavy lead device: the paper's
    # Fig. 17 dominance (top device ~60-65% of bytes) comes from here.
    alphas = np.full(len(kinds), 0.45)
    weights = rng.dirichlet(alphas)

    devices: List[SimDevice] = []
    assigned_always_wired = False
    assigned_always_wireless = False
    for index, kind in enumerate(kinds):
        traits = kind_traits(kind)
        category = _choose_weighted(rng, traits.vendor_mix)
        mac = allocate_mac(rng, category)
        spectrum = None
        if traits.medium is Medium.WIRELESS:
            dual = rng.random() < traits.dual_band_probability
            use_5 = dual and rng.random() < 0.60
            spectrum = Spectrum.GHZ_5 if use_5 else Spectrum.GHZ_2_4
        always = False
        if (wants_always_wired and not assigned_always_wired
                and traits.medium is Medium.WIRED):
            always = True
            assigned_always_wired = True
        elif (wants_always_wireless and not assigned_always_wireless
              and traits.medium is Medium.WIRELESS):
            always = True
            assigned_always_wireless = True
        if always:
            connected = IntervalSet([span])
        else:
            connected = _markov_association(
                rng, span, calendar, schedule,
                traits.follows_presence, traits.schedule_scale)
        devices.append(SimDevice(
            device_id=f"{router_id}-dev{index:02d}",
            kind=kind,
            mac=mac,
            medium=traits.medium,
            spectrum=spectrum,
            always_connected=always,
            connected=connected,
            traffic_weight=float(weights[index]) * traits.session_rate,
        ))
    return devices


# -- columnar draw pass -------------------------------------------------------
#
# The shard-wide materializer (repro.simulation.cohort) splits device
# generation in two: a *draw pass* that consumes the home's "devices"
# stream in exactly the order generate_devices() does, and a batched
# association solve over the whole shard.  The draw pass emits one
# DeviceDraw per device; non-always devices hand their hourly uniform
# draws to a sink and receive a slot index to claim the solved intervals
# from later.

#: Stable kind <-> small-int code mapping for the cohort's kind column.
KIND_ORDER: Tuple[DeviceKind, ...] = tuple(DeviceKind)
KIND_CODE: Dict[DeviceKind, int] = {k: i for i, k in enumerate(KIND_ORDER)}

#: Spectrum column codes (0 = wired / no radio).
SPECTRUM_NONE, SPECTRUM_2_4, SPECTRUM_5 = 0, 1, 2
SPECTRUM_BY_CODE: Tuple[Optional[Spectrum], ...] = (
    None, Spectrum.GHZ_2_4, Spectrum.GHZ_5)


@dataclass
class DeviceDraw:
    """One device's drawn scalars, before association intervals exist."""

    kind: DeviceKind
    mac_value: int
    spectrum_code: int
    always_connected: bool
    traffic_weight: float
    #: Index into the shard's association batch (-1 for always-connected).
    markov_slot: int


def generate_device_draws(rng: np.random.Generator,
                          span: Tuple[float, float],
                          calendar: StudyCalendar,
                          schedule: ActivitySchedule,
                          developed: bool,
                          mean_devices: float,
                          always_wired_probability: float,
                          always_wireless_probability: float,
                          push_association) -> List[DeviceDraw]:
    """Columnar twin of :func:`generate_devices`: draws only, no expansion.

    Consumes the ``"devices"`` stream draw-for-draw like the reference
    path (the cohort equivalence suite asserts this), but defers the
    Markov run-extraction: for each non-always device it calls
    ``push_association(follows_presence, schedule_scale, hourly_draws)``
    and records the returned slot.
    """
    mix = _DEVELOPED_MIX if developed else _DEVELOPING_MIX
    base_total = sum(mean for _, mean in mix)
    size_factor = float(rng.lognormal(-0.10, 0.55))
    scale = mean_devices / base_total * size_factor

    kinds: List[DeviceKind] = []
    for kind, mean in mix:
        kinds.extend([kind] * int(rng.poisson(mean * scale)))
    if not kinds:
        kinds.append(DeviceKind.PHONE)

    wants_always_wired = bool(rng.random() < always_wired_probability)
    wants_always_wireless = bool(rng.random() < always_wireless_probability)
    if wants_always_wired and not any(
            kind_traits(k).medium is Medium.WIRED for k in kinds):
        kinds.append(DeviceKind.MEDIA_BOX)

    alphas = np.full(len(kinds), 0.45)
    weights = rng.dirichlet(alphas)

    hours = association_span_hours(span)
    draws_out: List[DeviceDraw] = []
    assigned_always_wired = False
    assigned_always_wireless = False
    for index, kind in enumerate(kinds):
        traits = kind_traits(kind)
        category = _choose_weighted(rng, traits.vendor_mix)
        mac = allocate_mac(rng, category)
        spectrum_code = SPECTRUM_NONE
        if traits.medium is Medium.WIRELESS:
            dual = rng.random() < traits.dual_band_probability
            use_5 = dual and rng.random() < 0.60
            spectrum_code = SPECTRUM_5 if use_5 else SPECTRUM_2_4
        always = False
        if (wants_always_wired and not assigned_always_wired
                and traits.medium is Medium.WIRED):
            always = True
            assigned_always_wired = True
        elif (wants_always_wireless and not assigned_always_wireless
              and traits.medium is Medium.WIRELESS):
            always = True
            assigned_always_wireless = True
        if always:
            slot = -1
        else:
            slot = push_association(traits.follows_presence,
                                    traits.schedule_scale,
                                    rng.random(hours))
        draws_out.append(DeviceDraw(
            kind=kind,
            mac_value=mac.value,
            spectrum_code=spectrum_code,
            always_connected=always,
            traffic_weight=float(weights[index]) * traits.session_rate,
            markov_slot=slot,
        ))
    return draws_out
