"""2.4/5 GHz channel structure: assignments, overlap, and contention.

Section 5.3 measures spectrum *contention*, but the deployed scanner only
sees the configured channel (2.4 GHz channel 11 by default) — the paper
flags this explicitly.  To quantify what that misses, the simulator gives
every neighboring AP an actual channel:

* on 2.4 GHz, neighbors cluster on the North-American non-overlapping trio
  1/6/11 with a minority misconfigured onto in-between channels;
* on 5 GHz, the (then-sparse) APs sit on the UNII-1 channels 36-48;
* a scan on channel c hears an AP on channel c' when their spectral masks
  overlap — full co-channel, partially for |Δ| ≤ 2 on 2.4 GHz, co-channel
  only on 5 GHz (20 MHz channels don't overlap there).

:func:`interference_weight` is the standard triangular spectral-overlap
model for 20 MHz 802.11g masks (5 channel-widths to zero overlap).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.records import Spectrum

#: Valid channels per band (North American allocations, as deployed).
CHANNELS_2_4: Tuple[int, ...] = tuple(range(1, 12))
CHANNELS_5: Tuple[int, ...] = (36, 40, 44, 48)

#: Channel popularity on 2.4 GHz: most APs follow the 1/6/11 convention,
#: a minority sit misconfigured in between.
_POPULARITY_2_4: Dict[int, float] = {
    1: 0.27, 2: 0.02, 3: 0.03, 4: 0.02, 5: 0.03,
    6: 0.23, 7: 0.03, 8: 0.02, 9: 0.03, 10: 0.02, 11: 0.30,
}

#: How many channel-widths apart two 2.4 GHz channels must be for their
#: 20 MHz masks to stop overlapping entirely.
_OVERLAP_SPAN = 5

#: A scan hears beacons from this many channels away on 2.4 GHz.
SCAN_AUDIBLE_DELTA = 2


def channel_weights(spectrum: Spectrum) -> Tuple[Tuple[int, ...], np.ndarray]:
    """(channels, normalized popularity weights) for one band."""
    if spectrum is Spectrum.GHZ_2_4:
        channels = CHANNELS_2_4
        weights = np.array([_POPULARITY_2_4[c] for c in channels])
    else:
        channels = CHANNELS_5
        weights = np.ones(len(channels))
    return channels, weights / weights.sum()


@lru_cache(maxsize=None)
def _channel_cdf(spectrum: Spectrum) -> Tuple[Tuple[int, ...], np.ndarray]:
    """(channels, popularity CDF) for one band, cached per process.

    The CDF is built exactly the way ``Generator.choice(p=...)`` builds it
    internally (cumsum, then renormalize by the last element), so drawing
    ``searchsorted(cdf, rng.random(n), side="right")`` consumes the same
    stream values and yields the same channels bitwise — without paying
    ``choice``'s per-call validation and array setup.
    """
    channels, weights = channel_weights(spectrum)
    cdf = weights.cumsum()
    cdf /= cdf[-1]
    return channels, cdf


def assign_channels(rng: np.random.Generator, spectrum: Spectrum,
                    count: int) -> List[int]:
    """Draw channel assignments for *count* neighboring APs."""
    if count < 0:
        raise ValueError("count cannot be negative")
    if count == 0:
        return []
    channels, cdf = _channel_cdf(spectrum)
    idx = np.searchsorted(cdf, rng.random(count), side="right")
    return [channels[i] for i in idx]


def audible(spectrum: Spectrum, scan_channel: int, ap_channel: int) -> bool:
    """Can a scan on *scan_channel* hear an AP on *ap_channel*?"""
    if spectrum is Spectrum.GHZ_5:
        return scan_channel == ap_channel
    return abs(scan_channel - ap_channel) <= SCAN_AUDIBLE_DELTA


def audible_counts(spectrum: Spectrum, scan_channels: Sequence[int],
                   ap_channels: Sequence[int]) -> np.ndarray:
    """How many of *ap_channels* a scan on each of *scan_channels* hears.

    The vectorized form of summing :func:`audible` over the neighborhood:
    ``audible_counts(s, [c], aps)[0] == sum(audible(s, c, a) for a in aps)``
    exactly, for every channel ``c``.  Used by the columnar wifi collector
    (one scan channel, hoisted per home) and ``full_spectrum_scans``
    (every channel of a band at once).
    """
    scans = np.asarray(scan_channels, dtype=np.int64).reshape(-1, 1)
    aps = np.asarray(ap_channels, dtype=np.int64).reshape(1, -1)
    if aps.size == 0:
        return np.zeros(scans.shape[0], dtype=np.int64)
    if spectrum is Spectrum.GHZ_5:
        heard = scans == aps
    else:
        heard = np.abs(scans - aps) <= SCAN_AUDIBLE_DELTA
    return heard.sum(axis=1)


def interference_weight(spectrum: Spectrum, channel_a: int,
                        channel_b: int) -> float:
    """Spectral-overlap fraction between two channels (0..1).

    Co-channel is full overlap (CSMA at least shares politely); partially
    overlapping 2.4 GHz channels interfere without carrier-sensing each
    other — the worst case — but with less overlapped energy.
    """
    if spectrum is Spectrum.GHZ_5:
        return 1.0 if channel_a == channel_b else 0.0
    delta = abs(channel_a - channel_b)
    return max(0.0, 1.0 - delta / _OVERLAP_SPAN)


def contention_index(spectrum: Spectrum, own_channel: int,
                     neighbor_channels: Sequence[int]) -> float:
    """Total interference pressure on *own_channel* from the neighbors.

    The sum of spectral overlaps — the quantity Section 5.3 gestures at
    with "many devices talking to many access points in the vicinity
    causes contention and interference problems".
    """
    return float(sum(interference_weight(spectrum, own_channel, ch)
                     for ch in neighbor_channels))


def least_contended_channel(spectrum: Spectrum,
                            neighbor_channels: Sequence[int]) -> int:
    """The channel a spectrum-aware router would pick.

    Ties break toward the conventional non-overlapping channels (1/6/11 on
    2.4 GHz) in their scan order.
    """
    if spectrum is Spectrum.GHZ_2_4:
        candidates: Sequence[int] = (1, 6, 11) + tuple(
            c for c in CHANNELS_2_4 if c not in (1, 6, 11))
    else:
        candidates = CHANNELS_5
    best = min(candidates,
               key=lambda c: contention_index(spectrum, c,
                                              neighbor_channels))
    return int(best)
