"""The ISP access link: capacity, outages, and the bufferbloat queue.

Three paper findings live here:

* Heartbeats vanish when the *link* is down even though the router is
  powered (Fig. 6c) — outages arrive as a background Poisson process plus
  occasional multi-day "bad periods" with an elevated rate, which is what
  the April-2013 sporadic-outage household looked like.
* ShaperProbe measures access capacity every 12 hours (the Capacity data
  set); estimates are stable with small noise (Fig. 14's flat dotted line).
* A deep modem buffer ("bufferbloat") lets gateway-side per-second
  throughput counts exceed line rate while the buffer fills, which is how
  uplink utilization can exceed measured capacity (Figs. 15, 16).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.intervals import IntervalSet
from repro.simulation.timebase import DAY

MBPS = 1e6  # bits per second in one Mbps


@dataclass(frozen=True)
class AccessLinkConfig:
    """Static parameters of one home's access link."""

    downstream_mbps: float
    upstream_mbps: float
    #: Background mean outages per day (any duration).
    outage_rate_per_day: float
    #: Median outage duration, seconds.
    outage_median_seconds: float
    #: Lognormal sigma of outage durations.
    outage_duration_sigma: float
    #: Mean arrivals per day of multi-day elevated-outage periods.
    bad_period_rate_per_day: float = 1.0 / 120.0
    #: Outage-rate multiplier while inside a bad period.
    bad_period_multiplier: float = 15.0
    #: How far gateway-side uplink throughput can exceed line rate while the
    #: modem buffer fills: 0 disables bufferbloat, 1.2 allows up to 2.2x
    #: line rate (Fig. 15's worst home sits near 2.5).
    bufferbloat_overshoot: float = 1.2

    def __post_init__(self) -> None:
        if self.downstream_mbps <= 0 or self.upstream_mbps <= 0:
            raise ValueError("link capacities must be positive")
        if self.outage_rate_per_day < 0:
            raise ValueError("outage rate cannot be negative")
        if self.bufferbloat_overshoot < 0:
            raise ValueError("bufferbloat overshoot cannot be negative")


class AccessLink:
    """One home's access link over the study span.

    Outage intervals are generated once at construction (deterministic per
    seed); capacity probes and uplink shaping are pure functions of the
    stored state plus the caller's RNG.
    """

    def __init__(self, rng: np.random.Generator,
                 span: Tuple[float, float],
                 config: AccessLinkConfig):
        if span[1] <= span[0]:
            raise ValueError("link span must be non-empty")
        self.span = span
        self.config = config
        self._outages = self._generate_outages(rng)
        self.up = self._outages.complement(span)

    @classmethod
    def from_columns(cls, span: Tuple[float, float], config: AccessLinkConfig,
                     outages: IntervalSet, up: IntervalSet,
                     bad_periods: IntervalSet) -> "AccessLink":
        """Rebuild a link from cohort columns (no RNG consumed)."""
        obj = cls.__new__(cls)
        obj.span = span
        obj.config = config
        obj._outages = outages
        obj.up = up
        obj.bad_periods = bad_periods
        return obj

    # -- outage process -------------------------------------------------------

    def _generate_outages(self, rng: np.random.Generator) -> IntervalSet:
        start, end = self.span
        cfg = self.config
        events: List[Tuple[np.ndarray, np.ndarray]] = []

        bad_periods = self._bad_periods(rng)
        events.append(self._poisson_outages(rng, (start, end),
                                            cfg.outage_rate_per_day))
        for period in bad_periods:
            events.append(self._poisson_outages(
                rng, period,
                cfg.outage_rate_per_day * cfg.bad_period_multiplier))
        self.bad_periods = IntervalSet(bad_periods)
        return IntervalSet.from_event_arrays(
            np.concatenate([s for s, _ in events]),
            np.concatenate([e for _, e in events])).clip(start, end)

    def _bad_periods(self, rng: np.random.Generator) -> List[Tuple[float, float]]:
        start, end = self.span
        expected = (end - start) / DAY * self.config.bad_period_rate_per_day
        count = int(rng.poisson(expected))
        periods = []
        for _ in range(count):
            p_start = float(rng.uniform(start, end))
            p_len = float(rng.uniform(2.0, 8.0)) * DAY
            periods.append((p_start, min(p_start + p_len, end)))
        return periods

    def _poisson_outages(self, rng: np.random.Generator,
                         window: Tuple[float, float],
                         rate_per_day: float,
                         ) -> Tuple[np.ndarray, np.ndarray]:
        start, end = window
        if end <= start or rate_per_day <= 0:
            return np.empty(0), np.empty(0)
        cfg = self.config
        count = int(rng.poisson((end - start) / DAY * rate_per_day))
        if count == 0:
            return np.empty(0), np.empty(0)
        times = rng.uniform(start, end, size=count)
        durations = rng.lognormal(np.log(cfg.outage_median_seconds),
                                  cfg.outage_duration_sigma, size=count)
        return times, np.minimum(times + durations, end)

    # -- queries ---------------------------------------------------------------

    def up_intervals(self, start: float, end: float) -> IntervalSet:
        """Link-up intervals clipped to ``[start, end)``."""
        return self.up.clip(start, end)

    def is_up(self, epoch: float) -> bool:
        """True when the access link is passing traffic at *epoch*."""
        return self.up.contains(epoch)

    @property
    def downstream_bps(self) -> float:
        """Line rate toward the home, bits/second."""
        return self.config.downstream_mbps * MBPS

    @property
    def upstream_bps(self) -> float:
        """Line rate toward the Internet, bits/second."""
        return self.config.upstream_mbps * MBPS

    # -- ShaperProbe-style capacity measurement ---------------------------------

    def measure_capacity(self, epoch: float,
                         rng: np.random.Generator) -> "Tuple[float, float] | None":
        """Probe the link at *epoch*; returns (down, up) Mbps or None if down.

        Estimates carry ~3% multiplicative noise, matching the paper's
        near-constant capacity lines in Fig. 14.
        """
        if not self.is_up(epoch):
            return None
        noise_down = float(rng.normal(1.0, 0.03))
        noise_up = float(rng.normal(1.0, 0.03))
        down = max(self.config.downstream_mbps * noise_down, 0.05)
        up = max(self.config.upstream_mbps * noise_up, 0.05)
        return (down, up)

    # -- bufferbloat shaping -----------------------------------------------------

    def shape_uplink_peak(self, offered_bps: float,
                          rng: np.random.Generator) -> float:
        """Gateway-side peak 1-second uplink throughput for an offered load.

        Below line rate the gateway sees the offered load.  At or above line
        rate, the modem buffer absorbs the excess, so the *gateway-side*
        counter transiently exceeds line rate by up to the configured
        overshoot — the paper's bufferbloat artifact (Fig. 16a).
        """
        if offered_bps < 0:
            raise ValueError("offered load cannot be negative")
        capacity = self.upstream_bps
        if offered_bps < capacity:
            return offered_bps
        if offered_bps < 1.15 * capacity:
            # A transient spike drains before the buffer builds a backlog.
            return capacity
        overshoot = self.config.bufferbloat_overshoot
        factor = 1.0 + overshoot * float(rng.uniform(0.3, 1.0))
        return min(offered_bps, capacity * factor)

    def shape_downlink_peak(self, offered_bps: float) -> float:
        """Downlink peak: the remote side paces, so it caps at line rate."""
        if offered_bps < 0:
            raise ValueError("offered load cannot be negative")
        return min(offered_bps, self.downstream_bps)

    # -- vectorized shaping ------------------------------------------------------
    #
    # Array equivalents of the two scalar shapers, used by the traffic
    # monitor's per-minute series.  Both preserve the scalar semantics
    # element-wise, and `shape_uplink_peak_many` consumes the RNG exactly
    # as the scalar loop would: one uniform draw per minute whose offered
    # load reaches the bufferbloat region, in minute order, and none
    # elsewhere — so a vectorized caller stays bitwise-identical.

    def shape_uplink_peak_many(self, offered_bps: "np.ndarray",
                               rng: np.random.Generator) -> "np.ndarray":
        """Vectorized :meth:`shape_uplink_peak` over a minute series."""
        offered = np.asarray(offered_bps, dtype=float)
        if np.any(offered < 0):
            raise ValueError("offered load cannot be negative")
        capacity = self.upstream_bps
        peaks = offered.copy()
        spike = (offered >= capacity) & (offered < 1.15 * capacity)
        peaks[spike] = capacity
        backlog = offered >= 1.15 * capacity
        n_backlog = int(np.count_nonzero(backlog))
        if n_backlog:
            draws = rng.uniform(0.3, 1.0, size=n_backlog)
            factor = 1.0 + self.config.bufferbloat_overshoot * draws
            peaks[backlog] = np.minimum(offered[backlog], capacity * factor)
        return peaks

    def shape_downlink_peak_many(self,
                                 offered_bps: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`shape_downlink_peak` over a minute series."""
        offered = np.asarray(offered_bps, dtype=float)
        if np.any(offered < 0):
            raise ValueError("offered load cannot be negative")
        return np.minimum(offered, self.downstream_bps)
