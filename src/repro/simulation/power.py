"""Router power models: when is the gateway actually powered on?

Section 4.2 of the paper found two very different regimes:

* **Always-on** homes (typical in developed countries, Fig. 6a): the router
  stays powered except for rare reboots and occasional longer power-downs
  (moves, vacations, "turn it off and on again").  The median US router is
  on 98.25% of the time.
* **Appliance-mode** homes (common in developing countries, Fig. 6b): the
  router is switched on only while the household actively uses the
  Internet — brief evening blocks on weekdays, longer blocks on weekends.
  The median Indian router is on only 76.01% of the time.

A third ingredient — some developing-country homes switching the router off
overnight — produces the intermediate uptimes the paper reports for India
and South Africa without full appliance behaviour.

Power is modeled independently of the ISP link (:mod:`repro.simulation.link`);
a heartbeat requires both.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.intervals import IntervalSet
from repro.simulation.behavior import ActivitySchedule
from repro.simulation.timebase import DAY, HOUR, MINUTE, StudyCalendar

#: Power-mode labels, used by tests and the Fig. 6 bench.
MODE_ALWAYS_ON = "always-on"
MODE_APPLIANCE = "appliance"


def _sample_events(rng: np.random.Generator, span: Tuple[float, float],
                   rate_per_day: float, median_seconds: float,
                   sigma: float) -> Tuple[np.ndarray, np.ndarray]:
    """Poisson-arriving events with lognormal durations inside *span*.

    Returns parallel ``(starts, ends)`` arrays; ends are clamped to the
    span (element-wise ``min``, bitwise-equal to the former scalar loop).
    """
    start, end = span
    if end <= start or rate_per_day <= 0:
        return np.empty(0), np.empty(0)
    expected = (end - start) / DAY * rate_per_day
    count = int(rng.poisson(expected))
    if count == 0:
        return np.empty(0), np.empty(0)
    times = np.sort(rng.uniform(start, end, size=count))
    durations = rng.lognormal(mean=np.log(median_seconds), sigma=sigma,
                              size=count)
    return times, np.minimum(times + durations, end)


class PowerModel:
    """Base class: a precomputed on-interval set over the study span.

    Subclasses populate :attr:`on_intervals` at construction so every query
    over any sub-window is consistent and deterministic.
    """

    mode: str = "abstract"

    def __init__(self, span: Tuple[float, float], on_intervals: IntervalSet):
        if span[1] <= span[0]:
            raise ValueError("power model span must be non-empty")
        self.span = span
        self.on_intervals = on_intervals

    @classmethod
    def from_on_intervals(cls, span: Tuple[float, float],
                          on_intervals: IntervalSet) -> "PowerModel":
        """Rebuild a model from cohort columns (no RNG consumed).

        ``cls`` is the concrete subclass, so :attr:`mode` and type checks
        behave exactly as on a freshly-drawn model.
        """
        obj = cls.__new__(cls)
        obj.span = span
        obj.on_intervals = on_intervals
        return obj

    def up_intervals(self, start: float, end: float) -> IntervalSet:
        """Power-on intervals clipped to ``[start, end)``."""
        return self.on_intervals.clip(start, end)

    def is_on(self, epoch: float) -> bool:
        """True when the router is powered at *epoch*."""
        return self.on_intervals.contains(epoch)

    def on_fraction(self, start: float, end: float) -> float:
        """Fraction of the window the router spends powered on."""
        if end <= start:
            raise ValueError("window must be non-empty")
        return self.up_intervals(start, end).total_duration() / (end - start)


class AlwaysOnPower(PowerModel):
    """Fig. 6a behaviour: powered continuously, with rare interruptions.

    Interruptions come from three processes:

    * *reboots* — frequent but short (median ~3 min), usually under the
      10-minute downtime threshold;
    * *power-downs* — occasional ≥10-minute manual cycles;
    * *extended offs* — rare long absences (vacations, moves) that dominate
      the missing 1–2% of uptime.

    Developing-country variants add probabilistic overnight power-off.
    """

    mode = MODE_ALWAYS_ON

    def __init__(self, rng: np.random.Generator,
                 span: Tuple[float, float],
                 calendar: StudyCalendar,
                 reboot_rate_per_day: float = 0.08,
                 powerdown_rate_per_day: float = 0.006,
                 extended_rate_per_day: float = 0.004,
                 nightly_off_probability: float = 0.0):
        reboots = _sample_events(rng, span, reboot_rate_per_day,
                                 median_seconds=3 * MINUTE, sigma=0.6)
        powerdowns = _sample_events(rng, span, powerdown_rate_per_day,
                                    median_seconds=25 * MINUTE, sigma=0.9)
        extended = _sample_events(rng, span, extended_rate_per_day,
                                  median_seconds=8 * HOUR, sigma=1.0)
        nightly = self._nightly_offs(rng, span, calendar,
                                     nightly_off_probability)
        nightly_starts = np.asarray([s for s, _ in nightly], dtype=float)
        nightly_ends = np.asarray([e for _, e in nightly], dtype=float)
        off_set = IntervalSet.from_event_arrays(
            np.concatenate((reboots[0], powerdowns[0], extended[0],
                            nightly_starts)),
            np.concatenate((reboots[1], powerdowns[1], extended[1],
                            nightly_ends)))
        super().__init__(span, off_set.complement(span))

    @staticmethod
    def _nightly_offs(rng: np.random.Generator, span: Tuple[float, float],
                      calendar: StudyCalendar,
                      probability: float) -> List[Tuple[float, float]]:
        """Overnight power-off periods on a fraction of nights."""
        if probability <= 0:
            return []
        offs: List[Tuple[float, float]] = []
        day_start = calendar.local_midnight_before(span[0])
        while day_start < span[1]:
            if rng.random() < probability:
                off_start = day_start + float(rng.uniform(0.0, 1.5)) * HOUR
                off_end = day_start + float(rng.uniform(6.0, 8.0)) * HOUR
                offs.append((off_start, off_end))
            day_start += DAY
        return offs


class AppliancePower(PowerModel):
    """Fig. 6b behaviour: the router is an appliance, on only during use.

    Each local day either stays dark (with ``skip_day_probability``) or gets
    the household's evening block from
    :meth:`repro.simulation.behavior.ActivitySchedule.evening_block`;
    weekends occasionally earn a second daytime block.
    """

    mode = MODE_APPLIANCE

    def __init__(self, rng: np.random.Generator,
                 span: Tuple[float, float],
                 calendar: StudyCalendar,
                 schedule: ActivitySchedule,
                 skip_day_probability: float = 0.12,
                 weekend_second_block_probability: float = 0.5):
        on: List[Tuple[float, float]] = []
        day_start = calendar.local_midnight_before(span[0])
        while day_start < span[1]:
            if rng.random() >= skip_day_probability:
                on.append(schedule.evening_block(calendar, day_start, rng))
                weekend = calendar.is_weekend(day_start + 12 * HOUR)
                if weekend and rng.random() < weekend_second_block_probability:
                    start = day_start + float(rng.uniform(8.0, 11.0)) * HOUR
                    on.append((start, start + float(rng.uniform(1.0, 3.0)) * HOUR))
            day_start += DAY
        on_set = IntervalSet.from_event_arrays(
            np.asarray([s for s, _ in on], dtype=float),
            np.asarray([e for _, e in on], dtype=float))
        super().__init__(span, on_set.clip(*span))


def draw_power_model(rng: np.random.Generator,
                     span: Tuple[float, float],
                     calendar: StudyCalendar,
                     schedule: ActivitySchedule,
                     appliance_probability: float,
                     developed: bool,
                     nightly_off_probability: float = 0.0) -> PowerModel:
    """Draw one household's power model from its country profile.

    Developed homes are nearly all always-on with negligible overnight
    switching; developing homes mix appliance-mode (per the country's
    ``appliance_probability``) with always-on-but-thrifty homes that power
    off overnight on a country-calibrated fraction of nights.
    """
    if rng.random() < appliance_probability:
        return AppliancePower(rng, span, calendar, schedule)
    jitter = float(rng.uniform(0.6, 1.4))
    nightly = min(nightly_off_probability * jitter, 0.9)
    if developed:
        return AlwaysOnPower(rng, span, calendar,
                             nightly_off_probability=min(nightly, 0.008))
    return AlwaysOnPower(
        rng, span, calendar,
        powerdown_rate_per_day=0.02,
        extended_rate_per_day=0.012,
        nightly_off_probability=nightly,
    )
