"""Shard-wide columnar household materialization.

Materializing a home used to mean building its full Python object graph —
power schedule, outage process, wireless neighborhood, and (dominating
everything) one Markov association timeline per device, each expanded by a
per-hour Python loop.  At 252 homes that was ~4.4s of a ~5.8s serial
campaign; on the road to 1M homes it is the scale ceiling.

This module replaces per-home object construction with *shard-wide
columnar generation*:

* a single **draw pass** walks the shard's homes in deployment order and
  consumes every per-home RNG stream exactly as the reference
  ``Household.__init__`` path does (same streams, same call sequence, same
  sizes) — the bitwise-determinism contract lives here;
* the expensive **expansions** are batched: device association timelines
  are solved for the whole shard at once (see :class:`_AssociationBatch`),
  and power/link/schedule/wireless results are stored as flat column
  arrays instead of per-home object graphs;
* :class:`ShardCohort` holds the columns; ``Household`` becomes a thin
  view that assembles model objects lazily from column slices
  (:meth:`ShardCohort.household`).

The Markov recurrence ``state[i] = draws[i] < (prob_on if state[i-1] else
prob_off)[i]`` looks inherently sequential, but because the clamp keeps
``prob_off <= prob_on`` element-wise, defining ``a = draws < prob_off``
and ``b = draws < prob_on`` gives ``a => b`` and the recurrence becomes
``state[i] = b[i] & (a[i] | state[i-1])``, whose closed form is: *state is
on at hour i iff some hour j <= i has ``a[j]`` with ``b`` true on all of
``(j, i]``*.  With ``L[i]`` the last index ``<= i`` where ``b`` is false,
that is ``cumsum(a)[i] - cumsum(a)[L[i]] > 0`` — pure array work over the
whole shard.  DESIGN.md §10 documents the draw-order contract and this
derivation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import perf
from repro.core.intervals import IntervalSet
from repro.core.records import Spectrum
from repro.simulation.behavior import ActivitySchedule
from repro.simulation.device_models import (
    KIND_CODE,
    KIND_ORDER,
    SPECTRUM_BY_CODE,
    SimDevice,
    association_probs,
    association_span_hours,
    association_time_index,
    generate_device_draws,
    kind_traits,
)
from repro.netutils.mac import MacAddress
from repro.simulation.domains import Domain, default_universe
from repro.simulation.household import Household, HouseholdConfig
from repro.simulation.link import AccessLink, AccessLinkConfig
from repro.simulation.power import (
    MODE_APPLIANCE,
    AlwaysOnPower,
    AppliancePower,
    draw_power_model,
)
from repro.simulation.seeding import SeedHierarchy
from repro.simulation.timebase import HOUR, StudyCalendar
from repro.simulation.wireless import (
    WirelessEnvironment,
    WirelessEnvironmentConfig,
)

#: Cap on boolean cells (rows × hours) buffered before an association
#: flush, bounding the batch solver's peak memory to tens of MB even when
#: one shard holds a 10k-home cohort.
_ASSOCIATION_CELL_BUDGET = 4_000_000

_SPECTRA = (Spectrum.GHZ_2_4, Spectrum.GHZ_5)


class _AssociationBatch:
    """Batched solver for the per-device Markov association recurrence.

    ``push`` takes one device's gate rows (``a``/``b`` — see the module
    docstring) and returns a slot index; flushes solve every buffered row
    in one vectorized pass and extract the connected runs.  Interval
    epochs are computed with the same float expressions as the scalar
    reference (``span_start + hour_index * HOUR``), so the resulting
    intervals are bitwise-identical.
    """

    def __init__(self, span: Tuple[float, float], hours: int,
                 cell_budget: int = _ASSOCIATION_CELL_BUDGET):
        self.span = span
        self.hours = hours
        self._rows_per_flush = max(1, cell_budget // max(hours, 1))
        self._a_rows: List[np.ndarray] = []
        self._b_rows: List[np.ndarray] = []
        self._starts: List[np.ndarray] = []
        self._ends: List[np.ndarray] = []
        self._n_pushed = 0

    def push(self, a_row: np.ndarray, b_row: np.ndarray) -> int:
        slot = self._n_pushed
        self._n_pushed += 1
        self._a_rows.append(a_row)
        self._b_rows.append(b_row)
        if len(self._a_rows) >= self._rows_per_flush:
            self._flush()
        return slot

    def _flush(self) -> None:
        if not self._a_rows:
            return
        a = np.vstack(self._a_rows)
        b = np.vstack(self._b_rows)
        self._a_rows.clear()
        self._b_rows.clear()
        n_rows, hours = a.shape
        # state[i] = b[i] & (a[i] | state[i-1]): the device is on at hour i
        # iff some a-true hour j <= i has b true over (j, i].  Equivalently
        # the a-count since the last b-false hour is positive.  csum is
        # nondecreasing, so "csum at the last b-false index" is just the
        # running maximum of csum masked to b-false positions (0 before
        # the first one) — no index gymnastics needed.
        # Counts are bounded by the span's hour count, so int16 is ample
        # for any real study span and halves the memory traffic of the
        # three full-matrix passes below.
        count_dtype = np.int16 if hours < np.iinfo(np.int16).max else np.int32
        csum = np.cumsum(a, axis=1, dtype=count_dtype)
        csum_at_last_false = np.maximum.accumulate(
            np.where(b, 0, csum), axis=1)
        state = (csum - csum_at_last_false) > 0
        # Run extraction: pad each row with an off hour on both sides; the
        # transitions then pair up as (run start, run end) column indices.
        padded = np.zeros((n_rows, hours + 2), dtype=bool)
        padded[:, 1:hours + 1] = state
        transitions = padded[:, 1:] != padded[:, :-1]
        rows, cols = np.nonzero(transitions)
        start_cols = cols[0::2]
        end_cols = cols[1::2]
        span_start, span_end = self.span
        run_starts = span_start + start_cols * HOUR
        run_ends = np.minimum(span_start + end_cols * HOUR, span_end)
        counts = np.bincount(rows[0::2], minlength=n_rows)
        boundaries = np.cumsum(counts)[:-1]
        self._starts.extend(np.split(run_starts, boundaries))
        self._ends.extend(np.split(run_ends, boundaries))

    def finalize(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Solve the remainder; return (flat starts, flat ends, offsets)."""
        self._flush()
        if self._starts:
            flat_starts = np.concatenate(self._starts)
            flat_ends = np.concatenate(self._ends)
            lengths = np.fromiter((arr.size for arr in self._starts),
                                  dtype=np.int64, count=len(self._starts))
        else:
            flat_starts = np.empty(0)
            flat_ends = np.empty(0)
            lengths = np.empty(0, dtype=np.int64)
        offsets = np.zeros(lengths.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        self._starts.clear()
        self._ends.clear()
        return flat_starts, flat_ends, offsets


def _flatten(parts: List[np.ndarray]) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate per-home arrays into (flat values, offsets)."""
    lengths = np.fromiter((arr.size for arr in parts), dtype=np.int64,
                          count=len(parts))
    offsets = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    flat = (np.concatenate(parts) if parts else np.empty(0))
    return flat, offsets


class ShardCohort(Sequence):
    """Column-array cohort for one shard, with lazy ``Household`` views.

    Behaves as an immutable sequence of :class:`Household` objects (so
    existing callers that iterate, index, or slice a materialized shard
    keep working), but the per-home models only come into existence when
    a view attribute is first touched — and then only as thin objects
    wrapping column slices.
    """

    def __init__(self, seed: int, configs: Sequence[HouseholdConfig],
                 universe: Sequence[Domain], columns: Dict[str, object]):
        self.seed = seed
        self.configs = tuple(configs)
        self.universe = universe
        self.seeds = SeedHierarchy(seed)
        self._columns = columns
        self._views: List[Optional[Household]] = [None] * len(self.configs)
        self._calendars: Dict[float, StudyCalendar] = {}

    @property
    def columns(self) -> Dict[str, object]:
        """The raw column arrays (see :func:`build_shard_cohort` layout).

        The columnar collection pass (``firmware.shard_collect``) reads
        these directly instead of rebuilding per-home ``Household`` views.
        Treat the arrays as immutable: views alias them.
        """
        return self._columns

    # -- sequence protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self.configs)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self.household(i)
                    for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("cohort index out of range")
        return self.household(index)

    def household(self, index: int) -> Household:
        """The (cached) household view at *index*."""
        view = self._views[index]
        if view is None:
            view = Household._from_cohort(self, index)
            self._views[index] = view
        return view

    def calendar_for(self, config: HouseholdConfig) -> StudyCalendar:
        tz = config.country.tz_offset_hours
        calendar = self._calendars.get(tz)
        if calendar is None:
            calendar = self._calendars[tz] = StudyCalendar(tz)
        return calendar

    # -- column slice assembly ------------------------------------------------

    def _interval_slice(self, flat_key: str, index: int) -> IntervalSet:
        starts, ends, offsets = self._columns[flat_key]
        lo, hi = offsets[index], offsets[index + 1]
        return IntervalSet.from_normalized_arrays(starts[lo:hi],
                                                  ends[lo:hi])

    def _build_schedule(self, index: int) -> ActivitySchedule:
        curves = self._columns["schedule"]
        return ActivitySchedule(
            presence_weekday=curves[0][index],
            presence_weekend=curves[1][index],
            activity_weekday=curves[2][index],
            activity_weekend=curves[3][index],
        )

    def _build_power(self, index: int):
        config = self.configs[index]
        cls = (AppliancePower if self._columns["power_mode"][index]
               else AlwaysOnPower)
        return cls.from_on_intervals(config.span,
                                     self._interval_slice("power_on", index))

    def _build_link(self, index: int) -> AccessLink:
        config = self.configs[index]
        profile = config.country.behavior
        link_config = AccessLinkConfig(
            downstream_mbps=float(self._columns["link_down"][index]),
            upstream_mbps=float(self._columns["link_up_mbps"][index]),
            outage_rate_per_day=profile.isp_outage_rate_per_day,
            outage_median_seconds=profile.isp_outage_median_seconds,
            outage_duration_sigma=profile.isp_outage_duration_sigma,
        )
        return AccessLink.from_columns(
            config.span, link_config,
            outages=self._interval_slice("link_outages", index),
            up=self._interval_slice("link_up", index),
            bad_periods=self._interval_slice("link_bad", index))

    def _build_wireless(self, index: int) -> WirelessEnvironment:
        config = self.configs[index]
        profile = config.country.behavior
        env_config = WirelessEnvironmentConfig(
            neighbor_ap_level=profile.neighbor_ap_level,
            sparse_probability=0.30 if config.country.developed else 0.42,
        )
        neighbors: Dict[Spectrum, List[int]] = {}
        for spectrum in _SPECTRA:
            flat, offsets = self._columns["neighbors"][spectrum]
            lo, hi = offsets[index], offsets[index + 1]
            neighbors[spectrum] = flat[lo:hi].tolist()
        return WirelessEnvironment.from_columns(
            env_config, bool(self._columns["wireless_sparse"][index]),
            neighbors)

    def _build_devices(self, index: int) -> List[SimDevice]:
        config = self.configs[index]
        cols = self._columns
        dev_offsets = cols["device_offsets"]
        assoc_starts, assoc_ends, assoc_offsets = cols["associations"]
        devices: List[SimDevice] = []
        for position, dev in enumerate(
                range(int(dev_offsets[index]),
                      int(dev_offsets[index + 1]))):
            kind = KIND_ORDER[cols["device_kind"][dev]]
            traits = kind_traits(kind)
            always = bool(cols["device_always"][dev])
            if always:
                connected = IntervalSet([config.span])
            else:
                slot = int(cols["device_slot"][dev])
                lo, hi = assoc_offsets[slot], assoc_offsets[slot + 1]
                connected = IntervalSet.from_normalized_arrays(
                    assoc_starts[lo:hi], assoc_ends[lo:hi])
            devices.append(SimDevice(
                device_id=f"{config.router_id}-dev{position:02d}",
                kind=kind,
                mac=MacAddress(int(cols["device_mac"][dev])),
                medium=traits.medium,
                spectrum=SPECTRUM_BY_CODE[cols["device_spectrum"][dev]],
                always_connected=always,
                connected=connected,
                traffic_weight=float(cols["device_weight"][dev]),
            ))
        return devices


def build_shard_cohort(seed: int, configs: Sequence[HouseholdConfig],
                       universe: Optional[Sequence[Domain]] = None,
                       ) -> ShardCohort:
    """Draw and expand one shard's homes into a :class:`ShardCohort`.

    The per-home draw pass consumes each home's streams in exactly the
    order the reference ``Household.__init__`` path does; expansions are
    columnar.  Sub-stage timings land under ``materialize.*`` when
    :mod:`repro.perf` is enabled.
    """
    if universe is None:
        universe = default_universe()
    seeds = SeedHierarchy(seed)
    cohort_configs = tuple(configs)

    curves = ([], [], [], [])
    power_mode: List[int] = []
    power_on_parts: List[np.ndarray] = []
    link_down: List[float] = []
    link_up_mbps: List[float] = []
    link_outage_parts: List[np.ndarray] = []
    link_up_parts: List[np.ndarray] = []
    link_bad_parts: List[np.ndarray] = []
    sparse_flags: List[bool] = []
    neighbor_parts: Dict[Spectrum, List[np.ndarray]] = {
        s: [] for s in _SPECTRA}
    device_counts: List[int] = []
    device_kind: List[int] = []
    device_mac: List[int] = []
    device_spectrum: List[int] = []
    device_always: List[bool] = []
    device_weight: List[float] = []
    device_slot: List[int] = []

    calendars: Dict[float, StudyCalendar] = {}
    time_indices: Dict[float, Tuple[np.ndarray, np.ndarray]] = {}
    batch: Optional[_AssociationBatch] = None
    prob_cache: Dict[Tuple[bool, float], Tuple[np.ndarray, np.ndarray]] = {}

    for config in cohort_configs:
        scope = seeds.child("household", config.router_id)
        profile = config.country.behavior
        tz = config.country.tz_offset_hours
        calendar = calendars.get(tz)
        if calendar is None:
            calendar = calendars[tz] = StudyCalendar(tz)

        with perf.stage("materialize.schedule"):
            schedule = ActivitySchedule.generate(scope.generator("schedule"))
            curves[0].append(schedule.presence_weekday)
            curves[1].append(schedule.presence_weekend)
            curves[2].append(schedule.activity_weekday)
            curves[3].append(schedule.activity_weekend)

        with perf.stage("materialize.power"):
            if config.appliance_hint is None:
                appliance_probability = profile.appliance_probability
            else:
                appliance_probability = 1.0 if config.appliance_hint else 0.0
            power = draw_power_model(
                scope.generator("power"), config.span, calendar, schedule,
                appliance_probability, config.country.developed,
                nightly_off_probability=profile.nightly_off_probability)
            power_mode.append(1 if power.mode == MODE_APPLIANCE else 0)
            power_on_parts.append(power.on_intervals._as_array())

        with perf.stage("materialize.link"):
            link_rng = scope.generator("link")
            capacity_jitter = float(link_rng.lognormal(0.0, 0.35))
            link = AccessLink(link_rng, config.span, AccessLinkConfig(
                downstream_mbps=profile.downstream_mbps * capacity_jitter,
                upstream_mbps=profile.upstream_mbps * capacity_jitter,
                outage_rate_per_day=profile.isp_outage_rate_per_day,
                outage_median_seconds=profile.isp_outage_median_seconds,
                outage_duration_sigma=profile.isp_outage_duration_sigma,
            ))
            link_down.append(link.config.downstream_mbps)
            link_up_mbps.append(link.config.upstream_mbps)
            link_outage_parts.append(link._outages._as_array())
            link_up_parts.append(link.up._as_array())
            link_bad_parts.append(link.bad_periods._as_array())

        with perf.stage("materialize.wireless"):
            wireless = WirelessEnvironment(
                scope.generator("wireless"),
                WirelessEnvironmentConfig(
                    neighbor_ap_level=profile.neighbor_ap_level,
                    sparse_probability=(0.30 if config.country.developed
                                        else 0.42),
                ))
            sparse_flags.append(wireless.sparse)
            for spectrum in _SPECTRA:
                neighbor_parts[spectrum].append(np.asarray(
                    wireless._neighbors[spectrum], dtype=np.int64))

        with perf.stage("materialize.devices"):
            if batch is None:
                batch = _AssociationBatch(
                    config.span, association_span_hours(config.span))
            elif batch.span != config.span:
                raise ValueError(
                    "all homes in a shard must share one study span")
            prob_cache.clear()
            time_index = time_indices.get(tz)
            if time_index is None:
                time_index = time_indices[tz] = association_time_index(
                    config.span, calendar)

            def push_association(follows: bool, scale: float,
                                 draws: np.ndarray) -> int:
                probs = prob_cache.get((follows, scale))
                if probs is None:
                    probs = association_probs(
                        config.span, calendar, schedule, follows, scale,
                        time_index=time_index)
                    prob_cache[(follows, scale)] = probs
                return batch.push(draws < probs[0], draws < probs[1])

            draws = generate_device_draws(
                scope.generator("devices"), config.span, calendar, schedule,
                config.country.developed, profile.mean_devices,
                profile.always_wired_probability,
                profile.always_wireless_probability, push_association)
            device_counts.append(len(draws))
            for draw in draws:
                device_kind.append(KIND_CODE[draw.kind])
                device_mac.append(draw.mac_value)
                device_spectrum.append(draw.spectrum_code)
                device_always.append(draw.always_connected)
                device_weight.append(draw.traffic_weight)
                device_slot.append(draw.markov_slot)

    with perf.stage("materialize.devices"):
        if batch is None:
            associations = (np.empty(0), np.empty(0),
                            np.zeros(1, dtype=np.int64))
        else:
            associations = batch.finalize()

    device_offsets = np.zeros(len(cohort_configs) + 1, dtype=np.int64)
    np.cumsum(np.asarray(device_counts, dtype=np.int64),
              out=device_offsets[1:])

    columns: Dict[str, object] = {
        "schedule": tuple(
            np.vstack(rows) if rows else np.empty((0, 24))
            for rows in curves),
        "power_mode": np.asarray(power_mode, dtype=np.int8),
        "power_on": _flatten_intervals(power_on_parts),
        "link_down": np.asarray(link_down, dtype=float),
        "link_up_mbps": np.asarray(link_up_mbps, dtype=float),
        "link_outages": _flatten_intervals(link_outage_parts),
        "link_up": _flatten_intervals(link_up_parts),
        "link_bad": _flatten_intervals(link_bad_parts),
        "wireless_sparse": np.asarray(sparse_flags, dtype=bool),
        "neighbors": {s: _flatten(neighbor_parts[s]) for s in _SPECTRA},
        "device_offsets": device_offsets,
        "device_kind": np.asarray(device_kind, dtype=np.int16),
        "device_mac": np.asarray(device_mac, dtype=np.int64),
        "device_spectrum": np.asarray(device_spectrum, dtype=np.int8),
        "device_always": np.asarray(device_always, dtype=bool),
        "device_weight": np.asarray(device_weight, dtype=float),
        "device_slot": np.asarray(device_slot, dtype=np.int64),
        "associations": associations,
    }
    return ShardCohort(seed, cohort_configs, universe, columns)


def _flatten_intervals(parts: List[np.ndarray],
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate per-home (k, 2) interval matrices into flat columns."""
    lengths = np.fromiter((arr.shape[0] for arr in parts), dtype=np.int64,
                          count=len(parts))
    offsets = np.zeros(lengths.size + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    if parts:
        stacked = np.concatenate([arr.reshape(-1, 2) for arr in parts])
    else:
        stacked = np.empty((0, 2))
    return stacked[:, 0].copy(), stacked[:, 1].copy(), offsets
