"""The full BISmark deployment: 126 homes, 19 countries, 4 consent tiers.

:func:`build_deployment` instantiates every household of Table 1 (optionally
scaled down for fast tests) and assigns data-set membership matching
Table 2 of the paper:

=========  =====================================================
Heartbeats  all routers
Capacity    all routers
Uptime      113 of 126 (a few homes never enabled the reporter)
Devices     the same 113
WiFi        93 routers across 15 countries
Traffic     consenting US homes only (the paper had 53 consents
            of which 25 crossed the ≥100 MB activity bar)
=========  =====================================================

Membership draws are deterministic in the study seed.  The two Fig. 16
uplink saturators are always assigned among consenting US homes: one
``"continuous"`` (the scientific-data uploader) and one ``"diurnal"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.simulation.countries import COUNTRIES, Country
from repro.simulation.domains import Domain, build_domain_universe
from repro.simulation.household import Household, HouseholdConfig
from repro.simulation.seeding import SeedHierarchy
from repro.simulation.timebase import StudyWindows

#: Countries whose routers never produced WiFi scans (keeps 15 of 19).
_WIFI_EXCLUDED_COUNTRIES = ("FR", "IT", "MY", "ID")


@dataclass(frozen=True)
class DeploymentConfig:
    """Knobs for instantiating the deployment."""

    seed: int = 2013
    windows: StudyWindows = field(default_factory=StudyWindows)
    #: Scale factor on per-country router counts (1.0 = the paper's 126).
    router_scale: float = 1.0
    #: Target number of traffic-consenting US homes before the ≥100 MB
    #: filter; the paper had 53 consents and 25 qualifying homes.  We
    #: default to 28 consents of which ~25 qualify.
    traffic_consents: int = 28
    #: How many of the consenting homes are barely active (sub-100 MB),
    #: exercising the paper's activity filter.
    low_activity_consents: int = 3
    #: Traffic-consenting homes *outside* the US — the paper's Section 7
    #: plan ("we recently started gathering Traffic data in several
    #: developing countries").  Allocated round-robin over the largest
    #: non-US cohorts.  The paper's own Traffic data set used 0.
    international_consents: int = 0
    #: Restrict to these country codes (None = all of Table 1).
    countries: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.router_scale <= 0:
            raise ValueError("router_scale must be positive")
        if self.traffic_consents < 0 or self.low_activity_consents < 0:
            raise ValueError("consent counts cannot be negative")
        if self.low_activity_consents > self.traffic_consents:
            raise ValueError("low-activity consents cannot exceed consents")


class Deployment:
    """All instantiated households plus per-data-set membership."""

    def __init__(self, households: List[Household],
                 uptime_routers: Set[str],
                 devices_routers: Set[str],
                 wifi_routers: Set[str],
                 traffic_routers: Set[str],
                 windows: StudyWindows,
                 universe: Sequence[Domain]):
        self.households = households
        self.uptime_routers = uptime_routers
        self.devices_routers = devices_routers
        self.wifi_routers = wifi_routers
        self.traffic_routers = traffic_routers
        self.windows = windows
        self.universe = list(universe)
        self._by_id: Dict[str, Household] = {
            home.router_id: home for home in households}

    def __len__(self) -> int:
        return len(self.households)

    def household(self, router_id: str) -> Household:
        """Look up a household by router id (KeyError if absent)."""
        return self._by_id[router_id]

    @property
    def countries(self) -> List[Country]:
        """Distinct countries present, in Table 1 order."""
        seen = {home.country.code for home in self.households}
        return [c for c in COUNTRIES if c.code in seen]

    def routers_in(self, country_code: str) -> List[Household]:
        """Households deployed in one country."""
        return [h for h in self.households
                if h.country.code == country_code.upper()]


def _scaled_count(count: int, scale: float) -> int:
    """Scale a per-country router count, keeping every country populated."""
    if scale >= 1.0:
        return int(round(count * scale))
    return max(1, int(round(count * scale)))


def build_deployment(config: Optional[DeploymentConfig] = None) -> Deployment:
    """Instantiate the deployment described by *config* (deterministic)."""
    config = config or DeploymentConfig()
    seeds = SeedHierarchy(config.seed)
    windows = config.windows
    span = windows.span
    universe = build_domain_universe()

    selected = [c for c in COUNTRIES
                if config.countries is None
                or c.code in tuple(code.upper() for code in config.countries)]
    if not selected:
        raise ValueError("no countries selected for the deployment")

    membership_rng = seeds.generator("membership")

    # -- traffic consents: US homes, with saturators and low-activity homes.
    us_count = next((_scaled_count(c.routers, config.router_scale)
                     for c in selected if c.code == "US"), 0)
    consents = min(config.traffic_consents, us_count)
    consent_indices = set(range(consents))  # first N US homes consent
    low_activity = set(range(max(consents - config.low_activity_consents, 0),
                             consents))
    saturator_modes: Dict[int, str] = {}
    active_consents = sorted(consent_indices - low_activity)
    if len(active_consents) >= 2:
        saturator_modes[active_consents[0]] = "continuous"
        saturator_modes[active_consents[1]] = "diurnal"

    # -- international consents: round-robin over the largest non-US
    #    cohorts (GB, IN, ZA, ...), one home per country per round.
    international: Dict[str, Set[int]] = {}
    if config.international_consents > 0:
        ordered = sorted((c for c in selected if c.code != "US"),
                         key=lambda c: -c.routers)
        remaining = config.international_consents
        round_index = 0
        while remaining > 0 and ordered:
            progressed = False
            for country in ordered:
                count = _scaled_count(country.routers, config.router_scale)
                if round_index < count and remaining > 0:
                    international.setdefault(country.code,
                                             set()).add(round_index)
                    remaining -= 1
                    progressed = True
            if not progressed:
                break
            round_index += 1

    households: List[Household] = []
    for country in selected:
        count = _scaled_count(country.routers, config.router_scale)
        # Stratify appliance-mode homes: each country gets exactly its
        # calibrated share (rounded), so small cohorts cannot drift into
        # majority-appliance by Bernoulli luck.
        n_appliance = int(round(count * country.behavior.appliance_probability))
        if n_appliance:
            appliance_indices = set(membership_rng.choice(
                count, size=n_appliance, replace=False).tolist())
        else:
            appliance_indices = set()
        for index in range(count):
            router_id = f"{country.code}{index:03d}"
            is_us = country.code == "US"
            consent = (is_us and index in consent_indices) or \
                index in international.get(country.code, set())
            households.append(Household(seeds, HouseholdConfig(
                router_id=router_id,
                country=country,
                span=span,
                traffic_consent=consent,
                uplink_saturator=saturator_modes.get(index) if is_us else None,
                traffic_intensity=(0.002 if (is_us and index in low_activity)
                                   else 1.0),
                appliance_hint=index in appliance_indices,
            ), domain_universe=universe))

    all_ids = [home.router_id for home in households]

    # -- Uptime/Devices: drop ~10% of homes, matching 113-of-126.
    drop_fraction = 13 / 126
    n_drop = int(round(len(all_ids) * drop_fraction))
    dropped = set(membership_rng.choice(all_ids, size=n_drop, replace=False)
                  .tolist()) if n_drop else set()
    uptime_routers = {rid for rid in all_ids if rid not in dropped}

    # -- WiFi: exclude four countries, then keep ~93/122 of the rest.
    wifi_candidates = [home.router_id for home in households
                       if home.country.code not in _WIFI_EXCLUDED_COUNTRIES]
    keep_fraction = 93 / 122
    n_keep = max(1, int(round(len(wifi_candidates) * keep_fraction)))
    wifi_routers = set(membership_rng.choice(
        wifi_candidates, size=min(n_keep, len(wifi_candidates)),
        replace=False).tolist())

    traffic_routers = {home.router_id for home in households
                       if home.config.traffic_consent}

    return Deployment(
        households=households,
        uptime_routers=uptime_routers,
        devices_routers=set(uptime_routers),
        wifi_routers=wifi_routers,
        traffic_routers=traffic_routers,
        windows=windows,
        universe=universe,
    )
