"""The full BISmark deployment: 126 homes, 19 countries, 4 consent tiers.

The deployment is described in two stages so large campaigns can be
materialized shard-by-shard across worker processes:

* :func:`build_deployment_plan` produces a :class:`DeploymentPlan` — the
  cheap, picklable description of every home (membership sets, consent
  tiers, one :class:`HouseholdConfig` per home) with **no** ``Household``
  objects instantiated;
* :func:`materialize_shard` instantiates one contiguous slice of the
  plan's homes, so a worker holds only O(shard) state.

:func:`build_deployment` remains the one-call convenience API and returns
a :class:`Deployment` — now a thin, lazily-materializing view over the
plan that keeps the original attribute surface.

Data-set membership matches Table 2 of the paper:

=========  =====================================================
Heartbeats  all routers
Capacity    all routers
Uptime      113 of 126 (a few homes never enabled the reporter)
Devices     the same 113
WiFi        93 routers across 15 countries
Traffic     consenting US homes only (the paper had 53 consents
            of which 25 crossed the ≥100 MB activity bar)
=========  =====================================================

Membership draws are deterministic in the study seed.  The two Fig. 16
uplink saturators are always assigned among consenting US homes: one
``"continuous"`` (the scientific-data uploader) and one ``"diurnal"``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.simulation.cohort import ShardCohort, build_shard_cohort
from repro.simulation.countries import COUNTRIES, Country
from repro.simulation.domains import Domain, default_universe
from repro.simulation.household import Household, HouseholdConfig
from repro.simulation.seeding import SeedHierarchy
from repro.simulation.timebase import StudyWindows

#: Countries whose routers never produced WiFi scans (keeps 15 of 19).
_WIFI_EXCLUDED_COUNTRIES = ("FR", "IT", "MY", "ID")

#: Homes per lookup shard for point queries (``Deployment.household``):
#: small enough that a single lookup materializes O(64) homes, large
#: enough that scanning a country still touches few shards.
_LOOKUP_SHARD_SIZE = 64


@dataclass(frozen=True)
class DeploymentConfig:
    """Knobs for instantiating the deployment."""

    seed: int = 2013
    windows: StudyWindows = field(default_factory=StudyWindows)
    #: Scale factor on per-country router counts (1.0 = the paper's 126).
    router_scale: float = 1.0
    #: Target number of traffic-consenting US homes before the ≥100 MB
    #: filter; the paper had 53 consents and 25 qualifying homes.  We
    #: default to 28 consents of which ~25 qualify.
    traffic_consents: int = 28
    #: How many of the consenting homes are barely active (sub-100 MB),
    #: exercising the paper's activity filter.
    low_activity_consents: int = 3
    #: Traffic-consenting homes *outside* the US — the paper's Section 7
    #: plan ("we recently started gathering Traffic data in several
    #: developing countries").  Allocated round-robin over the largest
    #: non-US cohorts.  The paper's own Traffic data set used 0.
    international_consents: int = 0
    #: Restrict to these country codes (None = all of Table 1).
    countries: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.router_scale <= 0:
            raise ValueError("router_scale must be positive")
        if self.traffic_consents < 0 or self.low_activity_consents < 0:
            raise ValueError("consent counts cannot be negative")
        if self.low_activity_consents > self.traffic_consents:
            raise ValueError("low-activity consents cannot exceed consents")


@dataclass(frozen=True)
class DeploymentPlan:
    """Everything the campaign needs to know about a deployment, lazily.

    A plan is cheap to build (membership RNG draws only), cheap to pickle
    (per-home configs, no per-home models), and is the unit shipped to
    shard workers.  ``Household`` objects are instantiated on demand via
    :func:`materialize_shard`.
    """

    seed: int
    windows: StudyWindows
    household_configs: Tuple[HouseholdConfig, ...]
    uptime_routers: FrozenSet[str]
    devices_routers: FrozenSet[str]
    wifi_routers: FrozenSet[str]
    traffic_routers: FrozenSet[str]

    def __len__(self) -> int:
        return len(self.household_configs)

    @property
    def router_ids(self) -> List[str]:
        """All router ids in deployment order (no materialization)."""
        return [config.router_id for config in self.household_configs]

    def shard_bounds(self, shard_index: int, n_shards: int) -> Tuple[int, int]:
        """Half-open ``[lo, hi)`` slice of homes owned by one shard.

        Shards partition the deployment in order: concatenating the slices
        for ``shard_index = 0 .. n_shards-1`` reproduces the full home list
        exactly, which is what makes shard-parallel collection ingestible
        in a deterministic order.  With ``n_shards > len(plan)`` the excess
        shards are simply empty.
        """
        if n_shards <= 0:
            raise ValueError("n_shards must be positive")
        if not 0 <= shard_index < n_shards:
            raise ValueError(
                f"shard_index {shard_index} out of range for {n_shards} shards")
        n = len(self)
        return (shard_index * n) // n_shards, ((shard_index + 1) * n) // n_shards

    def shard_configs(self, shard_index: int,
                      n_shards: int) -> Tuple[HouseholdConfig, ...]:
        """The household configs one shard owns."""
        lo, hi = self.shard_bounds(shard_index, n_shards)
        return self.household_configs[lo:hi]


def materialize_shard(plan: DeploymentPlan, shard_index: int, n_shards: int,
                      domain_universe: Optional[Sequence[Domain]] = None,
                      ) -> ShardCohort:
    """Materialize the households of one shard of *plan*, columnar-style.

    Each household's randomness derives only from ``(plan.seed,
    router_id)`` via :class:`SeedHierarchy`, so materializing a home inside
    any shard split — or no split at all — yields bitwise-identical models.
    The result is a :class:`~repro.simulation.cohort.ShardCohort`: it
    iterates, indexes, and slices like the list of ``Household`` objects it
    used to be, but the per-home models are assembled lazily from the
    cohort's column arrays.  Workers may pass a pre-built *domain_universe*
    to share it across shards within a process; omitted, the memoized
    deterministic default is used.
    """
    universe = (domain_universe if domain_universe is not None
                else default_universe())
    return build_shard_cohort(plan.seed,
                              plan.shard_configs(shard_index, n_shards),
                              universe)


class Deployment:
    """Thin view over a :class:`DeploymentPlan` with lazy households.

    Keeps the pre-plan attribute surface (``households``, membership sets,
    ``household()``, ``countries`` …) but defers ``Household``
    materialization until ground truth is actually inspected — running a
    campaign through the engine never touches it.
    """

    def __init__(self, plan: DeploymentPlan,
                 households: Optional[Sequence[Household]] = None,
                 universe: Optional[Sequence[Domain]] = None):
        self.plan = plan
        self.windows = plan.windows
        self.uptime_routers: Set[str] = set(plan.uptime_routers)
        self.devices_routers: Set[str] = set(plan.devices_routers)
        self.wifi_routers: Set[str] = set(plan.wifi_routers)
        self.traffic_routers: Set[str] = set(plan.traffic_routers)
        self._households = households if households is not None else None
        self._universe = list(universe) if universe is not None else None
        self._position: Optional[Dict[str, int]] = None
        self._lookup_cohorts: Dict[int, ShardCohort] = {}

    @property
    def universe(self) -> List[Domain]:
        """The domain universe (deterministic; built on first use)."""
        if self._universe is None:
            self._universe = list(default_universe())
        return self._universe

    @property
    def households(self) -> Sequence[Household]:
        """Every home, materializing the whole plan on first access."""
        if self._households is None:
            self._households = materialize_shard(
                self.plan, 0, 1, domain_universe=self.universe)
        return self._households

    def __len__(self) -> int:
        return len(self.plan)

    def _home_at(self, position: int) -> Household:
        """The home at one deployment position, materializing O(shard).

        Point lookups must not materialize the whole plan: the owning
        lookup shard (:data:`_LOOKUP_SHARD_SIZE` homes) is materialized on
        first touch and cached.  When the full cohort already exists it is
        used directly.
        """
        if self._households is not None:
            return self._households[position]
        n = len(self.plan)
        n_shards = max(1, -(-n // _LOOKUP_SHARD_SIZE))
        # Invert the shard_bounds partition lo_i = (i*n)//k: position pos
        # belongs to shard ceil(k*(pos+1)/n) - 1.
        shard = (n_shards * (position + 1) + n - 1) // n - 1
        cohort = self._lookup_cohorts.get(shard)
        if cohort is None:
            cohort = materialize_shard(self.plan, shard, n_shards,
                                       domain_universe=self.universe)
            self._lookup_cohorts[shard] = cohort
        lo, _ = self.plan.shard_bounds(shard, n_shards)
        return cohort[position - lo]

    def household(self, router_id: str) -> Household:
        """Look up a household by router id (KeyError if absent).

        Resolves via the home's deployment position and its owning lookup
        shard's cohort — O(shard), never a full-plan materialization.
        """
        if self._position is None:
            self._position = {
                config.router_id: index
                for index, config in enumerate(self.plan.household_configs)}
        return self._home_at(self._position[router_id])

    @property
    def countries(self) -> List[Country]:
        """Distinct countries present, in Table 1 order."""
        seen = {config.country.code for config in self.plan.household_configs}
        return [c for c in COUNTRIES if c.code in seen]

    def routers_in(self, country_code: str) -> List[Household]:
        """Households deployed in one country.

        Materializes only the lookup shards that country's contiguous
        run of homes occupies, not the whole plan.
        """
        code = country_code.upper()
        return [self._home_at(index)
                for index, config in enumerate(self.plan.household_configs)
                if config.country.code == code]


def _scaled_count(count: int, scale: float) -> int:
    """Scale a per-country router count, keeping every country populated.

    Rounds half-up explicitly: ``round()`` would round half-to-even
    (banker's rounding), making e.g. a 10-router cohort at scale 0.25
    shrink to 2 homes while an 18-router cohort at the same scale keeps
    its expected 4.5 → 4 — cohort sizes should grow monotonically with
    the unrounded product instead.
    """
    scaled = math.floor(count * scale + 0.5)
    if scale >= 1.0:
        return scaled
    return max(1, scaled)


def build_deployment_plan(
        config: Optional[DeploymentConfig] = None) -> DeploymentPlan:
    """Draw the deployment described by *config* without materializing it.

    All membership randomness (appliance stratification, Uptime/Devices
    drops, WiFi subset) is consumed here, in a fixed order, from the
    ``"membership"`` stream — so the plan is deterministic in the seed and
    identical no matter how it is later sharded.
    """
    config = config or DeploymentConfig()
    seeds = SeedHierarchy(config.seed)
    windows = config.windows
    span = windows.span

    selected = [c for c in COUNTRIES
                if config.countries is None
                or c.code in tuple(code.upper() for code in config.countries)]
    if not selected:
        raise ValueError("no countries selected for the deployment")

    membership_rng = seeds.generator("membership")

    # -- traffic consents: US homes, with saturators and low-activity homes.
    us_count = next((_scaled_count(c.routers, config.router_scale)
                     for c in selected if c.code == "US"), 0)
    consents = min(config.traffic_consents, us_count)
    consent_indices = set(range(consents))  # first N US homes consent
    low_activity = set(range(max(consents - config.low_activity_consents, 0),
                             consents))
    saturator_modes: Dict[int, str] = {}
    active_consents = sorted(consent_indices - low_activity)
    if len(active_consents) >= 2:
        saturator_modes[active_consents[0]] = "continuous"
        saturator_modes[active_consents[1]] = "diurnal"

    # -- international consents: round-robin over the largest non-US
    #    cohorts (GB, IN, ZA, ...), one home per country per round.
    international: Dict[str, Set[int]] = {}
    if config.international_consents > 0:
        ordered = sorted((c for c in selected if c.code != "US"),
                         key=lambda c: -c.routers)
        remaining = config.international_consents
        round_index = 0
        while remaining > 0 and ordered:
            progressed = False
            for country in ordered:
                count = _scaled_count(country.routers, config.router_scale)
                if round_index < count and remaining > 0:
                    international.setdefault(country.code,
                                             set()).add(round_index)
                    remaining -= 1
                    progressed = True
            if not progressed:
                break
            round_index += 1

    household_configs: List[HouseholdConfig] = []
    for country in selected:
        count = _scaled_count(country.routers, config.router_scale)
        # Stratify appliance-mode homes: each country gets exactly its
        # calibrated share (rounded), so small cohorts cannot drift into
        # majority-appliance by Bernoulli luck.
        n_appliance = int(round(count * country.behavior.appliance_probability))
        if n_appliance:
            appliance_indices = set(membership_rng.choice(
                count, size=n_appliance, replace=False).tolist())
        else:
            appliance_indices = set()
        for index in range(count):
            router_id = f"{country.code}{index:03d}"
            is_us = country.code == "US"
            consent = (is_us and index in consent_indices) or \
                index in international.get(country.code, set())
            household_configs.append(HouseholdConfig(
                router_id=router_id,
                country=country,
                span=span,
                traffic_consent=consent,
                uplink_saturator=saturator_modes.get(index) if is_us else None,
                traffic_intensity=(0.002 if (is_us and index in low_activity)
                                   else 1.0),
                appliance_hint=index in appliance_indices,
            ))

    all_ids = [config_.router_id for config_ in household_configs]

    # -- Uptime/Devices: drop ~10% of homes, matching 113-of-126.
    drop_fraction = 13 / 126
    n_drop = int(round(len(all_ids) * drop_fraction))
    dropped = set(membership_rng.choice(all_ids, size=n_drop, replace=False)
                  .tolist()) if n_drop else set()
    uptime_routers = frozenset(rid for rid in all_ids if rid not in dropped)

    # -- WiFi: exclude four countries, then keep ~93/122 of the rest.
    wifi_candidates = [config_.router_id for config_ in household_configs
                       if config_.country.code not in _WIFI_EXCLUDED_COUNTRIES]
    keep_fraction = 93 / 122
    n_keep = max(1, int(round(len(wifi_candidates) * keep_fraction)))
    wifi_routers = frozenset(membership_rng.choice(
        wifi_candidates, size=min(n_keep, len(wifi_candidates)),
        replace=False).tolist())

    traffic_routers = frozenset(
        config_.router_id for config_ in household_configs
        if config_.traffic_consent)

    return DeploymentPlan(
        seed=config.seed,
        windows=windows,
        household_configs=tuple(household_configs),
        uptime_routers=uptime_routers,
        devices_routers=uptime_routers,
        wifi_routers=wifi_routers,
        traffic_routers=traffic_routers,
    )


def build_deployment(config: Optional[DeploymentConfig] = None) -> Deployment:
    """Instantiate the deployment described by *config* (deterministic).

    Returns a lazy :class:`Deployment` view; households materialize on
    first access to :attr:`Deployment.households`.
    """
    return Deployment(build_deployment_plan(config))
