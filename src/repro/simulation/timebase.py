"""The simulated calendar: epochs, local time, and the study windows.

All simulator and firmware timestamps are Unix epoch seconds (UTC).  Each
household carries a timezone offset so diurnal behaviour happens in *local*
time — the paper's Figure 6 timelines are plotted in the household's zone,
and the weekday/weekend split of Figure 13 is local too.

The default windows match Table 2 of the paper:

==========  =====================================
Heartbeats  2012-10-01 .. 2013-04-15
Capacity    2013-04-01 .. 2013-04-15
Uptime      2013-03-06 .. 2013-04-15
Devices     2013-03-06 .. 2013-04-15
WiFi        2012-11-01 .. 2012-11-15
Traffic     2013-04-01 .. 2013-04-15
==========  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Tuple

import numpy as np

MINUTE = 60
HOUR = 3600
DAY = 86400
WEEK = 7 * DAY

#: Day-of-week index of the Unix epoch (1970-01-01 was a Thursday).
_EPOCH_WEEKDAY = 3


def utc(year: int, month: int, day: int, hour: int = 0, minute: int = 0) -> float:
    """Epoch seconds for a UTC calendar instant."""
    return datetime(year, month, day, hour, minute, tzinfo=timezone.utc).timestamp()


@dataclass(frozen=True)
class StudyWindows:
    """Start/end epochs for each data set's collection window (Table 2)."""

    heartbeats: Tuple[float, float] = (utc(2012, 10, 1), utc(2013, 4, 15))
    uptime: Tuple[float, float] = (utc(2013, 3, 6), utc(2013, 4, 15))
    capacity: Tuple[float, float] = (utc(2013, 4, 1), utc(2013, 4, 15))
    devices: Tuple[float, float] = (utc(2013, 3, 6), utc(2013, 4, 15))
    wifi: Tuple[float, float] = (utc(2012, 11, 1), utc(2012, 11, 15))
    traffic: Tuple[float, float] = (utc(2013, 4, 1), utc(2013, 4, 15))

    def scaled(self, fraction: float) -> "StudyWindows":
        """Shrink every window to its first *fraction* — for fast tests.

        Each window keeps its original start; the end moves so the window is
        ``fraction`` of its paper length (but never below one day).
        """
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction!r}")

        def shrink(window: Tuple[float, float]) -> Tuple[float, float]:
            start, end = window
            length = max((end - start) * fraction, DAY)
            return (start, start + length)

        return StudyWindows(
            heartbeats=shrink(self.heartbeats),
            uptime=shrink(self.uptime),
            capacity=shrink(self.capacity),
            devices=shrink(self.devices),
            wifi=shrink(self.wifi),
            traffic=shrink(self.traffic),
        )

    @property
    def span(self) -> Tuple[float, float]:
        """The earliest start and latest end across all windows."""
        windows = (self.heartbeats, self.uptime, self.capacity,
                   self.devices, self.wifi, self.traffic)
        return (min(w[0] for w in windows), max(w[1] for w in windows))


@dataclass(frozen=True)
class StudyCalendar:
    """Local-time arithmetic for one household.

    ``tz_offset_hours`` is a fixed UTC offset; the simulator does not model
    daylight-saving transitions (their effect on the paper's hour-of-day
    statistics is a sub-hour shift that does not change any conclusion).
    """

    tz_offset_hours: float = 0.0
    _offset: float = field(init=False, repr=False, default=0.0)

    def __post_init__(self) -> None:
        if not -12 <= self.tz_offset_hours <= 14:
            raise ValueError(f"implausible tz offset: {self.tz_offset_hours!r}")
        object.__setattr__(self, "_offset", self.tz_offset_hours * HOUR)

    def local_seconds(self, epoch: float) -> float:
        """Epoch shifted into local wall-clock seconds."""
        return epoch + self._offset

    def hour_of_day(self, epoch: float) -> int:
        """Local hour of day, 0..23."""
        return int(self.local_seconds(epoch) % DAY // HOUR)

    def day_of_week(self, epoch: float) -> int:
        """Local day of week: 0=Monday .. 6=Sunday."""
        days = int(self.local_seconds(epoch) // DAY)
        return (days + _EPOCH_WEEKDAY) % 7

    def is_weekend(self, epoch: float) -> bool:
        """True on local Saturday or Sunday."""
        return self.day_of_week(epoch) >= 5

    def hour_of_day_many(self, epochs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`hour_of_day` (same values element-wise)."""
        local = np.asarray(epochs, dtype=np.float64) + self._offset
        return (local % DAY // HOUR).astype(np.int64)

    def is_weekend_many(self, epochs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`is_weekend` returning a boolean array."""
        local = np.asarray(epochs, dtype=np.float64) + self._offset
        days = (local // DAY).astype(np.int64)
        return (days + _EPOCH_WEEKDAY) % 7 >= 5

    def local_midnight_before(self, epoch: float) -> float:
        """Epoch of the most recent local midnight at or before *epoch*."""
        local = self.local_seconds(epoch)
        return local - (local % DAY) - self._offset

    def fraction_of_day(self, epoch: float) -> float:
        """Local time of day as a fraction in [0, 1)."""
        return (self.local_seconds(epoch) % DAY) / DAY
