"""repro.telemetry — the campaign observability subsystem.

The original BISmark deployment lived or died by its heartbeat dashboard;
this package is our equivalent for simulated campaigns at scale.  Five
pieces, one activation model (mirroring :mod:`repro.perf`: process-global,
near-free when disabled, never touching RNG state):

* :mod:`repro.telemetry.metrics` — counters/gauges/histograms registry
  with per-shard drain/merge across worker processes;
* :mod:`repro.telemetry.events` — structured JSONL campaign event log;
* :mod:`repro.telemetry.manifest` — the run manifest that makes any
  artifact directory reproducible (config, seed, versions, git rev,
  wall time, final digest);
* :mod:`repro.telemetry.health` — deployment-health report: cohort
  coverage, dead/flapping routers, per-dataset loss accounting;
* :mod:`repro.telemetry.export` — Prometheus textfile + JSON exporters.

:class:`TelemetrySession` ties them together for one run::

    from repro import StudyConfig, run_study

    result = run_study(StudyConfig(router_scale=0.2, duration_scale=0.05),
                       telemetry_dir="artifacts/run-1")
    # artifacts/run-1/ now holds metrics.prom, metrics.json,
    # events.jsonl, manifest.json, health.json, health.txt

Determinism guarantee: a telemetry-enabled run collects bitwise-identical
data to a telemetry-off run (``study_digest``-pinned in the tier-1
suite).  Telemetry observes the campaign; it never steers it.
"""

from __future__ import annotations

import logging
import time
from pathlib import Path
from typing import List, Optional, Union

from repro import perf
from repro.telemetry import events, metrics
from repro.telemetry.export import (
    parse_prometheus,
    render_json,
    render_prometheus,
    write_metric_files,
)
from repro.telemetry.health import (
    HealthReport,
    build_health_report,
    format_health_report,
)
from repro.telemetry.manifest import (
    ManifestError,
    RunManifest,
    build_manifest,
    load_manifest,
    validate_manifest,
    write_manifest,
)
from repro.telemetry.metrics import MetricsRegistry

logger = logging.getLogger(__name__)

__all__ = [
    "TelemetrySession",
    "MetricsRegistry",
    "HealthReport",
    "build_health_report",
    "format_health_report",
    "RunManifest",
    "ManifestError",
    "build_manifest",
    "write_manifest",
    "load_manifest",
    "validate_manifest",
    "render_prometheus",
    "render_json",
    "parse_prometheus",
    "write_metric_files",
    "events",
    "metrics",
]


class TelemetrySession:
    """One campaign's telemetry: activates the sinks, writes the artifacts.

    Creating a session enables the metrics registry, opens the JSONL
    event log under *directory*, and enables :mod:`repro.perf` so stage
    timers flow into the shared sink.  :meth:`finalize` drains everything
    into the artifact directory; :meth:`close` deactivates the sinks
    (perf is left enabled so an outer ``--profile`` can still read it).
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._started = time.time()
        self._t0 = time.perf_counter()
        self.registry = metrics.enable()
        self.event_log = events.enable(self.directory / "events.jsonl")
        perf.enable()
        self.manifest: Optional[RunManifest] = None
        self.health: Optional[HealthReport] = None
        logger.info("telemetry session started: %s", self.directory)

    def wall_seconds(self) -> float:
        """Wall-clock seconds since the session started."""
        return time.perf_counter() - self._t0

    def finalize(self, config, data, workers: int = 1,
                 trace_summary=None) -> RunManifest:
        """Write every artifact for a finished campaign.

        *config* is the :class:`~repro.core.pipeline.StudyConfig` (or any
        dataclass/dict) that produced *data*.  Computes the final
        ``study_digest`` — the one part of telemetry that is not free,
        and the reason it runs once here rather than during collection.
        *trace_summary* (a :class:`repro.trace.TraceSummary`) adds the
        Timeline section to the health report when the run was traced.
        """
        from repro.core.datasets import study_digest

        wall = self.wall_seconds()
        digest = study_digest(data)

        metrics.merge_perf(perf.snapshot())
        metrics.set_gauge("campaign_routers", len(data.routers))
        metrics.set_gauge("campaign_wall_seconds", round(wall, 6))
        written: List[Path] = write_metric_files(
            self.directory, metrics.snapshot())

        self.health = build_health_report(
            data, metrics_snapshot=metrics.snapshot(),
            trace_summary=trace_summary)
        health_json = self.directory / "health.json"
        health_json.write_text(self.health.to_json())
        health_txt = self.directory / "health.txt"
        health_txt.write_text(format_health_report(self.health) + "\n")
        written += [health_json, health_txt]

        events.emit("campaign_finished", routers=len(data.routers),
                    digest=digest, wall_seconds=round(wall, 3),
                    dead_routers=len(self.health.dead_routers))
        self.event_log.flush()
        written.append(self.directory / "events.jsonl")

        seed = getattr(config, "seed", 0)
        self.manifest = build_manifest(
            config=config, seed=seed, digest=digest,
            routers=len(data.routers), wall_seconds=wall, workers=workers,
            artifacts=sorted(p.name for p in written))
        write_manifest(self.directory / "manifest.json", self.manifest)
        logger.info("telemetry artifacts written to %s (digest %s)",
                    self.directory, digest[:16])
        return self.manifest

    def close(self) -> None:
        """Deactivate the event log and metrics registry.

        Only sinks this session activated are torn down; ``repro.perf``
        stays enabled because ``--profile`` owns its lifecycle.
        """
        if events.active() is self.event_log:
            events.disable()
        else:  # pragma: no cover - a nested session replaced the log
            self.event_log.close()
        if metrics.active() is self.registry:
            metrics.disable()

    def __enter__(self) -> "TelemetrySession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
