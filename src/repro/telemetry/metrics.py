"""Process-local metrics registry: counters, gauges, histograms.

The registry is the campaign's one metrics sink.  The engine, collection
server, record stores, and firmware collectors record into it through the
module-level helpers (:func:`inc`, :func:`set_gauge`, :func:`observe`),
which follow the :mod:`repro.perf` activation pattern:

* **Near-zero overhead when disabled.**  Every helper starts with one
  global read and one ``is None`` comparison — no allocation, no labels
  canonicalization — so instrumented hot paths stay free in ordinary
  (telemetry-off) runs.
* **Deterministic data flow.**  The registry holds plain dicts and never
  touches any RNG; recording metrics cannot perturb ``study_digest``.
* **Multiprocessing-friendly.**  Shard workers enable a worker-local
  registry, :func:`drain` a picklable snapshot per shard, and the parent
  :func:`merge`\\ s the snapshots — mirroring ``repro.perf``'s per-shard
  drain/merge so metrics aggregate across every worker process.

Metric identity is ``(name, labels)``; labels are canonicalized to a
sorted tuple of ``(key, value)`` pairs so ``inc("x", dataset="flows")``
and ``inc("x", **{"dataset": "flows"})`` hit the same series.  Histograms
use fixed bucket bounds chosen at first observation (default:
:data:`DURATION_BUCKETS`, tuned for shard/stage wall times).

The metric name catalogue lives in DESIGN.md §8; exporters for the
Prometheus text format and JSON are in :mod:`repro.telemetry.export`.
"""

from __future__ import annotations

import bisect
from typing import Dict, Optional, Tuple

#: Histogram bucket upper bounds (seconds) used when ``observe`` is not
#: given explicit bounds; the implicit +Inf bucket is always appended.
DURATION_BUCKETS: Tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0)

#: A metric series key: (name, ((label, value), ...)).
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, str]) -> MetricKey:
    if not labels:
        return (name, ())
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


class MetricsRegistry:
    """Accumulates one process's counters, gauges, and histograms."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        #: key -> monotonically increasing total (int or float).
        self.counters: Dict[MetricKey, float] = {}
        #: key -> last set value.
        self.gauges: Dict[MetricKey, float] = {}
        #: key -> {"bounds": tuple, "counts": list, "sum": float,
        #:         "count": int}; counts[i] is observations <= bounds[i],
        #: counts[-1] the +Inf bucket (cumulative form is exporter's job).
        self.histograms: Dict[MetricKey, dict] = {}

    # -- recording ---------------------------------------------------------------

    def inc(self, name: str, n: float = 1, **labels: str) -> None:
        """Add *n* to a counter series (creates it at zero first)."""
        key = _key(name, labels)
        self.counters[key] = self.counters.get(key, 0) + n

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        """Set a gauge series to *value* (last write wins)."""
        self.gauges[_key(name, labels)] = value

    def observe(self, name: str, value: float,
                buckets: Optional[Tuple[float, ...]] = None,
                **labels: str) -> None:
        """Record one observation into a histogram series.

        *buckets* fixes the series' bounds on first observation; later
        observations must not pass conflicting bounds.
        """
        key = _key(name, labels)
        hist = self.histograms.get(key)
        if hist is None:
            bounds = tuple(buckets) if buckets else DURATION_BUCKETS
            if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
                raise ValueError("histogram bounds must strictly increase")
            hist = {"bounds": bounds, "counts": [0] * (len(bounds) + 1),
                    "sum": 0.0, "count": 0}
            self.histograms[key] = hist
        elif buckets and tuple(buckets) != hist["bounds"]:
            raise ValueError(
                f"conflicting bucket bounds for {name!r}")
        hist["counts"][bisect.bisect_left(hist["bounds"], value)] += 1
        hist["sum"] += value
        hist["count"] += 1

    # -- aggregation -------------------------------------------------------------

    def snapshot(self) -> dict:
        """A picklable deep copy of everything recorded so far."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                key: {"bounds": hist["bounds"],
                      "counts": list(hist["counts"]),
                      "sum": hist["sum"], "count": hist["count"]}
                for key, hist in self.histograms.items()
            },
        }

    def merge(self, snap: dict) -> None:
        """Fold a :func:`snapshot`/:func:`drain` dict into this registry.

        Counters and histogram counts add; gauges take the snapshot's
        value (a drained worker gauge is newer than the parent's).
        """
        for key, value in snap.get("counters", {}).items():
            self.counters[key] = self.counters.get(key, 0) + value
        for key, value in snap.get("gauges", {}).items():
            self.gauges[key] = value
        for key, theirs in snap.get("histograms", {}).items():
            mine = self.histograms.get(key)
            if mine is None:
                self.histograms[key] = {
                    "bounds": tuple(theirs["bounds"]),
                    "counts": list(theirs["counts"]),
                    "sum": theirs["sum"], "count": theirs["count"]}
                continue
            if tuple(theirs["bounds"]) != mine["bounds"]:
                raise ValueError(
                    f"cannot merge histogram {key[0]!r}: bucket bounds differ")
            mine["counts"] = [a + b for a, b
                              in zip(mine["counts"], theirs["counts"])]
            mine["sum"] += theirs["sum"]
            mine["count"] += theirs["count"]

    def clear(self) -> None:
        """Forget everything recorded (the registry stays usable)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()


_ACTIVE: Optional[MetricsRegistry] = None


def enable() -> MetricsRegistry:
    """Activate metrics collection (idempotent); returns the registry."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = MetricsRegistry()
    return _ACTIVE


def disable() -> Optional[MetricsRegistry]:
    """Deactivate collection; returns the registry that was active."""
    global _ACTIVE
    registry, _ACTIVE = _ACTIVE, None
    return registry


def is_enabled() -> bool:
    """True while a registry is active in this process."""
    return _ACTIVE is not None


def active() -> Optional[MetricsRegistry]:
    """The active registry, or None when collection is disabled."""
    return _ACTIVE


def inc(name: str, n: float = 1, **labels: str) -> None:
    """Bump a counter on the active registry (no-op when disabled)."""
    registry = _ACTIVE
    if registry is not None:
        registry.inc(name, n, **labels)


def set_gauge(name: str, value: float, **labels: str) -> None:
    """Set a gauge on the active registry (no-op when disabled)."""
    registry = _ACTIVE
    if registry is not None:
        registry.set_gauge(name, value, **labels)


def observe(name: str, value: float,
            buckets: Optional[Tuple[float, ...]] = None,
            **labels: str) -> None:
    """Observe into a histogram on the active registry (no-op disabled)."""
    registry = _ACTIVE
    if registry is not None:
        registry.observe(name, value, buckets=buckets, **labels)


def snapshot() -> dict:
    """Picklable copy of the active registry's data (empty if disabled)."""
    registry = _ACTIVE
    if registry is None:
        return {"counters": {}, "gauges": {}, "histograms": {}}
    return registry.snapshot()


def drain() -> dict:
    """Snapshot the active registry and clear it (per-shard shipping)."""
    registry = _ACTIVE
    if registry is None:
        return {"counters": {}, "gauges": {}, "histograms": {}}
    snap = registry.snapshot()
    registry.clear()
    return snap


def merge(snap: dict) -> None:
    """Fold a worker snapshot into the active registry (no-op disabled)."""
    registry = _ACTIVE
    if registry is not None:
        registry.merge(snap)


def merge_perf(perf_snapshot: dict) -> None:
    """Promote a :mod:`repro.perf` snapshot into the active registry.

    Stage wall times become ``stage_seconds_total{stage=}`` /
    ``stage_calls_total{stage=}`` counters and perf event counters become
    ``<name>_total`` counters, so ``--profile`` and telemetry exports
    share one sink without double-instrumenting the hot path.
    """
    registry = _ACTIVE
    if registry is None:
        return
    for stage, secs in perf_snapshot.get("seconds", {}).items():
        registry.inc("stage_seconds_total", secs, stage=stage)
    for stage, calls in perf_snapshot.get("calls", {}).items():
        registry.inc("stage_calls_total", calls, stage=stage)
    for name, n in perf_snapshot.get("counters", {}).items():
        registry.inc(f"{name}_total", n)
