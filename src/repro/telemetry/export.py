"""Metrics exporters: Prometheus text format and JSON.

A campaign's metrics registry is drained into two sibling files in the
telemetry directory:

* ``metrics.prom`` — the Prometheus *text exposition format* (textfile
  collector flavour), so a node_exporter can scrape campaign runs with
  zero integration code;
* ``metrics.json`` — the same series as structured JSON for ad-hoc
  tooling and the golden-file tests.

:func:`parse_prometheus` is a small, strict parser for the subset we
emit; CI's telemetry smoke job uses it to prove fresh artifacts parse.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.telemetry.metrics import MetricKey

#: HELP text for the catalogued metrics (DESIGN.md §8); exporters fall
#: back to a generic line for uncatalogued names.
METRIC_HELP: Dict[str, str] = {
    "records_ingested_total": "Records accepted by the collection server.",
    "routers_ingested_total": "Router uploads ingested by the server.",
    "routers_simulated_total": "Households simulated by shard workers.",
    "heartbeats_sent_total": "Heartbeats routers transmitted.",
    "heartbeats_delivered_total": "Heartbeats that survived the path.",
    "heartbeats_dropped_total": "Heartbeats lost on the collection path.",
    "ingest_rejections_total": "Uploads rejected by store consistency checks.",
    "store_spills_total": "Record-store buffer spills to disk.",
    "spilled_records_total": "Records written to spill runs.",
    "shards_completed_total": "Engine shards that finished.",
    "shard_seconds": "Wall-time of one shard's simulate+collect.",
    "stage_seconds_total": "Per-stage wall seconds (promoted from repro.perf).",
    "stage_calls_total": "Per-stage call counts (promoted from repro.perf).",
    "campaign_routers": "Homes in the finished campaign.",
    "campaign_wall_seconds": "Wall-clock duration of the campaign run.",
    "shard_retries_total": "Shard attempts retried after a failure.",
    "shard_timeouts_total": "Shards resubmitted as stragglers.",
    "pool_rebuilds_total": "Worker-pool rebuilds after BrokenProcessPool.",
    "checkpoints_written_total": "Campaign checkpoint manifests written.",
    "campaign_resumes_total": "Campaigns resumed from a checkpoint.",
    # Network ingest service (repro.collection.netserve).
    "heartbeats_rejected_total":
        "Heartbeats in re-uploads the store rejected as duplicates.",
    "net_connections_total": "TCP connections the ingest daemon accepted.",
    "net_connections_open": "Ingest daemon connections currently open.",
    "net_frames_total": "Protocol frames the ingest daemon decoded.",
    "net_bytes_total": "Wire bytes the ingest daemon read.",
    "net_frame_errors_total": "Malformed frames that closed a connection.",
    "net_midframe_disconnects_total":
        "Connections lost in the middle of a frame.",
    "uploads_stored_total": "Uploads durably ingested by the daemon.",
    "uploads_duplicate_total": "Retried uploads answered as duplicates.",
    "uploads_shed_total": "Uploads shed with a RETRY-AFTER response.",
    "uploads_error_total": "Uploads rejected by validation or the store.",
    "ingest_queue_depth": "Uploads queued for ordered ingest.",
    "ingest_queue_peak_depth": "High-water mark of the ingest queue.",
}

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LINE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _format_labels(labels: Tuple[Tuple[str, str], ...],
                   extra: Optional[Tuple[Tuple[str, str], ...]] = None) -> str:
    pairs = labels + (extra or ())
    if not pairs:
        return ""
    inner = ",".join(
        '{}="{}"'.format(k, str(v).replace("\\", r"\\").replace('"', r'\"'))
        for k, v in pairs)
    return "{" + inner + "}"


def _header(name: str, kind: str, out: List[str]) -> None:
    help_text = METRIC_HELP.get(name, f"repro metric {name}.")
    out.append(f"# HELP {name} {help_text}")
    out.append(f"# TYPE {name} {kind}")


def render_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot in the Prometheus text format.

    Series are grouped per metric name with HELP/TYPE headers and sorted
    by name then labels, so output is deterministic for a given registry
    state (golden-file friendly).
    """
    def group(series: Dict[MetricKey, float]):
        grouped: Dict[str, List[Tuple[MetricKey, object]]] = {}
        for key in sorted(series):
            grouped.setdefault(key[0], []).append((key, series[key]))
        return grouped

    lines: List[str] = []
    for kind, series in (("counter", snapshot.get("counters", {})),
                         ("gauge", snapshot.get("gauges", {}))):
        for name, entries in sorted(group(series).items()):
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid metric name {name!r}")
            _header(name, kind, lines)
            for (_, labels), value in entries:
                lines.append(
                    f"{name}{_format_labels(labels)} {_format_value(value)}")

    histograms = snapshot.get("histograms", {})
    grouped_hist: Dict[str, List[Tuple[MetricKey, dict]]] = {}
    for key in sorted(histograms):
        grouped_hist.setdefault(key[0], []).append((key, histograms[key]))
    for name, entries in sorted(grouped_hist.items()):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        _header(name, "histogram", lines)
        for (_, labels), hist in entries:
            cumulative = 0
            for bound, count in zip(hist["bounds"], hist["counts"]):
                cumulative += count
                lines.append("{}_bucket{} {}".format(
                    name, _format_labels(labels, (("le", _format_value(
                        float(bound))),)), cumulative))
            cumulative += hist["counts"][-1]
            lines.append("{}_bucket{} {}".format(
                name, _format_labels(labels, (("le", "+Inf"),)), cumulative))
            lines.append("{}_sum{} {}".format(
                name, _format_labels(labels), _format_value(hist["sum"])))
            lines.append("{}_count{} {}".format(
                name, _format_labels(labels), cumulative))
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(snapshot: dict) -> str:
    """Render a registry snapshot as structured, sorted JSON."""

    def series(entries: Dict[MetricKey, float]) -> List[dict]:
        return [{"name": name, "labels": dict(labels), "value": value}
                for (name, labels), value in sorted(entries.items())]

    payload = {
        "counters": series(snapshot.get("counters", {})),
        "gauges": series(snapshot.get("gauges", {})),
        "histograms": [
            {"name": name, "labels": dict(labels),
             "buckets": [[bound, count] for bound, count
                         in zip(list(hist["bounds"]) + ["+Inf"],
                                hist["counts"])],
             "sum": hist["sum"], "count": hist["count"]}
            for (name, labels), hist
            in sorted(snapshot.get("histograms", {}).items())
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def write_metric_files(directory: Union[str, Path],
                       snapshot: dict) -> List[Path]:
    """Write ``metrics.prom`` and ``metrics.json`` under *directory*."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    prom = root / "metrics.prom"
    prom.write_text(render_prometheus(snapshot))
    as_json = root / "metrics.json"
    as_json.write_text(render_json(snapshot))
    return [prom, as_json]


def parse_prometheus(text: str) -> Dict[MetricKey, float]:
    """Parse Prometheus text back to ``{(name, labels): value}``.

    Strict for the subset :func:`render_prometheus` emits — any sample
    line that does not match raises ``ValueError``, which is exactly what
    the CI smoke job wants (a malformed textfile must fail the build).
    """
    samples: Dict[MetricKey, float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _LINE_RE.match(line)
        if not match:
            raise ValueError(f"unparseable metric line: {raw!r}")
        labels_text = match.group("labels") or ""
        labels = tuple(sorted(
            (k, v.replace(r'\"', '"').replace(r"\\", "\\"))
            for k, v in _LABEL_RE.findall(labels_text)))
        value_text = match.group("value")
        value = math.inf if value_text == "+Inf" else float(value_text)
        samples[(match.group("name"), labels)] = value
    return samples
