"""Run manifests: everything needed to reproduce a campaign artifact.

The original study's datasets are only usable because each release
recorded *how* it was produced; our engine's determinism contract makes
that cheap — a run is fully described by its config + seed + code
revision.  :class:`RunManifest` captures exactly that, plus the wall
times and the final ``study_digest`` so an artifact directory is
self-certifying: re-running the recorded config must reproduce the
recorded digest bit for bit.

The manifest is plain JSON (``manifest.json`` in the telemetry
directory); :func:`validate_manifest` is the schema check CI's telemetry
smoke job runs against fresh artifacts.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Bump when manifest fields change incompatibly.
MANIFEST_SCHEMA = 1

#: Required top-level keys and their types (validation contract).
_REQUIRED: Dict[str, type] = {
    "schema": int,
    "tool": str,
    "created_utc": str,
    "seed": int,
    "config": dict,
    "versions": dict,
    "wall_seconds": float,
    "digest": str,
    "routers": int,
}


class ManifestError(ValueError):
    """A manifest failed validation; ``problems`` lists every issue."""

    def __init__(self, problems: List[str]):
        super().__init__("; ".join(problems))
        self.problems = problems


@dataclass(frozen=True)
class RunManifest:
    """One campaign run's reproducibility record."""

    seed: int
    config: Dict[str, Any]
    digest: str
    routers: int
    wall_seconds: float
    versions: Dict[str, str] = field(default_factory=dict)
    git_rev: Optional[str] = None
    platform: str = ""
    created_utc: str = ""
    workers: int = 1
    artifacts: List[str] = field(default_factory=list)
    schema: int = MANIFEST_SCHEMA
    tool: str = "repro"

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunManifest":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})


def collect_versions() -> Dict[str, str]:
    """Interpreter and package versions that could change the output."""
    import numpy

    from repro import __version__

    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "repro": __version__,
    }


def git_revision(cwd: Union[str, Path, None] = None) -> Optional[str]:
    """The repo's HEAD commit, or None outside a git checkout."""
    where = Path(cwd) if cwd is not None else Path(__file__).parent
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=where,
            capture_output=True, text=True, timeout=5, check=False)
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


def config_to_dict(config: Any) -> Dict[str, Any]:
    """Flatten a :class:`~repro.core.pipeline.StudyConfig` to plain JSON."""
    if dataclasses.is_dataclass(config):
        return json.loads(json.dumps(dataclasses.asdict(config),
                                     default=str))
    return dict(config)


def build_manifest(config: Any, seed: int, digest: str, routers: int,
                   wall_seconds: float, workers: int = 1,
                   artifacts: Optional[List[str]] = None) -> RunManifest:
    """Assemble the manifest for one finished run."""
    return RunManifest(
        seed=seed,
        config=config_to_dict(config),
        digest=digest,
        routers=routers,
        wall_seconds=float(wall_seconds),
        versions=collect_versions(),
        git_rev=git_revision(),
        platform=f"{platform.system()}-{platform.machine()}"
                 f"-py{sys.version_info.major}.{sys.version_info.minor}",
        created_utc=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        workers=workers,
        artifacts=list(artifacts or []),
    )


def write_manifest(path: Union[str, Path], manifest: RunManifest) -> Path:
    """Write *manifest* as indented JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest.to_dict(), indent=2, sort_keys=True))
    return path


def load_manifest(path: Union[str, Path]) -> RunManifest:
    """Load and validate a manifest written by :func:`write_manifest`."""
    payload = json.loads(Path(path).read_text())
    validate_manifest(payload)
    return RunManifest.from_dict(payload)


def validate_manifest(payload: Dict[str, Any]) -> None:
    """Raise :class:`ManifestError` unless *payload* is a valid manifest."""
    problems: List[str] = []
    for key, kind in _REQUIRED.items():
        if key not in payload:
            problems.append(f"missing key {key!r}")
        elif kind is float and isinstance(payload[key], int):
            continue  # JSON round-trips whole floats as ints; accept both
        elif not isinstance(payload[key], kind):
            problems.append(
                f"key {key!r} must be {kind.__name__}, "
                f"got {type(payload[key]).__name__}")
    if not problems:
        if payload["schema"] > MANIFEST_SCHEMA:
            problems.append(
                f"schema {payload['schema']} is newer than supported "
                f"{MANIFEST_SCHEMA}")
        if len(payload["digest"]) != 64:
            problems.append("digest must be a 64-hex-char sha256")
        if payload["routers"] < 0 or payload["wall_seconds"] < 0:
            problems.append("routers and wall_seconds must be >= 0")
    if problems:
        raise ManifestError(problems)
