"""Deployment-health reports: the operator's view of a campaign.

The paper's Heartbeat dataset existed because the BISmark operators
needed a dashboard answering three questions about 126 scattered
gateways: *who is alive*, *who is losing data*, and *is any country
cohort going dark*.  :func:`build_health_report` computes that view from
a collected :class:`~repro.core.datasets.StudyData`:

* **per-country coverage** — deployed vs. reporting routers per cohort;
* **dead routers** — never delivered a heartbeat, or silent through the
  tail of the collection window (default: the final 10%);
* **flapping routers** — downtime events at a rate no residential link
  should produce (default ≥ 3/observed day), the classic symptom of a
  failing power supply or an unplugging-prone household;
* **per-dataset accounting** — record counts plus the heartbeat loss
  rate from the collection server's sent/delivered tally
  (:attr:`StudyData.heartbeat_delivery`); the reliable-transport
  datasets (uploaded in batches, retried) report zero loss by design.

The report is pure analysis — reading it never mutates the data and
never touches RNG state.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import availability
from repro.core.datasets import StudyData

#: A router is "dead" if silent for this final fraction of the window.
DEAD_TAIL_FRACTION = 0.10

#: A router is "flapping" above this many downtimes per observed day.
FLAPPING_RATE_PER_DAY = 3.0

#: Engine-recovery counters surfaced in the report when a metrics
#: snapshot is provided (see :mod:`repro.collection.engine`).
FAULT_TOLERANCE_METRICS = (
    "shard_retries_total",
    "shard_timeouts_total",
    "pool_rebuilds_total",
    "checkpoints_written_total",
    "campaign_resumes_total",
)

#: Network ingest daemon counters surfaced in the report when a metrics
#: snapshot is provided (see :mod:`repro.collection.netserve`).
INGEST_SERVICE_METRICS = (
    "net_connections_total",
    "net_frames_total",
    "net_frame_errors_total",
    "net_midframe_disconnects_total",
    "uploads_stored_total",
    "uploads_duplicate_total",
    "uploads_shed_total",
    "uploads_error_total",
    "heartbeats_rejected_total",
)


@dataclass(frozen=True)
class RouterHealth:
    """One gateway's delivery and availability picture."""

    router_id: str
    country_code: str
    heartbeats_sent: Optional[int]
    heartbeats_delivered: int
    #: Heartbeat loss fraction, None when the sent tally is unknown
    #: (e.g. an archive exported before loss accounting existed).
    loss_rate: Optional[float]
    availability: Optional[float]
    downtimes_per_day: Optional[float]
    last_seen: Optional[float]
    status: str  # "ok" | "dead" | "flapping"


@dataclass(frozen=True)
class CountryCoverage:
    """One country cohort's deployed-vs-reporting coverage."""

    country_code: str
    deployed: int
    reporting: int

    @property
    def coverage(self) -> float:
        return self.reporting / self.deployed if self.deployed else 0.0


@dataclass(frozen=True)
class HealthReport:
    """The full deployment-health picture for one campaign."""

    window: Tuple[float, float]
    countries: Tuple[CountryCoverage, ...]
    routers: Tuple[RouterHealth, ...]
    dataset_records: Dict[str, int] = field(default_factory=dict)
    heartbeat_loss_rate: Optional[float] = None
    #: Engine recovery counters (retries, timeouts, pool rebuilds,
    #: checkpoints, resumes) — empty when no metrics snapshot was given.
    fault_tolerance: Dict[str, float] = field(default_factory=dict)
    #: Network ingest daemon counters (connections, frames, sheds,
    #: duplicates) — empty when the campaign never ran a daemon or no
    #: metrics snapshot was given.
    ingest_service: Dict[str, float] = field(default_factory=dict)
    #: :meth:`repro.trace.TraceSummary.to_dict` of the campaign's trace —
    #: None when the run was untraced.
    timeline: Optional[dict] = None

    @property
    def dead_routers(self) -> List[str]:
        return [r.router_id for r in self.routers if r.status == "dead"]

    @property
    def flapping_routers(self) -> List[str]:
        return [r.router_id for r in self.routers if r.status == "flapping"]

    def to_dict(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["window"] = list(self.window)
        payload["dead_routers"] = self.dead_routers
        payload["flapping_routers"] = self.flapping_routers
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def _router_health(data: StudyData, router_id: str,
                   window: Tuple[float, float],
                   dead_tail_fraction: float,
                   flapping_rate_per_day: float) -> RouterHealth:
    info = data.routers[router_id]
    log = data.heartbeats.get(router_id)
    delivered = len(log) if log is not None else 0
    tally = data.heartbeat_delivery.get(router_id)
    sent = tally[0] if tally is not None else None
    loss = None
    if sent:
        loss = max(0.0, 1.0 - delivered / sent)
    elif sent == 0:
        loss = 0.0

    last_seen = float(log.timestamps[-1]) if delivered else None
    avail = availability.availability_fraction(log) if log is not None \
        else None
    rate = availability.downtime_rate_per_day(log) if log is not None \
        else None

    dead_horizon = window[1] - dead_tail_fraction * (window[1] - window[0])
    if delivered == 0 or (last_seen is not None and last_seen < dead_horizon):
        status = "dead"
    elif rate is not None and rate >= flapping_rate_per_day:
        status = "flapping"
    else:
        status = "ok"
    return RouterHealth(
        router_id=router_id,
        country_code=info.country_code,
        heartbeats_sent=sent,
        heartbeats_delivered=delivered,
        loss_rate=loss,
        availability=avail,
        downtimes_per_day=rate,
        last_seen=last_seen,
        status=status,
    )


def _sum_counters(snapshot: Optional[dict],
                  names: Tuple[str, ...]) -> Dict[str, float]:
    """Sum the selected counters out of a metrics snapshot (label-blind)."""
    if not snapshot:
        return {}
    totals: Dict[str, float] = {}
    for (name, _labels), value in snapshot.get("counters", {}).items():
        if name in names:
            totals[name] = totals.get(name, 0.0) + float(value)
    return totals


def build_health_report(
        data: StudyData,
        dead_tail_fraction: float = DEAD_TAIL_FRACTION,
        flapping_rate_per_day: float = FLAPPING_RATE_PER_DAY,
        metrics_snapshot: Optional[dict] = None,
        trace_summary=None) -> HealthReport:
    """Compute the deployment-health report for one campaign's data.

    *metrics_snapshot* (a :func:`repro.telemetry.metrics` registry
    snapshot) is optional; when given, the engine's fault-tolerance
    counters — retries, straggler timeouts, pool rebuilds, checkpoints,
    resumes — are folded into :attr:`HealthReport.fault_tolerance` so
    the operator sees recovery activity next to coverage.
    *trace_summary* (a :class:`repro.trace.TraceSummary` or its dict
    form) adds the campaign's Timeline section.
    """
    if not 0 < dead_tail_fraction < 1:
        raise ValueError("dead_tail_fraction must be in (0, 1)")
    window = data.windows.heartbeats
    routers = tuple(
        _router_health(data, rid, window, dead_tail_fraction,
                       flapping_rate_per_day)
        for rid in data.router_ids())

    deployed: Dict[str, int] = {}
    reporting: Dict[str, int] = {}
    for health in routers:
        deployed[health.country_code] = \
            deployed.get(health.country_code, 0) + 1
        if health.heartbeats_delivered:
            reporting[health.country_code] = \
                reporting.get(health.country_code, 0) + 1
    countries = tuple(
        CountryCoverage(code, deployed[code], reporting.get(code, 0))
        for code in sorted(deployed))

    sent_total = sum(h.heartbeats_sent or 0 for h in routers)
    delivered_total = sum(h.heartbeats_delivered for h in routers)
    loss_rate = None
    if sent_total:
        loss_rate = max(0.0, 1.0 - delivered_total / sent_total)

    dataset_records = {
        "heartbeats": delivered_total,
        "uptime": len(data.uptime_reports),
        "capacity": len(data.capacity),
        "device_counts": len(data.device_counts),
        "roster": len(data.roster),
        "wifi_scans": len(data.wifi_scans),
        "flows": len(data.flows),
        "throughput": sum(len(s) for s in data.throughput.values()),
        "dns": len(data.dns),
    }
    timeline = None
    if trace_summary is not None:
        timeline = (trace_summary if isinstance(trace_summary, dict)
                    else trace_summary.to_dict())
    return HealthReport(
        window=window,
        countries=countries,
        routers=routers,
        dataset_records=dataset_records,
        heartbeat_loss_rate=loss_rate,
        fault_tolerance=_sum_counters(metrics_snapshot,
                                      FAULT_TOLERANCE_METRICS),
        ingest_service=_sum_counters(metrics_snapshot,
                                     INGEST_SERVICE_METRICS),
        timeline=timeline,
    )


def format_health_report(report: HealthReport) -> str:
    """Render the operator-facing health tables."""
    from repro.core.report import render_table

    def pct(value: Optional[float]) -> str:
        return "n/a" if value is None else f"{value:.1%}"

    sections = [render_table(
        ["country", "deployed", "reporting", "coverage"],
        [(c.country_code, c.deployed, c.reporting, f"{c.coverage:.0%}")
         for c in report.countries],
        title="Cohort coverage")]

    trouble = [r for r in report.routers if r.status != "ok"]
    if trouble:
        sections.append(render_table(
            ["router", "country", "status", "delivered", "loss",
             "downtimes/day"],
            [(r.router_id, r.country_code, r.status,
              r.heartbeats_delivered, pct(r.loss_rate),
              "n/a" if r.downtimes_per_day is None
              else f"{r.downtimes_per_day:.2f}")
             for r in trouble],
            title=f"Unhealthy routers — {len(report.dead_routers)} dead, "
                  f"{len(report.flapping_routers)} flapping"))
    else:
        sections.append("Unhealthy routers: none")

    sections.append(render_table(
        ["dataset", "records", "loss"],
        [(name, count,
          pct(report.heartbeat_loss_rate) if name == "heartbeats" else "0%")
         for name, count in sorted(report.dataset_records.items())],
        title="Dataset accounting"))

    if report.fault_tolerance:
        sections.append(render_table(
            ["counter", "value"],
            [(name, int(value))
             for name, value in sorted(report.fault_tolerance.items())],
            title="Fault tolerance"))

    if report.ingest_service:
        sections.append(render_table(
            ["counter", "value"],
            [(name, int(value))
             for name, value in sorted(report.ingest_service.items())],
            title="Ingest service"))

    if report.timeline:
        tl = report.timeline
        rows = [
            ("wall clock", f"{tl.get('wall_seconds', 0.0):.3f}s"),
            ("critical path",
             f"{tl.get('critical_path_seconds', 0.0):.3f}s"),
            ("worker utilization",
             f"{tl.get('worker_utilization', 0.0):.0%}"),
            ("ingest stall (head wait)",
             f"{tl.get('ingest_stall_seconds', 0.0):.3f}s"),
            ("retry-charged time",
             f"{tl.get('retry_charged_seconds', 0.0):.3f}s"),
            ("spans", tl.get("span_count", 0)),
            ("tracks", tl.get("tracks", 0)),
        ]
        sections.append(render_table(
            ["quantity", "value"], rows,
            title=f"Timeline — trace {tl.get('trace_id') or 'unnamed'}"))
    return "\n\n".join(sections)
