"""Structured JSONL event log for campaign lifecycle events.

Events are the narrative companion to the metrics registry: *what
happened when* (campaign started, shard finished, router ingested, store
spilled, ingest rejected) rather than aggregate totals.  Each event is
one JSON object per line::

    {"ts": 1364774400.123, "event": "shard_finished", "shard": 3, ...}

Design constraints, mirroring :mod:`repro.perf` / the metrics registry:

* **Near-free disabled path** — :func:`emit` is one global read and one
  comparison when no log is active; the campaign engine can emit
  unconditionally.
* **Determinism** — emitting an event reads the wall clock but never any
  RNG, so an event-logged run collects bitwise-identical data
  (``study_digest``-pinned in the tier-1 suite).
* **Fork safety** — shard workers inherit the parent's open log on
  ``fork``; :class:`EventLog` remembers the PID that opened it and
  silently drops writes from any other process, so worker events can
  never interleave bytes into the parent's file.  (Worker-side activity
  reaches the parent as drained metric snapshots instead.)

Every emit is also forwarded to the ``repro.telemetry.events`` stdlib
logger at DEBUG, so ``-vv`` tails the event stream without a file.
"""

from __future__ import annotations

import json
import logging
import os
import time
from pathlib import Path
from typing import IO, Optional, Union

logger = logging.getLogger(__name__)

#: Event types the engine and collection layer emit, for reference and
#: validation in tests (emitting an unlisted type is allowed).
KNOWN_EVENTS = (
    "campaign_started",
    "shard_started",
    "shard_finished",
    "router_ingested",
    "store_spill",
    "ingest_rejected",
    "campaign_finished",
    # Fault-tolerance lifecycle (engine recovery + checkpoint/resume).
    "shard_retry",
    "shard_timeout",
    "pool_rebuilt",
    "checkpoint_written",
    "campaign_resumed",
)


class EventLog:
    """An append-only JSONL event stream bound to one file and process."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[IO[str]] = self.path.open("a")
        self._pid = os.getpid()
        self.emitted = 0

    def emit(self, event: str, **fields: object) -> None:
        """Append one event (dropped silently in forked children)."""
        handle = self._handle
        if handle is None or os.getpid() != self._pid:
            return
        record = {"ts": round(time.time(), 6), "event": event}
        record.update(fields)
        handle.write(json.dumps(record, default=str))
        handle.write("\n")
        self.emitted += 1
        logger.debug("event %s %s", event, fields)

    def flush(self) -> None:
        if self._handle is not None and os.getpid() == self._pid:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None and os.getpid() == self._pid:
            self._handle.close()
        self._handle = None


_ACTIVE: Optional[EventLog] = None


def enable(path: Union[str, Path]) -> EventLog:
    """Open *path* as the process's event log (closing any previous one)."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
    _ACTIVE = EventLog(path)
    return _ACTIVE


def disable() -> Optional[EventLog]:
    """Close and deactivate the event log; returns it (already closed)."""
    global _ACTIVE
    log, _ACTIVE = _ACTIVE, None
    if log is not None:
        log.close()
    return log


def is_enabled() -> bool:
    """True while an event log is active in this process."""
    return _ACTIVE is not None


def active() -> Optional[EventLog]:
    """The active event log, or None when disabled."""
    return _ACTIVE


def emit(event: str, **fields: object) -> None:
    """Emit one event to the active log (no-op when disabled)."""
    log = _ACTIVE
    if log is not None:
        log.emit(event, **fields)


def read_events(path: Union[str, Path]) -> list:
    """Parse a JSONL event file back into dicts (for tests and tooling)."""
    events = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
