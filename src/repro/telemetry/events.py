"""Structured JSONL event log for campaign lifecycle events.

Events are the narrative companion to the metrics registry: *what
happened when* (campaign started, shard finished, router ingested, store
spilled, ingest rejected) rather than aggregate totals.  Each event is
one JSON object per line::

    {"ts": 1364774400.123, "event": "shard_finished", "shard": 3, ...}

Design constraints, mirroring :mod:`repro.perf` / the metrics registry:

* **Near-free disabled path** — :func:`emit` is one global read and one
  comparison when no log is active; the campaign engine can emit
  unconditionally.
* **Determinism** — emitting an event reads the wall clock but never any
  RNG, so an event-logged run collects bitwise-identical data
  (``study_digest``-pinned in the tier-1 suite).
* **Fork safety** — shard workers inherit the parent's open log on
  ``fork``; :class:`EventLog` remembers the PID that opened it and
  silently drops writes from any other process, so worker events can
  never interleave bytes into the parent's file.  (Worker-side activity
  reaches the parent as drained metric snapshots instead.)
* **Bounded disk** — the log rotates logrotate-style once the live
  segment passes ``max_bytes``: ``events.jsonl`` becomes
  ``events.1.jsonl``, existing numbered segments shift up, and the
  oldest beyond ``max_segments`` is dropped, so a long-running campaign
  can never grow an unbounded log.
* **Crash-path durability** — :func:`enable` registers one ``atexit``
  flush for whichever log is active, and :class:`EventLog` is a context
  manager, so buffered lines reach disk even when the campaign dies on
  an exception path.

Every emit is also forwarded to the ``repro.telemetry.events`` stdlib
logger at DEBUG, so ``-vv`` tails the event stream without a file.
"""

from __future__ import annotations

import atexit
import json
import logging
import os
import time
from pathlib import Path
from typing import IO, List, Optional, Union

logger = logging.getLogger(__name__)

#: Rotate the live segment once it reaches this many bytes.
DEFAULT_MAX_BYTES = 16 * 1024 * 1024

#: Rotated segments kept (``events.1.jsonl`` .. ``events.N.jsonl``).
DEFAULT_MAX_SEGMENTS = 4

#: Event types the engine and collection layer emit, for reference and
#: validation in tests (emitting an unlisted type is allowed).
KNOWN_EVENTS = (
    "campaign_started",
    "shard_started",
    "shard_finished",
    "router_ingested",
    "store_spill",
    "ingest_rejected",
    "campaign_finished",
    # Fault-tolerance lifecycle (engine recovery + checkpoint/resume).
    "shard_retry",
    "shard_timeout",
    "pool_rebuilt",
    "checkpoint_written",
    "campaign_resumed",
    # Network ingest service (repro.collection.netserve).
    "ingest_service_started",
    "ingest_service_drained",
    "upload_duplicate",
    "upload_rejected",
    "upload_shed",
    "net_disconnect",
    "net_frame_error",
)


def segment_path(path: Union[str, Path], index: int) -> Path:
    """The rotated-segment name: ``events.jsonl`` → ``events.1.jsonl``."""
    path = Path(path)
    return path.with_name(f"{path.stem}.{index}{path.suffix}")


class EventLog:
    """An append-only JSONL event stream bound to one file and process.

    Usable as a context manager (``with EventLog(path) as log:``) —
    exiting the block closes the file even on an exception.
    """

    def __init__(self, path: Union[str, Path],
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 max_segments: int = DEFAULT_MAX_SEGMENTS):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if max_segments < 1:
            raise ValueError("max_segments must be at least 1")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.max_segments = max_segments
        self._handle: Optional[IO[str]] = self.path.open("a")
        self._bytes = self.path.stat().st_size
        self._pid = os.getpid()
        self.emitted = 0
        self.rotations = 0

    def emit(self, event: str, **fields: object) -> None:
        """Append one event (dropped silently in forked children)."""
        handle = self._handle
        if handle is None or os.getpid() != self._pid:
            return
        record = {"ts": round(time.time(), 6), "event": event}
        record.update(fields)
        line = json.dumps(record, default=str) + "\n"
        handle.write(line)
        self._bytes += len(line)
        self.emitted += 1
        logger.debug("event %s %s", event, fields)
        if self._bytes >= self.max_bytes:
            self._rotate()

    def _rotate(self) -> None:
        """Shift the live segment to ``.1`` and reopen a fresh file."""
        assert self._handle is not None
        self._handle.close()
        oldest = segment_path(self.path, self.max_segments)
        if oldest.exists():
            oldest.unlink()
        for index in range(self.max_segments - 1, 0, -1):
            source = segment_path(self.path, index)
            if source.exists():
                os.replace(source, segment_path(self.path, index + 1))
        os.replace(self.path, segment_path(self.path, 1))
        self._handle = self.path.open("a")
        self._bytes = 0
        self.rotations += 1
        logger.debug("event log rotated (%d rotation(s))", self.rotations)

    def segments(self) -> List[Path]:
        """Existing log files, oldest first, live segment last."""
        paths = [segment_path(self.path, index)
                 for index in range(self.max_segments, 0, -1)]
        paths.append(self.path)
        return [p for p in paths if p.exists()]

    def flush(self) -> None:
        if self._handle is not None and os.getpid() == self._pid:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None and os.getpid() == self._pid:
            self._handle.close()
        self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


_ACTIVE: Optional[EventLog] = None
_ATEXIT_REGISTERED = False


def _flush_active() -> None:  # pragma: no cover - exercised at exit
    log = _ACTIVE
    if log is not None:
        log.flush()


def enable(path: Union[str, Path],
           max_bytes: int = DEFAULT_MAX_BYTES,
           max_segments: int = DEFAULT_MAX_SEGMENTS) -> EventLog:
    """Open *path* as the process's event log (closing any previous one).

    The first call registers an ``atexit`` flush for whichever log is
    active at interpreter exit, so buffered events survive crash paths
    that skip :func:`disable`.
    """
    global _ACTIVE, _ATEXIT_REGISTERED
    if _ACTIVE is not None:
        _ACTIVE.close()
    _ACTIVE = EventLog(path, max_bytes=max_bytes, max_segments=max_segments)
    if not _ATEXIT_REGISTERED:
        atexit.register(_flush_active)
        _ATEXIT_REGISTERED = True
    return _ACTIVE


def disable() -> Optional[EventLog]:
    """Close and deactivate the event log; returns it (already closed)."""
    global _ACTIVE
    log, _ACTIVE = _ACTIVE, None
    if log is not None:
        log.close()
    return log


def is_enabled() -> bool:
    """True while an event log is active in this process."""
    return _ACTIVE is not None


def active() -> Optional[EventLog]:
    """The active event log, or None when disabled."""
    return _ACTIVE


def emit(event: str, **fields: object) -> None:
    """Emit one event to the active log (no-op when disabled)."""
    log = _ACTIVE
    if log is not None:
        log.emit(event, **fields)


def read_events(path: Union[str, Path],
                include_rotated: bool = False) -> list:
    """Parse a JSONL event file back into dicts (for tests and tooling).

    With ``include_rotated=True`` rotated segments (``events.1.jsonl``,
    ...) are read first, oldest to newest, so the result is the full
    chronological stream.
    """
    path = Path(path)
    paths = [path]
    if include_rotated:
        rotated = []
        index = 1
        while True:
            segment = segment_path(path, index)
            if not segment.exists():
                break
            rotated.append(segment)
            index += 1
        paths = list(reversed(rotated)) + paths
    events = []
    for part in paths:
        with part.open() as handle:
            for line in handle:
                line = line.strip()
                if line:
                    events.append(json.loads(line))
    return events
