"""Atomic ``progress.json`` heartbeat: the live view of a running campaign.

The BISmark operators could glance at a dashboard and know which routers
were reporting *right now*; a long repro campaign deserves the same.
The engine updates a :class:`ProgressWriter` after every shard ingest
(plus campaign start and termination), and the writer atomically
replaces ``progress.json`` (temp file + ``os.replace``) so a concurrent
``repro watch`` never reads a torn file.

The payload is deliberately small and self-contained::

    {"schema": 1, "status": "running", "ts": ..., "homes": 252,
     "workers": 4, "shards": {"total": 16, "ingested": 5,
     "in_flight": 8, "retries": 1}, "records_ingested": 123456,
     "records_per_sec": 45678.9, "elapsed_seconds": 2.7,
     "eta_seconds": 5.9}

Writing progress reads the wall clock but never any RNG; a
progress-tracked campaign collects bitwise-identical data.
"""

from __future__ import annotations

import json
import logging
import os
import time
from pathlib import Path
from typing import Optional, Union

logger = logging.getLogger(__name__)

#: Bump when the progress payload changes incompatibly.
PROGRESS_SCHEMA = 1

#: File name the engine writes and ``repro watch`` tails.
PROGRESS_NAME = "progress.json"

#: Terminal statuses — ``repro watch`` stops following once it sees one.
TERMINAL_STATUSES = ("finished", "failed")


class ProgressWriter:
    """Tracks campaign counters and atomically publishes them as JSON."""

    def __init__(self, path: Union[str, Path], shards: int, homes: int,
                 workers: int = 1, start_shard: int = 0,
                 trace_id: str = "", min_interval: float = 0.0) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.shards = shards
        self.homes = homes
        self.workers = workers
        self.start_shard = start_shard
        self.trace_id = trace_id
        self.min_interval = min_interval
        self.started = time.time()
        self.shards_ingested = start_shard
        self.in_flight = 0
        self.retries = 0
        self.records_ingested = 0
        self.status = "running"
        self._last_write = 0.0
        self.writes = 0
        self.write(force=True)

    def update(self, shards_ingested: Optional[int] = None,
               in_flight: Optional[int] = None,
               records_delta: int = 0, retries_delta: int = 0,
               force: bool = False) -> None:
        """Fold counter changes in and publish (throttled unless forced)."""
        if shards_ingested is not None:
            self.shards_ingested = shards_ingested
        if in_flight is not None:
            self.in_flight = in_flight
        self.records_ingested += records_delta
        self.retries += retries_delta
        self.write(force=force)

    def finish(self, status: str = "finished") -> None:
        """Publish the terminal payload (always written, never throttled)."""
        self.status = status
        self.in_flight = 0
        self.write(force=True)

    def payload(self) -> dict:
        elapsed = time.time() - self.started
        done = self.shards_ingested - self.start_shard
        rate = self.records_ingested / elapsed if elapsed > 0 else 0.0
        eta = None
        if self.status == "running" and done > 0:
            eta = (self.shards - self.shards_ingested) * (elapsed / done)
        return {
            "schema": PROGRESS_SCHEMA,
            "status": self.status,
            "ts": round(time.time(), 3),
            "homes": self.homes,
            "workers": self.workers,
            "trace_id": self.trace_id,
            "shards": {
                "total": self.shards,
                "ingested": self.shards_ingested,
                "in_flight": self.in_flight,
                "retries": self.retries,
            },
            "records_ingested": self.records_ingested,
            "records_per_sec": round(rate, 1),
            "elapsed_seconds": round(elapsed, 3),
            "eta_seconds": None if eta is None else round(eta, 1),
        }

    def write(self, force: bool = False) -> None:
        """Atomically replace ``progress.json`` (temp + ``os.replace``)."""
        now = time.monotonic()
        if not force and now - self._last_write < self.min_interval:
            return
        self._last_write = now
        tmp = self.path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(self.payload()) + "\n")
        os.replace(tmp, self.path)
        self.writes += 1


def read_progress(path: Union[str, Path]) -> Optional[dict]:
    """Load a progress payload; None when the file does not exist yet.

    A half-written file cannot happen (writes are atomic), but a watch
    racing the very first write sees no file — callers poll again.
    """
    path = Path(path)
    if path.is_dir():
        path = path / PROGRESS_NAME
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        return None


def render_progress(payload: dict, events_tail: Optional[list] = None,
                    width: int = 30) -> str:
    """Render one watch frame: progress bar, rates, recent events."""
    shards = payload.get("shards", {})
    total = max(1, int(shards.get("total", 1)))
    done = int(shards.get("ingested", 0))
    filled = int(round(width * done / total))
    bar = "#" * filled + "-" * (width - filled)
    eta = payload.get("eta_seconds")
    lines = [
        f"campaign {payload.get('trace_id') or '(untraced)'} — "
        f"{payload.get('status', '?')}",
        f"shards   [{bar}] {done}/{total} "
        f"({done / total:.0%})",
        f"homes    {payload.get('homes', '?')}   "
        f"workers {payload.get('workers', '?')}   "
        f"in-flight {shards.get('in_flight', 0)}   "
        f"retries {shards.get('retries', 0)}",
        f"records  {payload.get('records_ingested', 0):,} ingested   "
        f"{payload.get('records_per_sec', 0):,.0f} rec/s",
        f"elapsed  {payload.get('elapsed_seconds', 0):.1f}s   "
        f"eta {'n/a' if eta is None else f'~{eta:.0f}s'}",
    ]
    if events_tail:
        lines.append("recent events:")
        for event in events_tail:
            ts = time.strftime("%H:%M:%S",
                               time.localtime(event.get("ts", 0)))
            extra = " ".join(f"{k}={v}" for k, v in event.items()
                             if k not in ("ts", "event"))
            lines.append(f"  {ts} {event.get('event', '?')} {extra}".rstrip())
    return "\n".join(lines)


def tail_events(path: Union[str, Path], n: int = 5,
                max_bytes: int = 65536) -> list:
    """Parse the last *n* events of a JSONL event log (seek-based, so a
    multi-GB log costs one bounded read).  Missing file → empty list."""
    path = Path(path)
    try:
        size = path.stat().st_size
    except FileNotFoundError:
        return []
    with path.open("rb") as handle:
        handle.seek(max(0, size - max_bytes))
        chunk = handle.read().decode("utf-8", errors="replace")
    lines = chunk.splitlines()
    if size > max_bytes and lines:
        lines = lines[1:]  # first line may be torn by the seek
    events = []
    for line in lines[-n:]:
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return events


__all__ = [
    "PROGRESS_SCHEMA",
    "PROGRESS_NAME",
    "TERMINAL_STATUSES",
    "ProgressWriter",
    "read_progress",
    "render_progress",
    "tail_events",
]
