"""MAC address parsing, formatting, and the anonymization primitive.

The paper anonymizes the *lower 24 bits* of every MAC address it collects,
keeping the top 24 bits (the IEEE OUI) so manufacturers remain identifiable
while individual devices do not (Section 3.2.2, "MAC addresses").
:func:`hash_lower24` implements exactly that transform; it is deterministic
per study so a device keeps a stable pseudonym across records.
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2})([:\-]?)([0-9a-fA-F]{2})\2([0-9a-fA-F]{2})\2"
                     r"([0-9a-fA-F]{2})\2([0-9a-fA-F]{2})\2([0-9a-fA-F]{2})$")

_MAC_MASK = (1 << 48) - 1
_LOWER24_MASK = (1 << 24) - 1


class MacAddressError(ValueError):
    """Raised when a string cannot be parsed as a MAC address."""


@dataclass(frozen=True)
class MacAddress:
    """A 48-bit MAC address stored as an integer.

    The integer form keeps comparisons, hashing, and OUI extraction cheap;
    :meth:`__str__` renders the canonical colon-separated lowercase form.
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= _MAC_MASK:
            raise MacAddressError(f"MAC value out of range: {self.value!r}")

    @property
    def oui(self) -> int:
        """The top 24 bits: the IEEE Organizationally Unique Identifier."""
        return self.value >> 24

    @property
    def lower24(self) -> int:
        """The bottom 24 bits: the per-device NIC-specific part."""
        return self.value & _LOWER24_MASK

    @property
    def is_locally_administered(self) -> bool:
        """True if the locally-administered bit of the first octet is set."""
        return bool((self.value >> 41) & 1)

    @property
    def is_multicast(self) -> bool:
        """True if the group/multicast bit of the first octet is set."""
        return bool((self.value >> 40) & 1)

    def with_lower24(self, lower: int) -> "MacAddress":
        """Return a copy of this address with the bottom 24 bits replaced."""
        if not 0 <= lower <= _LOWER24_MASK:
            raise MacAddressError(f"lower-24 value out of range: {lower!r}")
        return MacAddress((self.oui << 24) | lower)

    def __str__(self) -> str:
        return format_mac(self.value)

    def __int__(self) -> int:
        return self.value


def parse_mac(text: str) -> MacAddress:
    """Parse ``aa:bb:cc:dd:ee:ff`` (also ``-`` separated or bare hex).

    Raises :class:`MacAddressError` on malformed input.
    """
    match = _MAC_RE.match(text.strip())
    if match is None:
        raise MacAddressError(f"not a MAC address: {text!r}")
    octets = [match.group(i) for i in (1, 3, 4, 5, 6, 7)]
    value = 0
    for octet in octets:
        value = (value << 8) | int(octet, 16)
    return MacAddress(value)


def format_mac(value: int) -> str:
    """Render a 48-bit integer as the canonical ``aa:bb:cc:dd:ee:ff`` form."""
    if not 0 <= value <= _MAC_MASK:
        raise MacAddressError(f"MAC value out of range: {value!r}")
    octets = [(value >> shift) & 0xFF for shift in range(40, -8, -8)]
    return ":".join(f"{octet:02x}" for octet in octets)


def oui_of(mac: MacAddress) -> str:
    """Return the OUI of *mac* as a six-hex-digit string (e.g. ``"3c0754"``)."""
    return f"{mac.oui:06x}"


def hash_lower24(mac: MacAddress, salt: bytes = b"bismark") -> MacAddress:
    """Anonymize *mac* the way the BISmark firmware does.

    The OUI (top 24 bits) is preserved so the manufacturer stays resolvable;
    the NIC-specific lower 24 bits are replaced by a keyed hash so the device
    gets a stable pseudonym that cannot be reversed to the real address.
    """
    digest = hashlib.sha256(salt + mac.value.to_bytes(6, "big")).digest()
    hashed_lower = int.from_bytes(digest[:3], "big") & _LOWER24_MASK
    return mac.with_lower24(hashed_lower)


def random_mac(rng, oui: int) -> MacAddress:
    """Draw a uniformly random device MAC under the given 24-bit *oui*.

    ``rng`` is a :class:`numpy.random.Generator` (any object with
    ``integers``); used by the simulator's vendor-aware MAC allocator.
    """
    lower = int(rng.integers(0, _LOWER24_MASK + 1))
    return MacAddress((oui << 24) | lower)
