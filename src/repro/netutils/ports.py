"""Application-port naming for flow statistics.

The paper's flow records expose "application ports" so analysts can see what
kinds of applications a home uses (HTTP, SMTP, ...) without seeing payloads
(Section 3.2.2).  This module maps well-known ports to application labels.
"""

from __future__ import annotations

#: Well-known destination ports and the application label the flow monitor
#: attaches to them.  Anything else is reported as ``"other"``.
APPLICATION_PORTS = {
    20: "ftp-data",
    21: "ftp",
    22: "ssh",
    25: "smtp",
    53: "dns",
    80: "http",
    110: "pop3",
    123: "ntp",
    143: "imap",
    443: "https",
    465: "smtps",
    587: "submission",
    993: "imaps",
    995: "pop3s",
    1194: "openvpn",
    1935: "rtmp",
    3074: "xbox-live",
    3478: "stun",
    5060: "sip",
    5222: "xmpp",
    6881: "bittorrent",
    8080: "http-alt",
}


def port_application(port: int) -> str:
    """Return the application label for a destination *port*.

    Unknown ports map to ``"other"``; out-of-range ports raise ValueError.
    """
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range: {port!r}")
    return APPLICATION_PORTS.get(port, "other")


def well_known_port(port: int) -> bool:
    """True when *port* has an entry in :data:`APPLICATION_PORTS`."""
    return port in APPLICATION_PORTS
