"""IPv4 helpers and the deterministic obfuscation used for flow statistics.

The paper's Traffic data set stores *obfuscated* IP addresses for sampled
flows (Section 3.2.2, "Flow statistics"): addresses must not be reversible,
but the same real address must map to the same pseudonym so flow-level
aggregation still works.  :func:`obfuscate_ipv4` provides that mapping.
"""

from __future__ import annotations

import hashlib

_IPV4_MAX = (1 << 32) - 1

_PRIVATE_RANGES = (
    (0x0A000000, 0x0AFFFFFF),  # 10.0.0.0/8
    (0xAC100000, 0xAC1FFFFF),  # 172.16.0.0/12
    (0xC0A80000, 0xC0A8FFFF),  # 192.168.0.0/16
    (0x7F000000, 0x7FFFFFFF),  # 127.0.0.0/8 loopback
    (0xA9FE0000, 0xA9FEFFFF),  # 169.254.0.0/16 link-local
)


class Ipv4Error(ValueError):
    """Raised when a string cannot be parsed as an IPv4 address."""


def parse_ipv4(text: str) -> int:
    """Parse dotted-quad *text* into a 32-bit integer.

    Raises :class:`Ipv4Error` for malformed input (wrong number of octets,
    out-of-range octets, or non-numeric parts).
    """
    parts = text.strip().split(".")
    if len(parts) != 4:
        raise Ipv4Error(f"not an IPv4 address: {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise Ipv4Error(f"bad IPv4 octet {part!r} in {text!r}")
        octet = int(part)
        if octet > 255:
            raise Ipv4Error(f"IPv4 octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Render a 32-bit integer as a dotted quad."""
    if not 0 <= value <= _IPV4_MAX:
        raise Ipv4Error(f"IPv4 value out of range: {value!r}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def is_private_ipv4(value: int) -> bool:
    """True for RFC 1918 / loopback / link-local addresses.

    The firmware never obfuscates home-side private addresses the same way as
    remote ones, because they carry no identifying information beyond the
    home itself.
    """
    return any(low <= value <= high for low, high in _PRIVATE_RANGES)


def obfuscate_ipv4(value: int, salt: bytes = b"bismark") -> int:
    """Deterministically pseudonymize a public IPv4 address.

    Private addresses are returned unchanged (they are already
    non-identifying outside the home); public addresses map to a stable
    keyed-hash pseudonym in the reserved 240.0.0.0/4 block so pseudonyms can
    never collide with real routable addresses.
    """
    if not 0 <= value <= _IPV4_MAX:
        raise Ipv4Error(f"IPv4 value out of range: {value!r}")
    if is_private_ipv4(value):
        return value
    digest = hashlib.sha256(salt + value.to_bytes(4, "big")).digest()
    suffix = int.from_bytes(digest[:4], "big") & 0x0FFFFFFF
    return 0xF0000000 | suffix
