"""Low-level network helpers shared by the simulator, firmware, and analysis.

The modules here are deliberately dependency-free: MAC address handling
(:mod:`repro.netutils.mac`), IPv4 helpers with deterministic obfuscation
(:mod:`repro.netutils.ip`), and application-port naming
(:mod:`repro.netutils.ports`).
"""

from repro.netutils.mac import (
    MacAddress,
    format_mac,
    hash_lower24,
    oui_of,
    parse_mac,
    random_mac,
)
from repro.netutils.ip import (
    format_ipv4,
    is_private_ipv4,
    obfuscate_ipv4,
    parse_ipv4,
)
from repro.netutils.ports import (
    APPLICATION_PORTS,
    port_application,
    well_known_port,
)

__all__ = [
    "MacAddress",
    "format_mac",
    "hash_lower24",
    "oui_of",
    "parse_mac",
    "random_mac",
    "format_ipv4",
    "is_private_ipv4",
    "obfuscate_ipv4",
    "parse_ipv4",
    "APPLICATION_PORTS",
    "port_application",
    "well_known_port",
]
