"""Benchmark artifact comparison: one regression gate for every bench.

Every scaling bench publishes a ``BENCH_*.json`` at the repo root
(engine, materialize, collect, analyze, trace).  Until this module each
bench carried its own copy-pasted "load the committed JSON, compare
``points[0].seconds``, fail past 25%" gate; :func:`diff_payloads` is the
shared implementation and ``repro bench diff`` is the operator's view —
compare two artifacts (or two directories of them) with per-metric
deltas and a nonzero exit on regression.

Regression direction is inferred from the metric name: seconds and
memory regress *upward*, throughput/speedup/efficiency regress
*downward*, and everything else (homes, shard counts, digests) is
informational.  The default threshold matches the historical per-bench
gates: a directioned metric moving >25% the wrong way is a regression.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

#: Glob matching the published bench artifacts at the repo root.
BENCH_GLOB = "BENCH_*.json"

#: A directioned metric moving more than this fraction the wrong way
#: fails the gate (matches the per-bench REGRESSION_FACTOR = 1.25).
DEFAULT_THRESHOLD = 0.25

#: Metric-name suffixes where *smaller* is better.
LOWER_IS_BETTER = ("seconds", "_mb", "_bytes")

#: Metric-name suffixes where *larger* is better.
HIGHER_IS_BETTER = ("per_sec", "speedup", "efficiency",
                    "speedup_vs_baseline")


@dataclass(frozen=True)
class MetricDelta:
    """One flattened metric compared across two bench payloads."""

    metric: str
    old: Optional[float]
    new: Optional[float]
    #: Fractional change (new/old - 1); None when either side is
    #: missing or the old value is zero.
    delta: Optional[float]
    #: "lower", "higher", or None for informational metrics.
    better: Optional[str]
    regressed: bool

    def describe(self) -> str:
        if self.delta is None:
            return "n/a"
        return f"{self.delta:+.1%}"


def _direction(metric: str) -> Optional[str]:
    leaf = metric.rsplit(".", 1)[-1]
    leaf = leaf.split("[", 1)[0] or leaf
    # Strip trailing numeric qualifiers ("speedup_vs_baseline_252").
    parts = leaf.split("_")
    while len(parts) > 1 and parts[-1].isdigit():
        parts.pop()
    leaf = "_".join(parts)
    for suffix in HIGHER_IS_BETTER:
        if leaf.endswith(suffix):
            return "higher"
    for suffix in LOWER_IS_BETTER:
        if leaf.endswith(suffix):
            return "lower"
    return None


def flatten_metrics(payload: object, prefix: str = "") -> Dict[str, float]:
    """Flatten a bench payload's numeric leaves to dotted/indexed keys.

    ``{"points": [{"seconds": 1.5}]}`` → ``{"points[0].seconds": 1.5}``.
    Booleans, strings, and nulls are skipped — the diff compares
    numbers, not annotations.
    """
    flat: Dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            name = f"{prefix}.{key}" if prefix else str(key)
            flat.update(flatten_metrics(value, name))
    elif isinstance(payload, (list, tuple)):
        for index, value in enumerate(payload):
            flat.update(flatten_metrics(value, f"{prefix}[{index}]"))
    elif isinstance(payload, bool):
        pass
    elif isinstance(payload, (int, float)):
        flat[prefix] = float(payload)
    return flat


def diff_payloads(old: dict, new: dict,
                  threshold: float = DEFAULT_THRESHOLD,
                  keys: Optional[Tuple[str, ...]] = None
                  ) -> List[MetricDelta]:
    """Compare two bench payloads metric by metric.

    *keys* restricts the comparison (the per-bench gates pin specific
    metrics, e.g. ``("points[0].seconds",)``); by default every metric
    present in either payload is compared.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    old_flat = flatten_metrics(old)
    new_flat = flatten_metrics(new)
    names = (list(keys) if keys is not None
             else sorted(set(old_flat) | set(new_flat)))
    rows: List[MetricDelta] = []
    for name in names:
        a, b = old_flat.get(name), new_flat.get(name)
        delta = None
        if a is not None and b is not None and a != 0:
            delta = b / a - 1.0
        better = _direction(name)
        regressed = False
        if delta is not None and better == "lower":
            regressed = delta > threshold
        elif delta is not None and better == "higher":
            regressed = delta < -threshold
        rows.append(MetricDelta(metric=name, old=a, new=b, delta=delta,
                                better=better, regressed=regressed))
    return rows


def regressions(old: dict, new: dict,
                threshold: float = DEFAULT_THRESHOLD,
                keys: Optional[Tuple[str, ...]] = None
                ) -> List[MetricDelta]:
    """The regressed subset of :func:`diff_payloads` — the shared gate.

    Benches call ``assert not regressions(committed, payload,
    keys=(...,)), format_diff(...)``.
    """
    return [row for row in diff_payloads(old, new, threshold, keys)
            if row.regressed]


def format_diff(rows: List[MetricDelta], title: str = "Bench diff",
                only_changed: bool = False) -> str:
    """Render deltas as the CLI's comparison table."""
    from repro.core.report import render_table  # local: keep bench a leaf

    def num(value: Optional[float]) -> str:
        if value is None:
            return "-"
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.3f}"

    shown = [row for row in rows
             if not only_changed or (row.delta or 0.0) != 0.0
             or row.regressed]
    return render_table(
        ["metric", "old", "new", "delta", "verdict"],
        [(row.metric, num(row.old), num(row.new), row.describe(),
          "REGRESSED" if row.regressed
          else ("ok" if row.better else "info"))
         for row in shown],
        title=title)


def load_bench(path: Union[str, Path]) -> dict:
    """Load one bench artifact (raising with a readable message)."""
    path = Path(path)
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        raise FileNotFoundError(f"no bench artifact at {path}") from None
    except json.JSONDecodeError as exc:
        raise ValueError(f"unreadable bench artifact {path}: {exc}") from exc


def pair_artifacts(old: Union[str, Path], new: Union[str, Path]
                   ) -> List[Tuple[str, Path, Path]]:
    """Resolve two files — or two directories matched by file name —
    into ``(name, old_path, new_path)`` comparison pairs."""
    old, new = Path(old), Path(new)
    if old.is_dir() != new.is_dir():
        raise ValueError("compare two files or two directories, not a mix")
    if not old.is_dir():
        return [(new.name, old, new)]
    pairs = []
    old_names = {p.name for p in old.glob(BENCH_GLOB)}
    for candidate in sorted(new.glob(BENCH_GLOB)):
        if candidate.name in old_names:
            pairs.append((candidate.name, old / candidate.name, candidate))
    if not pairs:
        raise ValueError(
            f"no {BENCH_GLOB} artifacts present in both {old} and {new}")
    return pairs


__all__ = [
    "BENCH_GLOB",
    "DEFAULT_THRESHOLD",
    "MetricDelta",
    "flatten_metrics",
    "diff_payloads",
    "regressions",
    "format_diff",
    "load_bench",
    "pair_artifacts",
]
