"""Lightweight stage timers and counters for the campaign hot path.

The engine's PR-1 bench showed the serial hot path dominating wall time,
but nothing in the repo could say *where* a campaign spends its seconds.
``repro.perf`` fills that hole: a process-global recorder that firmware
collectors, the campaign engine, and ingest wrap their stages with.

Design constraints:

* **Near-zero overhead when disabled.**  :func:`stage` returns a shared
  no-op context manager when no recorder is active — one global read and
  one comparison per call, no allocation.  The tier-1 suite asserts the
  disabled path costs <2% on an instrumented loop.
* **Deterministic data flow.**  The recorder holds plain dicts and never
  touches any RNG; profiling a run cannot perturb ``study_digest``.
* **Multiprocessing-friendly.**  Worker processes enable their own
  recorder, :func:`drain` a picklable snapshot per shard, and the parent
  :func:`merge`\\ s snapshots into its recorder, so ``--profile`` shows
  per-stage totals across every worker.

Usage::

    from repro import perf

    perf.enable()
    with perf.stage("traffic"):
        ...
    perf.count("flows", len(flows))
    print(perf.format_table(perf.snapshot()))
"""

from __future__ import annotations

import time
from typing import Dict, Optional

#: Stage names the firmware + engine wire up, in reporting order.  The
#: collector pass is one top-level "collect" stage with per-collector
#: sub-stages nested beneath it (see ``firmware.shard_collect``).
ENGINE_STAGES = ("materialize", "collect", "collect.heartbeat",
                 "collect.capacity", "collect.uptime", "collect.devices",
                 "collect.wifi", "collect.traffic", "collect.serialize",
                 "ingest")


class PerfRecorder:
    """Accumulates per-stage wall time, call counts, and event counters."""

    __slots__ = ("seconds", "calls", "counters")

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self.counters: Dict[str, int] = {}

    def record(self, name: str, elapsed: float) -> None:
        """Add one timed stage invocation."""
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
        self.calls[name] = self.calls.get(name, 0) + 1

    def count(self, name: str, n: int = 1) -> None:
        """Bump an event counter (records ingested, flows generated, ...)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def merge(self, snapshot: Dict[str, Dict[str, float]]) -> None:
        """Fold a :func:`snapshot`/:func:`drain` dict into this recorder."""
        for name, secs in snapshot.get("seconds", {}).items():
            self.seconds[name] = self.seconds.get(name, 0.0) + secs
        for name, n in snapshot.get("calls", {}).items():
            self.calls[name] = self.calls.get(name, 0) + int(n)
        for name, n in snapshot.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + int(n)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """A picklable copy of everything recorded so far."""
        return {"seconds": dict(self.seconds),
                "calls": dict(self.calls),
                "counters": dict(self.counters)}

    def clear(self) -> None:
        """Forget everything recorded (the recorder stays usable)."""
        self.seconds.clear()
        self.calls.clear()
        self.counters.clear()


class _NullStage:
    """The shared do-nothing context manager handed out while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullStage":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


class _Stage:
    """One live stage timing; records into the recorder active at entry."""

    __slots__ = ("_recorder", "_name", "_t0")

    def __init__(self, recorder: PerfRecorder, name: str) -> None:
        self._recorder = recorder
        self._name = name

    def __enter__(self) -> "_Stage":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._recorder.record(self._name, time.perf_counter() - self._t0)
        return False


_NULL_STAGE = _NullStage()
_ACTIVE: Optional[PerfRecorder] = None


def enable() -> PerfRecorder:
    """Activate profiling (idempotent); returns the active recorder."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = PerfRecorder()
    return _ACTIVE


def disable() -> Optional[PerfRecorder]:
    """Deactivate profiling; returns the recorder that was active."""
    global _ACTIVE
    recorder, _ACTIVE = _ACTIVE, None
    return recorder


def is_enabled() -> bool:
    """True while a recorder is active in this process."""
    return _ACTIVE is not None


def active() -> Optional[PerfRecorder]:
    """The active recorder, or None when profiling is disabled."""
    return _ACTIVE


def stage(name: str):
    """Context manager timing one stage; free when profiling is disabled."""
    recorder = _ACTIVE
    if recorder is None:
        return _NULL_STAGE
    return _Stage(recorder, name)


def count(name: str, n: int = 1) -> None:
    """Bump a counter on the active recorder (no-op when disabled)."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.count(name, n)


def snapshot() -> Dict[str, Dict[str, float]]:
    """Picklable copy of the active recorder's data ({} when disabled)."""
    recorder = _ACTIVE
    if recorder is None:
        return {"seconds": {}, "calls": {}, "counters": {}}
    return recorder.snapshot()


def drain() -> Dict[str, Dict[str, float]]:
    """Snapshot the active recorder and clear it (for per-shard shipping)."""
    recorder = _ACTIVE
    if recorder is None:
        return {"seconds": {}, "calls": {}, "counters": {}}
    snap = recorder.snapshot()
    recorder.clear()
    return snap


def merge(snap: Dict[str, Dict[str, float]]) -> None:
    """Fold a worker snapshot into the active recorder (no-op if disabled)."""
    recorder = _ACTIVE
    if recorder is not None:
        recorder.merge(snap)


def format_table(snap: Dict[str, Dict[str, float]],
                 title: str = "Per-stage profile") -> str:
    """Render a snapshot as the CLI's per-stage table."""
    from repro.core.report import render_table  # local: keep perf a leaf

    seconds = snap.get("seconds", {})
    calls = snap.get("calls", {})
    counters = snap.get("counters", {})
    # Dotted names ("materialize.devices") are sub-stages nested inside a
    # parent stage's timing: they are listed indented under their parent
    # and excluded from the total, which sums top-level stages only.
    top_level = [name for name in seconds if "." not in name]
    total = sum(seconds[name] for name in top_level)
    ordered = [name for name in ENGINE_STAGES
               if name in seconds and "." not in name]
    ordered += sorted(name for name in top_level
                      if name not in ENGINE_STAGES)
    with_subs = []
    for name in ordered:
        with_subs.append(name)
        with_subs += sorted(sub for sub in seconds
                            if sub.startswith(name + "."))
    with_subs += sorted(name for name in seconds
                        if name not in with_subs)
    rows = []
    for name in with_subs:
        secs = seconds[name]
        n = calls.get(name, 0)
        per_call = secs / n * 1000 if n else 0.0
        share = secs / total if total > 0 else 0.0
        label = ("  " + name if "." in name else name)
        rows.append((label, f"{secs:.3f}", n, f"{per_call:.2f}",
                     f"{share:.1%}"))
    table = render_table(["stage", "seconds", "calls", "ms/call", "share"],
                         rows, title=title)
    if counters:
        counter_rows = [(name, counters[name]) for name in sorted(counters)]
        table += "\n" + render_table(["counter", "events"], counter_rows,
                                     title="Counters")
    return table
