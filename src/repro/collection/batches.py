"""Record batches: the wire format between shard workers and the server.

A shard worker does not ship one giant :class:`RouterOutput` per home —
it splits every collector's records into bounded :class:`RecordBatch`
chunks so the ingest side can stream them into a store without ever
holding a whole upload's records beyond the chunk size.  A
:class:`RouterUpload` bundles one home's registration metadata with its
batches; uploads cross the process boundary by pickling.
"""

from __future__ import annotations

import io
import pickle
import struct
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.records import (
    CapacityMeasurement,
    DeviceCountSample,
    RouterInfo,
    Spectrum,
    UptimeReport,
    WifiScanSample,
)
from repro.firmware.router import RouterOutput

#: Datasets carried as plain record lists (chunkable).
LIST_DATASETS = ("uptime", "capacity", "device_counts", "roster",
                 "wifi_scans", "flows", "dns")

#: All batchable datasets, including the two columnar ones.
DATASETS = ("heartbeats",) + LIST_DATASETS + ("throughput",)

#: Default ceiling on records per list batch.
DEFAULT_BATCH_RECORDS = 2048


@dataclass(frozen=True)
class RecordBatch:
    """One chunk of one dataset from one router.

    ``records`` is a list of record dataclasses for the seven list
    datasets, the raw heartbeat *send-time* array for ``"heartbeats"``
    (path loss is applied server-side so delivery stays deterministic in
    ingest order), and a :class:`ThroughputSeries` for ``"throughput"``.
    """

    dataset: str
    router_id: str
    records: Any

    def __post_init__(self) -> None:
        if self.dataset not in DATASETS:
            raise ValueError(f"unknown dataset {self.dataset!r}")


@dataclass(frozen=True)
class RouterUpload:
    """Everything one router sent: registration metadata plus batches."""

    info: RouterInfo
    batches: Tuple[RecordBatch, ...]

    @property
    def router_id(self) -> str:
        return self.info.router_id

    @property
    def record_count(self) -> int:
        """Total records across batches (a throughput series counts 1)."""
        total = 0
        for batch in self.batches:
            try:
                total += len(batch.records)
            except TypeError:
                total += 1
        return total


def _chunks(records: Sequence, size: int) -> Iterator[Sequence]:
    for start in range(0, len(records), size):
        yield records[start:start + size]


def router_output_to_batches(
        output: RouterOutput,
        max_batch_records: int = DEFAULT_BATCH_RECORDS) -> List[RecordBatch]:
    """Split one router's output into bounded batches, in dataset order.

    The heartbeat batch is always emitted (even when empty) so every
    router keeps a heartbeat log entry, matching the monolithic upload
    path.  Empty list datasets emit no batch, also matching it.
    """
    if max_batch_records <= 0:
        raise ValueError("max_batch_records must be positive")
    rid = output.router_id
    batches = [RecordBatch("heartbeats", rid, output.heartbeat_sends)]
    by_dataset = {
        "uptime": output.uptime,
        "capacity": output.capacity,
        "device_counts": output.device_counts,
        "roster": output.roster,
        "wifi_scans": output.wifi_scans,
        "flows": output.flows,
        "dns": output.dns,
    }
    for dataset in LIST_DATASETS:
        records = by_dataset[dataset]
        if not records:
            continue
        for chunk in _chunks(records, max_batch_records):
            batches.append(RecordBatch(dataset, rid, list(chunk)))
    if output.throughput is not None:
        batches.append(RecordBatch("throughput", rid, output.throughput))
    return batches


# -- columnar record batches --------------------------------------------------
#
# The columnar collection pass (``firmware.shard_collect``) produces each
# dataset as parallel plain-list columns rather than per-record dataclass
# instances.  ``ColumnarRecords`` carries those columns across the process
# boundary and materializes record objects only when the batch is iterated
# (at ingest) — validated in bulk per column at construction so the
# per-record ``__post_init__`` checks can be skipped during fabrication.

#: Column names per columnar dataset, in record-field order after router_id.
COLUMNAR_DATASETS: Dict[str, Tuple[str, ...]] = {
    "uptime": ("timestamp", "uptime_seconds"),
    "capacity": ("timestamp", "downstream_mbps", "upstream_mbps"),
    "device_counts": ("timestamp", "wired", "wireless_2_4", "wireless_5"),
    "wifi_scans": ("timestamp", "spectrum_code", "neighbor_aps",
                   "associated_clients", "channel"),
}

#: Spectrum decoding for the wifi ``spectrum_code`` column (1 / 2), matching
#: the cohort's device_spectrum codes.
_SPECTRUM_BY_CODE = (None, Spectrum.GHZ_2_4, Spectrum.GHZ_5)


def _fabricate_uptime(rid: str, cols: Dict[str, list]) -> list:
    out = []
    append = out.append
    new = UptimeReport.__new__
    for ts, up in zip(cols["timestamp"], cols["uptime_seconds"]):
        rec = new(UptimeReport)
        d = rec.__dict__
        d["router_id"] = rid
        d["timestamp"] = ts
        d["uptime_seconds"] = up
        append(rec)
    return out


def _fabricate_capacity(rid: str, cols: Dict[str, list]) -> list:
    out = []
    append = out.append
    new = CapacityMeasurement.__new__
    for ts, down, up in zip(cols["timestamp"], cols["downstream_mbps"],
                            cols["upstream_mbps"]):
        rec = new(CapacityMeasurement)
        d = rec.__dict__
        d["router_id"] = rid
        d["timestamp"] = ts
        d["downstream_mbps"] = down
        d["upstream_mbps"] = up
        append(rec)
    return out


def _fabricate_device_counts(rid: str, cols: Dict[str, list]) -> list:
    out = []
    append = out.append
    new = DeviceCountSample.__new__
    for ts, wired, w24, w5 in zip(cols["timestamp"], cols["wired"],
                                  cols["wireless_2_4"], cols["wireless_5"]):
        rec = new(DeviceCountSample)
        d = rec.__dict__
        d["router_id"] = rid
        d["timestamp"] = ts
        d["wired"] = wired
        d["wireless_2_4"] = w24
        d["wireless_5"] = w5
        append(rec)
    return out


def _fabricate_wifi_scans(rid: str, cols: Dict[str, list]) -> list:
    out = []
    append = out.append
    new = WifiScanSample.__new__
    spectra = _SPECTRUM_BY_CODE
    for ts, code, aps, clients, channel in zip(
            cols["timestamp"], cols["spectrum_code"], cols["neighbor_aps"],
            cols["associated_clients"], cols["channel"]):
        rec = new(WifiScanSample)
        d = rec.__dict__
        d["router_id"] = rid
        d["timestamp"] = ts
        d["spectrum"] = spectra[code]
        d["neighbor_aps"] = aps
        d["associated_clients"] = clients
        d["channel"] = channel
        append(rec)
    return out


_FABRICATORS = {
    "uptime": _fabricate_uptime,
    "capacity": _fabricate_capacity,
    "device_counts": _fabricate_device_counts,
    "wifi_scans": _fabricate_wifi_scans,
}


class ColumnarRecords:
    """One batch's records as parallel columns, materialized lazily.

    Quacks like the record list the server and backends expect — ``len``
    is free, iteration and indexing fabricate the record dataclasses on
    first use and cache them.  The column invariants (the same checks each
    record's ``__post_init__`` would run) are enforced in bulk at
    construction, so fabrication can bypass ``__init__`` entirely.

    The caller hands over ownership of the column lists; they must not be
    mutated afterwards.
    """

    __slots__ = ("dataset", "router_id", "columns", "_length", "_cache")

    def __init__(self, dataset: str, router_id: str,
                 columns: Dict[str, list]) -> None:
        fields = COLUMNAR_DATASETS.get(dataset)
        if fields is None:
            raise ValueError(f"dataset {dataset!r} has no columnar layout")
        if set(columns) != set(fields):
            raise ValueError(
                f"{dataset} columns must be exactly {sorted(fields)}")
        lengths = {len(columns[name]) for name in fields}
        if len(lengths) != 1:
            raise ValueError(f"{dataset} column lengths differ")
        self.dataset = dataset
        self.router_id = router_id
        self.columns = columns
        self._length = lengths.pop()
        self._cache: Optional[list] = None
        self._validate()

    def _validate(self) -> None:
        if self._length == 0:
            return
        cols = self.columns
        dataset = self.dataset
        if dataset == "uptime":
            if min(cols["uptime_seconds"]) < 0:
                raise ValueError("uptime cannot be negative")
        elif dataset == "capacity":
            if (min(cols["downstream_mbps"]) < 0
                    or min(cols["upstream_mbps"]) < 0):
                raise ValueError("capacity cannot be negative")
        elif dataset == "device_counts":
            if (min(cols["wired"]) < 0 or min(cols["wireless_2_4"]) < 0
                    or min(cols["wireless_5"]) < 0):
                raise ValueError("device counts cannot be negative")
        else:  # wifi_scans
            if (min(cols["neighbor_aps"]) < 0
                    or min(cols["associated_clients"]) < 0
                    or min(cols["channel"]) < 0):
                raise ValueError("scan counts cannot be negative")
            if not set(cols["spectrum_code"]) <= {1, 2}:
                raise ValueError(
                    "wifi spectrum codes must be 1 (2.4 GHz) or 2 (5 GHz)")

    def materialize(self) -> list:
        """The fabricated record list (built once, then cached)."""
        records = self._cache
        if records is None:
            records = _FABRICATORS[self.dataset](self.router_id, self.columns)
            self._cache = records
        return records

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Any]:
        return iter(self.materialize())

    def __getitem__(self, index):
        return self.materialize()[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ColumnarRecords({self.dataset!r}, {self.router_id!r}, "
                f"n={self._length})")

    # Pickling ships the columns, never the fabricated cache: the parent
    # process re-fabricates at ingest, keeping the wire payload columnar.
    def __getstate__(self):
        return (self.dataset, self.router_id, self.columns, self._length)

    def __setstate__(self, state) -> None:
        self.dataset, self.router_id, self.columns, self._length = state
        self._cache = None


def columnar_batches(dataset: str, router_id: str,
                     columns: Optional[Dict[str, list]],
                     max_batch_records: int = DEFAULT_BATCH_RECORDS,
                     ) -> List[RecordBatch]:
    """Chunk one dataset's columns into :class:`ColumnarRecords` batches.

    Mirrors :func:`router_output_to_batches`: empty (or ``None``) datasets
    emit no batch and chunk boundaries land every *max_batch_records*
    records.
    """
    if max_batch_records <= 0:
        raise ValueError("max_batch_records must be positive")
    if columns is None:
        return []
    fields = COLUMNAR_DATASETS[dataset]
    length = len(columns[fields[0]])
    if length == 0:
        return []
    if length <= max_batch_records:
        return [RecordBatch(dataset, router_id,
                            ColumnarRecords(dataset, router_id, columns))]
    batches = []
    for lo in range(0, length, max_batch_records):
        chunk = {name: columns[name][lo:lo + max_batch_records]
                 for name in fields}
        batches.append(RecordBatch(
            dataset, router_id, ColumnarRecords(dataset, router_id, chunk)))
    return batches


def list_batches(dataset: str, router_id: str, records: Sequence,
                 max_batch_records: int = DEFAULT_BATCH_RECORDS,
                 ) -> List[RecordBatch]:
    """Chunk a plain record list, matching :func:`router_output_to_batches`."""
    if max_batch_records <= 0:
        raise ValueError("max_batch_records must be positive")
    if not records:
        return []
    return [RecordBatch(dataset, router_id, list(chunk))
            for chunk in _chunks(records, max_batch_records)]


# -- wire framing -------------------------------------------------------------
#
# The network ingest service (``collection.netserve``) carries the same
# ``RouterUpload``/``RecordBatch`` payloads that cross the process boundary
# today, but over TCP: each message is one length-prefixed frame —
# a 4-byte big-endian payload length followed by the pickled message.
# Messages are small tuples, ``(kind, ...)``:
#
# ==========  =============================  ==================================
# kind        shape                          direction / meaning
# ==========  =============================  ==================================
# "upload"    ("upload", seq, RouterUpload)  client→server: one router's upload
#                                            at deployment-order position *seq*
# "ack"       ("ack", seq, status)           server→client: durably ingested;
#                                            status is "stored" or "duplicate"
# "retry"     ("retry", seq, after_seconds)  server→client: shed under overload
#                                            — resend after *after_seconds*
# "error"     ("error", seq, text)           server→client: upload rejected
# "ping"      ("ping",) / ("pong",)          liveness probe round trip
# "bye"       ("bye",)                       client→server: clean close
# ==========  =============================  ==================================
#
# The length prefix is the whole protocol state machine: a reader pulls
# exactly 4 bytes, validates the length against ``max_frame_bytes`` (a
# hostile or corrupt prefix must not trigger a giant allocation), then
# pulls exactly that many payload bytes.  A connection that dies mid-frame
# leaves nothing ambiguous — the partial read is detected and the
# connection dropped without touching the store.  Payloads are encoded
# with pickle but *decoded* with a restricted unpickler that resolves
# only the protocol's own types (see "safe deserialization" below), so a
# hostile payload cannot execute code during deserialization.

#: Length prefix: one unsigned 32-bit big-endian payload size.
FRAME_HEADER = struct.Struct("!I")

#: Default ceiling on one frame's payload size (64 MiB — far above any
#: real upload; a prefix past this is treated as corruption, not data).
DEFAULT_MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Message kinds either side may legally put on the wire.
FRAME_KINDS = ("upload", "ack", "retry", "error", "ping", "pong", "bye")


class FrameError(ValueError):
    """A malformed frame: bad length prefix, undecodable or non-protocol
    payload.  The connection that produced it cannot be trusted further
    and is closed; the store is never touched."""


# -- safe deserialization ------------------------------------------------------
#
# Frame payloads arrive from peers the daemon must not trust, and plain
# ``pickle.loads`` hands such a peer arbitrary code execution (any
# ``__reduce__`` in the payload runs during unpickling).  Frames are
# therefore decoded with a restricted unpickler whose ``find_class``
# resolves only the globals a legal protocol message can reference: the
# protocol dataclasses, the record types they carry, and the numpy
# machinery their arrays pickle through.  Anything else — ``os.system``,
# ``builtins.eval``, a class smuggling a hostile reducer — is rejected
# before any object is constructed.  This bounds *what can exist* in a
# decoded payload; ``validate_message`` then checks its shape, and the
# collection server validates upload semantics.  The daemon is still
# meant for trusted networks (loopback by default): the allowlisted
# types accept attacker-chosen field values, which downstream validation
# must — and does — treat as untrusted data.

def _safe_globals() -> Dict[Tuple[str, str], Any]:
    """Build the (module, qualname) -> object allowlist for frames."""
    from importlib import import_module

    import numpy as np

    from repro.core import datasets as _datasets
    from repro.core import records as _records

    allowed: Dict[Tuple[str, str], Any] = {}
    for obj in (
            RecordBatch, RouterUpload, ColumnarRecords,
            _records.RouterInfo, _records.UptimeReport,
            _records.CapacityMeasurement, _records.DeviceCountSample,
            _records.DeviceRosterEntry, _records.WifiScanSample,
            _records.FlowRecord, _records.DnsRecord,
            _records.Spectrum, _records.Medium,
            _datasets.ThroughputSeries,
    ):
        allowed[(obj.__module__, obj.__qualname__)] = obj
    allowed[("numpy", "ndarray")] = np.ndarray
    allowed[("numpy", "dtype")] = np.dtype
    # The ndarray reconstruction helpers moved between ``numpy.core``
    # and ``numpy._core`` across numpy versions; allow whichever exist
    # so frames from either side of the rename decode.  Newer numpy
    # keeps ``numpy.core`` as a deprecation shim — probing it must not
    # warn on every daemon start.
    import warnings
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        for module_name in ("numpy.core.multiarray",
                            "numpy._core.multiarray",
                            "numpy.core.numeric", "numpy._core.numeric"):
            try:
                module = import_module(module_name)
            except ImportError:  # pragma: no cover - numpy-version gated
                continue
            for name in ("_reconstruct", "scalar", "_frombuffer"):
                if hasattr(module, name):
                    allowed[(module_name, name)] = getattr(module, name)
    return allowed


_SAFE_GLOBALS: Optional[Dict[Tuple[str, str], Any]] = None


class _RestrictedUnpickler(pickle.Unpickler):
    """Unpickler that resolves only the protocol's allowlisted globals."""

    def find_class(self, module: str, name: str) -> Any:
        global _SAFE_GLOBALS
        if _SAFE_GLOBALS is None:  # built lazily to avoid import cycles
            _SAFE_GLOBALS = _safe_globals()
        try:
            return _SAFE_GLOBALS[(module, name)]
        except KeyError:
            raise FrameError(
                f"frame payload references disallowed global "
                f"{module}.{name}") from None


def encode_frame(message: Tuple,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES) -> bytes:
    """Serialize one protocol message into a length-prefixed frame."""
    validate_message(message)
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > max_frame_bytes:
        raise FrameError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{max_frame_bytes}-byte frame ceiling")
    return FRAME_HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Tuple:
    """Deserialize and validate one frame's payload bytes.

    Decoding never runs attacker code: the restricted unpickler rejects
    any payload referencing a global outside the protocol allowlist.
    """
    try:
        message = _RestrictedUnpickler(io.BytesIO(payload)).load()
    except FrameError:
        raise
    except Exception as exc:
        raise FrameError(f"undecodable frame payload: {exc}") from exc
    validate_message(message)
    return message


def decode_frame(data: bytes,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
                 ) -> Tuple[Tuple, int]:
    """Parse one complete frame from *data*; returns (message, consumed).

    For synchronous callers and tests; the async reader in
    :mod:`repro.collection.netserve` consumes the header and payload
    directly off the stream with the same validation.
    """
    if len(data) < FRAME_HEADER.size:
        raise FrameError("truncated frame header")
    (length,) = FRAME_HEADER.unpack(data[:FRAME_HEADER.size])
    if length == 0 or length > max_frame_bytes:
        raise FrameError(f"invalid frame length {length}")
    end = FRAME_HEADER.size + length
    if len(data) < end:
        raise FrameError(f"truncated frame payload: have "
                         f"{len(data) - FRAME_HEADER.size}, need {length}")
    return decode_payload(data[FRAME_HEADER.size:end]), end


def validate_message(message: object) -> Tuple:
    """Reject anything that is not a well-formed protocol message."""
    if not isinstance(message, tuple) or not message:
        raise FrameError("frame payload must be a non-empty tuple")
    kind = message[0]
    if kind not in FRAME_KINDS:
        raise FrameError(f"unknown frame kind {kind!r}")
    if kind == "upload":
        if len(message) != 3 or not isinstance(message[1], int) \
                or message[1] < 0 \
                or not isinstance(message[2], RouterUpload):
            raise FrameError("upload frames are (\"upload\", seq, "
                             "RouterUpload) with seq >= 0")
    elif kind == "ack":
        if len(message) != 3 or message[2] not in ("stored", "duplicate"):
            raise FrameError("ack frames are (\"ack\", seq, status)")
    elif kind == "retry":
        if len(message) != 3 or not isinstance(message[2], (int, float)) \
                or message[2] <= 0:
            raise FrameError("retry frames are (\"retry\", seq, "
                             "after_seconds) with a positive delay")
    elif kind == "error":
        if len(message) != 3 or not isinstance(message[2], str):
            raise FrameError("error frames are (\"error\", seq, text)")
    elif len(message) != 1:
        raise FrameError(f"{kind!r} frames carry no payload")
    return message
