"""Record batches: the wire format between shard workers and the server.

A shard worker does not ship one giant :class:`RouterOutput` per home —
it splits every collector's records into bounded :class:`RecordBatch`
chunks so the ingest side can stream them into a store without ever
holding a whole upload's records beyond the chunk size.  A
:class:`RouterUpload` bundles one home's registration metadata with its
batches; uploads cross the process boundary by pickling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Sequence, Tuple

from repro.core.records import RouterInfo
from repro.firmware.router import RouterOutput

#: Datasets carried as plain record lists (chunkable).
LIST_DATASETS = ("uptime", "capacity", "device_counts", "roster",
                 "wifi_scans", "flows", "dns")

#: All batchable datasets, including the two columnar ones.
DATASETS = ("heartbeats",) + LIST_DATASETS + ("throughput",)

#: Default ceiling on records per list batch.
DEFAULT_BATCH_RECORDS = 2048


@dataclass(frozen=True)
class RecordBatch:
    """One chunk of one dataset from one router.

    ``records`` is a list of record dataclasses for the seven list
    datasets, the raw heartbeat *send-time* array for ``"heartbeats"``
    (path loss is applied server-side so delivery stays deterministic in
    ingest order), and a :class:`ThroughputSeries` for ``"throughput"``.
    """

    dataset: str
    router_id: str
    records: Any

    def __post_init__(self) -> None:
        if self.dataset not in DATASETS:
            raise ValueError(f"unknown dataset {self.dataset!r}")


@dataclass(frozen=True)
class RouterUpload:
    """Everything one router sent: registration metadata plus batches."""

    info: RouterInfo
    batches: Tuple[RecordBatch, ...]

    @property
    def router_id(self) -> str:
        return self.info.router_id


def _chunks(records: Sequence, size: int) -> Iterator[Sequence]:
    for start in range(0, len(records), size):
        yield records[start:start + size]


def router_output_to_batches(
        output: RouterOutput,
        max_batch_records: int = DEFAULT_BATCH_RECORDS) -> List[RecordBatch]:
    """Split one router's output into bounded batches, in dataset order.

    The heartbeat batch is always emitted (even when empty) so every
    router keeps a heartbeat log entry, matching the monolithic upload
    path.  Empty list datasets emit no batch, also matching it.
    """
    if max_batch_records <= 0:
        raise ValueError("max_batch_records must be positive")
    rid = output.router_id
    batches = [RecordBatch("heartbeats", rid, output.heartbeat_sends)]
    by_dataset = {
        "uptime": output.uptime,
        "capacity": output.capacity,
        "device_counts": output.device_counts,
        "roster": output.roster,
        "wifi_scans": output.wifi_scans,
        "flows": output.flows,
        "dns": output.dns,
    }
    for dataset in LIST_DATASETS:
        records = by_dataset[dataset]
        if not records:
            continue
        for chunk in _chunks(records, max_batch_records):
            batches.append(RecordBatch(dataset, rid, list(chunk)))
    if output.throughput is not None:
        batches.append(RecordBatch("throughput", rid, output.throughput))
    return batches
