"""The collection server: ingests router uploads and assembles the study.

The server is batch-oriented: shard workers (or the in-process serial
path) submit :class:`~repro.collection.batches.RouterUpload` bundles and
the server streams each :class:`~repro.collection.batches.RecordBatch`
into the record store.  Heartbeat batches carry raw *send* times; the
server applies the lossy collection path at ingest time, so delivery
randomness depends only on the deterministic ingest order — never on
which worker produced the batch.

:func:`collect_study` remains the one-call measurement campaign over a
:class:`~repro.simulation.deployment.Deployment`; it now delegates to the
shard engine (:mod:`repro.collection.engine`).
"""

from __future__ import annotations

import logging
from typing import Optional

from repro.core.datasets import HeartbeatLog, StudyData
from repro.simulation.deployment import Deployment
from repro.collection.batches import (
    RecordBatch,
    RouterUpload,
    router_output_to_batches,
)
from repro.collection.path import CollectionPath, PathConfig
from repro.collection.storage import RecordStore
from repro.firmware.router import RouterOutput
from repro.telemetry import events, metrics

logger = logging.getLogger(__name__)


class CollectionServer:
    """Receives router uploads and stores them."""

    def __init__(self, store: RecordStore, path: CollectionPath):
        self.store = store
        self.path = path

    def ingest(self, upload: RouterUpload) -> None:
        """Register one router and stream in all of its batches."""
        self.store.register_router(upload.info)
        for batch in upload.batches:
            self.receive_batch(batch)
        metrics.inc("routers_ingested_total")
        events.emit("router_ingested", router=upload.router_id,
                    batches=len(upload.batches))
        logger.debug("ingested router %s (%d batches)",
                     upload.router_id, len(upload.batches))

    def receive_batch(self, batch: RecordBatch) -> None:
        """Ingest one dataset chunk, applying path loss to heartbeats.

        Heartbeats are the one lossy dataset: the batch carries raw
        *send* times and the path model decides delivery here.  The
        sent-vs-delivered difference is accounted on the store (per
        router) and the metrics registry (aggregate) so undelivered
        heartbeats are measured, never silently discarded.
        """
        if batch.dataset == "heartbeats":
            sent = len(batch.records)
            delivered = self.path.deliver(batch.records)
            stored = self.store.add_heartbeats(
                HeartbeatLog(batch.router_id, delivered))
            if stored:
                self.store.record_heartbeat_delivery(
                    batch.router_id, sent, len(delivered))
                metrics.inc("heartbeats_sent_total", sent)
                metrics.inc("heartbeats_delivered_total", len(delivered))
                metrics.inc("heartbeats_dropped_total",
                            sent - len(delivered))
                metrics.inc("records_ingested_total", len(delivered),
                            dataset="heartbeats")
        elif batch.dataset == "uptime":
            self.store.add_uptime(batch.records)
        elif batch.dataset == "capacity":
            self.store.add_capacity(batch.records)
        elif batch.dataset == "device_counts":
            self.store.add_device_counts(batch.records)
        elif batch.dataset == "roster":
            self.store.add_roster(batch.records)
        elif batch.dataset == "wifi_scans":
            self.store.add_wifi_scans(batch.records)
        elif batch.dataset == "flows":
            self.store.add_flows(batch.records)
        elif batch.dataset == "throughput":
            self.store.add_throughput(batch.records)
            metrics.inc("records_ingested_total", len(batch.records),
                        dataset="throughput")
        elif batch.dataset == "dns":
            self.store.add_dns(batch.records)
        else:  # pragma: no cover - RecordBatch validates its dataset
            raise ValueError(f"unknown dataset {batch.dataset!r}")
        if batch.dataset not in ("heartbeats", "throughput"):
            metrics.inc("records_ingested_total", len(batch.records),
                        dataset=batch.dataset)

    def receive(self, output: RouterOutput) -> None:
        """Ingest one monolithic router upload (legacy entry point)."""
        for batch in router_output_to_batches(output):
            self.receive_batch(batch)


def collect_study(deployment: Deployment, seed: int = 2013,
                  path_config: Optional[PathConfig] = None,
                  workers: int = 1,
                  shard_size: Optional[int] = None,
                  max_shard_retries: Optional[int] = None,
                  shard_timeout: Optional[float] = None,
                  fault_plan=None,
                  checkpoint_dir=None,
                  resume: bool = False) -> StudyData:
    """Run the full measurement campaign over *deployment*.

    The fault-tolerance knobs (retry budget, straggler timeout, fault
    injection, checkpoint/resume) pass straight through to
    :func:`repro.collection.engine.run_campaign`.
    """
    from repro.collection.engine import DEFAULT_MAX_SHARD_RETRIES, run_campaign
    if max_shard_retries is None:
        max_shard_retries = DEFAULT_MAX_SHARD_RETRIES
    return run_campaign(deployment.plan, seed=seed, path_config=path_config,
                        workers=workers, shard_size=shard_size,
                        max_shard_retries=max_shard_retries,
                        shard_timeout=shard_timeout, fault_plan=fault_plan,
                        checkpoint_dir=checkpoint_dir, resume=resume)
